//! Static UDA lint CLI.
//!
//! ```text
//! symple-lint                    # human-readable sweep of the 12 paper queries
//! symple-lint --json             # machine-readable report (schema symple-lint/v1)
//! symple-lint --query G4         # one query (F1 and R1c..R4c also accepted)
//! symple-lint --list-codes       # the SY code table
//! ```
//!
//! Exit codes: `0` no error-severity findings, `1` at least one error
//! finding, `2` usage error.

use std::process::ExitCode;

use symple_analyze::{
    lint_query_by_id, lint_registry, render_codes, render_human, render_json, totals,
};

const USAGE: &str = "\
symple-lint: static diagnostics for SYMPLE UDAs (abstract interpretation)

USAGE:
    symple-lint [OPTIONS]           lint the query registry

OPTIONS:
    --json           emit the machine-readable report (schema symple-lint/v1)
    --query <ID>     lint a single query (G1..G4, B1..B3, T1, F1, R1..R4, R1c..R4c)
    --list-codes     print the SY diagnostic code table and exit
    --help           this text

EXIT CODES:
    0  no error-severity findings
    1  at least one error-severity finding
    2  usage error";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let mut as_json = false;
    let mut query: Option<String> = None;
    let mut list_codes = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => as_json = true,
            "--list-codes" => list_codes = true,
            "--query" => {
                i += 1;
                match args.get(i) {
                    Some(q) => query = Some(q.clone()),
                    None => return usage_error("--query needs an id"),
                }
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    if list_codes {
        print!("{}", render_codes());
        return ExitCode::SUCCESS;
    }

    let lints = match &query {
        Some(id) => match lint_query_by_id(id) {
            Some(l) => vec![l],
            None => return usage_error(&format!("unknown query {id:?}")),
        },
        None => lint_registry(),
    };

    if as_json {
        print!("{}", render_json(&lints));
    } else {
        print!("{}", render_human(&lints));
    }

    if totals(&lints).errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
