//! Diagnostic-space coverage: which of the stable `SY001`–`SY008` codes
//! a UDA's lint report exercises, as a compact bitmask.
//!
//! The fuzzer uses this as one axis of its coverage map: a generated
//! program that lights up a lint code no earlier program reached (say,
//! the first overflow-prone accumulator, or the first unmergeable-path
//! shape) is *novel* and worth keeping in the mutation corpus even if its
//! engine metrics look ordinary. Eight codes fit in a `u8`, so coverage
//! union and novelty checks are single instructions.

use crate::{lint_analysis, Diagnostic, CODES};
use symple_core::UdaAnalysis;

/// Bit index of a stable diagnostic code (`SY001` → 0 … `SY008` → 7),
/// or `None` for an unknown code.
pub fn code_bit(code: &str) -> Option<u8> {
    CODES.iter().position(|c| c.code == code).map(|i| i as u8)
}

/// A set of exercised diagnostic codes, one bit per [`CODES`] entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord, Hash)]
pub struct DiagCoverage(u8);

impl DiagCoverage {
    /// The empty set.
    pub const EMPTY: DiagCoverage = DiagCoverage(0);

    /// Rebuilds a set from a raw bitmask (inverse of [`bits`]).
    ///
    /// [`bits`]: DiagCoverage::bits
    pub fn from_bits(bits: u8) -> DiagCoverage {
        DiagCoverage(bits)
    }

    /// Coverage of one diagnostic list.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> DiagCoverage {
        let mut mask = 0u8;
        for d in diags {
            if let Some(bit) = code_bit(d.code) {
                mask |= 1 << bit;
            }
        }
        DiagCoverage(mask)
    }

    /// The raw bitmask (bit *i* ⇔ `CODES[i]` exercised).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Set union.
    pub fn union(self, other: DiagCoverage) -> DiagCoverage {
        DiagCoverage(self.0 | other.0)
    }

    /// Whether `other` exercises a code this set has not seen.
    pub fn misses(self, other: DiagCoverage) -> bool {
        other.0 & !self.0 != 0
    }

    /// Number of exercised codes.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no code is exercised.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The exercised codes, in code order.
    pub fn codes(self) -> Vec<&'static str> {
        CODES
            .iter()
            .enumerate()
            .filter(|(i, _)| self.0 & (1 << i) != 0)
            .map(|(_, c)| c.code)
            .collect()
    }
}

/// Lints an analysis and reports which diagnostic codes it exercises —
/// the analyzer half of the fuzzer's coverage signature.
pub fn diag_signature(a: &UdaAnalysis) -> DiagCoverage {
    DiagCoverage::from_diagnostics(&lint_analysis(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn diag(code: &'static str) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Info,
            field: None,
            message: String::new(),
        }
    }

    #[test]
    fn bits_match_code_table_order() {
        for (i, c) in CODES.iter().enumerate() {
            assert_eq!(code_bit(c.code), Some(i as u8));
        }
        assert_eq!(code_bit("SY999"), None);
    }

    #[test]
    fn union_and_novelty() {
        let a = DiagCoverage::from_diagnostics(&[diag("SY001"), diag("SY004")]);
        let b = DiagCoverage::from_diagnostics(&[diag("SY004"), diag("SY008")]);
        assert_eq!(a.len(), 2);
        assert!(a.misses(b), "SY008 is new to a");
        assert!(!a.union(b).misses(b));
        assert_eq!(a.union(b).codes(), vec!["SY001", "SY004", "SY008"]);
        assert!(DiagCoverage::EMPTY.is_empty());
        assert!(!DiagCoverage::EMPTY.misses(DiagCoverage::EMPTY));
    }

    #[test]
    fn signature_of_a_straight_line_uda_hits_sy008() {
        // A trivial generated program: no branches → SY008 (straight-line)
        // fires, proving the analyzer pipeline reaches the bitmask.
        let p = symple_core::ast::Program::parse_token("fields[i64=0] body[(iadd 0 ev)]").unwrap();
        let variants = p.variants();
        let uda = symple_core::ast::AstUda::new(p);
        let sig = diag_signature(&symple_core::analyze_uda(&uda, &variants));
        assert!(sig.codes().contains(&"SY008"), "{:?}", sig.codes());
    }
}
