//! Render-only JSON value for the `symple-lint --json` report.
//!
//! The workspace builds offline (no serde), so the report is assembled
//! from this tiny value type. Object keys keep insertion order and the
//! printer is byte-deterministic — the property the golden-file test in
//! `tests/golden_lint.rs` pins down. Counts are carried as `u64` so large
//! growth steps render exactly (no `f64` 53-bit rounding).

use std::fmt::Write as _;

/// A JSON value (the subset the lint report needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer, rendered exactly.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Pretty-prints with two-space indentation and a trailing newline.
    /// Deterministic: same value → same bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: builds an object from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_exact() {
        let v = obj(vec![
            ("s", Json::Str("a\"b\n".into())),
            ("big", Json::UInt(u64::MAX)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::UInt(1), Json::Arr(vec![])])),
            ("empty", Json::Obj(vec![])),
        ]);
        let a = v.render();
        assert_eq!(a, v.render());
        assert!(
            a.contains("18446744073709551615"),
            "u64::MAX renders exactly"
        );
        assert!(a.contains("\"a\\\"b\\n\""));
    }
}
