#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # symple-analyze
//!
//! Lint diagnostics derived from `symple-core`'s static UDA analysis
//! ([`symple_core::analyze_uda`]): the library behind the `symple-lint`
//! CLI and the oracle's `--analyze-first` pre-flight.
//!
//! The analyzer abstractly interprets a UDA's `update` once per event
//! variant from the all-symbolic "top" state; this crate turns the
//! resulting [`UdaAnalysis`] into stable, numbered diagnostics:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | SY001 | error    | analysis could not bound the per-record path tree |
//! | SY002 | warn     | per-record branching factor ≥ 8 |
//! | SY003 | warn     | predicate window grows without the value binding |
//! | SY004 | warn     | overflow-prone accumulator (monotone, no rebind) |
//! | SY005 | warn     | state field written but never read |
//! | SY006 | info     | vector accumulates symbolic elements |
//! | SY007 | info     | sibling paths never merge (`M == B > 1`) |
//! | SY008 | info     | straight-line UDA (never forks) |
//!
//! Codes are a compatibility surface: renumbering or re-meaning one is a
//! breaking change (the golden-file test pins the full report for the 12
//! paper queries). Adding a new code at the end is fine.

pub mod coverage;
pub mod json;

pub use coverage::{code_bit, diag_signature, DiagCoverage};

use json::{obj, Json};
use symple_core::{EngineConfig, MergePolicy, UdaAnalysis};

/// Report schema identifier emitted by [`render_json`].
pub const SCHEMA: &str = "symple-lint/v1";

/// Branching factor at which `SY002` fires. The default engine allows 64
/// paths per record; a per-record fan-out of 8 leaves fewer than two
/// doublings of headroom for live paths entering the record.
pub const HIGH_BRANCHING: usize = 8;

/// Accumulator growth step at which `SY004` fires even for 64-bit fields:
/// with steps this large, ~2³² records overflow — reachable in one job.
pub const BIG_STEP: u64 = 1 << 32;

/// Diagnostic severity, ordered from worst to mildest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The engine is expected to refuse (or the analysis itself failed).
    Error,
    /// Likely correctness or capacity hazard; worth changing the UDA.
    Warn,
    /// Structural observation; useful for tuning, not a hazard.
    Info,
}

impl Severity {
    /// Lower-case label used in both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

/// One stable lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, `SY001`…
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// The state field the finding is about, if field-scoped.
    pub field: Option<String>,
    /// Human-readable explanation with the concrete numbers inlined.
    pub message: String,
}

/// A row of the `--list-codes` table.
#[derive(Debug, Clone, Copy)]
pub struct CodeInfo {
    /// Stable code.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Short title.
    pub title: &'static str,
    /// One-line meaning.
    pub meaning: &'static str,
}

/// The full code table, in code order.
pub const CODES: [CodeInfo; 8] = [
    CodeInfo {
        code: "SY001",
        severity: Severity::Error,
        title: "path explosion under analysis",
        meaning: "the per-record path tree could not be bounded; the engine will refuse",
    },
    CodeInfo {
        code: "SY002",
        severity: Severity::Warn,
        title: "high branching factor",
        meaning: "a single record forks 8+ paths; little headroom before the per-record bound",
    },
    CodeInfo {
        code: "SY003",
        severity: Severity::Warn,
        title: "unbounded predicate window",
        meaning: "a predicate's decision window grows every record without the value binding",
    },
    CodeInfo {
        code: "SY004",
        severity: Severity::Warn,
        title: "overflow-prone accumulator",
        meaning: "an integer grows monotonically with no rebind and a narrow width or huge step",
    },
    CodeInfo {
        code: "SY005",
        severity: Severity::Warn,
        title: "dead state field",
        meaning: "written but never read by a guard, a vector element, or result",
    },
    CodeInfo {
        code: "SY006",
        severity: Severity::Info,
        title: "symbolic vector accumulation",
        meaning: "a vector stores elements referencing unknown state; summaries grow with matches",
    },
    CodeInfo {
        code: "SY007",
        severity: Severity::Info,
        title: "unmergeable sibling paths",
        meaning: "no two paths of one record merge (M == B > 1); relies on the restart fallback",
    },
    CodeInfo {
        code: "SY008",
        severity: Severity::Info,
        title: "straight-line UDA",
        meaning: "update never forks; path merging is pure overhead (policy Never suggested)",
    },
];

/// Derives the diagnostics for one analyzed UDA, in code order (which is
/// also severity order: errors, then warnings, then infos).
pub fn lint_analysis(a: &UdaAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // SY001: the analysis itself could not bound the UDA.
    for v in &a.variants {
        if v.exploded {
            out.push(Diagnostic {
                code: "SY001",
                severity: Severity::Error,
                field: None,
                message: format!(
                    "variant '{}' still had unexplored forks after {} paths; \
                     the engine will refuse streams containing it",
                    v.name,
                    symple_core::analysis::ANALYSIS_PATH_BOUND
                ),
            });
        } else if let Some(e) = &v.error {
            out.push(Diagnostic {
                code: "SY001",
                severity: Severity::Error,
                field: None,
                message: format!("variant '{}' errored under the abstract state: {e}", v.name),
            });
        }
    }

    // SY002: high per-record branching (skip when SY001 already covers
    // the same variant — an exploded B is pinned at the analysis bound).
    for v in &a.variants {
        if !v.exploded && v.branching >= HIGH_BRANCHING {
            out.push(Diagnostic {
                code: "SY002",
                severity: Severity::Warn,
                field: None,
                message: format!(
                    "variant '{}' forks {} paths per record (threshold {})",
                    v.name, v.branching, HIGH_BRANCHING
                ),
            });
        }
    }

    for f in &a.fields {
        // SY003: predicate window grows and the value never binds.
        if f.pred_left_unknown {
            out.push(Diagnostic {
                code: "SY003",
                severity: Severity::Warn,
                field: Some(f.name.clone()),
                message: format!(
                    "decision window grows by {} per record and the predicate \
                     never binds; the window bound ({}) will be hit",
                    f.pred_window_growth,
                    f.max_decisions
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "unset".into()),
                ),
            });
        }
    }

    for f in &a.fields {
        // SY004: monotone accumulator with no rebinding path anywhere and
        // either a narrow width, a huge step, or multiplicative growth.
        if f.kind == "int" && !f.rebound {
            let narrow = f.width.is_some_and(|w| w < 64);
            let hazardous =
                f.multiplicative || (f.growth_step > 0 && (narrow || f.growth_step >= BIG_STEP));
            if hazardous {
                let why = if f.multiplicative {
                    "multiplicative growth".to_string()
                } else if narrow {
                    format!("step {} at width {}", f.growth_step, f.width.unwrap_or(64))
                } else {
                    format!("step {} (≥ 2^32)", f.growth_step)
                };
                out.push(Diagnostic {
                    code: "SY004",
                    severity: Severity::Warn,
                    field: Some(f.name.clone()),
                    message: format!(
                        "accumulator grows monotonically with no rebinding path ({why}); \
                         long streams overflow"
                    ),
                });
            }
        }
    }

    for f in &a.fields {
        // SY005: written but never read.
        if f.dead() {
            out.push(Diagnostic {
                code: "SY005",
                severity: Severity::Warn,
                field: Some(f.name.clone()),
                message: "written by update but never read by a guard, a vector element, \
                          or result; state (and summary) bytes are wasted"
                    .to_string(),
            });
        }
    }

    for f in &a.fields {
        // SY006: symbolic vector accumulation.
        if f.pushed_symbolic > 0 {
            out.push(Diagnostic {
                code: "SY006",
                severity: Severity::Info,
                field: Some(f.name.clone()),
                message: format!(
                    "appends up to {} symbolic element(s) per record; \
                     summary size grows with the match count",
                    f.pushed_symbolic
                ),
            });
        }
    }

    // SY007 / SY008: merge-shape observations, mutually exclusive.
    let b = a.max_branching();
    if !a.any_exploded() {
        if b > 1 && a.max_merged() == b {
            out.push(Diagnostic {
                code: "SY007",
                severity: Severity::Info,
                field: None,
                message: format!(
                    "all {b} sibling paths survive merging; live paths are bounded \
                     only by the restart fallback"
                ),
            });
        } else if b == 1 {
            out.push(Diagnostic {
                code: "SY008",
                severity: Severity::Info,
                field: None,
                message: "update never forks from the symbolic state; merge policy Never \
                          avoids pointless merge scans"
                    .to_string(),
            });
        }
    }

    out
}

/// One query's lint result: the analysis, the derived config, and the
/// diagnostics.
#[derive(Debug, Clone)]
pub struct QueryLint {
    /// Query id from the registry (`"G1"`…).
    pub id: String,
    /// The underlying static analysis.
    pub analysis: UdaAnalysis,
    /// Engine tuning derived via [`EngineConfig::from_analysis`].
    pub suggested: EngineConfig,
    /// Diagnostics in code order.
    pub diagnostics: Vec<Diagnostic>,
}

impl QueryLint {
    /// Lints one analysis under a query id.
    pub fn new(id: &str, analysis: UdaAnalysis) -> QueryLint {
        let suggested = EngineConfig::from_analysis(&analysis);
        let diagnostics = lint_analysis(&analysis);
        QueryLint {
            id: id.to_string(),
            analysis,
            suggested,
            diagnostics,
        }
    }

    /// Worst severity present, if any finding exists.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).min()
    }
}

/// Lints every query in the registry (the 12 Table 1 rows), in registry
/// order.
pub fn lint_registry() -> Vec<QueryLint> {
    symple_queries::registry::all_queries()
        .iter()
        .map(|q| QueryLint::new(q.info().id, q.analyze()))
        .collect()
}

/// Lints a single registry query by id (including `F1` and the condensed
/// RedShift variants). `None` for unknown ids.
pub fn lint_query_by_id(id: &str) -> Option<QueryLint> {
    let q = symple_queries::registry::runner_by_id(id)?;
    Some(QueryLint::new(q.info().id, q.analyze()))
}

/// Severity tally over a report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintTotals {
    /// Count of error-severity findings.
    pub errors: usize,
    /// Count of warn-severity findings.
    pub warnings: usize,
    /// Count of info-severity findings.
    pub infos: usize,
}

/// Tallies severities across a set of query lints.
pub fn totals(lints: &[QueryLint]) -> LintTotals {
    let mut t = LintTotals::default();
    for l in lints {
        for d in &l.diagnostics {
            match d.severity {
                Severity::Error => t.errors += 1,
                Severity::Warn => t.warnings += 1,
                Severity::Info => t.infos += 1,
            }
        }
    }
    t
}

fn policy_str(p: MergePolicy) -> &'static str {
    match p {
        MergePolicy::Eager => "eager",
        MergePolicy::HighWater => "high-water",
        MergePolicy::Never => "never",
    }
}

/// Horizon of the path-growth matrix included in the JSON report.
const GROWTH_HORIZON: usize = 4;

fn growth_row(a: &UdaAnalysis, p: MergePolicy) -> Json {
    Json::Arr(
        a.path_growth(p, GROWTH_HORIZON)
            .into_iter()
            .map(Json::UInt)
            .collect(),
    )
}

/// Renders the machine-readable report (schema [`SCHEMA`]).
pub fn render_json(lints: &[QueryLint]) -> String {
    let queries: Vec<Json> = lints
        .iter()
        .map(|l| {
            let a = &l.analysis;
            let variants: Vec<Json> = a
                .variants
                .iter()
                .map(|v| {
                    obj(vec![
                        ("name", Json::Str(v.name.to_string())),
                        ("branching", Json::UInt(v.branching as u64)),
                        ("merged", Json::UInt(v.merged as u64)),
                        ("exploded", Json::Bool(v.exploded)),
                    ])
                })
                .collect();
            let fields: Vec<Json> = a
                .fields
                .iter()
                .map(|f| {
                    obj(vec![
                        ("name", Json::Str(f.name.clone())),
                        ("kind", Json::Str(f.kind.to_string())),
                        ("written", Json::Bool(f.written)),
                        ("live", Json::Bool(f.live())),
                    ])
                })
                .collect();
            let diags: Vec<Json> = l
                .diagnostics
                .iter()
                .map(|d| {
                    obj(vec![
                        ("code", Json::Str(d.code.to_string())),
                        ("severity", Json::Str(d.severity.as_str().to_string())),
                        (
                            "field",
                            d.field.clone().map(Json::Str).unwrap_or(Json::Null),
                        ),
                        ("message", Json::Str(d.message.clone())),
                    ])
                })
                .collect();
            obj(vec![
                ("id", Json::Str(l.id.clone())),
                ("branching", Json::UInt(a.max_branching() as u64)),
                ("merged", Json::UInt(a.max_merged() as u64)),
                ("variants", Json::Arr(variants)),
                ("fields", Json::Arr(fields)),
                (
                    "path_growth",
                    obj(vec![
                        ("eager", growth_row(a, MergePolicy::Eager)),
                        ("high_water", growth_row(a, MergePolicy::HighWater)),
                        ("never", growth_row(a, MergePolicy::Never)),
                    ]),
                ),
                (
                    "suggested_config",
                    obj(vec![
                        (
                            "merge_policy",
                            Json::Str(policy_str(l.suggested.merge_policy).to_string()),
                        ),
                        (
                            "max_total_paths",
                            Json::UInt(l.suggested.max_total_paths as u64),
                        ),
                        (
                            "max_paths_per_record",
                            Json::UInt(l.suggested.max_paths_per_record as u64),
                        ),
                    ]),
                ),
                ("diagnostics", Json::Arr(diags)),
            ])
        })
        .collect();
    let t = totals(lints);
    obj(vec![
        ("schema", Json::Str(SCHEMA.to_string())),
        ("queries", Json::Arr(queries)),
        (
            "totals",
            obj(vec![
                ("errors", Json::UInt(t.errors as u64)),
                ("warnings", Json::UInt(t.warnings as u64)),
                ("infos", Json::UInt(t.infos as u64)),
            ]),
        ),
    ])
    .render()
}

/// Renders the human-readable report.
pub fn render_human(lints: &[QueryLint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for l in lints {
        let a = &l.analysis;
        let _ = writeln!(
            out,
            "{}: B={} M={}  suggest {} (per-record {}, total {})",
            l.id,
            a.max_branching(),
            a.max_merged(),
            policy_str(l.suggested.merge_policy),
            l.suggested.max_paths_per_record,
            l.suggested.max_total_paths,
        );
        for d in &l.diagnostics {
            let scope = d
                .field
                .as_deref()
                .map(|f| format!(" [{f}]"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  {:5} {}{}: {}",
                d.severity.as_str(),
                d.code,
                scope,
                d.message
            );
        }
    }
    let t = totals(lints);
    let _ = writeln!(
        out,
        "summary: {} error(s), {} warning(s), {} info(s) across {} quer{}",
        t.errors,
        t.warnings,
        t.infos,
        lints.len(),
        if lints.len() == 1 { "y" } else { "ies" },
    );
    out
}

/// Renders the `--list-codes` table.
pub fn render_codes() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<6} {:<6} {:<30} meaning", "code", "sev", "title");
    for c in CODES {
        let _ = writeln!(
            out,
            "{:<6} {:<6} {:<30} {}",
            c.code,
            c.severity.as_str(),
            c.title,
            c.meaning
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::ctx::SymCtx;
    use symple_core::impl_sym_state;
    use symple_core::uda::Uda;
    use symple_core::{analyze_uda, SymBool, SymInt};

    struct OverflowUda;

    #[derive(Clone, Debug)]
    struct OneInt {
        sum: SymInt,
    }
    impl_sym_state!(OneInt { sum });

    impl Uda for OverflowUda {
        type State = OneInt;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> OneInt {
            OneInt {
                sum: SymInt::new(0),
            }
        }
        fn update(&self, s: &mut OneInt, ctx: &mut SymCtx, e: &i64) {
            s.sum.add(ctx, *e);
        }
        fn result(&self, s: &OneInt, _ctx: &mut SymCtx) -> i64 {
            s.sum.concrete_value().unwrap_or(0)
        }
    }

    #[test]
    fn big_step_accumulator_trips_sy004() {
        let a = analyze_uda(&OverflowUda, &[("small", 3), ("giant", i64::MAX / 8)]);
        let diags = lint_analysis(&a);
        assert!(diags.iter().any(|d| d.code == "SY004"), "{diags:?}");
        // Small steps alone stay clean.
        let a = analyze_uda(&OverflowUda, &[("small", 3)]);
        let diags = lint_analysis(&a);
        assert!(!diags.iter().any(|d| d.code == "SY004"), "{diags:?}");
        // Straight-line info fires either way.
        assert!(diags.iter().any(|d| d.code == "SY008"));
    }

    struct NarrowUda;

    impl Uda for NarrowUda {
        type State = OneInt;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> OneInt {
            OneInt {
                sum: SymInt::with_width(16, 0),
            }
        }
        fn update(&self, s: &mut OneInt, ctx: &mut SymCtx, e: &i64) {
            s.sum.add(ctx, *e);
        }
        fn result(&self, s: &OneInt, _ctx: &mut SymCtx) -> i64 {
            s.sum.concrete_value().unwrap_or(0)
        }
    }

    #[test]
    fn narrow_width_accumulator_errors_under_analysis() {
        // A width-16 accumulator overflows the moment it is bumped from
        // the full symbolic range, so the abstract run itself errors —
        // the analyzer reports SY001 rather than the softer SY004.
        let a = analyze_uda(&NarrowUda, &[("event", 1)]);
        let diags = lint_analysis(&a);
        let d = diags.iter().find(|d| d.code == "SY001").expect("SY001");
        assert!(d.message.contains("overflow"), "{}", d.message);
        assert_eq!(d.severity, Severity::Error);
    }

    struct ForkBombUda;

    #[derive(Clone, Debug)]
    struct Bools7 {
        b0: SymBool,
        b1: SymBool,
        b2: SymBool,
        b3: SymBool,
        b4: SymBool,
        b5: SymBool,
        b6: SymBool,
    }
    impl_sym_state!(Bools7 {
        b0,
        b1,
        b2,
        b3,
        b4,
        b5,
        b6
    });

    impl Uda for ForkBombUda {
        type State = Bools7;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> Bools7 {
            Bools7 {
                b0: SymBool::new(false),
                b1: SymBool::new(false),
                b2: SymBool::new(false),
                b3: SymBool::new(false),
                b4: SymBool::new(false),
                b5: SymBool::new(false),
                b6: SymBool::new(false),
            }
        }
        fn update(&self, s: &mut Bools7, ctx: &mut SymCtx, _e: &i64) {
            let _ = s.b0.get(ctx);
            let _ = s.b1.get(ctx);
            let _ = s.b2.get(ctx);
            let _ = s.b3.get(ctx);
            let _ = s.b4.get(ctx);
            let _ = s.b5.get(ctx);
            let _ = s.b6.get(ctx);
        }
        fn result(&self, _s: &Bools7, _ctx: &mut SymCtx) -> i64 {
            0
        }
    }

    #[test]
    fn explosion_is_an_error_and_gates_exit_code() {
        let a = analyze_uda(&ForkBombUda, &[("any", 0)]);
        let l = QueryLint::new("BOMB", a);
        assert_eq!(l.worst(), Some(Severity::Error));
        let d = &l.diagnostics[0];
        assert_eq!(d.code, "SY001");
        assert!(d.message.contains("'any'"));
        let t = totals(std::slice::from_ref(&l));
        assert_eq!(t.errors, 1);
    }

    #[test]
    fn registry_sweep_is_clean_of_errors() {
        let lints = lint_registry();
        assert_eq!(lints.len(), 12);
        let t = totals(&lints);
        assert_eq!(t.errors, 0, "{}", render_human(&lints));
        // Every paper query gets at least one structural observation.
        for l in &lints {
            assert!(
                !l.diagnostics.is_empty() || l.analysis.max_branching() > 1,
                "query {} produced no finding at all",
                l.id
            );
        }
    }

    #[test]
    fn json_report_is_deterministic_and_tagged() {
        let lints = lint_registry();
        let a = render_json(&lints);
        assert_eq!(a, render_json(&lint_registry()));
        assert!(a.contains("\"schema\": \"symple-lint/v1\""));
    }

    #[test]
    fn code_table_is_sorted_and_unique() {
        let codes: Vec<&str> = CODES.iter().map(|c| c.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted);
        assert!(render_codes().contains("SY005"));
    }
}
