//! Golden-file test for `symple-lint --json`: the exact report for the 12
//! paper queries is checked in under `tests/golden/lint.json`.
//!
//! The report is a compatibility surface (CI parses it, and SY codes are
//! stable identifiers), so analyzer or renderer changes must be loud and
//! deliberate. If a change is intentional, bump [`symple_analyze::SCHEMA`]
//! when the shape changes, regenerate with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p symple-analyze --test golden_lint
//! ```
//!
//! and commit the updated golden file alongside the change (the same flow
//! as `symple-bench`'s `golden_bench_schema` test).

use symple_analyze::{lint_registry, render_json, totals, Severity, SCHEMA};

const GOLDEN: &str = include_str!("golden/lint.json");

fn golden_path() -> String {
    format!("{}/tests/golden/lint.json", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn golden_lint_report() {
    let lints = lint_registry();
    let rendered = render_json(&lints);

    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(golden_path(), &rendered).unwrap();
        return;
    }

    assert_eq!(
        rendered, GOLDEN,
        "symple-lint --json output changed — if intentional, regenerate \
         with REGEN_GOLDEN=1 and commit the new golden file (bump SCHEMA \
         if the shape changed)"
    );

    // The acceptance gate: zero error-severity findings on the paper's
    // 12 queries, and the golden file itself says so.
    assert_eq!(totals(&lints).errors, 0);
    assert!(
        lints.iter().all(|l| l.worst() != Some(Severity::Error)),
        "an error-severity finding on a paper query"
    );
    assert!(GOLDEN.contains("\"errors\": 0"));
}

#[test]
fn golden_file_declares_current_schema_version() {
    // Belt-and-braces: the checked-in artifact names the schema version,
    // so a schema bump without regeneration fails even if the rendering
    // is otherwise untouched.
    assert!(
        GOLDEN.contains(&format!("\"schema\": \"{SCHEMA}\"")),
        "golden file does not declare schema {SCHEMA}"
    );
}

#[test]
fn golden_covers_all_twelve_queries() {
    for id in [
        "G1", "G2", "G3", "G4", "B1", "B2", "B3", "T1", "R1", "R2", "R3", "R4",
    ] {
        assert!(
            GOLDEN.contains(&format!("\"id\": \"{id}\"")),
            "golden file is missing query {id}"
        );
    }
}
