//! Property test for the analyzer's soundness claim: for any stream built
//! from a UDA's analyzed event variants, the executor's observed live-path
//! peak never exceeds [`UdaAnalysis::predicted_max_live`].
//!
//! The claim rests on the analysis starting from the abstract "top" state,
//! so every runtime per-record path tree is a pruned subtree of the
//! analysis tree (see the soundness note in `symple_core::analysis`).
//! Here random streams and engine configs hammer that argument over the
//! paper UDAs with the richest path structure.

use proptest::prelude::*;

use symple_core::uda::Uda;
use symple_core::{analyze_uda, EngineConfig, MergePolicy, SymbolicExecutor, UdaAnalysis};
use symple_queries::bing_q::{b3_variants, B3Uda};
use symple_queries::funnel::{f1_variants, FunnelUda};
use symple_queries::github_q::{g4_variants, G4Uda};
use symple_queries::redshift_q::{r3_uda, r3_variants, r4_variants, R4Uda};
use symple_queries::twitter_q::{t1_variants, T1Uda};

/// The config grid the proptest draws from: bounds small enough to make
/// restarts and merges frequent, large enough that runs mostly succeed.
fn config(idx: usize) -> EngineConfig {
    let policies = [
        MergePolicy::Eager,
        MergePolicy::HighWater,
        MergePolicy::Never,
    ];
    let totals = [2usize, 4, 8, 64];
    let per_record = [64usize, 256, 1024];
    EngineConfig {
        merge_policy: policies[idx % 3],
        max_total_paths: totals[(idx / 3) % 4],
        max_paths_per_record: per_record[(idx / 12) % 3],
        ..EngineConfig::default()
    }
}

/// Feeds `picks` (variant indices) to a fresh executor and checks the
/// observed peak against the analysis bound. A run the engine refuses is
/// skipped — the bound speaks about completed executions.
fn check_bound<U>(
    uda: &U,
    variants: &[(&'static str, U::Event)],
    analysis: &UdaAnalysis,
    picks: &[usize],
    cfg: EngineConfig,
) -> Result<(), TestCaseError>
where
    U: Uda,
    U::Output: std::fmt::Debug,
{
    let bound = analysis.predicted_max_live(&cfg);
    let mut exec = SymbolicExecutor::new(uda, cfg);
    for &p in picks {
        if exec.feed(&variants[p % variants.len()].1).is_err() {
            return Ok(());
        }
    }
    let (_, stats) = exec.finish();
    prop_assert!(
        stats.max_live_paths as u64 <= bound,
        "observed peak {} exceeds predicted bound {} under {:?}",
        stats.max_live_paths,
        bound,
        cfg
    );
    Ok(())
}

macro_rules! bound_prop {
    ($test:ident, $uda:expr, $variants:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn $test(picks in prop::collection::vec(0usize..16, 0..60), cfg_idx in 0usize..36) {
                let uda = $uda;
                let variants = $variants;
                let analysis = analyze_uda(&uda, &variants);
                check_bound(&uda, &variants, &analysis, &picks, config(cfg_idx))?;
            }
        }
    };
}

bound_prop!(funnel_peak_within_bound, FunnelUda, f1_variants());
bound_prop!(t1_peak_within_bound, T1Uda, t1_variants());
bound_prop!(g4_peak_within_bound, G4Uda, g4_variants());
bound_prop!(b3_peak_within_bound, B3Uda, b3_variants());
bound_prop!(r3_peak_within_bound, r3_uda(), r3_variants());
bound_prop!(r4_peak_within_bound, R4Uda, r4_variants());
