//! Summary application and composition throughput (§3.6): the reducer-side
//! cost SYMPLE pays instead of running the UDA over raw records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use symple_core::compose::{apply_chain, apply_summary, collapse_chain, compose_summaries};
use symple_core::engine::{EngineConfig, SymbolicExecutor};
use symple_core::summary::SummaryChain;
use symple_core::uda::Uda;
use symple_queries::bing_q::GapUda;

fn chunk_chain(uda: &GapUda, base: i64, n: usize) -> SummaryChain<<GapUda as Uda>::State> {
    let events: Vec<i64> = (0..n as i64)
        .map(|i| base + i * 40 + (i % 13) * 25)
        .collect();
    let mut exec = SymbolicExecutor::new(uda, EngineConfig::default());
    exec.feed_all(events.iter()).unwrap();
    exec.finish().0
}

fn bench_apply(c: &mut Criterion) {
    let uda = GapUda::new(120);
    let chains: Vec<_> = (0..64)
        .map(|m| chunk_chain(&uda, m * 100_000, 500))
        .collect();
    let init = uda.init();
    let mut g = c.benchmark_group("reducer_apply");
    g.throughput(Throughput::Elements(chains.len() as u64));
    g.bench_function("apply_64_mapper_chains", |b| {
        b.iter(|| {
            let mut state = init.clone();
            for chain in black_box(&chains) {
                state = apply_chain(chain, &state).unwrap();
            }
            state
        })
    });
    g.finish();
}

fn bench_compose(c: &mut Criterion) {
    let uda = GapUda::new(120);
    let s1 = chunk_chain(&uda, 0, 500).summaries()[0].clone();
    let s2 = chunk_chain(&uda, 100_000, 500).summaries()[0].clone();
    let mut g = c.benchmark_group("symbolic_compose");
    g.bench_function("compose_pair", |b| {
        b.iter(|| compose_summaries(black_box(&s2), black_box(&s1)).unwrap())
    });
    let init = uda.init();
    let composed = compose_summaries(&s2, &s1).unwrap();
    g.bench_function("apply_composed", |b| {
        b.iter(|| apply_summary(black_box(&composed), &init).unwrap())
    });
    g.finish();
}

fn bench_tree_reduction(c: &mut Criterion) {
    // Associative tree reduction vs sequential application over a chain of
    // mapper summaries.
    let uda = GapUda::new(120);
    let mut g = c.benchmark_group("chain_collapse");
    for n in [4usize, 16] {
        let chain = SummaryChain::new(
            (0..n)
                .flat_map(|m| {
                    chunk_chain(&uda, m as i64 * 100_000, 200)
                        .summaries()
                        .to_vec()
                })
                .collect(),
        );
        g.bench_with_input(BenchmarkId::from_parameter(n), &chain, |b, ch| {
            b.iter(|| collapse_chain(black_box(ch)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_apply, bench_compose, bench_tree_reduction);
criterion_main!(benches);
