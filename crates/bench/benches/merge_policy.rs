//! Ablation of §5.2's merge heuristic: eager merging vs the paper's
//! high-water-mark policy vs never merging (relying purely on the restart
//! fallback). DESIGN.md calls this design choice out; the bench quantifies
//! both the exploration cost and the resulting summary size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use symple_core::engine::{EngineConfig, MergePolicy, SymbolicExecutor};
use symple_datagen::{generate_weblog, WeblogConfig};
use symple_queries::funnel::FunnelUda;

fn events(n: usize) -> Vec<(u8, u64)> {
    generate_weblog(&WeblogConfig {
        num_records: n,
        num_users: 1,
        ..Default::default()
    })
    .into_iter()
    .map(|e| (e.kind as u8, e.item_id))
    .collect()
}

fn bench_policies(c: &mut Criterion) {
    let uda = FunnelUda;
    let ev = events(5_000);
    let mut g = c.benchmark_group("merge_policy");
    g.throughput(Throughput::Elements(ev.len() as u64));
    for policy in [
        MergePolicy::Eager,
        MergePolicy::HighWater,
        MergePolicy::Never,
    ] {
        let cfg = EngineConfig {
            merge_policy: policy,
            ..EngineConfig::default()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut exec = SymbolicExecutor::new(&uda, *cfg);
                    exec.feed_all(black_box(&ev)).unwrap();
                    exec.finish().0
                })
            },
        );
    }
    g.finish();

    // Report summary shapes once (printed alongside the bench output).
    for policy in [
        MergePolicy::Eager,
        MergePolicy::HighWater,
        MergePolicy::Never,
    ] {
        let cfg = EngineConfig {
            merge_policy: policy,
            ..EngineConfig::default()
        };
        let mut exec = SymbolicExecutor::new(&uda, cfg);
        exec.feed_all(ev.iter()).unwrap();
        let (chain, stats) = exec.finish();
        println!(
            "merge_policy {:?}: summaries={} paths={} wire={}B runs={} merges={} restarts={}",
            policy,
            chain.len(),
            chain.total_paths(),
            chain.wire_len(),
            stats.runs,
            stats.merges,
            stats.restarts
        );
    }
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
