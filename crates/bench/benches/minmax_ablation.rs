//! Ablation: the paper's `Max` UDA expressed over `SymInt` (a fork per
//! chunk, two-path summaries) versus the user-defined `SymMinMax` type
//! (§4.5's extensibility interface: zero forks, one-path summaries).
//! Quantifies how much a purpose-built canonical form buys.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use symple_core::engine::{EngineConfig, SymbolicExecutor};
use symple_core::impl_sym_state;
use symple_core::types::sym_int::SymInt;
use symple_core::types::sym_minmax::{Extremum, SymMinMax};
use symple_core::uda::Uda;
use symple_core::SymCtx;

struct IntMax;
#[derive(Clone, Debug)]
struct IntMaxState {
    max: SymInt,
}
impl_sym_state!(IntMaxState { max });
impl Uda for IntMax {
    type State = IntMaxState;
    type Event = i64;
    type Output = i64;
    fn init(&self) -> IntMaxState {
        IntMaxState {
            max: SymInt::new(i64::MIN),
        }
    }
    fn update(&self, s: &mut IntMaxState, ctx: &mut SymCtx, e: &i64) {
        if s.max.lt(ctx, *e) {
            s.max.assign(*e);
        }
    }
    fn result(&self, s: &IntMaxState, _ctx: &mut SymCtx) -> i64 {
        s.max.concrete_value().unwrap()
    }
}

struct MinMaxMax;
#[derive(Clone, Debug)]
struct MmState {
    max: SymMinMax,
}
impl_sym_state!(MmState { max });
impl Uda for MinMaxMax {
    type State = MmState;
    type Event = i64;
    type Output = i64;
    fn init(&self) -> MmState {
        MmState {
            max: SymMinMax::new(Extremum::Max),
        }
    }
    fn update(&self, s: &mut MmState, _ctx: &mut SymCtx, e: &i64) {
        s.max.update(*e);
    }
    fn result(&self, s: &MmState, _ctx: &mut SymCtx) -> i64 {
        s.max.concrete_value().unwrap()
    }
}

fn inputs(n: usize) -> Vec<i64> {
    (0..n as i64)
        .map(|i| (i * 2_654_435_761) % 1_000_003)
        .collect()
}

fn bench_max_representations(c: &mut Criterion) {
    let events = inputs(10_000);
    let mut g = c.benchmark_group("max_uda_representation");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("sym_int_branching", |b| {
        b.iter(|| {
            let uda = IntMax;
            let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
            exec.feed_all(black_box(&events)).unwrap();
            exec.finish().0
        })
    });
    g.bench_function("sym_minmax_custom_type", |b| {
        b.iter(|| {
            let uda = MinMaxMax;
            let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
            exec.feed_all(black_box(&events)).unwrap();
            exec.finish().0
        })
    });
    g.finish();

    // One-shot shape report alongside the timing numbers.
    for (name, paths, forks, bytes) in [shape(&IntMax, &events), shape(&MinMaxMax, &events)] {
        println!("{name}: paths={paths} forks={forks} summary={bytes}B");
    }
}

fn shape<U: Uda<Event = i64>>(uda: &U, events: &[i64]) -> (&'static str, usize, u64, usize) {
    let mut exec = SymbolicExecutor::new(uda, EngineConfig::default());
    exec.feed_all(events).unwrap();
    let (chain, stats) = exec.finish();
    let name = std::any::type_name::<U>()
        .rsplit("::")
        .next()
        .unwrap_or("?");
    let name: &'static str = if name.contains("IntMax") {
        "SymInt Max"
    } else {
        "SymMinMax Max"
    };
    (name, chain.total_paths(), stats.forks, chain.wire_len())
}

criterion_group!(benches, bench_max_representations);
criterion_main!(benches);
