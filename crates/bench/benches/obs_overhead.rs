//! Overhead of the disabled observability layer on a map-phase-like loop.
//!
//! The acceptance bar for `symple-obs` is that with tracing disabled the
//! map phase pays ≤5% overhead. The real wiring opens one span per map
//! *task* and bumps counters once per chunk (`symple_job.rs`,
//! `executor.rs`), so `disabled_per_task` models the shipped density:
//! chunks of 2 000 records, one span + seven counter calls per chunk.
//! `disabled_per_record` is the worst-case stress (a span and counter on
//! every record — ~300× denser than shipped), and `enabled_per_task`
//! shows what turning the layer on costs. Compare medians against
//! `uninstrumented`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

const RECORDS: u64 = 100_000;
const CHUNK: u64 = 2_000;

/// Stand-in for per-record map work: parse-ish arithmetic heavy enough to
/// dominate an atomic load, light enough that overhead would show.
fn record_work(i: u64) -> u64 {
    let mut h = i ^ 0x9e37_79b9_7f4a_7c15;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// One bare map task: the record loop with no instrumentation. Kept as a
/// separate `#[inline(never)]` function so the baseline has the same call
/// structure as [`chunked_task`] and the comparison isolates the obs
/// calls rather than codegen differences.
#[inline(never)]
fn bare_task(start: u64) -> u64 {
    let mut acc = 0u64;
    for i in start..start + CHUNK {
        acc = acc.wrapping_add(record_work(black_box(i)));
    }
    acc
}

/// One map task at the shipped instrumentation density: a task span, the
/// record loop, then the chunk counters `executor::finish` bumps.
#[inline(never)]
fn chunked_task(start: u64) -> u64 {
    let _span = symple_obs::span("bench.map_task");
    let mut acc = 0u64;
    for i in start..start + CHUNK {
        acc = acc.wrapping_add(record_work(black_box(i)));
    }
    if symple_obs::enabled() {
        symple_obs::counter_add("engine.chunks", 1);
        symple_obs::counter_add("engine.records", CHUNK);
    }
    acc
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.throughput(Throughput::Elements(RECORDS));

    symple_obs::set_enabled(false);
    g.bench_function("uninstrumented", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut start = 0;
            while start < RECORDS {
                acc = acc.wrapping_add(bare_task(start));
                start += CHUNK;
            }
            acc
        })
    });

    g.bench_function("disabled_per_task", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut start = 0;
            while start < RECORDS {
                acc = acc.wrapping_add(chunked_task(start));
                start += CHUNK;
            }
            acc
        })
    });

    g.bench_function("disabled_per_record", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..RECORDS {
                let _span = symple_obs::span("bench.record");
                symple_obs::counter_add("bench.records", 1);
                acc = acc.wrapping_add(record_work(black_box(i)));
            }
            acc
        })
    });

    symple_obs::set_enabled(true);
    g.bench_function("enabled_per_task", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut start = 0;
            while start < RECORDS {
                acc = acc.wrapping_add(chunked_task(start));
                start += CHUNK;
            }
            acc
        })
    });
    symple_obs::set_enabled(false);

    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
