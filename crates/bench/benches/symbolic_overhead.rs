//! §6.2's central microbenchmark: the CPU overhead of symbolic execution
//! over concrete execution, per input record.
//!
//! The paper reports 4%–35% (average 22%) end-to-end for SYMPLE with one
//! mapper; this bench isolates the engine itself on three representative
//! UDAs (the Figure 1 funnel, the gap detector, and plain counting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use symple_core::engine::{EngineConfig, SymbolicExecutor};
use symple_core::uda::run_concrete_state;
use symple_datagen::{generate_weblog, WeblogConfig};
use symple_queries::bing_q::GapUda;
use symple_queries::funnel::FunnelUda;
use symple_queries::redshift_q::R1Uda;

fn funnel_events(n: usize) -> Vec<(u8, u64)> {
    generate_weblog(&WeblogConfig {
        num_records: n,
        num_users: 1,
        ..WeblogConfig::default()
    })
    .into_iter()
    .map(|e| (e.kind as u8, e.item_id))
    .collect()
}

fn gap_events(n: usize) -> Vec<i64> {
    (0..n as i64).map(|i| i * 40 + (i % 13) * 25).collect()
}

fn bench_funnel(c: &mut Criterion) {
    let events = funnel_events(10_000);
    let uda = FunnelUda;
    let mut g = c.benchmark_group("funnel_uda");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("concrete", |b| {
        b.iter(|| run_concrete_state(&uda, black_box(&events)).unwrap())
    });
    g.bench_function("symbolic", |b| {
        b.iter(|| {
            let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
            exec.feed_all(black_box(&events)).unwrap();
            exec.finish().0
        })
    });
    g.finish();
}

fn bench_gap(c: &mut Criterion) {
    let events = gap_events(10_000);
    let uda = GapUda::new(120);
    let mut g = c.benchmark_group("gap_uda");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("concrete", |b| {
        b.iter(|| run_concrete_state(&uda, black_box(&events)).unwrap())
    });
    g.bench_function("symbolic", |b| {
        b.iter(|| {
            let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
            exec.feed_all(black_box(&events)).unwrap();
            exec.finish().0
        })
    });
    g.finish();
}

fn bench_count(c: &mut Criterion) {
    let events = vec![(); 10_000];
    let uda = R1Uda;
    let mut g = c.benchmark_group("count_uda");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("concrete", |b| {
        b.iter(|| run_concrete_state(&uda, black_box(&events)).unwrap())
    });
    g.bench_function("symbolic", |b| {
        b.iter(|| {
            let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
            exec.feed_all(black_box(&events)).unwrap();
            exec.finish().0
        })
    });
    g.finish();
}

fn bench_chunk_sizes(c: &mut Criterion) {
    // Per-record cost as chunk size grows: symbolic summaries amortize.
    let uda = GapUda::new(120);
    let mut g = c.benchmark_group("gap_uda_chunk_size");
    for n in [100usize, 1_000, 10_000] {
        let events = gap_events(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &events, |b, ev| {
            b.iter(|| {
                let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
                exec.feed_all(black_box(ev)).unwrap();
                exec.finish().0
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_funnel,
    bench_gap,
    bench_count,
    bench_chunk_sizes
);
criterion_main!(benches);
