//! Wire-format throughput (§2.3): summaries must serialize compactly and
//! fast, since every shuffle byte crosses the network.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use symple_core::engine::{EngineConfig, SymbolicExecutor};
use symple_core::summary::SummaryChain;
use symple_core::uda::Uda;
use symple_core::wire::Wire;
use symple_datagen::{generate_weblog, WeblogConfig};
use symple_queries::funnel::FunnelUda;

fn sample_chain() -> (FunnelUda, SummaryChain<<FunnelUda as Uda>::State>) {
    let uda = FunnelUda;
    let events: Vec<(u8, u64)> = generate_weblog(&WeblogConfig {
        num_records: 2_000,
        num_users: 1,
        ..Default::default()
    })
    .into_iter()
    .map(|e| (e.kind as u8, e.item_id))
    .collect();
    let chain = {
        let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
        exec.feed_all(events.iter()).unwrap();
        exec.finish().0
    };
    (uda, chain)
}

fn bench_summary_codec(c: &mut Criterion) {
    let (uda, chain) = sample_chain();
    let mut buf = Vec::new();
    chain.encode(&mut buf);
    let template = uda.init();
    let mut g = c.benchmark_group("summary_codec");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            black_box(&chain).encode(&mut out);
            out
        })
    });
    g.bench_function("decode", |b| {
        b.iter(|| {
            let mut rd = &buf[..];
            SummaryChain::<<FunnelUda as Uda>::State>::decode(&template, &mut rd).unwrap()
        })
    });
    g.finish();
}

fn bench_event_codec(c: &mut Criterion) {
    // The baseline's shuffle payload: per-key event vectors.
    let events: Vec<(u8, u64)> = (0..10_000).map(|i| ((i % 4) as u8, i as u64)).collect();
    let buf = events.to_wire();
    let mut g = c.benchmark_group("event_codec");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("encode", |b| b.iter(|| black_box(&events).to_wire()));
    g.bench_function("decode", |b| {
        b.iter(|| {
            let mut rd = &buf[..];
            Vec::<(u8, u64)>::decode(&mut rd).unwrap()
        })
    });
    g.finish();
}

fn bench_varint(c: &mut Criterion) {
    let values: Vec<i64> = (0..10_000).map(|i| i * 37 - 5_000).collect();
    let mut g = c.benchmark_group("varint");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("zigzag_roundtrip", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(values.len() * 2);
            for v in black_box(&values) {
                symple_core::wire::put_ivarint(&mut buf, *v);
            }
            let mut rd = &buf[..];
            let mut sum = 0i64;
            while !rd.is_empty() {
                sum = sum.wrapping_add(symple_core::wire::get_ivarint(&mut rd).unwrap());
            }
            sum
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_summary_codec,
    bench_event_codec,
    bench_varint
);
criterion_main!(benches);
