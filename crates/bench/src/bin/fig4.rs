//! Regenerates **Figure 4**: multi-core throughput (MB/s) of Sequential,
//! SYMPLE and Local MapReduce with 1, 2 and 4 mappers, on queries G1–G4
//! and R1–R4 over in-memory data (§6.2).
//!
//! `cargo run -p symple-bench --bin fig4 --release [--records N]`

use symple_bench::{bar, measurement_scale, records_from_args};
use symple_mapreduce::JobConfig;
use symple_queries::{runner_by_id, Backend, DataScale};

const QUERIES: [&str; 8] = ["G1", "G2", "G3", "G4", "R1", "R2", "R3", "R4"];

fn throughput(id: &str, scale: &DataScale, backend: Backend, workers: usize) -> f64 {
    let runner = runner_by_id(id).expect("known query");
    let job = JobConfig {
        reduce_workers: workers,
        // §6.2's local SYMPLE computes symbolic summaries in *every*
        // mapper — that is the overhead being measured.
        first_segment_concrete: false,
        ..JobConfig::default()
            .with_map_workers(workers)
            .with_reducers(workers.max(1))
    };
    let mut s = *scale;
    s.segments = workers.max(1);
    let report = runner.run(&s, backend, &job).expect("query run");
    // Parallel wall is modeled from measured per-task CPU: the measuring
    // host may have fewer cores than the configuration under study (see
    // `JobMetrics::modeled_wall` and DESIGN.md's substitution notes).
    report.metrics.modeled_throughput_mb_s(workers, workers)
}

fn main() {
    let records = records_from_args();
    println!("Figure 4: throughput on a multi-core machine (MB/s)");
    println!("measurement: {records} records/query, raw record sizes as §6.1");
    println!(
        "multi-worker wall times are modeled from measured per-task CPU \
         (see DESIGN.md: the measuring host may have fewer cores)"
    );
    println!("{}", "=".repeat(98));
    println!(
        "{:<5} {:>10} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "query", "Sequential", "SYM 1m", "SYM 2m", "SYM 4m", "MR 1m", "MR 2m", "MR 4m"
    );
    println!("{}", "-".repeat(98));

    let mut rows = Vec::new();
    for id in QUERIES {
        let scale = measurement_scale(id, records);
        let seq = throughput(id, &scale, Backend::Sequential, 1);
        let sym: Vec<f64> = [1, 2, 4]
            .iter()
            .map(|w| throughput(id, &scale, Backend::Symple, *w))
            .collect();
        // The paper's Local MapReduce pipes every record through Unix
        // sort; `SortedBaseline` reproduces that per-record shuffle.
        let mr: Vec<f64> = [1, 2, 4]
            .iter()
            .map(|w| throughput(id, &scale, Backend::SortedBaseline, *w))
            .collect();
        println!(
            "{:<5} {:>10.0} | {:>9.0} {:>9.0} {:>9.0} | {:>9.0} {:>9.0} {:>9.0}",
            id, seq, sym[0], sym[1], sym[2], mr[0], mr[1], mr[2]
        );
        rows.push((id, seq, sym, mr));
    }
    println!("{}", "-".repeat(98));

    // §6.2's headline claims, recomputed.
    let overheads: Vec<f64> = rows
        .iter()
        .map(|(_, seq, sym, _)| (seq - sym[0]) / seq * 100.0)
        .collect();
    let avg_overhead = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!("\nSYMPLE(1 mapper) overhead vs Sequential (paper: 4%–35%, avg 22%):");
    for ((id, ..), ov) in rows.iter().zip(&overheads) {
        println!("  {id:<4} {ov:>6.1}%  {}", bar(ov.max(0.0), 60.0, 30));
    }
    println!("  avg  {avg_overhead:>6.1}%");

    let scaling: Vec<f64> = rows.iter().map(|(_, _, sym, _)| sym[2] / sym[0]).collect();
    let avg_scaling = scaling.iter().sum::<f64>() / scaling.len() as f64;
    println!("\nSYMPLE scaling 1→4 mappers (paper: \"scales with the number of mappers\"):");
    println!("  avg speedup {avg_scaling:.2}x");

    let mr_gap: Vec<f64> = rows.iter().map(|(_, _, sym, mr)| sym[2] / mr[2]).collect();
    let avg_gap = mr_gap.iter().sum::<f64>() / mr_gap.len() as f64;
    println!("\nLocal SYMPLE (4m) vs Local MapReduce (4m) (paper: 3.6x on average):");
    println!("  avg ratio {avg_gap:.2}x");

    println!("\ndisk-speed check (paper: sequential ≥ 6x a 100 MB/s disk):");
    let min_seq = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    println!("  slowest sequential query: {min_seq:.0} MB/s");
}
