//! Regenerates **Figure 5**: Amazon EMR end-to-end job latency (minutes)
//! for MapReduce vs SYMPLE on G1–G4, R1–R4 and the condensed R1c–R4c
//! (§6.3).
//!
//! Each query runs for real in-process at measurement scale; the measured
//! rates are extrapolated to the paper's full datasets and EMR fleet (see
//! `symple-cluster`).
//!
//! `cargo run -p symple-bench --bin fig5 --release [--records N]`

use symple_bench::{bar, measure, records_from_args, target_for};
use symple_cluster::emr::emr_latency;
use symple_cluster::model::{ScaledJob, ShuffleLaw};
use symple_mapreduce::JobConfig;
use symple_queries::Backend;

const QUERIES: [&str; 12] = [
    "G1", "G2", "G3", "G4", "R1", "R2", "R3", "R4", "R1c", "R2c", "R3c", "R4c",
];

fn main() {
    let records = records_from_args();
    let job = JobConfig::default();
    println!("Figure 5: Amazon EMR end-to-end job latency (minutes)");
    println!("measurement: {records} records/query, extrapolated to the paper's datasets");
    println!("{}", "=".repeat(88));
    println!(
        "{:<5} {:>12} {:>10} {:>9}   ",
        "query", "MapReduce", "SYMPLE", "speedup"
    );
    println!("{}", "-".repeat(88));

    let mut ratios = Vec::new();
    let mut base_sum = 0.0;
    let mut sym_sum = 0.0;
    for id in QUERIES {
        let target = target_for(id);
        let (_, base_prof) = measure(id, records, Backend::SortedBaseline, &job).expect("baseline");
        let (_, sym_prof) = measure(id, records, Backend::Symple, &job).expect("symple");
        let base_job = ScaledJob::extrapolate(&base_prof, target.workload, ShuffleLaw::PerRecord);
        let sym_job = ScaledJob::extrapolate(&sym_prof, target.workload, ShuffleLaw::PerEmission);
        let base_lat = emr_latency(&target.emr, &base_job).total_min();
        let sym_lat = emr_latency(&target.emr, &sym_job).total_min();
        let speedup = base_lat / sym_lat;
        ratios.push(speedup);
        base_sum += base_lat;
        sym_sum += sym_lat;
        println!(
            "{:<5} {:>12.1} {:>10.1} {:>8.2}x   {}",
            id,
            base_lat,
            sym_lat,
            speedup,
            bar(base_lat, 40.0, 25)
        );
    }
    println!("{}", "-".repeat(88));
    let n = QUERIES.len() as f64;
    println!(
        "{:<5} {:>12.1} {:>10.1} {:>8.2}x",
        "AVG",
        base_sum / n,
        sym_sum / n,
        ratios.iter().sum::<f64>() / n
    );

    // Paper shape checks.
    let complete: Vec<f64> = ratios[0..8].to_vec();
    let condensed: Vec<f64> = ratios[8..12].to_vec();
    println!(
        "\npaper shape: complete-data speedups modest (baseline 15%–45% slower), \
         condensed 2.5x–5.9x"
    );
    println!(
        "  measured: complete avg {:.2}x, condensed avg {:.2}x",
        complete.iter().sum::<f64>() / complete.len() as f64,
        condensed.iter().sum::<f64>() / condensed.len() as f64
    );
    println!(
        "  (on complete data both systems are bounded by reading S3 — the crossover \
         the paper reports)"
    );
}
