//! Regenerates **Figure 6**: Amazon EMR shuffle data size (MB, log Y
//! axis) with the paper's per-query reduction ratios (§6.3).
//!
//! `cargo run -p symple-bench --bin fig6 --release [--records N]`

use symple_bench::{log_bar, measure, ratio_label, records_from_args, target_for};
use symple_cluster::model::{ScaledJob, ShuffleLaw};
use symple_mapreduce::JobConfig;
use symple_queries::Backend;

const QUERIES: [&str; 12] = [
    "G1", "G2", "G3", "G4", "R1", "R2", "R3", "R4", "R1c", "R2c", "R3c", "R4c",
];

fn main() {
    let records = records_from_args();
    let job = JobConfig::default();
    println!("Figure 6: Amazon EMR shuffle data size (MB; log scale)");
    println!("measurement: {records} records/query, extrapolated to the paper's datasets");
    println!("{}", "=".repeat(96));
    println!(
        "{:<5} {:>14} {:>12} {:>8}   log-scale bars (MR then SYMPLE)",
        "query", "MapReduce MB", "SYMPLE MB", "ratio"
    );
    println!("{}", "-".repeat(96));

    let mut g_ratios = Vec::new();
    let mut r_ratios = Vec::new();
    for id in QUERIES {
        let target = target_for(id);
        let (_, base_prof) = measure(id, records, Backend::SortedBaseline, &job).expect("baseline");
        let (_, sym_prof) = measure(id, records, Backend::Symple, &job).expect("symple");
        let base =
            ScaledJob::extrapolate(&base_prof, target.workload, ShuffleLaw::PerRecord).shuffle_mb();
        let sym = ScaledJob::extrapolate(&sym_prof, target.workload, ShuffleLaw::PerEmission)
            .shuffle_mb();
        let ratio = base / sym.max(1e-9);
        if id.starts_with('G') {
            g_ratios.push(ratio);
        } else {
            r_ratios.push(ratio);
        }
        println!(
            "{:<5} {:>14.1} {:>12.3} {:>8}   {}",
            id,
            base,
            sym,
            ratio_label(base, sym),
            log_bar(base, 0.01, 100_000.0, 28)
        );
        println!(
            "{:<5} {:>14} {:>12} {:>8}   {}",
            "",
            "",
            "",
            "",
            log_bar(sym, 0.01, 100_000.0, 28)
        );
    }
    println!("{}", "-".repeat(96));
    println!(
        "\npaper shape: github savings 4–8x (lots of groupby parallelism), RedShift \
         ≈2 orders of magnitude (10K groups)"
    );
    println!(
        "  measured: github avg {:.1}x, RedShift avg {:.0}x",
        g_ratios.iter().sum::<f64>() / g_ratios.len().max(1) as f64,
        r_ratios.iter().sum::<f64>() / r_ratios.len().max(1) as f64
    );
}
