//! Regenerates **Figure 7**: CPU usage (×1000 seconds) of the 8 queries
//! run on the 380-node shared Hadoop cluster (§6.4), plus the B1 latency
//! anecdote (4.5 h baseline vs 5.5 min SYMPLE).
//!
//! `cargo run -p symple-bench --bin fig7 --release [--records N]`

use symple_bench::{bar, measure, records_from_args, target_for};
use symple_cluster::big::{big_cluster_run, BigClusterConfig};
use symple_cluster::model::{ScaledJob, ShuffleLaw};
use symple_mapreduce::JobConfig;
use symple_queries::Backend;

const QUERIES: [&str; 8] = ["G1", "G2", "G3", "G4", "B1", "B2", "B3", "T1"];

fn main() {
    let records = records_from_args();
    let job = JobConfig::default();
    let cluster = BigClusterConfig::default();
    println!("Figure 7: CPU usage for 8 queries on a 380-node Hadoop cluster (x1000 secs)");
    println!("measurement: {records} records/query, extrapolated to the paper's datasets");
    println!("{}", "=".repeat(92));
    println!(
        "{:<5} {:>13} {:>11} {:>8}   ",
        "query", "MapReduce", "SYMPLE", "ratio"
    );
    println!("{}", "-".repeat(92));

    let mut b1_lat = (0.0, 0.0);
    for id in QUERIES {
        let target = target_for(id);
        let (_, base_prof) = measure(id, records, Backend::SortedBaseline, &job).expect("baseline");
        let (_, sym_prof) = measure(id, records, Backend::Symple, &job).expect("symple");
        let base_job = ScaledJob::extrapolate(&base_prof, target.workload, ShuffleLaw::PerRecord);
        let sym_job = ScaledJob::extrapolate(&sym_prof, target.workload, ShuffleLaw::PerEmission);
        let base = big_cluster_run(&cluster, &base_job);
        let sym = big_cluster_run(&cluster, &sym_job);
        if id == "B1" {
            b1_lat = (base.latency_s, sym.latency_s);
        }
        println!(
            "{:<5} {:>13.1} {:>11.1} {:>7.2}x   {}",
            id,
            base.cpu_kilo_seconds(),
            sym.cpu_kilo_seconds(),
            base.cpu_s / sym.cpu_s.max(1e-9),
            bar(base.cpu_kilo_seconds(), 150.0, 25)
        );
    }
    println!("{}", "-".repeat(92));
    println!(
        "\nB1 latency anecdote (paper: baseline 4.5 hours, SYMPLE 5 min 30 s — one group, \
         one reducer):"
    );
    println!(
        "  measured: baseline {:.1} h, SYMPLE {:.1} min",
        b1_lat.0 / 3_600.0,
        b1_lat.1 / 60.0
    );
    println!(
        "\npaper shape: ≈2x CPU savings on github queries; large wins on B1/B2; \
         B3 ≈ no improvement (grouped per user — §6.5)"
    );
}
