//! Regenerates **Figure 8**: shuffled data (MB, log Y axis) for the 8
//! queries on the 380-node cluster (§6.4).
//!
//! `cargo run -p symple-bench --bin fig8 --release [--records N]`

use symple_bench::{log_bar, measure, ratio_label, records_from_args, target_for};
use symple_cluster::big::{big_cluster_run, BigClusterConfig};
use symple_cluster::model::{ScaledJob, ShuffleLaw};
use symple_mapreduce::JobConfig;
use symple_queries::Backend;

const QUERIES: [&str; 8] = ["G1", "G2", "G3", "G4", "B1", "B2", "B3", "T1"];

fn main() {
    let records = records_from_args();
    let job = JobConfig::default();
    let cluster = BigClusterConfig::default();
    println!("Figure 8: shuffled data for 8 queries on a 380-node Hadoop cluster (MB; log scale)");
    println!("measurement: {records} records/query, extrapolated to the paper's datasets");
    println!("{}", "=".repeat(96));
    println!(
        "{:<5} {:>14} {:>12} {:>8}   log-scale bars (MR then SYMPLE)",
        "query", "MapReduce MB", "SYMPLE MB", "ratio"
    );
    println!("{}", "-".repeat(96));

    for id in QUERIES {
        let target = target_for(id);
        let (_, base_prof) = measure(id, records, Backend::SortedBaseline, &job).expect("baseline");
        let (_, sym_prof) = measure(id, records, Backend::Symple, &job).expect("symple");
        let base_job = ScaledJob::extrapolate(&base_prof, target.workload, ShuffleLaw::PerRecord);
        let sym_job = ScaledJob::extrapolate(&sym_prof, target.workload, ShuffleLaw::PerEmission);
        let base = big_cluster_run(&cluster, &base_job).shuffle_mb();
        let sym = big_cluster_run(&cluster, &sym_job).shuffle_mb();
        println!(
            "{:<5} {:>14.1} {:>12.4} {:>8}   {}",
            id,
            base,
            sym,
            ratio_label(base, sym),
            log_bar(base, 0.001, 1_000_000.0, 28)
        );
        println!(
            "{:<5} {:>14} {:>12} {:>8}   {}",
            "",
            "",
            "",
            "",
            log_bar(sym, 0.001, 1_000_000.0, 28)
        );
    }
    println!("{}", "-".repeat(96));
    println!(
        "\npaper shape: B1/B2 extreme savings (one summary per mapper per group); \
         B3/T1 least savings (massive group counts — mappers must still emit per group)"
    );
}
