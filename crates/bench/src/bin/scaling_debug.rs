//! Diagnostic: raw phase timings (map/reduce CPU and wall, shuffle bytes)
//! for representative queries as the worker count varies. Useful when
//! calibrating the cluster model on a new host; not part of the paper's
//! figures.
//!
//! `cargo run -p symple-bench --bin scaling_debug --release [records]`

use symple_bench::measurement_scale;
use symple_mapreduce::JobConfig;
use symple_queries::{runner_by_id, Backend};

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    for id in ["R3", "G1"] {
        for backend in [Backend::Baseline, Backend::Symple] {
            for workers in [1usize, 2, 4] {
                let runner = runner_by_id(id).unwrap();
                let mut scale = measurement_scale(id, records);
                scale.segments = workers;
                let job = JobConfig {
                    map_workers: workers,
                    reduce_workers: workers,
                    num_reducers: workers,
                    first_segment_concrete: false,
                    ..JobConfig::default()
                };
                let r = runner.run(&scale, backend, &job).unwrap();
                let m = r.metrics;
                println!(
                    "{id} {backend:?} workers={workers} map_wall={:?} map_cpu={:?} reduce_wall={:?} reduce_cpu={:?} groups={} shuffle={}B",
                    m.map_wall, m.map_cpu, m.reduce_wall, m.reduce_cpu, m.groups, m.shuffle_bytes
                );
            }
        }
    }
}
