//! §6.5 "Scalability", quantified: sweeps the group count for a fixed
//! input size and shows where symbolic parallelism stops paying.
//!
//! The paper's finding: "all other queries … have a groupby function that
//! contains a sufficiently high number of records per group"; B3 (grouped
//! per user) was the one query with no improvement. This harness walks a
//! session-counting query from 1 group (the B1 regime) to
//! one-group-per-record (beyond the B3 regime) and prints the shuffle and
//! CPU ratios at each point.
//!
//! `cargo run -p symple-bench --bin sweep --release [--records N]`

use symple_bench::records_from_args;
use symple_mapreduce::JobConfig;
use symple_queries::{runner_by_id, Backend, DataScale};

fn main() {
    let records = records_from_args();
    let job = JobConfig::default();
    let runner = runner_by_id("B3").expect("B3 is the sessionization query");

    println!("Group-count sweep for the sessionization UDA (B3), {records} records, 8 mappers");
    println!("{}", "=".repeat(96));
    println!(
        "{:>9} {:>13} | {:>12} {:>12} {:>8} | {:>9} {:>9} {:>7}",
        "groups", "rec/grp/map", "MR bytes", "SYM bytes", "ratio", "MR cpu", "SYM cpu", "ratio"
    );
    println!("{}", "-".repeat(96));

    let mut groups = 1u64;
    while groups as usize <= records {
        let scale = DataScale {
            records,
            groups,
            segments: 8,
            seed: 0x5eed,
            parse_lines: true,
        };
        let base = runner
            .run(&scale, Backend::SortedBaseline, &job)
            .expect("baseline");
        let sym = runner.run(&scale, Backend::Symple, &job).expect("symple");
        assert_eq!(
            base.output_hash, sym.output_hash,
            "correctness at groups={groups}"
        );
        let density = records as f64 / base.metrics.groups.max(1) as f64 / 8.0;
        let byte_ratio =
            base.metrics.shuffle_bytes as f64 / sym.metrics.shuffle_bytes.max(1) as f64;
        let cpu_ratio =
            base.metrics.total_cpu().as_secs_f64() / sym.metrics.total_cpu().as_secs_f64();
        println!(
            "{:>9} {:>13.1} | {:>12} {:>12} {:>7.1}x | {:>8.2}s {:>8.2}s {:>6.2}x",
            base.metrics.groups,
            density,
            base.metrics.shuffle_bytes,
            sym.metrics.shuffle_bytes,
            byte_ratio,
            base.metrics.total_cpu().as_secs_f64(),
            sym.metrics.total_cpu().as_secs_f64(),
            cpu_ratio
        );
        groups *= 8;
    }
    println!("{}", "-".repeat(96));
    println!(
        "\npaper §6.5: the benefit tracks records-per-group-per-mapper; once each mapper\n\
         holds only a couple of events per group (the B3/T1 regime), summaries cannot\n\
         compress the shuffle and SYMPLE degenerates gracefully to baseline behavior."
    );
}
