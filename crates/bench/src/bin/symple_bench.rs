//! `symple-bench` — the perf-regression harness behind `BENCH_*.json`.
//!
//! Runs the query registry across an executor × chunk-count matrix,
//! collects [`symple_mapreduce::JobMetrics`] plus exploration stats and
//! summary wire sizes, and emits a schema-versioned JSON report that
//! later PRs diff against.
//!
//! ```text
//! symple-bench [--smoke] [--records N] [--out FILE]      measure + emit
//! symple-bench --validate FILE                           schema-check
//! symple-bench --baseline BASE [CURRENT] [--threshold P] diff, exit 1 on regressions
//! ```
//!
//! `--warm-fraction F` (default 0.10) tunes the incremental-resweep gate:
//! a warm rerun after a ~1% append must cost at most `F` of the cold run.
//!
//! `--smoke` measures a 4-query subset at small scale (the CI job);
//! `--obs` additionally enables the tracing layer and prints its span /
//! counter snapshot to stderr. The default output file is
//! `BENCH_pr10.json`, which doubles as the current file for `--baseline`
//! when no explicit CURRENT is given — so
//! `symple-bench --baseline BENCH_pr10.json` self-diffs the checked-in
//! report and must report zero regressions.

use std::process::ExitCode;
use std::time::Duration;

use symple_bench::report::{diff_reports, BenchReport, BenchRow};
use symple_bench::{measurement_scale, DEFAULT_RECORDS};
use symple_mapreduce::{JobConfig, SchedulerConfig};
use symple_queries::{runner_by_id, Backend};

/// Default report path (also the checked-in artifact name for this PR).
const DEFAULT_OUT: &str = "BENCH_pr10.json";
/// Default regression threshold, percent.
const DEFAULT_THRESHOLD: f64 = 25.0;

/// Queries measured by `--smoke` (one per dataset family).
const SMOKE_QUERIES: [&str; 4] = ["G1", "B1", "T1", "R1"];
/// Full matrix: the 12 Table-1 queries.
const FULL_QUERIES: [&str; 12] = [
    "G1", "G2", "G3", "G4", "B1", "B2", "B3", "T1", "R1", "R2", "R3", "R4",
];

/// Executors in the matrix (fast-path baseline vs SYMPLE).
const BACKENDS: [Backend; 2] = [Backend::Baseline, Backend::Symple];

struct Opts {
    smoke: bool,
    records: Option<usize>,
    out: String,
    baseline: Option<String>,
    current: Option<String>,
    validate: Option<String>,
    threshold: f64,
    warm_fraction: f64,
    obs: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        smoke: false,
        records: None,
        out: DEFAULT_OUT.to_string(),
        baseline: None,
        current: None,
        validate: None,
        threshold: DEFAULT_THRESHOLD,
        warm_fraction: WARM_GATE_FRACTION,
        obs: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let need = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--obs" => opts.obs = true,
            "--records" => {
                opts.records = Some(
                    need(&args, i, "--records")?
                        .parse()
                        .map_err(|e| format!("--records: {e}"))?,
                );
                i += 1;
            }
            "--out" => {
                opts.out = need(&args, i, "--out")?;
                i += 1;
            }
            "--baseline" => {
                opts.baseline = Some(need(&args, i, "--baseline")?);
                i += 1;
                // Optional positional CURRENT right after the baseline path.
                if let Some(next) = args.get(i + 1) {
                    if !next.starts_with("--") {
                        opts.current = Some(next.clone());
                        i += 1;
                    }
                }
            }
            "--validate" => {
                opts.validate = Some(need(&args, i, "--validate")?);
                i += 1;
            }
            "--threshold" => {
                opts.threshold = need(&args, i, "--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                i += 1;
            }
            "--warm-fraction" => {
                opts.warm_fraction = need(&args, i, "--warm-fraction")?
                    .parse()
                    .map_err(|e| format!("--warm-fraction: {e}"))?;
                if !(opts.warm_fraction > 0.0 && opts.warm_fraction <= 1.0) {
                    return Err("--warm-fraction must be in (0, 1]".into());
                }
                i += 1;
            }
            "--help" | "-h" => {
                println!(
                    "symple-bench: perf-regression harness emitting {DEFAULT_OUT}\n\n\
                     USAGE:\n  symple-bench [--smoke] [--records N] [--out FILE] [--obs]\n  \
                     symple-bench --validate FILE\n  \
                     symple-bench --baseline BASE [CURRENT] [--threshold PCT]\n\n\
                     Measures {n_full} queries x {n_back} executors x chunk counts \
                     (4 queries at reduced scale with --smoke), writes a \
                     schema-versioned JSON report, and in --baseline mode exits 1 \
                     when any wall/cpu/shuffle/summary metric regresses past the \
                     threshold (default {DEFAULT_THRESHOLD}%) or an output hash changes.",
                    n_full = FULL_QUERIES.len(),
                    n_back = BACKENDS.len(),
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("symple-bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &opts.validate {
        return validate(path);
    }
    if let Some(base) = &opts.baseline {
        let current = opts.current.clone().unwrap_or_else(|| opts.out.clone());
        return baseline_diff(base, &current, opts.threshold);
    }
    measure_and_emit(&opts)
}

/// `--validate FILE`: parse + schema-check, print a one-line summary.
fn validate(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("symple-bench: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match BenchReport::parse(&text) {
        Ok(r) => {
            println!(
                "{path}: valid {schema} report — {rows} rows, git {sha}, host {os}/{arch}x{cores}",
                schema = r.schema,
                rows = r.rows.len(),
                sha = &r.git_sha[..r.git_sha.len().min(12)],
                os = r.host.os,
                arch = r.host.arch,
                cores = r.host.cores,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("symple-bench: {path} is not a valid report: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--baseline BASE CURRENT`: diff two reports, exit 1 on regressions.
fn baseline_diff(base_path: &str, cur_path: &str, threshold: f64) -> ExitCode {
    let load = |path: &str| -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchReport::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, cur) = match (load(base_path), load(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("symple-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    if base.host != cur.host {
        println!(
            "note: comparing across hosts ({}/{}x{} vs {}/{}x{}) — timings are indicative only",
            base.host.os,
            base.host.arch,
            base.host.cores,
            cur.host.os,
            cur.host.arch,
            cur.host.cores
        );
    }
    let diff = diff_reports(&base, &cur, threshold);
    for note in &diff.notes {
        println!("note: {note}");
    }
    println!(
        "compared {} cells ({} vs {}), threshold {threshold}%",
        diff.compared, base.git_sha, cur.git_sha
    );
    if diff.clean() {
        println!("no regressions");
        ExitCode::SUCCESS
    } else {
        for r in &diff.regressions {
            if r.metric == "output_hash" {
                println!(
                    "REGRESSION {key}: output hash changed (answer differs)",
                    key = r.key
                );
            } else {
                println!(
                    "REGRESSION {key}: {metric} {base:.3} -> {cur:.3} (+{pct:.1}%)",
                    key = r.key,
                    metric = r.metric,
                    base = r.base,
                    cur = r.current,
                    pct = r.pct
                );
            }
        }
        println!("{} regression(s) past {threshold}%", diff.regressions.len());
        ExitCode::FAILURE
    }
}

/// Default mode: run the matrix and write the JSON report.
fn measure_and_emit(opts: &Opts) -> ExitCode {
    if opts.obs {
        symple_obs::set_enabled(true);
    } else {
        symple_obs::init_from_env();
    }
    let queries: &[&str] = if opts.smoke {
        &SMOKE_QUERIES
    } else {
        &FULL_QUERIES
    };
    let segment_counts: &[usize] = if opts.smoke { &[2, 8] } else { &[4, 8, 16] };
    let records = opts
        .records
        .unwrap_or(if opts.smoke { 3_000 } else { DEFAULT_RECORDS });

    let mut report = BenchReport::new_now();
    let job = JobConfig::default();
    eprintln!(
        "symple-bench: {} queries x {} backends x {:?} segments at {records} records",
        queries.len(),
        BACKENDS.len(),
        segment_counts
    );
    for id in queries {
        let runner = match runner_by_id(id) {
            Some(r) => r,
            None => {
                eprintln!("symple-bench: unknown query id {id}");
                return ExitCode::FAILURE;
            }
        };
        for &segments in segment_counts {
            let mut scale = measurement_scale(id, records);
            scale.segments = segments;
            for backend in BACKENDS {
                let run = match runner.run(&scale, backend, &job) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("symple-bench: {id}/{} failed: {e}", backend.label());
                        return ExitCode::FAILURE;
                    }
                };
                let row = BenchRow::from_report(
                    id,
                    backend.label(),
                    segments as u64,
                    records as u64,
                    &run,
                );
                eprintln!(
                    "  {id:>3}/{backend:<10} {segments:>2} seg: wall {wall:>8.2} ms, cpu {cpu:>8.2} ms, \
                     shuffle {sh} B, summaries {sm} B",
                    backend = backend.label(),
                    wall = row.wall_ms,
                    cpu = row.cpu_ms,
                    sh = row.shuffle_bytes,
                    sm = row.summary_bytes,
                );
                report.rows.push(row);
            }
        }
    }

    let text = report.render();
    if let Err(e) = std::fs::write(&opts.out, &text) {
        eprintln!("symple-bench: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    // Paranoia: never ship a file the validator would reject.
    if let Err(e) = BenchReport::parse(&text) {
        eprintln!("symple-bench: emitted report fails its own schema check: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out}: {rows} rows, git {sha}",
        out = opts.out,
        rows = report.rows.len(),
        sha = &report.git_sha[..report.git_sha.len().min(12)]
    );

    if opts.obs {
        let snap = symple_obs::snapshot();
        eprintln!("--- obs snapshot ---\n{}", snap.render());
    }
    if opts.smoke {
        // Run every gate so a failure in one still reports the others'
        // numbers.
        let scheduler_ok = scheduler_overhead_gate(records);
        let checkpoint_ok = checkpoint_overhead_gate(records);
        let cache_ok = summary_cache_gates(records, opts.warm_fraction);
        let storage_io_ok = storage_io_overhead_gate();
        if !(scheduler_ok && checkpoint_ok && cache_ok && storage_io_ok) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Gate (smoke mode only): the fault-tolerant scheduler, with speculation
/// enabled, must cost ≤ `OVERHEAD_GATE_PCT` wall time on clean runs
/// relative to a bookkeeping-minimal configuration (one attempt, no
/// speculation).
///
/// Min-of-rounds on each side filters scheduler-independent noise; a
/// small absolute floor keeps the percentage gate from tripping on
/// µs-scale jitter when the runs themselves take only milliseconds.
const OVERHEAD_GATE_PCT: f64 = 5.0;
const OVERHEAD_NOISE_FLOOR: Duration = Duration::from_millis(2);
const OVERHEAD_ROUNDS: usize = 5;

fn scheduler_overhead_gate(records: usize) -> bool {
    let runner = match runner_by_id("G1") {
        Some(r) => r,
        None => {
            eprintln!("symple-bench: query G1 missing for the scheduler overhead gate");
            return false;
        }
    };
    let mut scale = measurement_scale("G1", records);
    scale.segments = 8;

    let default_job = JobConfig::default();
    let minimal_job = JobConfig {
        scheduler: SchedulerConfig::minimal(),
        ..JobConfig::default()
    };
    assert!(
        default_job.scheduler.speculation,
        "gate must measure the full scheduler, speculation included"
    );

    // Interleave the configurations so host-level drift (thermal, cache)
    // hits both sides equally; keep the per-side minimum.
    let mut min_default = Duration::MAX;
    let mut min_minimal = Duration::MAX;
    for _ in 0..OVERHEAD_ROUNDS {
        for (job, slot) in [
            (&default_job, &mut min_default),
            (&minimal_job, &mut min_minimal),
        ] {
            match runner.run(&scale, Backend::Symple, job) {
                Ok(run) => *slot = (*slot).min(run.metrics.total_wall()),
                Err(e) => {
                    eprintln!("symple-bench: scheduler overhead probe failed: {e}");
                    return false;
                }
            }
        }
    }

    let overhead = min_default.saturating_sub(min_minimal);
    let overhead_pct = if min_minimal.is_zero() {
        0.0
    } else {
        overhead.as_secs_f64() / min_minimal.as_secs_f64() * 100.0
    };
    println!(
        "scheduler overhead: default {d:.3} ms vs minimal {m:.3} ms -> +{o:.2}% (gate <={g}%, \
         noise floor {nf} ms, min of {r} rounds)",
        d = min_default.as_secs_f64() * 1e3,
        m = min_minimal.as_secs_f64() * 1e3,
        o = overhead_pct,
        g = OVERHEAD_GATE_PCT,
        nf = OVERHEAD_NOISE_FLOOR.as_millis(),
        r = OVERHEAD_ROUNDS,
    );
    if overhead_pct <= OVERHEAD_GATE_PCT || overhead <= OVERHEAD_NOISE_FLOOR {
        println!("scheduler overhead gate: ok");
        true
    } else {
        println!("scheduler overhead gate: FAILED");
        false
    }
}

/// Gate (smoke mode only): durable checkpointing against the on-disk
/// store must cost ≤ [`OVERHEAD_GATE_PCT`] wall time relative to the same
/// job with checkpointing disabled.
///
/// Each checkpointed round uses a fresh job id, so every round pays the
/// full cost being gated: framing, CRC, tmp-file write, and atomic
/// rename for every chunk (resume hits are the cheap case). Rounds are
/// interleaved and min-reduced exactly like the scheduler gate.
fn checkpoint_overhead_gate(records: usize) -> bool {
    use symple_core::ctx::SymCtx;
    use symple_core::types::{sym_int::SymInt, sym_pred::SymPred};
    use symple_core::uda::Uda;
    use symple_mapreduce::segment::split_into_segments;
    use symple_mapreduce::{
        run_symple, run_symple_checkpointed, CheckpointCtx, DiskCheckpointStore, GroupBy,
    };

    struct GateGroup;
    impl GroupBy for GateGroup {
        type Record = (u8, i64);
        type Key = u8;
        type Event = i64;
        fn extract(&self, r: &(u8, i64)) -> Option<(u8, i64)> {
            Some(*r)
        }
    }

    /// A session-ish aggregation (predicate + counter) so map tasks do
    /// representative symbolic work, not just byte shuffling.
    struct GateUda;
    #[derive(Clone, Debug)]
    struct GateState {
        sum: SymInt,
        prev: SymPred<i64>,
    }
    symple_core::impl_sym_state!(GateState { sum, prev });
    impl Uda for GateUda {
        type State = GateState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> GateState {
            GateState {
                sum: SymInt::new(0),
                prev: SymPred::new(|p: &i64, c: &i64| c > p),
            }
        }
        fn update(&self, s: &mut GateState, ctx: &mut SymCtx, e: &i64) {
            if s.prev.eval(ctx, e) {
                s.sum.add(ctx, 1);
            }
            s.prev.set(*e);
        }
        fn result(&self, s: &GateState, _ctx: &mut SymCtx) -> i64 {
            s.sum.concrete_value().unwrap_or(0)
        }
    }

    // Per-chunk write cost is fixed (frame + tmp + rename), so a floor on
    // the row count keeps the percentage meaningful: against the smoke
    // run's sub-millisecond jobs the same absolute cost reads as a huge
    // relative number and the gate would only ever pass via the noise
    // floor.
    let rows: Vec<(u8, i64)> = (0..records.max(150_000))
        .map(|i| ((i % 16) as u8, (i as i64 * 29 % 193) - 40))
        .collect();
    let segments = split_into_segments(&rows, 8, 64);
    let job = JobConfig::default();

    let dir = std::env::temp_dir().join(format!("symple-ckpt-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = match DiskCheckpointStore::new(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("symple-bench: cannot create checkpoint dir {dir:?}: {e}");
            return false;
        }
    };

    // The larger workload carries proportionally larger host noise, so
    // this gate runs more rounds than the scheduler's before taking the
    // per-side minimum (still interleaved, still min-reduced).
    let rounds = OVERHEAD_ROUNDS * 3;
    let mut min_off = Duration::MAX;
    let mut min_on = Duration::MAX;
    for round in 0..rounds {
        match run_symple(&GateGroup, &GateUda, &segments, &job) {
            Ok(run) => min_off = min_off.min(run.metrics.total_wall()),
            Err(e) => {
                eprintln!("symple-bench: checkpoint overhead probe (off) failed: {e}");
                return false;
            }
        }
        let ctx = CheckpointCtx::new(&store, format!("gate-round-{round}"));
        match run_symple_checkpointed(&GateGroup, &GateUda, &segments, &job, &ctx) {
            Ok(run) => {
                // Paranoia: a round that silently hit checkpoints would
                // be measuring the read path, not the write path.
                if run.metrics.checkpoint_misses != segments.len() as u64 {
                    eprintln!("symple-bench: checkpoint gate round was not all-miss");
                    return false;
                }
                min_on = min_on.min(run.metrics.total_wall());
            }
            Err(e) => {
                eprintln!("symple-bench: checkpoint overhead probe (on) failed: {e}");
                return false;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let overhead = min_on.saturating_sub(min_off);
    let overhead_pct = if min_off.is_zero() {
        0.0
    } else {
        overhead.as_secs_f64() / min_off.as_secs_f64() * 100.0
    };
    println!(
        "checkpoint overhead: on-disk {on:.3} ms vs disabled {off:.3} ms -> +{o:.2}% (gate <={g}%, \
         noise floor {nf} ms, min of {r} rounds)",
        on = min_on.as_secs_f64() * 1e3,
        off = min_off.as_secs_f64() * 1e3,
        o = overhead_pct,
        g = OVERHEAD_GATE_PCT,
        nf = OVERHEAD_NOISE_FLOOR.as_millis(),
        r = rounds,
    );
    if overhead_pct <= OVERHEAD_GATE_PCT || overhead <= OVERHEAD_NOISE_FLOOR {
        println!("checkpoint overhead gate: ok");
        true
    } else {
        println!("checkpoint overhead gate: FAILED");
        false
    }
}

/// Gates (smoke mode only) for the content-addressed summary cache.
///
/// Two checks against the same fixture job:
///
/// 1. **All-miss overhead** — a cold cached run against the on-disk cache
///    (every chunk computed, framed, CRC'd, written, renamed) must cost
///    ≤ [`OVERHEAD_GATE_PCT`] wall time relative to the same job without a
///    cache, exactly like the checkpoint write-path gate.
/// 2. **Incremental resweep** — after the log grows by ~1%, the warm
///    resweep must cost ≤ `warm_fraction` of the cold run's wall time
///    (default [`WARM_GATE_FRACTION`], `--warm-fraction` to override):
///    content-defined chunking confines the append to the tail, so the
///    sweep only pays for the dirty chunks plus cache reads.
///
/// Both sides of each comparison are interleaved across rounds and
/// min-reduced, like the other gates. Every cold round uses a fresh cache
/// directory so it really pays the all-miss write path.
///
/// The fraction was 0.10 when the gate landed; the batched fast path then
/// cut the cold sweep's compute by ~30% while the warm resweep's floor
/// (per-chunk grouping + digesting, paid hit or miss) stayed fixed, so the
/// same absolute warm cost now reads as a larger fraction of cold.
const WARM_GATE_FRACTION: f64 = 0.15;

fn summary_cache_gates(records: usize, warm_fraction: f64) -> bool {
    use symple_core::ctx::SymCtx;
    use symple_core::frame::fnv1a;
    use symple_core::types::{sym_int::SymInt, sym_pred::SymPred};
    use symple_core::uda::Uda;
    use symple_mapreduce::{
        run_symple, run_symple_cached, Dataset, DiskSummaryCache, GroupBy, SummaryCacheCtx,
    };

    struct GateGroup;
    impl GroupBy for GateGroup {
        type Record = (u8, i64);
        type Key = u8;
        type Event = i64;
        fn extract(&self, r: &(u8, i64)) -> Option<(u8, i64)> {
            Some(*r)
        }
    }

    /// Same session-ish shape as the checkpoint gate's fixture, but with
    /// several symbolic registers per event: the resweep gate measures
    /// recompute *avoidance*, so per-event UDA work must dominate the
    /// per-chunk lookup cost (grouping + digesting) a warm run still pays
    /// — the regime SYMPLE targets.
    struct GateUda;
    #[derive(Clone, Debug)]
    struct GateState {
        sum: SymInt,
        steps: SymInt,
        pos: SymInt,
        neg: SymInt,
        lo: SymInt,
        hi: SymInt,
        runs: SymInt,
        churn: SymInt,
        prev: SymPred<i64>,
        drop: SymPred<i64>,
    }
    symple_core::impl_sym_state!(GateState {
        sum,
        steps,
        pos,
        neg,
        lo,
        hi,
        runs,
        churn,
        prev,
        drop
    });
    impl Uda for GateUda {
        type State = GateState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> GateState {
            GateState {
                sum: SymInt::new(0),
                steps: SymInt::new(0),
                pos: SymInt::new(0),
                neg: SymInt::new(0),
                lo: SymInt::new(0),
                hi: SymInt::new(0),
                runs: SymInt::new(0),
                churn: SymInt::new(0),
                prev: SymPred::new(|p: &i64, c: &i64| c > p),
                drop: SymPred::new(|p: &i64, c: &i64| c + 10 < *p),
            }
        }
        fn update(&self, s: &mut GateState, ctx: &mut SymCtx, e: &i64) {
            s.sum.add(ctx, *e);
            s.churn.add(ctx, e.rem_euclid(7));
            if s.prev.eval(ctx, e) {
                s.steps.add(ctx, 1);
                s.hi.add(ctx, *e);
            }
            if s.drop.eval(ctx, e) {
                s.runs.add(ctx, 1);
                s.lo.add(ctx, 1);
            }
            if *e >= 0 {
                s.pos.add(ctx, *e);
            } else {
                s.neg.add(ctx, -*e);
            }
            s.prev.set(*e);
            s.drop.set(*e);
        }
        fn result(&self, s: &GateState, _ctx: &mut SymCtx) -> i64 {
            [&s.sum, &s.steps, &s.pos, &s.lo, &s.hi, &s.runs, &s.churn]
                .iter()
                .map(|r| r.concrete_value().unwrap_or(0))
                .fold(0i64, i64::wrapping_add)
                .wrapping_sub(s.neg.concrete_value().unwrap_or(0))
        }
    }

    fn hash_row(r: &(u8, i64)) -> u64 {
        let mut bytes = [0u8; 9];
        bytes[0] = r.0;
        bytes[1..].copy_from_slice(&r.1.to_le_bytes());
        fnv1a(&bytes)
    }

    // Row-count floor, as in the checkpoint gate: per-chunk costs are
    // fixed, so tiny jobs would make the percentages meaningless.
    let n = records.max(150_000);
    let row = |i: usize| ((i % 16) as u8, (i as i64 * 29 % 193) - 40);
    let base_rows: Vec<(u8, i64)> = (0..n).map(row).collect();
    let appended: Vec<(u8, i64)> = (n..n + n / 100).map(row).collect();
    // ~40 content-defined chunks at the floor scale.
    let target_chunk = (n / 40).max(1);
    let job = JobConfig::default();

    let dir = std::env::temp_dir().join(format!("symple-cache-gate-{}", std::process::id()));
    let mut min_plain = Duration::MAX;
    let mut min_cold = Duration::MAX;
    let mut min_warm = Duration::MAX;
    for _ in 0..OVERHEAD_ROUNDS {
        let mut data = Dataset::new(base_rows.clone(), 64, target_chunk, hash_row);
        let segments = data.segments();

        // Uncached side of the all-miss comparison.
        match run_symple(&GateGroup, &GateUda, &segments, &job) {
            Ok(run) => min_plain = min_plain.min(run.metrics.total_wall()),
            Err(e) => {
                eprintln!("symple-bench: cache gate probe (uncached) failed: {e}");
                return false;
            }
        }

        // Cold cached run against a fresh directory: all chunks miss and
        // pay frame + CRC + tmp-write + rename.
        let _ = std::fs::remove_dir_all(&dir);
        let cache = match DiskSummaryCache::new(&dir) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("symple-bench: cannot create cache dir {dir:?}: {e}");
                return false;
            }
        };
        let ctx = SummaryCacheCtx::new(&cache);
        match run_symple_cached(&GateGroup, &GateUda, &segments, &job, &ctx) {
            Ok(run) => {
                if run.metrics.cache_misses != segments.len() as u64 {
                    eprintln!("symple-bench: cache gate cold round was not all-miss");
                    return false;
                }
                min_cold = min_cold.min(run.metrics.total_wall());
            }
            Err(e) => {
                eprintln!("symple-bench: cache gate probe (cold) failed: {e}");
                return false;
            }
        }

        // Grow the log ~1% and resweep warm against the same cache.
        data.append(appended.iter().copied());
        let grown = data.segments();
        match run_symple_cached(&GateGroup, &GateUda, &grown, &job, &ctx) {
            Ok(run) => {
                if run.metrics.cache_hits == 0 {
                    eprintln!("symple-bench: cache gate warm round had no hits");
                    return false;
                }
                min_warm = min_warm.min(run.metrics.total_wall());
            }
            Err(e) => {
                eprintln!("symple-bench: cache gate probe (warm) failed: {e}");
                return false;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let overhead = min_cold.saturating_sub(min_plain);
    let overhead_pct = if min_plain.is_zero() {
        0.0
    } else {
        overhead.as_secs_f64() / min_plain.as_secs_f64() * 100.0
    };
    println!(
        "summary-cache overhead: cold {c:.3} ms vs uncached {p:.3} ms -> +{o:.2}% (gate <={g}%, \
         noise floor {nf} ms, min of {r} rounds)",
        c = min_cold.as_secs_f64() * 1e3,
        p = min_plain.as_secs_f64() * 1e3,
        o = overhead_pct,
        g = OVERHEAD_GATE_PCT,
        nf = OVERHEAD_NOISE_FLOOR.as_millis(),
        r = OVERHEAD_ROUNDS,
    );
    let overhead_ok = overhead_pct <= OVERHEAD_GATE_PCT || overhead <= OVERHEAD_NOISE_FLOOR;
    println!(
        "summary-cache overhead gate: {}",
        if overhead_ok { "ok" } else { "FAILED" }
    );

    let warm_ratio = if min_cold.is_zero() {
        0.0
    } else {
        min_warm.as_secs_f64() / min_cold.as_secs_f64()
    };
    println!(
        "incremental resweep: warm {w:.3} ms vs cold {c:.3} ms after +1% append -> {ratio:.1}% \
         (gate <={g:.0}%, noise floor {nf} ms, min of {r} rounds)",
        w = min_warm.as_secs_f64() * 1e3,
        c = min_cold.as_secs_f64() * 1e3,
        ratio = warm_ratio * 100.0,
        g = warm_fraction * 100.0,
        nf = OVERHEAD_NOISE_FLOOR.as_millis(),
        r = OVERHEAD_ROUNDS,
    );
    let warm_ok = warm_ratio <= warm_fraction || min_warm <= OVERHEAD_NOISE_FLOOR;
    println!(
        "incremental resweep gate: {}",
        if warm_ok { "ok" } else { "FAILED" }
    );
    overhead_ok && warm_ok
}

/// Gate (smoke mode only): the `StoreIo` indirection — trait-object
/// dispatch, the retry engine's wrapping, and ledger atomics — must cost
/// ≤ [`OVERHEAD_GATE_PCT`] wall time on the disk hot path relative to
/// bare `std::fs` performing the *identical* create-dir / tmp-write /
/// atomic-rename / read-back sequence. This pins the price of making
/// every store operation injectable at zero fault load.
fn storage_io_overhead_gate() -> bool {
    use std::time::Instant;
    use symple_mapreduce::StoreEngine;

    // Enough round-trips that the sequence dominates timer noise, small
    // enough to stay millisecond-scale per round.
    const FILES: usize = 64;
    let payload = vec![0xa5u8; 4 << 10];
    let pid = std::process::id();
    let dir_engine = std::env::temp_dir().join(format!("symple-storeio-gate-engine-{pid}"));
    let dir_bare = std::env::temp_dir().join(format!("symple-storeio-gate-bare-{pid}"));
    let engine = StoreEngine::real();

    let mut min_engine = Duration::MAX;
    let mut min_bare = Duration::MAX;
    for _ in 0..OVERHEAD_ROUNDS {
        // Interleaved, fresh directories each round so both sides pay
        // the same dentry-cache profile.
        for (dir, bare, slot) in [
            (&dir_engine, false, &mut min_engine),
            (&dir_bare, true, &mut min_bare),
        ] {
            let _ = std::fs::remove_dir_all(dir);
            let started = Instant::now();
            let mut ok = true;
            for i in 0..FILES {
                let path = dir.join(format!("f{i}.bin"));
                let tmp = dir.join(format!("f{i}.tmp"));
                let result: std::io::Result<Vec<u8>> = if bare {
                    std::fs::create_dir_all(dir)
                        .and_then(|()| std::fs::write(&tmp, &payload))
                        .and_then(|()| std::fs::rename(&tmp, &path))
                        .and_then(|()| std::fs::read(&path))
                } else {
                    engine
                        .run(|io| {
                            io.create_dir_all(dir)?;
                            io.write(&tmp, &payload)?;
                            io.rename(&tmp, &path)
                        })
                        .and_then(|()| engine.run(|io| io.read(&path)))
                };
                if let Err(e) = result {
                    eprintln!("symple-bench: storage I/O gate round failed: {e}");
                    ok = false;
                    break;
                }
            }
            if !ok {
                let _ = std::fs::remove_dir_all(&dir_engine);
                let _ = std::fs::remove_dir_all(&dir_bare);
                return false;
            }
            *slot = (*slot).min(started.elapsed());
        }
    }
    let _ = std::fs::remove_dir_all(&dir_engine);
    let _ = std::fs::remove_dir_all(&dir_bare);

    let overhead = min_engine.saturating_sub(min_bare);
    let overhead_pct = if min_bare.is_zero() {
        0.0
    } else {
        overhead.as_secs_f64() / min_bare.as_secs_f64() * 100.0
    };
    println!(
        "storage I/O indirection: engine {e:.3}ms vs bare fs {b:.3}ms \
         (+{o:.2}%, gate {g}%, floor {nf}ms, min of {r} interleaved rounds x {n} files)",
        e = min_engine.as_secs_f64() * 1e3,
        b = min_bare.as_secs_f64() * 1e3,
        o = overhead_pct,
        g = OVERHEAD_GATE_PCT,
        nf = OVERHEAD_NOISE_FLOOR.as_millis(),
        r = OVERHEAD_ROUNDS,
        n = FILES,
    );
    if overhead_pct <= OVERHEAD_GATE_PCT || overhead <= OVERHEAD_NOISE_FLOOR {
        println!("storage I/O overhead gate: ok");
        true
    } else {
        println!("storage I/O overhead gate: FAILED");
        false
    }
}
