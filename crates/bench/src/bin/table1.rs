//! Regenerates **Table 1**: the datasets and queries of the evaluation,
//! with group counts and the symbolic types each query uses.
//!
//! Run with `cargo run -p symple-bench --bin table1 --release`. Add
//! `--verify` (default) to also execute every query at small scale on both
//! backends and check that they agree — the part of Table 1 the paper
//! could only claim implicitly.

use symple_mapreduce::JobConfig;
use symple_queries::{all_queries, Backend, DataScale};

fn main() {
    let verify = !std::env::args().any(|a| a == "--no-verify");
    println!("Table 1: datasets and queries (SYMPLE reproduction)");
    println!("{}", "=".repeat(100));
    println!(
        "{:<4} {:<20} {:<8} {:>5} {:>4} {:>5}  Description",
        "ID", "Dataset", "#Groups", "Enum", "Int", "Pred"
    );
    println!("{}", "-".repeat(100));
    let mark = |b: bool| if b { "y" } else { "" };
    for q in all_queries() {
        let i = q.info();
        println!(
            "{:<4} {:<20} {:<8} {:>5} {:>4} {:>5}  {}",
            i.id,
            i.dataset,
            i.groups,
            mark(i.uses_enum),
            mark(i.uses_int),
            mark(i.uses_pred),
            i.description
        );
    }
    println!("{}", "-".repeat(100));

    if verify {
        println!("\nverifying baseline ≡ SYMPLE on every query (10k records)…");
        let scale = DataScale {
            records: 10_000,
            groups: 100,
            segments: 6,
            seed: 11,
            parse_lines: false,
        };
        let job = JobConfig::default();
        let mut ok = true;
        for q in all_queries() {
            let id = q.info().id;
            let base = q
                .run(&scale, Backend::Baseline, &job)
                .expect("baseline run");
            let sym = q.run(&scale, Backend::Symple, &job).expect("symple run");
            let agree = base.output_hash == sym.output_hash;
            ok &= agree;
            println!(
                "  {id:<4} groups={:<6} baseline=SYMPLE: {}",
                base.output_rows,
                if agree { "OK" } else { "MISMATCH" }
            );
        }
        assert!(ok, "backend outputs diverged");
        println!("all 12 queries agree across backends");
    }
}
