//! A minimal, dependency-free JSON value with a deterministic printer and
//! a strict parser.
//!
//! The workspace builds offline (no serde); `BENCH_*.json` files need only
//! objects, arrays, strings, numbers, and booleans. Object keys keep
//! insertion order so that serialization is byte-deterministic — the
//! property the golden-schema test pins down.

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64` (every quantity the bench emits fits in
/// the 53-bit integer range; 64-bit hashes travel as hex strings).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    /// Deterministic: same value → same bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    debug_assert!(n.is_finite(), "JSON numbers must be finite");
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {}", char::from(c), *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!(
            "unexpected byte '{}' at offset {}",
            char::from(*c),
            *pos
        )),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at offset {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number '{text}' at offset {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number at offset {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if *pos + 4 > b.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex =
                            std::str::from_utf8(&b[*pos..*pos + 4]).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                        *pos += 4;
                        // Surrogate pairs are not needed by the bench
                        // schema; map lone surrogates to the replacement
                        // character rather than failing.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("invalid escape '\\{}'", char::from(c))),
                }
            }
            c if c < 0x20 => return Err("raw control character in string".to_string()),
            c => {
                // Re-assemble multi-byte UTF-8 sequences.
                let len = match c {
                    0x00..=0x7f => 0,
                    0xc0..=0xdf => 1,
                    0xe0..=0xef => 2,
                    _ => 3,
                };
                let start = *pos - 1;
                *pos += len;
                if *pos > b.len() {
                    return Err("truncated UTF-8 sequence".to_string());
                }
                let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(s);
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

/// Convenience: builds an object from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = obj(vec![
            ("name", Json::Str("bench \"quoted\"\n".into())),
            ("n", Json::Num(42.0)),
            ("pi", Json::Num(3.5)),
            ("neg", Json::Num(-17.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "rows",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Arr(vec![])]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // Deterministic: render ∘ parse ∘ render is a fixed point.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(1234567890.0).render(), "1234567890\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{\"a\": 1} tail").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn lookup_helpers() {
        let v = Json::parse(r#"{"a": 3, "b": "x", "c": [1], "d": -1}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("d").unwrap().as_u64(), None, "negative is not u64");
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unicode_survives() {
        let v = Json::Str("søkväg → 終".to_string());
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
        let esc = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(esc.as_str(), Some("Aé"));
    }
}
