#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # symple-bench
//!
//! Harnesses that regenerate every table and figure of the SYMPLE
//! evaluation (§6). Each paper artifact has a binary:
//!
//! | Artifact | Binary | What it prints |
//! |----------|--------|----------------|
//! | Table 1 | `table1` | datasets, queries, group counts, sym types |
//! | Figure 4 | `fig4` | multi-core throughput (MB/s) per configuration |
//! | Figure 5 | `fig5` | EMR end-to-end latency (minutes) |
//! | Figure 6 | `fig6` | EMR shuffle data (MB, log scale + ratios) |
//! | Figure 7 | `fig7` | 380-node CPU usage (×1000 s) |
//! | Figure 8 | `fig8` | 380-node shuffle data (MB, log scale) |
//!
//! Figure 3 (the Max walkthrough) is `examples/max_demo.rs` at the
//! workspace root. Criterion micro-benchmarks in `benches/` cover the
//! §6.2 overhead claims (symbolic vs concrete execution, merging,
//! composition, wire codec).
//!
//! Every binary accepts `--records N` to set the measurement scale
//! (default 200 000) and prints machine-parseable rows; EXPERIMENTS.md
//! records a full run against the paper's numbers.

pub mod json;
pub mod report;

use symple_cluster::{MeasuredProfile, PaperTarget};
use symple_core::error::Result;
use symple_mapreduce::JobConfig;
use symple_queries::{runner_by_id, Backend, DataScale, QueryReport};

/// Default measurement size (records generated per query).
pub const DEFAULT_RECORDS: usize = 200_000;

/// Parses `--records N` (and `--fast` → 20 000) from argv.
pub fn records_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--records" {
            if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return n;
            }
        }
        if args[i] == "--fast" {
            return 20_000;
        }
    }
    DEFAULT_RECORDS
}

/// The measurement-time workload for a query: scaled-down groups chosen to
/// preserve the paper's records-per-group and groups-per-mapper regimes.
pub fn measurement_scale(id: &str, records: usize) -> DataScale {
    // Records per group at full scale (Table 1 / §6.1), which drives how
    // much SYMPLE can compress a chunk into one summary.
    let groups = match id {
        // github: ≈400 M records over 12–22 M repos → ≈34/group.
        "G1" | "G2" | "G3" | "G4" => (records / 34).max(8) as u64,
        // B1: one global group, whatever the user count.
        "B1" => 3_000,
        // B2: ~50 geographic areas.
        "B2" => 1_000, // num_geos = groups/20 = 50
        // B3: 1.9 B queries over ~100 M users → ≈19/group.
        "B3" => (records / 19).max(8) as u64,
        // T1: ≈50 tweets per hashtag.
        "T1" => (records / 50).max(8) as u64,
        // RedShift: 1.2 B impressions over 10 K advertisers — mappers see
        // every group; keep groups ≪ records/mapper.
        _ => 2_000,
    };
    DataScale {
        records,
        groups,
        segments: 8,
        seed: 0x5a_2e_97,
        parse_lines: true,
    }
}

/// Runs one query on one backend at measurement scale, returning the
/// report and the extrapolation profile.
pub fn measure(
    id: &str,
    records: usize,
    backend: Backend,
    job: &JobConfig,
) -> Result<(QueryReport, MeasuredProfile)> {
    let runner = runner_by_id(id).unwrap_or_else(|| panic!("unknown query id {id}"));
    let scale = measurement_scale(id, records);
    let report = runner.run(&scale, backend, job)?;
    let profile = MeasuredProfile::from_metrics(&report.metrics, scale.segments as u64);
    Ok((report, profile))
}

/// The paper's full-scale target for a query.
pub fn target_for(id: &str) -> PaperTarget {
    symple_cluster::paper_target(id).unwrap_or_else(|| panic!("no paper target for {id}"))
}

/// Renders a labelled horizontal ASCII bar scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

/// Renders a log-scale ASCII bar between `min` and `max`.
pub fn log_bar(value: f64, min: f64, max: f64, width: usize) -> String {
    if value <= 0.0 || max <= min {
        return String::new();
    }
    let f = ((value.max(min) / min).ln() / (max / min).ln()).clamp(0.0, 1.0);
    let n = (f * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

/// Formats a ratio like the paper's Figure 6 annotations (`238x`).
pub fn ratio_label(baseline: f64, symple: f64) -> String {
    if symple <= 0.0 {
        return "∞".to_string();
    }
    let r = baseline / symple;
    if r >= 10.0 {
        format!("{r:.0}x")
    } else {
        format!("{r:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_render() {
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10, "clamped");
        assert_eq!(bar(1.0, 0.0, 10), "");
        assert!(log_bar(100.0, 1.0, 10_000.0, 8).chars().count() == 4);
        assert_eq!(log_bar(0.0, 1.0, 100.0, 8), "");
    }

    #[test]
    fn ratio_labels() {
        assert_eq!(ratio_label(238.0, 1.0), "238x");
        assert_eq!(ratio_label(5.0, 1.0), "5.0x");
        assert_eq!(ratio_label(1.0, 0.0), "∞");
    }

    #[test]
    fn measurement_scales_preserve_regimes() {
        let g = measurement_scale("G1", 200_000);
        assert!((g.records as u64 / g.groups) >= 30);
        let b1 = measurement_scale("B1", 200_000);
        assert!(b1.groups > 0);
        let r = measurement_scale("R1", 200_000);
        assert_eq!(r.groups, 2_000);
    }

    #[test]
    fn measure_runs_quickly_at_tiny_scale() {
        let job = JobConfig::default();
        let (report, profile) = measure("R1", 2_000, Backend::Symple, &job).unwrap();
        assert!(report.output_rows > 0);
        assert!(profile.map_ns_per_record > 0.0);
    }

    #[test]
    fn targets_resolve() {
        assert_eq!(target_for("B1").workload.groups, 1);
    }
}
