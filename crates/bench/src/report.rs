//! The `BENCH_*.json` schema: a schema-versioned, machine-checked record
//! of one perf-regression sweep, plus the baseline diff that gates on it.
//!
//! Every future PR is judged against these files, so the format is a
//! compatibility surface like the summary wire format: the golden-schema
//! test (`tests/golden_bench_schema.rs`) pins the exact serialization, and
//! [`SCHEMA`] must be bumped on any shape change.

use std::time::{SystemTime, UNIX_EPOCH};

use symple_mapreduce::JobMetrics;
use symple_queries::QueryReport;

use crate::json::{obj, Json};

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "symple-bench/v1";

/// Machine facts recorded alongside measurements, so numbers from
/// different hosts are never compared blindly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism.
    pub cores: u64,
}

impl HostInfo {
    /// Probes the current machine.
    pub fn current() -> HostInfo {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cores: std::thread::available_parallelism()
                .map(|p| p.get() as u64)
                .unwrap_or(1),
        }
    }
}

/// Symbolic-exploration counters for one run (zero for non-SYMPLE
/// backends).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreCounters {
    /// Records fed to symbolic executors.
    pub records: u64,
    /// Update-function runs.
    pub runs: u64,
    /// Branch forks taken.
    pub forks: u64,
    /// Successful path merges.
    pub merges: u64,
    /// Flush/restart events.
    pub restarts: u64,
    /// Peak live paths in any one chunk.
    pub max_live_paths: u64,
}

/// One measured `(query, backend, segments)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Query id (`"G1"`, …).
    pub query: String,
    /// Backend label (`"MapReduce"`, `"SYMPLE"`, `"Sequential"`).
    pub backend: String,
    /// Input segment (= mapper/chunk) count.
    pub segments: u64,
    /// Records generated for the run.
    pub records: u64,
    /// End-to-end wall milliseconds (map + reduce barriers).
    pub wall_ms: f64,
    /// Summed busy milliseconds across phases.
    pub cpu_ms: f64,
    /// Map-phase CPU milliseconds.
    pub map_cpu_ms: f64,
    /// Reduce-phase CPU milliseconds.
    pub reduce_cpu_ms: f64,
    /// Raw-input throughput, MB/s.
    pub throughput_mb_s: f64,
    /// Bytes crossing the shuffle.
    pub shuffle_bytes: u64,
    /// Shuffle records.
    pub shuffle_records: u64,
    /// Encoded summary bytes (SYMPLE only; compactness axis).
    pub summary_bytes: u64,
    /// Result groups.
    pub groups: u64,
    /// Order-independent output fingerprint, `0x`-hex (cross-backend and
    /// cross-run correctness anchor).
    pub output_hash: String,
    /// Exploration counters.
    pub explore: ExploreCounters,
}

impl BenchRow {
    /// Builds a row from a query report.
    pub fn from_report(
        query: &str,
        backend: &str,
        segments: u64,
        records: u64,
        report: &QueryReport,
    ) -> BenchRow {
        let m: &JobMetrics = &report.metrics;
        BenchRow {
            query: query.to_string(),
            backend: backend.to_string(),
            segments,
            records,
            wall_ms: m.total_wall().as_secs_f64() * 1e3,
            cpu_ms: m.total_cpu().as_secs_f64() * 1e3,
            map_cpu_ms: m.map_cpu.as_secs_f64() * 1e3,
            reduce_cpu_ms: m.reduce_cpu.as_secs_f64() * 1e3,
            throughput_mb_s: m.throughput_mb_s(),
            shuffle_bytes: m.shuffle_bytes,
            shuffle_records: m.shuffle_records,
            summary_bytes: m.summary_bytes,
            groups: m.groups,
            output_hash: format!("{:#018x}", report.output_hash),
            explore: ExploreCounters {
                records: m.explore.records,
                runs: m.explore.runs,
                forks: m.explore.forks,
                merges: m.explore.merges,
                restarts: m.explore.restarts,
                max_live_paths: m.explore.max_live_paths as u64,
            },
        }
    }

    fn to_json(&self) -> Json {
        let e = &self.explore;
        obj(vec![
            ("query", Json::Str(self.query.clone())),
            ("backend", Json::Str(self.backend.clone())),
            ("segments", Json::Num(self.segments as f64)),
            ("records", Json::Num(self.records as f64)),
            ("wall_ms", Json::Num(round3(self.wall_ms))),
            ("cpu_ms", Json::Num(round3(self.cpu_ms))),
            ("map_cpu_ms", Json::Num(round3(self.map_cpu_ms))),
            ("reduce_cpu_ms", Json::Num(round3(self.reduce_cpu_ms))),
            ("throughput_mb_s", Json::Num(round3(self.throughput_mb_s))),
            ("shuffle_bytes", Json::Num(self.shuffle_bytes as f64)),
            ("shuffle_records", Json::Num(self.shuffle_records as f64)),
            ("summary_bytes", Json::Num(self.summary_bytes as f64)),
            ("groups", Json::Num(self.groups as f64)),
            ("output_hash", Json::Str(self.output_hash.clone())),
            (
                "explore",
                obj(vec![
                    ("records", Json::Num(e.records as f64)),
                    ("runs", Json::Num(e.runs as f64)),
                    ("forks", Json::Num(e.forks as f64)),
                    ("merges", Json::Num(e.merges as f64)),
                    ("restarts", Json::Num(e.restarts as f64)),
                    ("max_live_paths", Json::Num(e.max_live_paths as f64)),
                ]),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<BenchRow, String> {
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("row missing string field '{k}'"))
        };
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("row missing integer field '{k}'"))
        };
        let f = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("row missing number field '{k}'"))
        };
        let ev = v.get("explore").ok_or("row missing 'explore'")?;
        let eu = |k: &str| -> Result<u64, String> {
            ev.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("explore missing integer field '{k}'"))
        };
        Ok(BenchRow {
            query: s("query")?,
            backend: s("backend")?,
            segments: u("segments")?,
            records: u("records")?,
            wall_ms: f("wall_ms")?,
            cpu_ms: f("cpu_ms")?,
            map_cpu_ms: f("map_cpu_ms")?,
            reduce_cpu_ms: f("reduce_cpu_ms")?,
            throughput_mb_s: f("throughput_mb_s")?,
            shuffle_bytes: u("shuffle_bytes")?,
            shuffle_records: u("shuffle_records")?,
            summary_bytes: u("summary_bytes")?,
            groups: u("groups")?,
            output_hash: s("output_hash")?,
            explore: ExploreCounters {
                records: eu("records")?,
                runs: eu("runs")?,
                forks: eu("forks")?,
                merges: eu("merges")?,
                restarts: eu("restarts")?,
                max_live_paths: eu("max_live_paths")?,
            },
        })
    }
}

/// A full sweep: metadata plus one row per matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Always [`SCHEMA`] on emission; checked on parse.
    pub schema: String,
    /// Seconds since the Unix epoch at emission.
    pub created_unix: u64,
    /// `git rev-parse HEAD` of the measured tree (or `"unknown"`).
    pub git_sha: String,
    /// Measuring machine.
    pub host: HostInfo,
    /// The measured cells, in matrix order.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// An empty report stamped with the current time, host, and git sha.
    pub fn new_now() -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            created_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            git_sha: git_head_sha(),
            host: HostInfo::current(),
            rows: Vec::new(),
        }
    }

    /// Serializes to the canonical JSON text.
    pub fn render(&self) -> String {
        obj(vec![
            ("schema", Json::Str(self.schema.clone())),
            ("created_unix", Json::Num(self.created_unix as f64)),
            ("git_sha", Json::Str(self.git_sha.clone())),
            (
                "host",
                obj(vec![
                    ("os", Json::Str(self.host.os.clone())),
                    ("arch", Json::Str(self.host.arch.clone())),
                    ("cores", Json::Num(self.host.cores as f64)),
                ]),
            ),
            (
                "rows",
                Json::Arr(self.rows.iter().map(BenchRow::to_json).collect()),
            ),
        ])
        .render()
    }

    /// Parses and schema-validates a report.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let v = Json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing 'schema'")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (want '{SCHEMA}')"));
        }
        let host = v.get("host").ok_or("missing 'host'")?;
        let rows = v
            .get("rows")
            .and_then(Json::as_array)
            .ok_or("missing 'rows' array")?;
        Ok(BenchReport {
            schema: schema.to_string(),
            created_unix: v
                .get("created_unix")
                .and_then(Json::as_u64)
                .ok_or("missing 'created_unix'")?,
            git_sha: v
                .get("git_sha")
                .and_then(Json::as_str)
                .ok_or("missing 'git_sha'")?
                .to_string(),
            host: HostInfo {
                os: host
                    .get("os")
                    .and_then(Json::as_str)
                    .ok_or("host missing 'os'")?
                    .to_string(),
                arch: host
                    .get("arch")
                    .and_then(Json::as_str)
                    .ok_or("host missing 'arch'")?
                    .to_string(),
                cores: host
                    .get("cores")
                    .and_then(Json::as_u64)
                    .ok_or("host missing 'cores'")?,
            },
            rows: rows
                .iter()
                .enumerate()
                .map(|(i, r)| BenchRow::from_json(r).map_err(|e| format!("rows[{i}]: {e}")))
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// Rounds to 3 decimals so report bytes don't churn on sub-microsecond
/// noise (and stay shortest-form in JSON).
fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

/// The current `HEAD` commit, or `"unknown"` outside a git checkout.
pub fn git_head_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

// ---------------------------------------------------------------- diffing

/// One metric that got worse past the threshold (or a correctness break).
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// `(query, backend, segments)` cell key.
    pub key: String,
    /// Which metric regressed.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub current: f64,
    /// Relative change in percent (positive = worse).
    pub pct: f64,
}

/// Outcome of comparing a current report against a baseline.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Regressions past the threshold, worst first.
    pub regressions: Vec<Regression>,
    /// Cells compared.
    pub compared: u64,
    /// Non-fatal notes (rows present on one side only, scale mismatches).
    pub notes: Vec<String>,
}

impl DiffReport {
    /// True when no regression crossed the threshold.
    pub fn clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `current` against `base`, flagging any timed metric that got
/// slower by more than `threshold_pct` percent and any byte metric that
/// grew past the same bound. Output-hash changes are always regressions
/// (they mean the *answer* changed). Rows are matched on
/// `(query, backend, segments, records)`; unmatched rows produce notes,
/// not failures, so matrices can grow over time.
pub fn diff_reports(base: &BenchReport, current: &BenchReport, threshold_pct: f64) -> DiffReport {
    let mut out = DiffReport::default();
    let key = |r: &BenchRow| (r.query.clone(), r.backend.clone(), r.segments, r.records);
    for cur in &current.rows {
        let Some(b) = base.rows.iter().find(|b| key(b) == key(cur)) else {
            out.notes.push(format!(
                "new cell {}/{}@{}seg ({} records): no baseline",
                cur.query, cur.backend, cur.segments, cur.records
            ));
            continue;
        };
        out.compared += 1;
        let cell = format!("{}/{}@{}seg", cur.query, cur.backend, cur.segments);
        if b.output_hash != cur.output_hash {
            out.regressions.push(Regression {
                key: cell.clone(),
                metric: "output_hash".to_string(),
                base: 0.0,
                current: 0.0,
                pct: f64::INFINITY,
            });
        }
        let checks: [(&str, f64, f64); 4] = [
            ("wall_ms", b.wall_ms, cur.wall_ms),
            ("cpu_ms", b.cpu_ms, cur.cpu_ms),
            (
                "shuffle_bytes",
                b.shuffle_bytes as f64,
                cur.shuffle_bytes as f64,
            ),
            (
                "summary_bytes",
                b.summary_bytes as f64,
                cur.summary_bytes as f64,
            ),
        ];
        for (metric, base_v, cur_v) in checks {
            if base_v <= 0.0 {
                continue; // Nothing to regress against (e.g. baseline backend summary bytes).
            }
            let pct = (cur_v - base_v) / base_v * 100.0;
            if pct > threshold_pct {
                out.regressions.push(Regression {
                    key: cell.clone(),
                    metric: metric.to_string(),
                    base: base_v,
                    current: cur_v,
                    pct,
                });
            }
        }
    }
    for b in &base.rows {
        if !current.rows.iter().any(|c| key(c) == key(b)) {
            out.notes.push(format!(
                "cell {}/{}@{}seg ({} records) dropped from current run",
                b.query, b.backend, b.segments, b.records
            ));
        }
    }
    out.regressions.sort_by(|a, b| {
        b.pct
            .partial_cmp(&a.pct)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// A fixed, synthetic report used by the golden-schema test and the
/// self-diff tests: every field is deterministic, no clocks or hosts.
pub fn synthetic_report() -> BenchReport {
    BenchReport {
        schema: SCHEMA.to_string(),
        created_unix: 1_700_000_000,
        git_sha: "0123456789abcdef0123456789abcdef01234567".to_string(),
        host: HostInfo {
            os: "linux".to_string(),
            arch: "x86_64".to_string(),
            cores: 8,
        },
        rows: vec![
            BenchRow {
                query: "G1".to_string(),
                backend: "SYMPLE".to_string(),
                segments: 8,
                records: 3000,
                wall_ms: 12.5,
                cpu_ms: 48.25,
                map_cpu_ms: 40.0,
                reduce_cpu_ms: 8.25,
                throughput_mb_s: 104.333,
                shuffle_bytes: 18_432,
                shuffle_records: 640,
                summary_bytes: 16_900,
                groups: 88,
                output_hash: "0x00deadbeef015ca1".to_string(),
                explore: ExploreCounters {
                    records: 2625,
                    runs: 5250,
                    forks: 901,
                    merges: 640,
                    restarts: 3,
                    max_live_paths: 4,
                },
            },
            BenchRow {
                query: "G1".to_string(),
                backend: "MapReduce".to_string(),
                segments: 8,
                records: 3000,
                wall_ms: 9.0,
                cpu_ms: 31.5,
                map_cpu_ms: 12.0,
                reduce_cpu_ms: 19.5,
                throughput_mb_s: 144.9,
                shuffle_bytes: 96_000,
                shuffle_records: 704,
                summary_bytes: 0,
                groups: 88,
                output_hash: "0x00deadbeef015ca1".to_string(),
                explore: ExploreCounters::default(),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_synthetic() {
        let r = synthetic_report();
        let text = r.render();
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.render(), text, "canonical serialization");
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let text = synthetic_report()
            .render()
            .replace(SCHEMA, "symple-bench/v0");
        let err = BenchReport::parse(&text).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let text = synthetic_report()
            .render()
            .replace("\"summary_bytes\"", "\"summary_bytez\"");
        let err = BenchReport::parse(&text).unwrap_err();
        assert!(err.contains("summary_bytes"), "{err}");
    }

    #[test]
    fn self_diff_is_clean() {
        let r = synthetic_report();
        let d = diff_reports(&r, &r, 10.0);
        assert!(d.clean(), "{:?}", d.regressions);
        assert_eq!(d.compared, 2);
        assert!(d.notes.is_empty());
    }

    #[test]
    fn slowdown_past_threshold_is_flagged() {
        let base = synthetic_report();
        let mut cur = base.clone();
        cur.rows[0].wall_ms *= 1.25; // +25% > 10%
        let d = diff_reports(&base, &cur, 10.0);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].metric, "wall_ms");
        assert!(d.regressions[0].pct > 24.0);
        // Below threshold passes.
        let mut ok = base.clone();
        ok.rows[0].wall_ms *= 1.05;
        assert!(diff_reports(&base, &ok, 10.0).clean());
    }

    #[test]
    fn output_hash_change_is_always_fatal() {
        let base = synthetic_report();
        let mut cur = base.clone();
        cur.rows[1].output_hash = "0x0000000000000bad".to_string();
        let d = diff_reports(&base, &cur, 1_000.0);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].metric, "output_hash");
    }

    #[test]
    fn unmatched_rows_become_notes() {
        let base = synthetic_report();
        let mut cur = base.clone();
        cur.rows.remove(1);
        cur.rows[0].segments = 16; // now also unmatched on the other side
        let d = diff_reports(&base, &cur, 10.0);
        assert!(d.clean());
        assert_eq!(d.compared, 0);
        assert_eq!(d.notes.len(), 3, "{:?}", d.notes);
    }

    #[test]
    fn byte_growth_is_flagged() {
        let base = synthetic_report();
        let mut cur = base.clone();
        cur.rows[0].summary_bytes *= 2;
        let d = diff_reports(&base, &cur, 10.0);
        assert_eq!(d.regressions[0].metric, "summary_bytes");
    }
}
