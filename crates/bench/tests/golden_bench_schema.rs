//! Golden-file test for the `BENCH_*.json` schema: the exact rendering of
//! a fixed synthetic report is checked in under
//! `tests/golden/bench_schema.json`.
//!
//! The report format is a compatibility surface — `--baseline` diffs a
//! report written by one build against a report written by another — so
//! schema changes must be loud and deliberate. If a change is intentional,
//! bump `report::SCHEMA`, regenerate with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p symple-bench --test golden_bench_schema
//! ```
//!
//! and commit the updated golden file alongside the change (the same flow
//! as `symple-core`'s `golden_wire` test).

use symple_bench::report::{diff_reports, synthetic_report, BenchReport, SCHEMA};

const GOLDEN: &str = include_str!("golden/bench_schema.json");

fn golden_path() -> String {
    format!(
        "{}/tests/golden/bench_schema.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn golden_bench_schema() {
    let report = synthetic_report();
    let rendered = report.render();

    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(golden_path(), &rendered).unwrap();
        return;
    }

    assert_eq!(
        rendered, GOLDEN,
        "BENCH report serialization changed — if intentional, bump \
         report::SCHEMA, regenerate with REGEN_GOLDEN=1, and commit the new \
         golden file"
    );

    // The golden bytes parse, match the source report, and re-render
    // canonically — so reports survive a write → read → write cycle.
    let parsed = BenchReport::parse(GOLDEN).unwrap();
    assert_eq!(parsed, report, "golden file decodes to a different report");
    assert_eq!(parsed.render(), GOLDEN, "re-rendering not canonical");
    assert_eq!(parsed.schema, SCHEMA);

    // A parsed golden report self-diffs clean — the acceptance invariant
    // `--baseline FILE FILE` relies on.
    let diff = diff_reports(&parsed, &parsed, 0.0);
    assert!(diff.clean(), "{:?}", diff.regressions);
    assert_eq!(diff.compared, parsed.rows.len() as u64);
}

#[test]
fn golden_file_declares_current_schema_version() {
    // Belt-and-braces: the checked-in artifact itself names the version,
    // so a schema bump without regeneration fails even if rendering is
    // otherwise untouched.
    assert!(
        GOLDEN.contains(&format!("\"schema\": \"{SCHEMA}\"")),
        "golden file does not declare schema {SCHEMA}"
    );
}
