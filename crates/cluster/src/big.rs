//! The 380-node shared Hadoop cluster model (§6.4, Figures 7–8).
//!
//! On the shared, batch-scheduled cluster the paper's key metrics are
//! *overall CPU usage* and *shuffled bytes* — "reducing both helps
//! maintain the health of the overall cluster". Latency is dominated by
//! scheduling, except for the B1 anecdote where the baseline's single
//! reducer runs for 4.5 hours.

use crate::model::ScaledJob;

/// The paper's large-cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct BigClusterConfig {
    /// Machines (paper: 380).
    pub nodes: u64,
    /// Cores per machine (paper: 16 × E5-2450L at 1.8 GHz).
    pub cores_per_node: u64,
    /// Reduce tasks (paper: 50).
    pub reducers: u64,
    /// Cluster bisection bandwidth per node, bytes/s.
    pub net_bytes_per_s: f64,
    /// Disk read bandwidth per node, bytes/s.
    pub disk_bytes_per_s: f64,
    /// Hadoop streaming overhead per *input* record on the map side
    /// (feeding records through the streaming pipe into the C++ mapper) —
    /// paid identically by both systems, seconds.
    pub input_framework_s_per_record: f64,
    /// Hadoop framework overhead per shuffled record on the map side
    /// (serialization into the streaming pipe, spill, sort), seconds.
    pub map_framework_s_per_record: f64,
    /// Hadoop framework overhead per shuffled record on the reduce side
    /// (merge, deserialization, streaming pipe into the C++ reducer),
    /// seconds.
    ///
    /// Calibrated from the paper's B1 anecdote: 1.9 B single-group records
    /// took the baseline 4.5 h in one reducer ⇒ ≈ 8.5 µs/record.
    pub reduce_framework_s_per_record: f64,
}

impl Default for BigClusterConfig {
    fn default() -> BigClusterConfig {
        BigClusterConfig {
            nodes: 380,
            cores_per_node: 16,
            reducers: 50,
            net_bytes_per_s: 125.0e6,
            disk_bytes_per_s: 100.0e6,
            input_framework_s_per_record: 1.0e-6,
            map_framework_s_per_record: 1.0e-6,
            reduce_framework_s_per_record: 8.0e-6,
        }
    }
}

/// Modeled resource usage of one job on the big cluster.
#[derive(Debug, Clone, Copy)]
pub struct BigClusterReport {
    /// Total CPU seconds consumed (Figure 7's `×1000 secs`).
    pub cpu_s: f64,
    /// Shuffled bytes (Figure 8, log scale).
    pub shuffle_bytes: f64,
    /// Estimated post-scheduling job latency in seconds (map waves + the
    /// slowest reduce task; the B1 anecdote's 4.5 h vs 5.5 min).
    pub latency_s: f64,
}

impl BigClusterReport {
    /// Figure 7's unit.
    pub fn cpu_kilo_seconds(&self) -> f64 {
        self.cpu_s / 1_000.0
    }

    /// Figure 8's unit.
    pub fn shuffle_mb(&self) -> f64 {
        self.shuffle_bytes / 1.0e6
    }
}

/// Models one scaled job on the shared cluster.
pub fn big_cluster_run(cfg: &BigClusterConfig, job: &ScaledJob) -> BigClusterReport {
    // Hadoop framework overhead: streaming every input record into the
    // mapper (both systems), plus per-record shuffle costs.
    let input_fw_s = cfg.input_framework_s_per_record * job.workload.records as f64;
    let map_fw_s = cfg.map_framework_s_per_record * job.shuffle_records + input_fw_s;
    let reduce_fw_s = cfg.reduce_framework_s_per_record * job.shuffle_records;
    let map_cpu_s = job.map_cpu_s + map_fw_s;
    let reduce_cpu_s = job.reduce_cpu_s + reduce_fw_s;
    let cpu_s = map_cpu_s + reduce_cpu_s;
    // Map phase: tasks spread across the cluster, bounded by disk ingest
    // and CPU; with 380 × 16 cores the map wave count is usually 1.
    let map_tasks = job.workload.mappers.max(1);
    let slots = cfg.nodes * cfg.cores_per_node;
    let waves = map_tasks.div_ceil(slots).max(1) as f64;
    let per_task_cpu = map_cpu_s / map_tasks as f64;
    let per_task_read = job.workload.input_bytes as f64 / map_tasks as f64 / cfg.disk_bytes_per_s;
    let map_s = waves * per_task_cpu.max(per_task_read);
    // Shuffle across the bisection.
    let shuffle_s = job.shuffle_bytes / (cfg.net_bytes_per_s * cfg.nodes as f64);
    // Reduce: bounded by the busiest reducer; a single group serializes.
    let reduce_slots = cfg.reducers.min(job.workload.groups).max(1);
    let reduce_s = reduce_cpu_s / reduce_slots as f64;
    BigClusterReport {
        cpu_s,
        shuffle_bytes: job.shuffle_bytes,
        latency_s: map_s + shuffle_s + reduce_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TargetWorkload;

    fn job(map_cpu_s: f64, shuffle: f64, reduce_cpu_s: f64, groups: u64) -> ScaledJob {
        ScaledJob {
            map_cpu_s,
            shuffle_bytes: shuffle,
            shuffle_records: 0.0,
            reduce_cpu_s,
            workload: TargetWorkload {
                records: 1_900_000_000,
                input_bytes: 300_000_000_000,
                groups,
                mappers: 199,
                reducers: 50,
            },
        }
    }

    #[test]
    fn cpu_is_sum_of_phases() {
        let cfg = BigClusterConfig::default();
        let r = big_cluster_run(&cfg, &job(1_000.0, 1e9, 500.0, 100));
        // Substrate CPU plus the per-input-record streaming overhead.
        let expect = 1_500.0 + cfg.input_framework_s_per_record * 1.9e9;
        assert!((r.cpu_s - expect).abs() < 1e-6);
        assert!((r.shuffle_mb() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn b1_anecdote_shape() {
        // Baseline B1: huge reduce CPU, one group → hours of latency.
        // SYMPLE B1: tiny reduce, same group count → minutes.
        let cfg = BigClusterConfig::default();
        let baseline = big_cluster_run(&cfg, &job(2_000.0, 2e11, 16_000.0, 1));
        let symple = big_cluster_run(&cfg, &job(3_000.0, 3e4, 1.0, 1));
        assert!(
            baseline.latency_s > 4.0 * 3_600.0,
            "baseline {:.0}s",
            baseline.latency_s
        );
        assert!(
            symple.latency_s < 10.0 * 60.0,
            "symple {:.0}s",
            symple.latency_s
        );
    }

    #[test]
    fn framework_overhead_reproduces_b1_hours() {
        // The calibration case: 1.9 B records through one reducer at
        // ≈8 µs/record ⇒ ≈4.2 h, even with negligible substrate CPU.
        let cfg = BigClusterConfig::default();
        let mut baseline = job(100.0, 1e10, 50.0, 1);
        baseline.shuffle_records = 1.9e9;
        let r = big_cluster_run(&cfg, &baseline);
        assert!(r.latency_s > 4.0 * 3_600.0, "got {:.0}s", r.latency_s);
        // SYMPLE's 199 summary records carry no such cost.
        let mut symple = job(150.0, 2e4, 1.0, 1);
        symple.shuffle_records = 199.0;
        let r = big_cluster_run(&cfg, &symple);
        assert!(r.latency_s < 10.0 * 60.0, "got {:.0}s", r.latency_s);
    }

    #[test]
    fn map_waves_when_tasks_exceed_slots() {
        let cfg = BigClusterConfig {
            nodes: 2,
            cores_per_node: 2,
            ..Default::default()
        };
        let mut j = job(400.0, 1e6, 1.0, 100);
        j.workload.mappers = 8; // 8 tasks, 4 slots → 2 waves
        j.workload.input_bytes = 0;
        let r = big_cluster_run(&cfg, &j);
        // per-task cpu = 50 s, 2 waves → 100 s of map latency.
        assert!(r.latency_s >= 100.0);
    }
}
