//! The Amazon Elastic MapReduce latency model (§6.3, Figures 5–6).
//!
//! The paper's EMR setup: m3.xlarge instances (4 vCPUs, 15 GB RAM), input
//! gzipped in S3, a pipeline that saturates the instances' inbound network,
//! Hadoop handling only shuffle and sort. End-to-end latency decomposes
//! into job startup, a map phase bounded by the slower of S3 ingest and map
//! CPU, the shuffle transfer, and a reduce phase bounded by CPU and
//! per-group skew.

use crate::model::ScaledJob;

/// EMR cluster parameters.
#[derive(Debug, Clone, Copy)]
pub struct EmrConfig {
    /// Cluster instances (paper: 10 for complete RedShift, 5 otherwise).
    pub instances: u64,
    /// Virtual CPUs per instance (m3.xlarge: 4).
    pub vcpus: u64,
    /// Effective S3 ingest bandwidth per instance, bytes/s (gzip
    /// decompression folded in; the paper saturates inbound network).
    pub s3_bytes_per_s: f64,
    /// Intra-cluster network bandwidth per instance, bytes/s.
    pub net_bytes_per_s: f64,
    /// Fixed job startup/teardown seconds (YARN scheduling, JVM spin-up).
    pub startup_s: f64,
    /// Hadoop shuffle/sort overhead per shuffled record, seconds, split
    /// evenly between the map and reduce sides.
    ///
    /// The paper's EMR pipeline streams records through its own efficient
    /// C++ stages and leaves only shuffle and sort to Hadoop (§6.3), so
    /// this is far below the big-cluster streaming overhead.
    pub framework_s_per_shuffle_record: f64,
}

impl EmrConfig {
    /// The paper's m3.xlarge profile with `n` instances.
    ///
    /// m3.xlarge inbound is ≈ 125 MB/s; the *effective* S3 ingest rate is
    /// lower because the input is gzipped and must be decompressed in the
    /// read pipeline (§6.3 reads gzip from S3 over http).
    pub fn m3_xlarge(n: u64) -> EmrConfig {
        EmrConfig {
            instances: n,
            vcpus: 4,
            s3_bytes_per_s: 60.0e6,
            net_bytes_per_s: 125.0e6,
            startup_s: 60.0,
            framework_s_per_shuffle_record: 2.0e-6,
        }
    }

    /// Total compute slots.
    pub fn slots(&self) -> u64 {
        self.instances * self.vcpus
    }
}

/// Modeled end-to-end latency, with the per-phase breakdown.
#[derive(Debug, Clone, Copy)]
pub struct EmrLatency {
    /// Fixed startup.
    pub startup_s: f64,
    /// Map phase: `max(S3 ingest, map CPU / slots)` — reading and mapping
    /// pipeline against each other.
    pub map_s: f64,
    /// Shuffle transfer across the cluster bisection.
    pub shuffle_s: f64,
    /// Reduce phase, including single-group skew.
    pub reduce_s: f64,
}

impl EmrLatency {
    /// Total seconds.
    pub fn total_s(&self) -> f64 {
        self.startup_s + self.map_s + self.shuffle_s + self.reduce_s
    }

    /// Total minutes (Figure 5's unit).
    pub fn total_min(&self) -> f64 {
        self.total_s() / 60.0
    }
}

/// Models the end-to-end latency of a scaled job on an EMR cluster.
pub fn emr_latency(cfg: &EmrConfig, job: &ScaledJob) -> EmrLatency {
    let fw_s = cfg.framework_s_per_shuffle_record * job.shuffle_records / 2.0;
    let ingest_s = job.workload.input_bytes as f64 / (cfg.s3_bytes_per_s * cfg.instances as f64);
    let map_cpu_s = (job.map_cpu_s + fw_s) / cfg.slots() as f64;
    let map_s = ingest_s.max(map_cpu_s);
    let shuffle_s = job.shuffle_bytes / (cfg.net_bytes_per_s * cfg.instances as f64);
    // Reduce parallelism is capped by reducers, slots, and groups: a
    // single group serializes its whole reduction (the B1 effect).
    let reduce_slots = job
        .workload
        .reducers
        .min(cfg.slots())
        .min(job.workload.groups)
        .max(1);
    let reduce_s = (job.reduce_cpu_s + fw_s) / reduce_slots as f64;
    EmrLatency {
        startup_s: cfg.startup_s,
        map_s,
        shuffle_s,
        reduce_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TargetWorkload;

    fn job(map_cpu_s: f64, shuffle: f64, reduce_cpu_s: f64, groups: u64) -> ScaledJob {
        ScaledJob {
            map_cpu_s,
            shuffle_bytes: shuffle,
            shuffle_records: 0.0,
            reduce_cpu_s,
            workload: TargetWorkload {
                records: 1_000_000,
                input_bytes: 50_000_000_000, // 50 GB
                groups,
                mappers: 50,
                reducers: 5,
            },
        }
    }

    #[test]
    fn io_bound_map_phase() {
        // 50 GB over 5 instances at the effective S3 rate; trivial CPU →
        // map bound by ingest.
        let cfg = EmrConfig::m3_xlarge(5);
        let l = emr_latency(&cfg, &job(10.0, 1e6, 1.0, 100));
        let expect = 50.0e9 / (5.0 * cfg.s3_bytes_per_s);
        assert!((l.map_s - expect).abs() < 1.0, "map_s = {}", l.map_s);
    }

    #[test]
    fn cpu_bound_map_phase() {
        // 100 000 CPU-seconds over 20 slots = 5 000 s ≫ ingest.
        let cfg = EmrConfig::m3_xlarge(5);
        let l = emr_latency(&cfg, &job(100_000.0, 1e6, 1.0, 100));
        assert!((l.map_s - 5_000.0).abs() < 1.0);
    }

    #[test]
    fn single_group_serializes_reduce() {
        let cfg = EmrConfig::m3_xlarge(5);
        let serialized = emr_latency(&cfg, &job(1.0, 1e6, 1_000.0, 1));
        let parallel = emr_latency(&cfg, &job(1.0, 1e6, 1_000.0, 1_000));
        assert!((serialized.reduce_s - 1_000.0).abs() < 1e-6);
        assert!((parallel.reduce_s - 200.0).abs() < 1e-6, "5 reducers");
        assert!(serialized.total_s() > parallel.total_s());
    }

    #[test]
    fn shuffle_time_scales_with_bytes() {
        let cfg = EmrConfig::m3_xlarge(5);
        let small = emr_latency(&cfg, &job(1.0, 1e6, 1.0, 10));
        let large = emr_latency(&cfg, &job(1.0, 1e9, 1.0, 10));
        assert!(large.shuffle_s > small.shuffle_s * 500.0);
        assert!(large.total_min() > small.total_min());
    }

    #[test]
    fn more_instances_cut_latency() {
        let j = job(10_000.0, 1e9, 100.0, 1_000);
        let five = emr_latency(&EmrConfig::m3_xlarge(5), &j);
        let ten = emr_latency(&EmrConfig::m3_xlarge(10), &j);
        assert!(ten.total_s() < five.total_s());
    }
}
