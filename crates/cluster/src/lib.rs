#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # symple-cluster
//!
//! Cluster cost simulator for the paper's two distributed scenarios:
//! Amazon Elastic MapReduce (§6.3, Figures 5–6) and the 380-node shared
//! Hadoop cluster (§6.4, Figures 7–8).
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The paper runs on real clusters we do not have. The simulator keeps the
//! *work* real and models only the *iron*:
//!
//! 1. each query runs **for real**, in-process, on a scaled-down dataset
//!    through the actual baseline/SYMPLE jobs (`symple-mapreduce`),
//!    yielding measured per-record CPU costs and byte-accurate shuffle
//!    sizes ([`profile::MeasuredProfile`]);
//! 2. those rates are extrapolated to the paper's full dataset/cluster
//!    configuration ([`targets`]) with a structural model for how SYMPLE's
//!    shuffle scales (per *(mapper, group)* summary emission, not per
//!    record — the reason B1 shuffles "one single record" per mapper);
//! 3. phase latencies follow from configured hardware bandwidths
//!    ([`emr::EmrConfig`], [`big::BigClusterConfig`]).
//!
//! The absolute numbers depend on our hardware; the *shape* — who wins,
//! by what factor, and where the S3-bound crossover sits — is what the
//! EXPERIMENTS.md comparison tracks.

pub mod big;
pub mod emr;
pub mod model;
pub mod profile;
pub mod targets;

pub use big::{BigClusterConfig, BigClusterReport};
pub use emr::{EmrConfig, EmrLatency};
pub use model::{ScaledJob, TargetWorkload};
pub use profile::MeasuredProfile;
pub use targets::{paper_target, PaperTarget};
