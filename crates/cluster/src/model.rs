//! Extrapolation from measured rates to a full-size workload.

use crate::profile::MeasuredProfile;

/// Per-KV serialization envelope Hadoop adds to every shuffled record
/// (IFile length prefixes, partition and checksum framing). Our substrate
/// encodes compact varints; extrapolating to the paper's Hadoop clusters
/// charges this envelope on top.
pub const HADOOP_KV_ENVELOPE_BYTES: f64 = 16.0;

/// The backend whose shuffle-scaling law applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleLaw {
    /// Baseline: shuffle bytes grow linearly with input records (every
    /// projected event crosses the network).
    PerRecord,
    /// SYMPLE: shuffle bytes grow with *(mapper, group)* summary
    /// emissions, independent of chunk length (§6.4: B1 sends "one single
    /// record" per mapper).
    PerEmission,
}

/// A full-size workload to extrapolate to.
#[derive(Debug, Clone, Copy)]
pub struct TargetWorkload {
    /// Total input records of the full dataset.
    pub records: u64,
    /// Total raw bytes of the full dataset.
    pub input_bytes: u64,
    /// True number of groups at full scale.
    pub groups: u64,
    /// Map tasks (input splits) at full scale.
    pub mappers: u64,
    /// Reduce tasks at full scale.
    pub reducers: u64,
}

/// The extrapolated cost of one job at full scale.
#[derive(Debug, Clone, Copy)]
pub struct ScaledJob {
    /// Total map-phase CPU seconds (our substrate's measured compute).
    pub map_cpu_s: f64,
    /// Total shuffle bytes.
    pub shuffle_bytes: f64,
    /// Total shuffle records (drives per-record framework overhead).
    pub shuffle_records: f64,
    /// Total reduce-phase CPU seconds (our substrate's measured compute).
    pub reduce_cpu_s: f64,
    /// The workload this was scaled to.
    pub workload: TargetWorkload,
}

impl ScaledJob {
    /// Extrapolates a measured profile to `workload` under the given
    /// shuffle-scaling law.
    pub fn extrapolate(
        profile: &MeasuredProfile,
        workload: TargetWorkload,
        law: ShuffleLaw,
    ) -> ScaledJob {
        let records = workload.records as f64;
        let map_cpu_s = profile.map_ns_per_record * records / 1e9;
        let (payload_bytes, shuffle_records) = match law {
            ShuffleLaw::PerRecord => (profile.shuffle_bytes_per_record * records, records),
            ShuffleLaw::PerEmission => {
                // Emissions grow with the measured rate at which mappers
                // meet new groups, and are bounded by one per (mapper,
                // group) pair and by one per record.
                let emits = (records * profile.emits_per_record)
                    .min(workload.mappers as f64 * workload.groups as f64)
                    .min(records)
                    .max(1.0);
                (profile.bytes_per_emit * emits, emits)
            }
        };
        let shuffle_bytes = payload_bytes + HADOOP_KV_ENVELOPE_BYTES * shuffle_records;
        let reduce_cpu_s = profile.reduce_ns_per_shuffle_byte * payload_bytes / 1e9;
        ScaledJob {
            map_cpu_s,
            shuffle_bytes,
            shuffle_records,
            reduce_cpu_s,
            workload,
        }
    }

    /// Total CPU seconds across phases.
    pub fn total_cpu_s(&self) -> f64 {
        self.map_cpu_s + self.reduce_cpu_s
    }

    /// Shuffle size in megabytes.
    pub fn shuffle_mb(&self) -> f64 {
        self.shuffle_bytes / 1.0e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> MeasuredProfile {
        MeasuredProfile {
            map_ns_per_record: 1_000.0,
            shuffle_bytes_per_record: 20.0,
            bytes_per_emit: 100.0,
            emits_per_record: 0.001,
            reduce_ns_per_shuffle_byte: 50.0,
            measured_records: 100_000,
            measured_groups: 10,
            measured_mappers: 8,
        }
    }

    fn workload() -> TargetWorkload {
        TargetWorkload {
            records: 1_000_000_000,
            input_bytes: 1_000_000_000_000,
            groups: 10,
            mappers: 400,
            reducers: 50,
        }
    }

    #[test]
    fn per_record_law_scales_linearly() {
        let j = ScaledJob::extrapolate(&profile(), workload(), ShuffleLaw::PerRecord);
        assert!((j.map_cpu_s - 1_000.0).abs() < 1e-6);
        // 20 B payload + 16 B Hadoop envelope per record.
        assert!((j.shuffle_bytes - 3.6e10).abs() < 1.0);
        assert!((j.shuffle_records - 1.0e9).abs() < 1.0);
        assert!(
            (j.reduce_cpu_s - 1_000.0).abs() < 1e-6,
            "reduce CPU follows payload only"
        );
    }

    #[test]
    fn per_emission_law_caps_at_mapper_group_pairs() {
        // With few groups the emission count saturates at mappers ×
        // groups (400 × 10 = 4 000), whatever the record count.
        let j = ScaledJob::extrapolate(&profile(), workload(), ShuffleLaw::PerEmission);
        assert!((j.shuffle_records - 4_000.0).abs() < 1.0);
        let mut bigger = workload();
        bigger.records *= 100;
        let j2 = ScaledJob::extrapolate(&profile(), bigger, ShuffleLaw::PerEmission);
        assert!((j2.shuffle_records - j.shuffle_records).abs() < 1.0);
    }

    #[test]
    fn per_emission_law_follows_measured_rate() {
        // With abundant groups, emissions track the measured
        // emits-per-record rate: 1e9 × 0.001 = 1e6.
        let mut w = workload();
        w.groups = u64::MAX / 1_000;
        let j = ScaledJob::extrapolate(&profile(), w, ShuffleLaw::PerEmission);
        assert!((j.shuffle_records - 1.0e6).abs() < 1.0);
        // Payload plus envelope.
        let expect = 1.0e6 * 100.0 + 1.0e6 * HADOOP_KV_ENVELOPE_BYTES;
        assert!((j.shuffle_bytes - expect).abs() < 1.0);
    }

    #[test]
    fn single_group_shuffle_is_one_emit_per_mapper() {
        // The B1 regime.
        let mut w = workload();
        w.groups = 1;
        let j = ScaledJob::extrapolate(&profile(), w, ShuffleLaw::PerEmission);
        assert!((j.shuffle_records - 400.0).abs() < 1.0);
        assert!(j.shuffle_mb() < 0.05);
        assert!(j.total_cpu_s() > 0.0);
    }
}
