//! Measured per-unit work rates, derived from a real in-process run.

use symple_mapreduce::JobMetrics;

/// Work rates measured from one in-process job execution.
///
/// All rates are per-unit so they can be extrapolated to a larger dataset:
/// CPU per input record, shuffle bytes per record (baseline regime) and
/// per emission (SYMPLE regime), reduce CPU per shuffle byte.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredProfile {
    /// Map-phase CPU nanoseconds per input record (groupby + projection,
    /// plus symbolic execution for SYMPLE jobs).
    pub map_ns_per_record: f64,
    /// Shuffle bytes per input record (how the *baseline* shuffle scales).
    pub shuffle_bytes_per_record: f64,
    /// Shuffle bytes per shuffle emission (how the *SYMPLE* shuffle
    /// scales: one emission per (mapper, group) pair).
    pub bytes_per_emit: f64,
    /// Emissions per *input record* — the measured rate at which mappers
    /// encounter not-yet-seen groups, which temporal locality in the data
    /// keeps far below 1.
    pub emits_per_record: f64,
    /// Reduce-phase CPU nanoseconds per shuffle byte.
    pub reduce_ns_per_shuffle_byte: f64,
    /// Input records of the measurement run.
    pub measured_records: u64,
    /// Groups observed in the measurement run.
    pub measured_groups: u64,
    /// Mappers (segments) of the measurement run.
    pub measured_mappers: u64,
}

impl MeasuredProfile {
    /// Derives rates from a finished run's metrics.
    pub fn from_metrics(m: &JobMetrics, mappers: u64) -> MeasuredProfile {
        let recs = m.input_records.max(1) as f64;
        let shuffle = m.shuffle_bytes.max(1) as f64;
        let emits = m.shuffle_records.max(1) as f64;
        MeasuredProfile {
            map_ns_per_record: m.map_cpu.as_nanos() as f64 / recs,
            shuffle_bytes_per_record: m.shuffle_bytes as f64 / recs,
            bytes_per_emit: shuffle / emits,
            emits_per_record: (emits / recs).min(1.0),
            reduce_ns_per_shuffle_byte: m.reduce_cpu.as_nanos() as f64 / shuffle,
            measured_records: m.input_records,
            measured_groups: m.groups,
            measured_mappers: mappers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn metrics() -> JobMetrics {
        JobMetrics {
            input_records: 1_000,
            input_bytes: 1_000_000,
            map_cpu: Duration::from_millis(100),
            reduce_cpu: Duration::from_millis(10),
            shuffle_bytes: 50_000,
            shuffle_records: 40,
            groups: 10,
            ..JobMetrics::default()
        }
    }

    #[test]
    fn rates_computed() {
        let p = MeasuredProfile::from_metrics(&metrics(), 4);
        assert!((p.map_ns_per_record - 100_000.0).abs() < 1.0);
        assert!((p.shuffle_bytes_per_record - 50.0).abs() < 1e-9);
        assert!((p.bytes_per_emit - 1250.0).abs() < 1e-9);
        assert!((p.emits_per_record - 0.04).abs() < 1e-9);
        assert!((p.reduce_ns_per_shuffle_byte - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guarded() {
        let p = MeasuredProfile::from_metrics(&JobMetrics::default(), 0);
        assert!(p.map_ns_per_record.is_finite());
        assert!(p.bytes_per_emit.is_finite());
        assert!(p.reduce_ns_per_shuffle_byte.is_finite());
    }

    #[test]
    fn emit_rate_capped_at_one() {
        let mut m = metrics();
        m.shuffle_records = 5_000; // more emits than records is clamped
        let p = MeasuredProfile::from_metrics(&m, 4);
        assert!((p.emits_per_record - 1.0).abs() < 1e-9);
    }
}
