//! The paper's full-scale workload and cluster configurations, per query
//! (§6.1, §6.3, §6.4).

use crate::emr::EmrConfig;
use crate::model::TargetWorkload;

/// A query's full-scale target: dataset size, group regime, and cluster.
#[derive(Debug, Clone, Copy)]
pub struct PaperTarget {
    /// Query id.
    pub id: &'static str,
    /// Full-scale workload.
    pub workload: TargetWorkload,
    /// EMR configuration used by the paper for this query (EMR venue).
    pub emr: EmrConfig,
}

/// GitHub archive: 419 GB, ≈1 KB records, 12 M–22 M repositories,
/// 405 map tasks on the big cluster.
fn github(groups: u64) -> TargetWorkload {
    TargetWorkload {
        records: 419_000_000_000 / 1024,
        input_bytes: 419_000_000_000,
        groups,
        mappers: 405,
        reducers: 50,
    }
}

/// Bing query logs: 300 GB, 1.9 B queries, 199 map tasks.
fn bing(groups: u64) -> TargetWorkload {
    TargetWorkload {
        records: 1_900_000_000,
        input_bytes: 300_000_000_000,
        groups,
        mappers: 199,
        reducers: 50,
    }
}

/// Twitter: 1.23 TB of tweets in 24 h, 501 map tasks.
fn twitter(groups: u64) -> TargetWorkload {
    TargetWorkload {
        records: 500_000_000,
        input_bytes: 1_230_000_000_000,
        groups,
        mappers: 501,
        reducers: 50,
    }
}

/// RedShift benchmark: 1.2 TB complete / 50 GB condensed, 10 K
/// advertisers; map tasks from ≈1 GB splits.
fn redshift(condensed: bool) -> TargetWorkload {
    let input_bytes: u64 = if condensed {
        50_000_000_000
    } else {
        1_200_000_000_000
    };
    TargetWorkload {
        records: 1_200_000_000,
        input_bytes,
        groups: 10_000,
        mappers: (input_bytes / 1_073_741_824).max(1),
        reducers: if condensed { 5 } else { 10 },
    }
}

/// The paper's full-scale target for a query id (including `R1c`–`R4c`).
pub fn paper_target(id: &str) -> Option<PaperTarget> {
    let (id, workload, emr) = match id {
        "G1" => ("G1", github(12_000_000), EmrConfig::m3_xlarge(5)),
        "G2" => ("G2", github(12_000_000), EmrConfig::m3_xlarge(5)),
        "G3" => ("G3", github(12_000_000), EmrConfig::m3_xlarge(5)),
        "G4" => ("G4", github(22_000_000), EmrConfig::m3_xlarge(5)),
        "B1" => ("B1", bing(1), EmrConfig::m3_xlarge(5)),
        "B2" => ("B2", bing(50), EmrConfig::m3_xlarge(5)),
        "B3" => ("B3", bing(100_000_000), EmrConfig::m3_xlarge(5)),
        "T1" => ("T1", twitter(10_000_000), EmrConfig::m3_xlarge(5)),
        "R1" => ("R1", redshift(false), EmrConfig::m3_xlarge(10)),
        "R2" => ("R2", redshift(false), EmrConfig::m3_xlarge(10)),
        "R3" => ("R3", redshift(false), EmrConfig::m3_xlarge(10)),
        "R4" => ("R4", redshift(false), EmrConfig::m3_xlarge(10)),
        "R1c" => ("R1c", redshift(true), EmrConfig::m3_xlarge(5)),
        "R2c" => ("R2c", redshift(true), EmrConfig::m3_xlarge(5)),
        "R3c" => ("R3c", redshift(true), EmrConfig::m3_xlarge(5)),
        "R4c" => ("R4c", redshift(true), EmrConfig::m3_xlarge(5)),
        _ => return None,
    };
    Some(PaperTarget { id, workload, emr })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_ids_have_targets() {
        for id in [
            "G1", "G2", "G3", "G4", "B1", "B2", "B3", "T1", "R1", "R2", "R3", "R4", "R1c", "R2c",
            "R3c", "R4c",
        ] {
            let t = paper_target(id).unwrap_or_else(|| panic!("missing target {id}"));
            assert_eq!(t.id, id);
            assert!(t.workload.records > 0);
            assert!(t.workload.mappers > 0);
        }
        assert!(paper_target("X1").is_none());
    }

    #[test]
    fn group_regimes_match_table1() {
        assert_eq!(paper_target("B1").unwrap().workload.groups, 1);
        assert_eq!(paper_target("R1").unwrap().workload.groups, 10_000);
        assert_eq!(paper_target("G4").unwrap().workload.groups, 22_000_000);
    }

    #[test]
    fn condensed_redshift_is_smaller() {
        let complete = paper_target("R1").unwrap().workload;
        let condensed = paper_target("R1c").unwrap().workload;
        assert!(condensed.input_bytes < complete.input_bytes / 20);
        assert_eq!(condensed.records, complete.records);
        // Paper: 10 instances for complete, 5 for condensed.
        assert_eq!(paper_target("R1").unwrap().emr.instances, 10);
        assert_eq!(paper_target("R1c").unwrap().emr.instances, 5);
    }

    #[test]
    fn big_cluster_mapper_counts_match_paper() {
        assert_eq!(paper_target("G1").unwrap().workload.mappers, 405);
        assert_eq!(paper_target("B1").unwrap().workload.mappers, 199);
        assert_eq!(paper_target("T1").unwrap().workload.mappers, 501);
    }
}
