//! Static UDA analysis by abstract interpretation (the backend of the
//! `symple-lint` tool).
//!
//! The analyzer runs a UDA's `update` **once per event variant** in the
//! [`SymCtx::analysis`] mode, starting every state field from the abstract
//! "top" symbolic value (exactly what [`make_state_symbolic`] produces for
//! a non-first chunk). Analysis mode forks like symbolic mode, so the
//! explored paths *are* the per-record path tree of the executor — but the
//! analyzer keeps the per-op footprint instead of caring about the results.
//!
//! From one abstract run per variant it derives:
//!
//! * the **branching factor** `B` (paths per record) and the post-merge
//!   count `M`, giving the worst-case path-growth matrix per
//!   [`MergePolicy`];
//! * per-field write behaviour, recovered by diffing [`FieldFacts`] before
//!   and after each path (growing accumulators, rebinds, predicate-window
//!   growth, vector accumulation);
//! * **liveness**: a field is live if a guard or predicate read it (the
//!   footprint), a vector element references it, or perturbing it in the
//!   initial state changes `result` on any of a family of short concrete
//!   replays. Written-but-dead fields are the `SY005` lint.
//!
//! Soundness note: because the abstract start state is "top" — the least
//! constrained state the executor can ever be in — every runtime path tree
//! for a record of variant `v` is a pruned subtree of the analysis tree
//! for `v`. Hence the runtime per-record branching never exceeds the
//! analysis `B`, which is what makes [`UdaAnalysis::predicted_max_live`] a
//! true upper bound (checked by property tests in `symple-analyze`).

use crate::ctx::{OpKind, SymCtx};
use crate::engine::merge::merge_paths;
use crate::engine::{EngineConfig, MergePolicy};
use crate::state::{make_state_symbolic, FieldFacts, SymState};
use crate::uda::Uda;

/// Paths explored per variant before the analyzer gives up and reports the
/// variant as exploding. Matches the executor's default per-record bound,
/// so "exploded here" implies "refused there" under the default config.
pub const ANALYSIS_PATH_BOUND: usize = 64;

/// Backstop on `update` re-executions per variant (error paths do not
/// count toward [`ANALYSIS_PATH_BOUND`], so a variant whose paths all fail
/// would otherwise spin).
const ANALYSIS_RUN_BOUND: usize = 4 * ANALYSIS_PATH_BOUND;

/// What one event variant did to one state field, joined over all of the
/// variant's abstract paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FieldDelta {
    /// Some path changed the field's canonical form.
    pub wrote: bool,
    /// Some path rebound the field to a concrete value (affine `a = 0`,
    /// an enum/bool binding, or a predicate `set`).
    pub rebound: bool,
    /// Largest `|b|` among paths that left the field as `x + b` with
    /// `b ≠ 0` — the growth step of an unguarded accumulator.
    pub growth_step: u64,
    /// Some path left a transfer with `|a| > 1` (multiplicative growth).
    pub multiplicative: bool,
    /// Largest predicate decision-window length reached on any path.
    pub pred_window_growth: usize,
    /// Some path grew the decision window *and* left the predicate value
    /// unknown — the window keeps growing on every further record.
    pub pred_left_unknown: bool,
    /// Largest number of elements any path appended to a vector field.
    pub pushed: usize,
    /// Largest number of *symbolic* elements any path appended.
    pub pushed_symbolic: usize,
}

impl FieldDelta {
    /// Joins the facts-diff of one abstract path into the delta.
    fn absorb(&mut self, base: &FieldFacts, post: &FieldFacts) {
        match post.kind {
            "int" => {
                if post.affine != base.affine {
                    self.wrote = true;
                }
                if let Some((a, b)) = post.affine {
                    if a == 0 {
                        self.rebound = true;
                    }
                    if a == 1 && b != 0 {
                        self.growth_step = self.growth_step.max(b.unsigned_abs());
                    }
                    if a.unsigned_abs() > 1 {
                        self.multiplicative = true;
                    }
                }
            }
            "pred" => {
                if post.concrete {
                    // `make_symbolic` leaves predicates unknown, so a
                    // concrete value here means the path called `set`.
                    self.wrote = true;
                    self.rebound = true;
                }
                let d = post.decisions.unwrap_or(0);
                self.pred_window_growth = self.pred_window_growth.max(d);
                if d > 0 && !post.concrete {
                    self.pred_left_unknown = true;
                }
            }
            "vector" => {
                let len = post.len.unwrap_or(0);
                if len > 0 {
                    self.wrote = true;
                }
                self.pushed = self.pushed.max(len);
                self.pushed_symbolic = self.pushed_symbolic.max(post.symbolic_elems.unwrap_or(0));
            }
            _ => {
                if post != base {
                    self.wrote = true;
                }
                if post.concrete && !base.concrete {
                    self.rebound = true;
                }
            }
        }
    }
}

/// The abstract interpretation of one event variant.
#[derive(Debug, Clone)]
pub struct VariantAnalysis {
    /// The variant's display name (e.g. `"Push"`, `"session_end"`).
    pub name: &'static str,
    /// Paths the variant's `update` produces from the top state (`B`).
    pub branching: usize,
    /// Paths remaining after [`merge_paths`] (`M ≤ B`).
    pub merged: usize,
    /// The variant hit [`ANALYSIS_PATH_BOUND`] with choices outstanding.
    pub exploded: bool,
    /// First error any abstract path latched (e.g. a predicate window
    /// bound hit under the abstract state).
    pub error: Option<String>,
    /// Per-field behaviour, indexed like [`SymState::fields_ref`].
    pub deltas: Vec<FieldDelta>,
}

/// One state field's behaviour joined over every variant, plus liveness.
#[derive(Debug, Clone)]
pub struct FieldReport {
    /// Declared field name (dotted for flattened nested structs).
    pub name: String,
    /// Type family from [`FieldFacts::kind`].
    pub kind: &'static str,
    /// Declared bit width (integer fields).
    pub width: Option<u8>,
    /// Configured decision-window bound (predicate fields).
    pub max_decisions: Option<usize>,
    /// Some variant writes the field.
    pub written: bool,
    /// Some variant path rebinds the field to a concrete value.
    pub rebound: bool,
    /// A guard or predicate evaluation read the field (footprint).
    pub guard_read: bool,
    /// Perturbing the field's initial value changes `result` on some
    /// concrete replay — or the field cannot be perturbed, which the
    /// analyzer conservatively treats as "read".
    pub result_read: bool,
    /// A vector element references the field symbolically.
    pub vector_ref: bool,
    /// Largest unguarded accumulator step over all variants.
    pub growth_step: u64,
    /// Some variant leaves a multiplicative transfer.
    pub multiplicative: bool,
    /// Largest predicate decision window reached by a single record.
    pub pred_window_growth: usize,
    /// The window grows without the value ever binding.
    pub pred_left_unknown: bool,
    /// Largest per-record element append to this vector field.
    pub pushed: usize,
    /// Largest per-record *symbolic* element append.
    pub pushed_symbolic: usize,
}

impl FieldReport {
    /// Whether anything observable reads the field.
    pub fn live(&self) -> bool {
        self.guard_read || self.result_read || self.vector_ref
    }

    /// Written but never read: the `SY005` condition.
    pub fn dead(&self) -> bool {
        self.written && !self.live()
    }
}

/// The full static analysis of one UDA.
#[derive(Debug, Clone)]
pub struct UdaAnalysis {
    /// Per-field reports, in [`SymState::fields_ref`] order.
    pub fields: Vec<FieldReport>,
    /// Per-variant reports, in the caller's variant order.
    pub variants: Vec<VariantAnalysis>,
}

impl UdaAnalysis {
    /// Worst per-record branching factor over all variants (≥ 1).
    pub fn max_branching(&self) -> usize {
        self.variants
            .iter()
            .map(|v| v.branching)
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// Worst post-merge path count over all variants (≥ 1).
    pub fn max_merged(&self) -> usize {
        self.variants
            .iter()
            .map(|v| v.merged)
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// Whether any variant exceeded the analysis path bound.
    pub fn any_exploded(&self) -> bool {
        self.variants.iter().any(|v| v.exploded)
    }

    /// First abstract-run error over all variants.
    pub fn first_error(&self) -> Option<&str> {
        self.variants.iter().find_map(|v| v.error.as_deref())
    }

    /// Indices of written-but-never-read fields.
    pub fn dead_fields(&self) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.dead())
            .map(|(i, _)| i)
            .collect()
    }

    /// The per-record live-path growth factor under a merge policy.
    pub fn growth_factor(&self, policy: MergePolicy) -> usize {
        match policy {
            MergePolicy::Never => self.max_branching(),
            MergePolicy::Eager | MergePolicy::HighWater => self.max_merged(),
        }
    }

    /// Worst-case live paths after `0..=horizon` records under `policy`,
    /// ignoring the restart fallback (the raw growth matrix).
    pub fn path_growth(&self, policy: MergePolicy, horizon: usize) -> Vec<u64> {
        let g = self.growth_factor(policy) as u64;
        let mut out = Vec::with_capacity(horizon + 1);
        let mut p = 1u64;
        out.push(p);
        for _ in 0..horizon {
            p = p.saturating_mul(g);
            out.push(p);
        }
        out
    }

    /// Upper bound on [`crate::engine::ExploreStats::max_live_paths`] for
    /// any input stream made of the analyzed variants, under `cfg`.
    ///
    /// The restart fallback guarantees at most `max_total_paths` live
    /// paths enter a record, and the analysis `B` bounds the per-path
    /// fan-out; the post-record peak is their product. `u64::MAX` when a
    /// variant exploded (its true `B` is unknown).
    pub fn predicted_max_live(&self, cfg: &EngineConfig) -> u64 {
        if self.any_exploded() {
            return u64::MAX;
        }
        (cfg.max_total_paths.max(1) as u64).saturating_mul(self.max_branching() as u64)
    }

    /// Whether the analyzer predicts the executor will refuse (report
    /// [`crate::Error::PathExplosion`]) on adversarial streams of the
    /// analyzed variants under `cfg`.
    ///
    /// This is a prediction, not a proof: the simulation assumes the
    /// worst variant repeats and that runtime merging does no better than
    /// the analysis `M`. It is used to skip doomed configurations (the
    /// oracle's `--analyze-first`), where a false negative merely runs
    /// the doomed cell anyway.
    pub fn predicts_refusal(&self, cfg: &EngineConfig) -> bool {
        if self.variants.is_empty() {
            return false;
        }
        if self.any_exploded() && cfg.max_paths_per_record <= ANALYSIS_PATH_BOUND {
            return true;
        }
        let b = self.max_branching() as u128;
        let m = (self.growth_factor(cfg.merge_policy) as u128).min(b);
        if m <= 1 {
            return false;
        }
        // Simulate the executor's live-path loop; with m ≥ 2 the restart
        // cycle repeats within ~log2(max_total) records, so 128 rounds
        // decide it.
        let mut live = 1u128;
        for _ in 0..128 {
            if live.saturating_mul(b) > cfg.max_paths_per_record as u128 {
                return true;
            }
            live = live.saturating_mul(m);
            if live > cfg.max_total_paths as u128 {
                live = 1;
            }
        }
        false
    }
}

impl EngineConfig {
    /// Derives engine tuning from a static analysis.
    ///
    /// * `B ≤ 1`: the UDA never forks — merging is pure overhead, so
    ///   `Never`.
    /// * `M < B`: sibling paths of a single record already merge;
    ///   `Eager` when they collapse completely (`M == 1`), the paper's
    ///   `HighWater` heuristic otherwise.
    /// * `M == B > 1` but some path rebinds a field: single-record
    ///   siblings stay distinct, yet rebinding paths from *different*
    ///   records converge (the Figure 3 max pattern) — `HighWater`.
    /// * otherwise nothing ever merges (the restart-prone shape): `Never`
    ///   and rely on the restart fallback.
    ///
    /// The path bounds are pre-sized from the same numbers: enough
    /// headroom for `B`-way fan-out of a full complement of live paths,
    /// clamped to sane defaults.
    pub fn from_analysis(analysis: &UdaAnalysis) -> EngineConfig {
        let b = analysis.max_branching();
        let m = analysis.max_merged();
        let rebinds = analysis.fields.iter().any(|f| f.rebound);
        let merge_policy = if b <= 1 {
            MergePolicy::Never
        } else if m == 1 {
            MergePolicy::Eager
        } else if m < b || rebinds {
            MergePolicy::HighWater
        } else {
            MergePolicy::Never
        };
        let max_total_paths = (b * m).clamp(4, 64);
        let max_paths_per_record = (max_total_paths * b).clamp(16, 1024);
        EngineConfig {
            max_paths_per_record,
            max_total_paths,
            merge_policy,
            ..EngineConfig::default()
        }
    }
}

/// Abstractly interprets `uda`'s `update` once per event variant and
/// probes result liveness, producing the full [`UdaAnalysis`].
///
/// `variants` supplies one representative event per control-flow variant
/// of the UDA's event type (for an enum-of-ops event, one per op; for a
/// numeric event, representatives of the magnitude classes). The variant
/// events are also replayed concretely — in isolation, in ordered pairs
/// and concatenated twice — for the perturbation-based liveness probe.
pub fn analyze_uda<U>(uda: &U, variants: &[(&'static str, U::Event)]) -> UdaAnalysis
where
    U: Uda,
    U::Output: std::fmt::Debug,
{
    let init = uda.init();
    let names = init.field_names();
    let n = names.len();
    let mut top = init.clone();
    make_state_symbolic(&mut top);
    let base: Vec<FieldFacts> = top.fields_ref().iter().map(|f| f.facts()).collect();

    let mut guard_read = vec![false; n];
    let mut vector_ref = vec![false; n];
    let mut out_variants = Vec::with_capacity(variants.len());

    for (vname, event) in variants {
        let mut ctx = SymCtx::analysis();
        let mut paths: Vec<U::State> = Vec::new();
        let mut deltas = vec![FieldDelta::default(); n];
        let mut exploded = false;
        let mut error: Option<String> = None;
        let mut runs = 0usize;
        loop {
            runs += 1;
            let mut s = top.clone();
            ctx.begin_run();
            uda.update(&mut s, &mut ctx, event);
            for op in ctx.take_footprint() {
                if matches!(op.kind, OpKind::Guard | OpKind::PredEval) {
                    if let Some(f) = op.field {
                        if f.index() < n {
                            guard_read[f.index()] = true;
                        }
                    }
                }
            }
            match ctx.take_error() {
                Some(e) => {
                    error.get_or_insert_with(|| e.to_string());
                }
                None => {
                    for (i, (fld, b)) in s.fields_ref().iter().zip(&base).enumerate() {
                        let post = fld.facts();
                        deltas[i].absorb(b, &post);
                        for r in &post.refs {
                            if r.index() < n {
                                vector_ref[r.index()] = true;
                            }
                        }
                    }
                    paths.push(s);
                }
            }
            if paths.len() >= ANALYSIS_PATH_BOUND || runs >= ANALYSIS_RUN_BOUND {
                exploded = ctx.advance();
                break;
            }
            if !ctx.advance() {
                break;
            }
        }
        let branching = paths.len().max(1);
        merge_paths(&mut paths);
        let merged = paths.len().max(1);
        out_variants.push(VariantAnalysis {
            name: vname,
            branching,
            merged,
            exploded,
            error,
            deltas,
        });
    }

    let result_read = probe_result_reads(uda, variants, n);

    let fields = (0..n)
        .map(|i| {
            let mut r = FieldReport {
                name: names[i].clone(),
                kind: base[i].kind,
                width: base[i].width,
                max_decisions: base[i].max_decisions,
                written: false,
                rebound: false,
                guard_read: guard_read[i],
                result_read: result_read[i],
                vector_ref: vector_ref[i],
                growth_step: 0,
                multiplicative: false,
                pred_window_growth: 0,
                pred_left_unknown: false,
                pushed: 0,
                pushed_symbolic: 0,
            };
            for v in &out_variants {
                let d = &v.deltas[i];
                r.written |= d.wrote;
                r.rebound |= d.rebound;
                r.growth_step = r.growth_step.max(d.growth_step);
                r.multiplicative |= d.multiplicative;
                r.pred_window_growth = r.pred_window_growth.max(d.pred_window_growth);
                r.pred_left_unknown |= d.pred_left_unknown;
                r.pushed = r.pushed.max(d.pushed);
                r.pushed_symbolic = r.pushed_symbolic.max(d.pushed_symbolic);
            }
            r
        })
        .collect();

    UdaAnalysis {
        fields,
        variants: out_variants,
    }
}

/// Perturbation-based result liveness: field `i` is result-read if
/// perturbing it in the initial state changes the concrete output of any
/// sample replay. Fields that cannot be perturbed count as read.
fn probe_result_reads<U>(uda: &U, variants: &[(&'static str, U::Event)], n: usize) -> Vec<bool>
where
    U: Uda,
    U::Output: std::fmt::Debug,
{
    let mut seqs: Vec<Vec<&U::Event>> = vec![Vec::new()];
    for (_, e) in variants {
        seqs.push(vec![e]);
    }
    for (_, a) in variants {
        for (_, b) in variants {
            seqs.push(vec![a, b]);
        }
    }
    let all: Vec<&U::Event> = variants.iter().map(|(_, e)| e).collect();
    let mut twice = all.clone();
    twice.extend(all.iter().copied());
    seqs.push(twice);

    (0..n)
        .map(|i| {
            let mut probe = uda.init();
            if !probe.fields_mut()[i].perturb() {
                return true; // Unperturbable → conservatively read.
            }
            seqs.iter().any(|seq| {
                let baseline = replay(uda, uda.init(), seq);
                let mut init = uda.init();
                init.fields_mut()[i].perturb();
                replay(uda, init, seq) != baseline
            })
        })
        .collect()
}

/// Concrete replay for the liveness probe; `None` when the run errors.
fn replay<U>(uda: &U, mut s: U::State, seq: &[&U::Event]) -> Option<String>
where
    U: Uda,
    U::Output: std::fmt::Debug,
{
    let mut ctx = SymCtx::concrete();
    for e in seq {
        uda.update(&mut s, &mut ctx, e);
        if ctx.has_error() {
            return None;
        }
    }
    let out = uda.result(&s, &mut ctx);
    if ctx.take_error().is_some() {
        return None;
    }
    Some(format!("{out:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SymbolicExecutor;
    use crate::error::Result;
    use crate::impl_sym_state;
    use crate::state::{FieldId, SymField};
    use crate::types::scalar::ScalarTransfer;
    use crate::types::sym_bool::SymBool;
    use crate::types::sym_int::SymInt;
    use crate::types::sym_vector::SymVector;
    use crate::wire::WireError;

    struct MaxUda;

    #[derive(Clone, Debug)]
    struct MaxState {
        max: SymInt,
    }
    impl_sym_state!(MaxState { max });

    impl Uda for MaxUda {
        type State = MaxState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> MaxState {
            MaxState {
                max: SymInt::new(i64::MIN),
            }
        }
        fn update(&self, s: &mut MaxState, ctx: &mut SymCtx, e: &i64) {
            if s.max.lt(ctx, *e) {
                s.max.assign(*e);
            }
        }
        fn result(&self, s: &MaxState, _ctx: &mut SymCtx) -> i64 {
            s.max.concrete_value().unwrap_or(i64::MIN)
        }
    }

    #[test]
    fn max_uda_branching_and_liveness() {
        let a = analyze_uda(&MaxUda, &[("event", 10)]);
        assert_eq!(a.max_branching(), 2, "lt forks once from top");
        assert_eq!(a.max_merged(), 2, "assign vs identity cannot merge");
        assert!(!a.any_exploded());
        let f = &a.fields[0];
        assert_eq!(f.name, "max");
        assert_eq!(f.kind, "int");
        assert!(f.written && f.rebound);
        assert!(f.guard_read, "lt is a guard read");
        assert!(f.result_read, "result returns the max");
        assert!(a.dead_fields().is_empty());
        // Rebinding paths converge across records → HighWater.
        let cfg = EngineConfig::from_analysis(&a);
        assert_eq!(cfg.merge_policy, MergePolicy::HighWater);
        assert_eq!(cfg.max_total_paths, 4);
        assert_eq!(cfg.max_paths_per_record, 16);
    }

    struct DeadFieldUda;

    #[derive(Clone, Debug)]
    struct DeadState {
        used: SymInt,
        unused: SymInt,
    }
    impl_sym_state!(DeadState { used, unused });

    impl Uda for DeadFieldUda {
        type State = DeadState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> DeadState {
            DeadState {
                used: SymInt::new(0),
                unused: SymInt::new(0),
            }
        }
        fn update(&self, s: &mut DeadState, ctx: &mut SymCtx, e: &i64) {
            s.used.add(ctx, *e);
            s.unused += 1;
        }
        fn result(&self, s: &DeadState, _ctx: &mut SymCtx) -> i64 {
            s.used.concrete_value().unwrap_or(0)
        }
    }

    #[test]
    fn dead_field_detected() {
        let a = analyze_uda(&DeadFieldUda, &[("event", 3)]);
        assert_eq!(a.max_branching(), 1);
        let unused = &a.fields[1];
        assert!(unused.written && !unused.guard_read && !unused.result_read);
        assert!(unused.dead());
        assert_eq!(a.dead_fields(), vec![1]);
        assert_eq!(a.fields[0].growth_step, 3, "used grows by the event");
        assert_eq!(unused.growth_step, 1);
        // No forks → merging is wasted work.
        let cfg = EngineConfig::from_analysis(&a);
        assert_eq!(cfg.merge_policy, MergePolicy::Never);
    }

    struct ExplodingUda;

    #[derive(Clone, Debug)]
    struct ManyBools {
        b0: SymBool,
        b1: SymBool,
        b2: SymBool,
        b3: SymBool,
        b4: SymBool,
        b5: SymBool,
        b6: SymBool,
    }
    impl_sym_state!(ManyBools {
        b0,
        b1,
        b2,
        b3,
        b4,
        b5,
        b6
    });

    impl Uda for ExplodingUda {
        type State = ManyBools;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> ManyBools {
            ManyBools {
                b0: SymBool::new(false),
                b1: SymBool::new(false),
                b2: SymBool::new(false),
                b3: SymBool::new(false),
                b4: SymBool::new(false),
                b5: SymBool::new(false),
                b6: SymBool::new(false),
            }
        }
        fn update(&self, s: &mut ManyBools, ctx: &mut SymCtx, _e: &i64) {
            // 2^7 = 128 paths per record: hopeless.
            let _ = s.b0.get(ctx);
            let _ = s.b1.get(ctx);
            let _ = s.b2.get(ctx);
            let _ = s.b3.get(ctx);
            let _ = s.b4.get(ctx);
            let _ = s.b5.get(ctx);
            let _ = s.b6.get(ctx);
        }
        fn result(&self, _s: &ManyBools, _ctx: &mut SymCtx) -> i64 {
            0
        }
    }

    #[test]
    fn explosion_flagged_at_bound() {
        let a = analyze_uda(&ExplodingUda, &[("event", 0)]);
        assert!(a.any_exploded());
        assert_eq!(a.max_branching(), ANALYSIS_PATH_BOUND);
        assert_eq!(a.predicted_max_live(&EngineConfig::default()), u64::MAX);
        assert!(a.predicts_refusal(&EngineConfig::default()));
    }

    struct UnmergeableUda;

    #[derive(Clone, Debug)]
    struct UnmergeableState {
        v: SymInt,
    }
    impl_sym_state!(UnmergeableState { v });

    impl Uda for UnmergeableUda {
        type State = UnmergeableState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> UnmergeableState {
            UnmergeableState { v: SymInt::new(0) }
        }
        fn update(&self, s: &mut UnmergeableState, ctx: &mut SymCtx, _e: &i64) {
            if s.v.lt(ctx, 0) {
                s.v += 1;
            } else {
                s.v += 2;
            }
        }
        fn result(&self, s: &UnmergeableState, _ctx: &mut SymCtx) -> i64 {
            s.v.concrete_value().unwrap_or(0)
        }
    }

    #[test]
    fn refusal_prediction_tracks_config() {
        let a = analyze_uda(&UnmergeableUda, &[("event", 0)]);
        assert_eq!(a.max_branching(), 2);
        assert_eq!(a.max_merged(), 2, "distinct +1/+2 transfers never merge");
        // Tiny per-record bound, huge total bound: the doubling trips it.
        let doomed = EngineConfig {
            max_paths_per_record: 4,
            max_total_paths: 1_000,
            merge_policy: MergePolicy::Never,
            ..EngineConfig::default()
        };
        assert!(a.predicts_refusal(&doomed));
        // Restart fallback keeps the same UDA inside a generous bound.
        let fine = EngineConfig {
            max_paths_per_record: 1_024,
            max_total_paths: 8,
            merge_policy: MergePolicy::Never,
            ..EngineConfig::default()
        };
        assert!(!a.predicts_refusal(&fine));
        // Unmergeable, nothing rebinds → Never.
        let cfg = EngineConfig::from_analysis(&a);
        assert_eq!(cfg.merge_policy, MergePolicy::Never);
    }

    struct VecRefUda;

    #[derive(Clone, Debug)]
    struct VecRefState {
        n: SymInt,
        out: SymVector<i64>,
    }
    impl_sym_state!(VecRefState { n, out });

    impl Uda for VecRefUda {
        type State = VecRefState;
        type Event = i64;
        type Output = Vec<i64>;
        fn init(&self) -> VecRefState {
            VecRefState {
                n: SymInt::new(0),
                out: SymVector::new(),
            }
        }
        fn update(&self, s: &mut VecRefState, ctx: &mut SymCtx, e: &i64) {
            s.n.add(ctx, *e);
            if s.n.gt(ctx, 10) {
                s.out.push_int(&s.n);
                s.n.assign(0);
            }
        }
        fn result(&self, s: &VecRefState, _ctx: &mut SymCtx) -> Vec<i64> {
            s.out.concrete_elems().unwrap_or_default()
        }
    }

    #[test]
    fn vector_refs_keep_source_field_live() {
        let a = analyze_uda(&VecRefUda, &[("event", 4)]);
        let n = &a.fields[0];
        assert!(n.vector_ref, "n flows into the vector symbolically");
        assert!(n.rebound, "assign(0) rebinds n");
        let out = &a.fields[1];
        assert_eq!(out.kind, "vector");
        assert!(out.pushed >= 1 && out.pushed_symbolic >= 1);
        assert!(a.dead_fields().is_empty());
    }

    #[test]
    fn predicted_max_live_bounds_observed_peak() {
        // Deterministic spot check of the bound the symple-analyze
        // proptest hammers with random streams.
        let a = analyze_uda(&UnmergeableUda, &[("event", 0)]);
        let cfg = EngineConfig {
            max_paths_per_record: 1_024,
            max_total_paths: 8,
            merge_policy: MergePolicy::Never,
            ..EngineConfig::default()
        };
        let mut exec = SymbolicExecutor::new(&UnmergeableUda, cfg);
        for e in 0..12 {
            exec.feed(&e).unwrap();
        }
        let (_, stats) = exec.finish();
        assert!(stats.max_live_paths as u64 <= a.predicted_max_live(&cfg));
    }

    /// A field type outside the bundled set: keeps the trait's default
    /// `facts`/`perturb`, so the analyzer must fall back to conservative
    /// treatment (opaque kind, never reported dead).
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct OpaqueField {
        v: i64,
    }

    impl SymField for OpaqueField {
        fn make_symbolic(&mut self, _id: FieldId) {}
        fn is_concrete(&self) -> bool {
            true
        }
        fn transfer_eq(&self, other: &dyn SymField) -> bool {
            crate::state::downcast::<OpaqueField>(other).is_some_and(|o| o == self)
        }
        fn constraint_eq(&self, _other: &dyn SymField) -> bool {
            true
        }
        fn constraint_overlaps(&self, _other: &dyn SymField) -> bool {
            true
        }
        fn union_constraint(&mut self, _other: &dyn SymField) -> bool {
            true
        }
        fn compose_onto(
            &mut self,
            _prev: &dyn SymField,
            _prev_all: &[&dyn SymField],
        ) -> Result<bool> {
            Ok(true)
        }
        fn transfer(&self) -> Option<ScalarTransfer> {
            None
        }
        fn encode_field(&self, _buf: &mut Vec<u8>) {}
        fn decode_field(&mut self, _buf: &mut &[u8], _id: FieldId) -> Result<(), WireError> {
            Ok(())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn describe(&self) -> String {
            format!("opaque({})", self.v)
        }
    }

    struct OpaqueUda;

    #[derive(Clone, Debug)]
    struct OpaqueState {
        o: OpaqueField,
    }
    impl_sym_state!(OpaqueState { o });

    impl Uda for OpaqueUda {
        type State = OpaqueState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> OpaqueState {
            OpaqueState {
                o: OpaqueField { v: 0 },
            }
        }
        fn update(&self, s: &mut OpaqueState, _ctx: &mut SymCtx, e: &i64) {
            s.o.v += *e;
        }
        fn result(&self, _s: &OpaqueState, _ctx: &mut SymCtx) -> i64 {
            0
        }
    }

    #[test]
    fn opaque_fields_are_conservative() {
        let a = analyze_uda(&OpaqueUda, &[("event", 1)]);
        let f = &a.fields[0];
        assert_eq!(f.kind, "opaque");
        // The default facts snapshot carries no canonical form, so the
        // write is invisible — conservative in the right direction (an
        // undetected write can never produce a dead-field lint).
        assert!(!f.written);
        assert!(f.result_read, "unperturbable → treated as read");
        assert!(!f.dead());
        assert!(a.dead_fields().is_empty());
    }

    #[test]
    fn path_growth_matrix_shapes() {
        let a = analyze_uda(&UnmergeableUda, &[("event", 0)]);
        assert_eq!(a.path_growth(MergePolicy::Never, 4), vec![1, 2, 4, 8, 16]);
        let b = analyze_uda(&DeadFieldUda, &[("event", 1)]);
        assert_eq!(b.path_growth(MergePolicy::Never, 3), vec![1, 1, 1, 1]);
    }
}
