//! Generated UDAs: a bounded, serializable AST over the symbolic data
//! types, plus an independent concrete reference interpreter.
//!
//! The fuzzer (crate `symple-fuzz`) generates random well-typed
//! [`Program`]s, wraps them in [`AstUda`] — an ordinary [`Uda`] whose
//! state is a dynamic field list — and differential-checks every
//! executor against [`eval_concrete`], which evaluates the same AST over
//! plain `i64`s with hand-written checked arithmetic. The two
//! implementations share *no* evaluation code: `AstUda` goes through
//! `SymInt`/`SymBool`/`SymEnum`/`SymMinMax`/`SymPred`/`SymVector` (and
//! therefore through path exploration, merging, and composition), while
//! the reference is a direct fold. Any disagreement on any input is a
//! soundness finding in one of them.
//!
//! Programs serialize to a compact single-line token (see
//! [`Program::to_token`]) so a repro artifact can embed the exact UDA it
//! failed on and replay it against any future tree.

use std::sync::Arc;

use crate::ctx::SymCtx;
use crate::error::{Error, Result};
use crate::state::{SymField, SymState};
use crate::types::sym_bool::SymBool;
use crate::types::sym_enum::SymEnum;
use crate::types::sym_int::SymInt;
use crate::types::sym_minmax::{Extremum, SymMinMax};
use crate::types::sym_pred::SymPred;
use crate::types::sym_vector::SymVector;
use crate::uda::Uda;

/// Maximum number of state fields a [`Program`] may declare.
pub const MAX_FIELDS: usize = 16;
/// Maximum number of statements (counting nested ones) in a body.
pub const MAX_STMTS: usize = 96;
/// Maximum `if` nesting depth.
pub const MAX_DEPTH: usize = 8;
/// Maximum enum domain generated programs use (kept small so constraint
/// sets stay readable in artifacts; the engine itself supports 256).
pub const MAX_DOMAIN: u32 = 64;
/// Maximum predicate decision window.
pub const MAX_WINDOW: usize = 16;

/// The black-box predicate shape of a generated [`SymPred`] field.
///
/// Closures do not serialize, so generated predicates are drawn from a
/// fixed family: `pred(held, arg) = held OP arg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredKind {
    /// `held < arg`.
    Lt,
    /// `held ≤ arg`.
    Le,
    /// `held > arg`.
    Gt,
}

impl PredKind {
    fn apply(self, held: i64, arg: i64) -> bool {
        match self {
            PredKind::Lt => held < arg,
            PredKind::Le => held <= arg,
            PredKind::Gt => held > arg,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            PredKind::Lt => "lt",
            PredKind::Le => "le",
            PredKind::Gt => "gt",
        }
    }

    fn parse(s: &str) -> Option<PredKind> {
        Some(match s {
            "lt" => PredKind::Lt,
            "le" => PredKind::Le,
            "gt" => PredKind::Gt,
            _ => return None,
        })
    }
}

/// One state-field declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldDecl {
    /// A [`SymInt`] of the given bit width (8–64). Narrow widths make
    /// overflow-prone accumulators — a deliberate part of the fuzz space.
    Int {
        /// Bit width, 8..=64.
        width: u8,
        /// Initial concrete value (must fit the width).
        init: i64,
    },
    /// A [`SymBool`].
    Bool {
        /// Initial value.
        init: bool,
    },
    /// A [`SymEnum`] over `0..domain`.
    Enum {
        /// Domain size, 1..=[`MAX_DOMAIN`].
        domain: u32,
        /// Initial value (< domain).
        init: u32,
    },
    /// A [`SymMinMax`] running extremum.
    MinMax {
        /// `true` = running maximum, `false` = running minimum.
        max: bool,
    },
    /// A [`SymPred`] holding an `i64` with a [`PredKind`] predicate.
    Pred {
        /// The predicate family.
        kind: PredKind,
        /// Decision-window bound (`with_max_decisions`).
        window: usize,
    },
    /// An append-only [`SymVector`] of `i64` (the output aggregate).
    Vec,
}

impl FieldDecl {
    /// Short kind tag, used in field names and diagnostics.
    pub fn kind_str(&self) -> &'static str {
        match self {
            FieldDecl::Int { .. } => "int",
            FieldDecl::Bool { .. } => "bool",
            FieldDecl::Enum { .. } => "enum",
            FieldDecl::MinMax { .. } => "minmax",
            FieldDecl::Pred { .. } => "pred",
            FieldDecl::Vec => "vec",
        }
    }
}

/// An integer operand: a constant, the raw event, or the event reduced
/// modulo a constant. All three are concrete `i64`s at update time (the
/// event is always concrete; only *state* is symbolic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntArg {
    /// A literal constant.
    Const(i64),
    /// The event value itself.
    Event,
    /// `event mod k` (Euclidean, so the result is in `0..k`); `k ≥ 1`.
    EventMod(i64),
}

impl IntArg {
    /// The operand's concrete value for event `e`.
    pub fn value(&self, e: i64) -> i64 {
        match *self {
            IntArg::Const(c) => c,
            IntArg::Event => e,
            IntArg::EventMod(k) => e.rem_euclid(k.max(1)),
        }
    }
}

/// Comparison operators for guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
    /// `==` (three-way fork on a symbolic [`SymInt`]).
    Eq,
    /// `!=` (three-way fork on a symbolic [`SymInt`]).
    Ne,
}

impl CmpOp {
    fn apply(self, v: i64, k: i64) -> bool {
        match self {
            CmpOp::Lt => v < k,
            CmpOp::Le => v <= k,
            CmpOp::Gt => v > k,
            CmpOp::Ge => v >= k,
            CmpOp::Eq => v == k,
            CmpOp::Ne => v != k,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
        }
    }

    fn parse(s: &str) -> Option<CmpOp> {
        Some(match s {
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            _ => return None,
        })
    }
}

/// Checked arithmetic operators on a [`SymInt`] field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntOpKind {
    /// `field += arg`
    Add,
    /// `field -= arg`
    Sub,
    /// `field *= arg`
    Mul,
    /// `field = arg − field`
    Rsub,
}

impl IntOpKind {
    fn as_str(self) -> &'static str {
        match self {
            IntOpKind::Add => "iadd",
            IntOpKind::Sub => "isub",
            IntOpKind::Mul => "imul",
            IntOpKind::Rsub => "irsub",
        }
    }
}

/// A guard condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// Compare a [`SymInt`] field against a constant (may fork).
    Int {
        /// Field index.
        f: usize,
        /// Operator.
        op: CmpOp,
        /// The constant.
        k: i64,
    },
    /// Compare a [`SymMinMax`] field against a constant; only the order
    /// operators exist ([`CmpOp::Eq`]/[`CmpOp::Ne`] are rejected by
    /// [`Program::typecheck`]).
    MinMax {
        /// Field index.
        f: usize,
        /// Operator (Lt/Le/Gt/Ge).
        op: CmpOp,
        /// The constant.
        k: i64,
    },
    /// Read a [`SymBool`] field (forks while symbolic).
    Bool {
        /// Field index.
        f: usize,
    },
    /// Test a [`SymEnum`] field against a domain constant.
    Enum {
        /// Field index.
        f: usize,
        /// `true` = equality, `false` = inequality.
        eq: bool,
        /// The constant (< domain).
        c: u32,
    },
    /// Evaluate a [`SymPred`] field against an operand (forks and records
    /// a decision while the held value is unknown).
    Pred {
        /// Field index.
        f: usize,
        /// The predicate argument.
        arg: IntArg,
    },
    /// Compare the (always concrete) event against a constant — never
    /// forks; partitions the input space instead of the state space.
    Event {
        /// Operator.
        op: CmpOp,
        /// The constant.
        k: i64,
    },
}

/// One update statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Checked arithmetic on a [`SymInt`] field.
    IntOp {
        /// Field index.
        f: usize,
        /// Operator.
        op: IntOpKind,
        /// Operand.
        arg: IntArg,
    },
    /// Rebind a [`SymInt`] field to a concrete value (a reset).
    IntSet {
        /// Field index.
        f: usize,
        /// Operand.
        arg: IntArg,
    },
    /// Assign a [`SymBool`] field.
    BoolSet {
        /// Field index.
        f: usize,
        /// New value.
        v: bool,
    },
    /// Assign a [`SymEnum`] field a domain constant.
    EnumSet {
        /// Field index.
        f: usize,
        /// New value (< domain).
        c: u32,
    },
    /// Fold an operand into a [`SymMinMax`] field.
    MinMaxUpd {
        /// Field index.
        f: usize,
        /// Operand.
        arg: IntArg,
    },
    /// Overwrite a [`SymMinMax`] field (a reset).
    MinMaxSet {
        /// Field index.
        f: usize,
        /// Operand.
        arg: IntArg,
    },
    /// Bind a [`SymPred`] field's held value.
    PredSet {
        /// Field index.
        f: usize,
        /// Operand.
        arg: IntArg,
    },
    /// Append a concrete operand to a [`SymVector`] field.
    VecPush {
        /// Field index.
        f: usize,
        /// Operand.
        arg: IntArg,
    },
    /// Append a (possibly symbolic) [`SymInt`] field's value to a
    /// [`SymVector`] field.
    VecPushInt {
        /// Vector field index.
        f: usize,
        /// Source integer field index.
        src: usize,
    },
    /// A branch.
    If {
        /// Guard.
        cond: Cond,
        /// Taken when the guard holds.
        then: Vec<Stmt>,
        /// Taken otherwise.
        els: Vec<Stmt>,
    },
}

/// A generated UDA: field declarations plus an update body.
///
/// `init` is the declared initial values, `update` interprets `body`
/// once per event, and `result` reports one `Vec<i64>` per field (scalar
/// fields contribute a singleton; vector fields their elements).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// State-field declarations, in [`crate::state::FieldId`] order.
    pub fields: Vec<FieldDecl>,
    /// Update statements, run in order for every event.
    pub body: Vec<Stmt>,
}

// ---------------------------------------------------------------------------
// Typechecking
// ---------------------------------------------------------------------------

impl Program {
    /// Structural well-formedness: every field reference is in range and
    /// kind-correct, every constant is in domain, and the size bounds
    /// hold. Generated and mutated programs must always pass; the token
    /// parser re-checks so artifacts cannot smuggle ill-typed programs.
    pub fn typecheck(&self) -> std::result::Result<(), String> {
        if self.fields.is_empty() {
            return Err("program has no fields".into());
        }
        if self.fields.len() > MAX_FIELDS {
            return Err(format!("too many fields ({})", self.fields.len()));
        }
        for (i, f) in self.fields.iter().enumerate() {
            match *f {
                FieldDecl::Int { width, init } => {
                    if !(8..=64).contains(&width) {
                        return Err(format!("field {i}: int width {width} outside 8..=64"));
                    }
                    if !fits_width(init, width) {
                        return Err(format!("field {i}: init {init} does not fit i{width}"));
                    }
                }
                FieldDecl::Enum { domain, init } => {
                    if domain == 0 || domain > MAX_DOMAIN {
                        return Err(format!("field {i}: enum domain {domain} outside 1..=64"));
                    }
                    if init >= domain {
                        return Err(format!("field {i}: enum init {init} outside 0..{domain}"));
                    }
                }
                FieldDecl::Pred { window, .. } => {
                    if window == 0 || window > MAX_WINDOW {
                        return Err(format!("field {i}: pred window {window} outside 1..=16"));
                    }
                }
                FieldDecl::Bool { .. } | FieldDecl::MinMax { .. } | FieldDecl::Vec => {}
            }
        }
        let mut count = 0usize;
        self.check_block(&self.body, 0, &mut count)?;
        if count > MAX_STMTS {
            return Err(format!("too many statements ({count})"));
        }
        Ok(())
    }

    fn check_block(
        &self,
        block: &[Stmt],
        depth: usize,
        count: &mut usize,
    ) -> std::result::Result<(), String> {
        if depth > MAX_DEPTH {
            return Err("if-nesting too deep".into());
        }
        for s in block {
            *count += 1;
            match s {
                Stmt::IntOp { f, .. } | Stmt::IntSet { f, .. } => {
                    self.expect_kind(*f, "int")?;
                }
                Stmt::BoolSet { f, .. } => self.expect_kind(*f, "bool")?,
                Stmt::EnumSet { f, c } => {
                    self.expect_kind(*f, "enum")?;
                    if let FieldDecl::Enum { domain, .. } = self.fields[*f] {
                        if *c >= domain {
                            return Err(format!("enum const {c} outside 0..{domain}"));
                        }
                    }
                }
                Stmt::MinMaxUpd { f, .. } | Stmt::MinMaxSet { f, .. } => {
                    self.expect_kind(*f, "minmax")?;
                }
                Stmt::PredSet { f, .. } => self.expect_kind(*f, "pred")?,
                Stmt::VecPush { f, .. } => self.expect_kind(*f, "vec")?,
                Stmt::VecPushInt { f, src } => {
                    self.expect_kind(*f, "vec")?;
                    self.expect_kind(*src, "int")?;
                }
                Stmt::If { cond, then, els } => {
                    self.check_cond(cond)?;
                    self.check_block(then, depth + 1, count)?;
                    self.check_block(els, depth + 1, count)?;
                }
            }
        }
        check_args(block)
    }

    fn check_cond(&self, cond: &Cond) -> std::result::Result<(), String> {
        match cond {
            Cond::Int { f, .. } => self.expect_kind(*f, "int"),
            Cond::MinMax { f, op, .. } => {
                if matches!(op, CmpOp::Eq | CmpOp::Ne) {
                    return Err("minmax guards support only order comparisons".into());
                }
                self.expect_kind(*f, "minmax")
            }
            Cond::Bool { f } => self.expect_kind(*f, "bool"),
            Cond::Enum { f, c, .. } => {
                self.expect_kind(*f, "enum")?;
                if let FieldDecl::Enum { domain, .. } = self.fields[*f] {
                    if *c >= domain {
                        return Err(format!("enum const {c} outside 0..{domain}"));
                    }
                }
                Ok(())
            }
            Cond::Pred { f, arg } => {
                self.expect_kind(*f, "pred")?;
                check_arg(arg)
            }
            Cond::Event { .. } => Ok(()),
        }
    }

    fn expect_kind(&self, f: usize, kind: &str) -> std::result::Result<(), String> {
        match self.fields.get(f) {
            Some(d) if d.kind_str() == kind => Ok(()),
            Some(d) => Err(format!("field {f} is {}, expected {kind}", d.kind_str())),
            None => Err(format!("field {f} out of range")),
        }
    }
}

fn check_arg(arg: &IntArg) -> std::result::Result<(), String> {
    match *arg {
        IntArg::EventMod(k) if k < 1 => Err(format!("event modulus {k} must be ≥ 1")),
        _ => Ok(()),
    }
}

fn check_args(block: &[Stmt]) -> std::result::Result<(), String> {
    for s in block {
        match s {
            Stmt::IntOp { arg, .. }
            | Stmt::IntSet { arg, .. }
            | Stmt::MinMaxUpd { arg, .. }
            | Stmt::MinMaxSet { arg, .. }
            | Stmt::PredSet { arg, .. }
            | Stmt::VecPush { arg, .. } => check_arg(arg)?,
            _ => {}
        }
    }
    Ok(())
}

fn fits_width(v: i64, width: u8) -> bool {
    if width >= 64 {
        return true;
    }
    let half = 1i64 << (width - 1);
    (-half..half).contains(&v)
}

// ---------------------------------------------------------------------------
// Concrete reference interpreter
// ---------------------------------------------------------------------------

/// One field's concrete value in the reference interpreter.
#[derive(Debug, Clone, PartialEq)]
enum CVal {
    Int { width: u8, v: i64 },
    Bool(bool),
    Enum { domain: u32, v: u32 },
    MinMax { max: bool, acc: i64 },
    Pred { kind: PredKind, held: Option<i64> },
    Vec(Vec<i64>),
}

impl CVal {
    fn init(decl: &FieldDecl) -> CVal {
        match *decl {
            FieldDecl::Int { width, init } => CVal::Int { width, v: init },
            FieldDecl::Bool { init } => CVal::Bool(init),
            FieldDecl::Enum { domain, init } => CVal::Enum { domain, v: init },
            // The fold identity mirrors `SymMinMax::new` (`INT_MIN` for Max).
            FieldDecl::MinMax { max } => CVal::MinMax {
                max,
                acc: if max { i64::MIN } else { i64::MAX },
            },
            FieldDecl::Pred { kind, .. } => CVal::Pred { kind, held: None },
            FieldDecl::Vec => CVal::Vec(Vec::new()),
        }
    }
}

/// Runs the program's checked integer op, mirroring [`SymInt`] concrete
/// semantics exactly: `i64` overflow and declared-width overflow both
/// report [`Error::ArithmeticOverflow`] with the same op tag.
fn int_op(width: u8, v: i64, op: IntOpKind, k: i64) -> Result<i64> {
    let (r, tag) = match op {
        IntOpKind::Add => (v.checked_add(k), "add"),
        IntOpKind::Sub => (v.checked_sub(k), "sub"),
        IntOpKind::Mul => (v.checked_mul(k), "mul"),
        IntOpKind::Rsub => (k.checked_sub(v), "rsub"),
    };
    match r {
        Some(r) if fits_width(r, width) => Ok(r),
        _ => Err(Error::ArithmeticOverflow { op: tag }),
    }
}

fn eval_cond_concrete(fields: &[CVal], cond: &Cond, e: i64) -> Result<bool> {
    Ok(match cond {
        Cond::Int { f, op, k } => match fields[*f] {
            CVal::Int { v, .. } => op.apply(v, *k),
            _ => unreachable!("typechecked"),
        },
        Cond::MinMax { f, op, k } => match fields[*f] {
            CVal::MinMax { acc, .. } => op.apply(acc, *k),
            _ => unreachable!("typechecked"),
        },
        Cond::Bool { f } => match fields[*f] {
            CVal::Bool(v) => v,
            _ => unreachable!("typechecked"),
        },
        Cond::Enum { f, eq, c } => match fields[*f] {
            CVal::Enum { v, .. } => (v == *c) == *eq,
            _ => unreachable!("typechecked"),
        },
        // Mirrors `SymPred::eval`: unset → the initial outcome (false).
        Cond::Pred { f, arg } => match &fields[*f] {
            CVal::Pred { kind, held } => match held {
                Some(h) => kind.apply(*h, arg.value(e)),
                None => false,
            },
            _ => unreachable!("typechecked"),
        },
        Cond::Event { op, k } => op.apply(e, *k),
    })
}

fn exec_block_concrete(fields: &mut Vec<CVal>, block: &[Stmt], e: i64) -> Result<()> {
    for s in block {
        match s {
            Stmt::IntOp { f, op, arg } => {
                if let CVal::Int { width, v } = &mut fields[*f] {
                    *v = int_op(*width, *v, *op, arg.value(e))?;
                }
            }
            Stmt::IntSet { f, arg } => {
                // A reset must respect the declared width like every other
                // write: the symbolic domain constrains an `i<w>` field's
                // unknown chunk-entry value to the width range, so letting
                // a rebind smuggle in an out-of-width value breaks the
                // invariant that range encodes (found by the fuzzer as an
                // Ok-vs-IncompleteSummary divergence).
                if let CVal::Int { width, v } = &mut fields[*f] {
                    let val = arg.value(e);
                    if !fits_width(val, *width) {
                        return Err(Error::ArithmeticOverflow { op: "set" });
                    }
                    *v = val;
                }
            }
            Stmt::BoolSet { f, v } => {
                if let CVal::Bool(b) = &mut fields[*f] {
                    *b = *v;
                }
            }
            Stmt::EnumSet { f, c } => {
                if let CVal::Enum { domain, v } = &mut fields[*f] {
                    if *c >= *domain {
                        return Err(Error::EnumOutOfDomain {
                            value: i64::from(*c),
                            domain: *domain,
                        });
                    }
                    *v = *c;
                }
            }
            Stmt::MinMaxUpd { f, arg } => {
                if let CVal::MinMax { max, acc } = &mut fields[*f] {
                    let x = arg.value(e);
                    *acc = if *max { (*acc).max(x) } else { (*acc).min(x) };
                }
            }
            Stmt::MinMaxSet { f, arg } => {
                if let CVal::MinMax { acc, .. } = &mut fields[*f] {
                    *acc = arg.value(e);
                }
            }
            Stmt::PredSet { f, arg } => {
                if let CVal::Pred { held, .. } = &mut fields[*f] {
                    *held = Some(arg.value(e));
                }
            }
            Stmt::VecPush { f, arg } => {
                if let CVal::Vec(v) = &mut fields[*f] {
                    v.push(arg.value(e));
                }
            }
            Stmt::VecPushInt { f, src } => {
                let x = match fields[*src] {
                    CVal::Int { v, .. } => v,
                    _ => unreachable!("typechecked"),
                };
                if let CVal::Vec(v) = &mut fields[*f] {
                    v.push(x);
                }
            }
            Stmt::If { cond, then, els } => {
                let taken = eval_cond_concrete(fields, cond, e)?;
                let block = if taken { then } else { els };
                exec_block_concrete(fields, block, e)?;
            }
        }
    }
    Ok(())
}

/// The sentinel a never-set predicate field reports in the output (there
/// is no held value to show).
pub const UNSET: i64 = i64::MIN;

/// Evaluates a program concretely over `events` — the reference
/// semantics [`AstUda`] (and with it every parallel executor) must
/// reproduce exactly. Shares no evaluation code with the symbolic types.
pub fn eval_concrete(program: &Program, events: &[i64]) -> Result<Vec<Vec<i64>>> {
    debug_assert!(program.typecheck().is_ok());
    let mut fields: Vec<CVal> = program.fields.iter().map(CVal::init).collect();
    for &e in events {
        exec_block_concrete(&mut fields, &program.body, e)?;
    }
    Ok(fields
        .into_iter()
        .map(|f| match f {
            CVal::Int { v, .. } => vec![v],
            CVal::Bool(b) => vec![i64::from(b)],
            CVal::Enum { v, .. } => vec![i64::from(v)],
            CVal::MinMax { acc, .. } => vec![acc],
            CVal::Pred { held, .. } => vec![held.unwrap_or(UNSET)],
            CVal::Vec(v) => v,
        })
        .collect())
}

// ---------------------------------------------------------------------------
// The symbolic-typed state and Uda impl
// ---------------------------------------------------------------------------

/// One field of an [`AstState`]: a tagged union over the symbolic types.
#[derive(Debug, Clone)]
pub enum AstField {
    /// A [`SymInt`].
    Int(SymInt),
    /// A [`SymBool`].
    Bool(SymBool),
    /// A [`SymEnum`].
    Enum(SymEnum),
    /// A [`SymMinMax`].
    MinMax(SymMinMax),
    /// A [`SymPred`] over `i64`.
    Pred(SymPred<i64>),
    /// A [`SymVector`] of `i64`.
    Vec(SymVector<i64>),
}

impl AstField {
    fn as_field_ref(&self) -> &dyn SymField {
        match self {
            AstField::Int(x) => x,
            AstField::Bool(x) => x,
            AstField::Enum(x) => x,
            AstField::MinMax(x) => x,
            AstField::Pred(x) => x,
            AstField::Vec(x) => x,
        }
    }

    fn as_field_mut(&mut self) -> &mut dyn SymField {
        match self {
            AstField::Int(x) => x,
            AstField::Bool(x) => x,
            AstField::Enum(x) => x,
            AstField::MinMax(x) => x,
            AstField::Pred(x) => x,
            AstField::Vec(x) => x,
        }
    }

    fn kind_str(&self) -> &'static str {
        match self {
            AstField::Int(_) => "int",
            AstField::Bool(_) => "bool",
            AstField::Enum(_) => "enum",
            AstField::MinMax(_) => "minmax",
            AstField::Pred(_) => "pred",
            AstField::Vec(_) => "vec",
        }
    }
}

/// The dynamic-field aggregation state of an [`AstUda`].
///
/// Every hand-written UDA uses [`crate::impl_sym_state!`] over a struct;
/// this is the one state in the tree that implements [`SymState`] by
/// hand, over a `Vec` of fields whose shape is decided at runtime by the
/// program's declarations. Field order is declaration order, matching
/// [`crate::state::FieldId`] indices everywhere else.
#[derive(Debug, Clone)]
pub struct AstState {
    fields: Vec<AstField>,
}

impl SymState for AstState {
    fn fields_mut(&mut self) -> Vec<&mut dyn SymField> {
        self.fields.iter_mut().map(AstField::as_field_mut).collect()
    }

    fn fields_ref(&self) -> Vec<&dyn SymField> {
        self.fields.iter().map(AstField::as_field_ref).collect()
    }

    fn field_names(&self) -> Vec<String> {
        self.fields
            .iter()
            .enumerate()
            .map(|(i, f)| format!("{}{i}", f.kind_str()))
            .collect()
    }
}

/// A generated [`Program`] as an ordinary [`Uda`], runnable through
/// every executor in the tree.
pub struct AstUda {
    program: Arc<Program>,
}

impl AstUda {
    /// Wraps a (typechecked) program.
    pub fn new(program: Program) -> AstUda {
        debug_assert!(
            program.typecheck().is_ok(),
            "AstUda needs a well-typed program"
        );
        AstUda {
            program: Arc::new(program),
        }
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    fn eval_cond(&self, s: &mut AstState, ctx: &mut SymCtx, cond: &Cond, e: i64) -> bool {
        match cond {
            Cond::Int { f, op, k } => match &mut s.fields[*f] {
                AstField::Int(x) => match op {
                    CmpOp::Lt => x.lt(ctx, *k),
                    CmpOp::Le => x.le(ctx, *k),
                    CmpOp::Gt => x.gt(ctx, *k),
                    CmpOp::Ge => x.ge(ctx, *k),
                    CmpOp::Eq => x.eq_c(ctx, *k),
                    CmpOp::Ne => x.ne_c(ctx, *k),
                },
                _ => unreachable!("typechecked"),
            },
            Cond::MinMax { f, op, k } => match &mut s.fields[*f] {
                AstField::MinMax(x) => match op {
                    CmpOp::Lt => x.lt(ctx, *k),
                    CmpOp::Le => x.le(ctx, *k),
                    CmpOp::Gt => x.gt(ctx, *k),
                    _ => x.ge(ctx, *k),
                },
                _ => unreachable!("typechecked"),
            },
            Cond::Bool { f } => match &mut s.fields[*f] {
                AstField::Bool(x) => x.get(ctx),
                _ => unreachable!("typechecked"),
            },
            Cond::Enum { f, eq, c } => match &mut s.fields[*f] {
                AstField::Enum(x) => {
                    if *eq {
                        x.eq_c(ctx, *c)
                    } else {
                        x.ne_c(ctx, *c)
                    }
                }
                _ => unreachable!("typechecked"),
            },
            Cond::Pred { f, arg } => match &mut s.fields[*f] {
                AstField::Pred(x) => x.eval(ctx, &arg.value(e)),
                _ => unreachable!("typechecked"),
            },
            Cond::Event { op, k } => op.apply(e, *k),
        }
    }

    fn exec_block(&self, s: &mut AstState, ctx: &mut SymCtx, block: &[Stmt], e: i64) {
        for stmt in block {
            match stmt {
                Stmt::IntOp { f, op, arg } => {
                    if let AstField::Int(x) = &mut s.fields[*f] {
                        let k = arg.value(e);
                        match op {
                            IntOpKind::Add => x.add(ctx, k),
                            IntOpKind::Sub => x.sub(ctx, k),
                            IntOpKind::Mul => x.mul(ctx, k),
                            IntOpKind::Rsub => x.rsub(ctx, k),
                        }
                    }
                }
                Stmt::IntSet { f, arg } => {
                    if let AstField::Int(x) = &mut s.fields[*f] {
                        // Width invariant — see the reference interpreter's
                        // `IntSet` arm: an out-of-width rebind must fail,
                        // not store a value the field's symbolic range can
                        // never cover.
                        let FieldDecl::Int { width, .. } = self.program.fields[*f] else {
                            unreachable!("typechecked")
                        };
                        let val = arg.value(e);
                        if fits_width(val, width) {
                            x.assign(val);
                        } else {
                            ctx.fail(Error::ArithmeticOverflow { op: "set" });
                        }
                    }
                }
                Stmt::BoolSet { f, v } => {
                    if let AstField::Bool(x) = &mut s.fields[*f] {
                        x.assign(*v);
                    }
                }
                Stmt::EnumSet { f, c } => {
                    if let AstField::Enum(x) = &mut s.fields[*f] {
                        x.assign(ctx, *c);
                    }
                }
                Stmt::MinMaxUpd { f, arg } => {
                    if let AstField::MinMax(x) = &mut s.fields[*f] {
                        x.update(arg.value(e));
                    }
                }
                Stmt::MinMaxSet { f, arg } => {
                    if let AstField::MinMax(x) = &mut s.fields[*f] {
                        x.assign(arg.value(e));
                    }
                }
                Stmt::PredSet { f, arg } => {
                    if let AstField::Pred(x) = &mut s.fields[*f] {
                        x.set(arg.value(e));
                    }
                }
                Stmt::VecPush { f, arg } => {
                    if let AstField::Vec(x) = &mut s.fields[*f] {
                        x.push(arg.value(e));
                    }
                }
                Stmt::VecPushInt { f, src } => {
                    // Split-borrow: read the source int before the vector.
                    let scalar = match &s.fields[*src] {
                        AstField::Int(x) => x.as_scalar(),
                        _ => unreachable!("typechecked"),
                    };
                    if let AstField::Vec(x) = &mut s.fields[*f] {
                        x.push_scalar(scalar);
                    }
                }
                Stmt::If { cond, then, els } => {
                    let taken = self.eval_cond(s, ctx, cond, e);
                    let block = if taken { then } else { els };
                    self.exec_block(s, ctx, block, e);
                }
            }
        }
    }
}

impl Uda for AstUda {
    type State = AstState;
    type Event = i64;
    type Output = Vec<Vec<i64>>;

    fn init(&self) -> AstState {
        let fields = self
            .program
            .fields
            .iter()
            .map(|d| match *d {
                FieldDecl::Int { width, init } => AstField::Int(SymInt::with_width(width, init)),
                FieldDecl::Bool { init } => AstField::Bool(SymBool::new(init)),
                FieldDecl::Enum { domain, init } => AstField::Enum(SymEnum::new(domain, init)),
                FieldDecl::MinMax { max } => AstField::MinMax(SymMinMax::new(if max {
                    Extremum::Max
                } else {
                    Extremum::Min
                })),
                FieldDecl::Pred { kind, window } => AstField::Pred(
                    SymPred::new(move |h: &i64, a: &i64| kind.apply(*h, *a))
                        .with_max_decisions(window),
                ),
                FieldDecl::Vec => AstField::Vec(SymVector::new()),
            })
            .collect();
        AstState { fields }
    }

    fn update(&self, s: &mut AstState, ctx: &mut SymCtx, e: &i64) {
        // Clone the Arc, not the body: `exec_block` borrows `self`
        // immutably and the program is immutable anyway.
        let program = Arc::clone(&self.program);
        self.exec_block(s, ctx, &program.body, *e);
    }

    fn result(&self, s: &AstState, ctx: &mut SymCtx) -> Vec<Vec<i64>> {
        // Any still-symbolic field here means composition failed to
        // resolve the state — itself a soundness finding, surfaced as an
        // `Err(Uda)` that can never match the concrete reference.
        let fail = |ctx: &mut SymCtx, what: &str| {
            ctx.fail(Error::Uda(format!("non-concrete {what} at result time")));
            UNSET
        };
        s.fields
            .iter()
            .map(|f| match f {
                AstField::Int(x) => {
                    vec![x.concrete_value().unwrap_or_else(|| fail(ctx, "int"))]
                }
                AstField::Bool(x) => vec![x
                    .concrete_value()
                    .map(i64::from)
                    .unwrap_or_else(|| fail(ctx, "bool"))],
                AstField::Enum(x) => vec![x
                    .concrete_value()
                    .map(i64::from)
                    .unwrap_or_else(|| fail(ctx, "enum"))],
                AstField::MinMax(x) => {
                    vec![x.concrete_value().unwrap_or_else(|| fail(ctx, "minmax"))]
                }
                AstField::Pred(x) => vec![if x.is_unknown() {
                    fail(ctx, "pred")
                } else {
                    x.value().copied().unwrap_or(UNSET)
                }],
                AstField::Vec(x) => match x.concrete_elems() {
                    Ok(v) => v,
                    Err(e) => {
                        ctx.fail(e);
                        Vec::new()
                    }
                },
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Analyzer event variants
// ---------------------------------------------------------------------------

/// Static names for derived analyzer variants (the analyzer API wants
/// `&'static str` names; values are derived per program).
const VARIANT_NAMES: [&str; 12] = [
    "v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9", "v10", "v11",
];

impl Program {
    /// Representative event values for the static analyzer: one variant
    /// per behaviorally distinct region of the event space, derived from
    /// the constants the body compares the event against.
    ///
    /// Always includes `0`, `1`, and `-1`; adds `k−1`, `k`, `k+1` around
    /// every [`Cond::Event`] constant until the fixed name pool runs out.
    pub fn variants(&self) -> Vec<(&'static str, i64)> {
        let mut values = vec![0i64, 1, -1];
        collect_event_cuts(&self.body, &mut values);
        values.dedup();
        let mut out = Vec::new();
        for (i, v) in values.into_iter().enumerate() {
            if i >= VARIANT_NAMES.len() {
                break;
            }
            if out.iter().any(|(_, x)| *x == v) {
                continue;
            }
            out.push((VARIANT_NAMES[out.len()], v));
        }
        out
    }
}

fn collect_event_cuts(block: &[Stmt], out: &mut Vec<i64>) {
    for s in block {
        if let Stmt::If { cond, then, els } = s {
            if let Cond::Event { k, .. } = cond {
                out.push(k.saturating_sub(1));
                out.push(*k);
                out.push(k.saturating_add(1));
            }
            collect_event_cuts(then, out);
            collect_event_cuts(els, out);
        }
    }
}

// ---------------------------------------------------------------------------
// Token serialization
// ---------------------------------------------------------------------------

impl Program {
    /// Serializes the program as a compact single-line token, e.g.
    ///
    /// ```text
    /// fields[i32=0 vec] body[(iadd 0 ev) (if (xgt 5) [(vpushi 1 0)] [])]
    /// ```
    ///
    /// The token embeds in one `program:` line of a repro artifact;
    /// [`Program::parse_token`] round-trips it.
    pub fn to_token(&self) -> String {
        let mut s = String::from("fields[");
        for (i, f) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            match *f {
                FieldDecl::Int { width, init } => s.push_str(&format!("i{width}={init}")),
                FieldDecl::Bool { init } => s.push_str(&format!("b={}", u8::from(init))),
                FieldDecl::Enum { domain, init } => s.push_str(&format!("n{domain}={init}")),
                FieldDecl::MinMax { max } => s.push_str(if max { "mmax" } else { "mmin" }),
                FieldDecl::Pred { kind, window } => {
                    s.push_str(&format!("p{window}={}", kind.as_str()))
                }
                FieldDecl::Vec => s.push_str("vec"),
            }
        }
        s.push_str("] body");
        render_block(&self.body, &mut s);
        s
    }

    /// Parses a [`Program::to_token`] string and typechecks the result.
    pub fn parse_token(text: &str) -> std::result::Result<Program, String> {
        let toks = tokenize(text);
        let mut p = Parser { toks, pos: 0 };
        p.expect("fields")?;
        p.expect("[")?;
        let mut fields = Vec::new();
        while p.peek() != Some("]") {
            fields.push(parse_field(p.next_tok()?)?);
        }
        p.expect("]")?;
        p.expect("body")?;
        let body = p.parse_block()?;
        if p.pos != p.toks.len() {
            return Err(format!("trailing tokens at {}", p.pos));
        }
        let program = Program { fields, body };
        program.typecheck()?;
        Ok(program)
    }
}

fn render_arg(arg: &IntArg, s: &mut String) {
    match *arg {
        IntArg::Const(c) => s.push_str(&c.to_string()),
        IntArg::Event => s.push_str("ev"),
        IntArg::EventMod(k) => s.push_str(&format!("ev%{k}")),
    }
}

fn render_cond(cond: &Cond, s: &mut String) {
    s.push('(');
    match cond {
        Cond::Int { f, op, k } => s.push_str(&format!("i{} {f} {k}", op.as_str())),
        Cond::MinMax { f, op, k } => s.push_str(&format!("m{} {f} {k}", op.as_str())),
        Cond::Bool { f } => s.push_str(&format!("bget {f}")),
        Cond::Enum { f, eq, c } => {
            s.push_str(&format!("n{} {f} {c}", if *eq { "eq" } else { "ne" }))
        }
        Cond::Pred { f, arg } => {
            s.push_str(&format!("peval {f} "));
            render_arg(arg, s);
        }
        Cond::Event { op, k } => s.push_str(&format!("x{} {k}", op.as_str())),
    }
    s.push(')');
}

fn render_block(block: &[Stmt], s: &mut String) {
    s.push('[');
    for (i, stmt) in block.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        render_stmt(stmt, s);
    }
    s.push(']');
}

fn render_stmt(stmt: &Stmt, s: &mut String) {
    s.push('(');
    match stmt {
        Stmt::IntOp { f, op, arg } => {
            s.push_str(&format!("{} {f} ", op.as_str()));
            render_arg(arg, s);
        }
        Stmt::IntSet { f, arg } => {
            s.push_str(&format!("iset {f} "));
            render_arg(arg, s);
        }
        Stmt::BoolSet { f, v } => s.push_str(&format!("bset {f} {}", u8::from(*v))),
        Stmt::EnumSet { f, c } => s.push_str(&format!("nset {f} {c}")),
        Stmt::MinMaxUpd { f, arg } => {
            s.push_str(&format!("mupd {f} "));
            render_arg(arg, s);
        }
        Stmt::MinMaxSet { f, arg } => {
            s.push_str(&format!("mset {f} "));
            render_arg(arg, s);
        }
        Stmt::PredSet { f, arg } => {
            s.push_str(&format!("pset {f} "));
            render_arg(arg, s);
        }
        Stmt::VecPush { f, arg } => {
            s.push_str(&format!("vpush {f} "));
            render_arg(arg, s);
        }
        Stmt::VecPushInt { f, src } => s.push_str(&format!("vpushi {f} {src}")),
        Stmt::If { cond, then, els } => {
            s.push_str("if ");
            render_cond(cond, s);
            s.push(' ');
            render_block(then, s);
            s.push(' ');
            render_block(els, s);
        }
    }
    s.push(')');
}

fn tokenize(text: &str) -> Vec<String> {
    let mut spaced = String::with_capacity(text.len() + 16);
    for c in text.chars() {
        match c {
            '(' | ')' | '[' | ']' => {
                spaced.push(' ');
                spaced.push(c);
                spaced.push(' ');
            }
            _ => spaced.push(c),
        }
    }
    spaced.split_whitespace().map(str::to_string).collect()
}

struct Parser {
    toks: Vec<String>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(String::as_str)
    }

    fn next_tok(&mut self) -> std::result::Result<&str, String> {
        let t = self
            .toks
            .get(self.pos)
            .ok_or_else(|| "unexpected end of program token".to_string())?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &str) -> std::result::Result<(), String> {
        let got = self.next_tok()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected {want:?}, got {got:?}"))
        }
    }

    fn parse_usize(&mut self) -> std::result::Result<usize, String> {
        let t = self.next_tok()?;
        t.parse().map_err(|_| format!("bad index {t:?}"))
    }

    fn parse_i64(&mut self) -> std::result::Result<i64, String> {
        let t = self.next_tok()?;
        t.parse().map_err(|_| format!("bad integer {t:?}"))
    }

    fn parse_u32(&mut self) -> std::result::Result<u32, String> {
        let t = self.next_tok()?;
        t.parse().map_err(|_| format!("bad constant {t:?}"))
    }

    fn parse_arg(&mut self) -> std::result::Result<IntArg, String> {
        let t = self.next_tok()?;
        if t == "ev" {
            return Ok(IntArg::Event);
        }
        if let Some(k) = t.strip_prefix("ev%") {
            let k: i64 = k.parse().map_err(|_| format!("bad modulus {t:?}"))?;
            return Ok(IntArg::EventMod(k));
        }
        t.parse()
            .map(IntArg::Const)
            .map_err(|_| format!("bad operand {t:?}"))
    }

    fn parse_block(&mut self) -> std::result::Result<Vec<Stmt>, String> {
        self.expect("[")?;
        let mut out = Vec::new();
        while self.peek() != Some("]") {
            out.push(self.parse_stmt()?);
        }
        self.expect("]")?;
        Ok(out)
    }

    fn parse_cond(&mut self) -> std::result::Result<Cond, String> {
        self.expect("(")?;
        let head = self.next_tok()?.to_string();
        let cond = match head.as_str() {
            "bget" => Cond::Bool {
                f: self.parse_usize()?,
            },
            "peval" => Cond::Pred {
                f: self.parse_usize()?,
                arg: self.parse_arg()?,
            },
            "neq" | "nne" => Cond::Enum {
                eq: head == "neq",
                f: self.parse_usize()?,
                c: self.parse_u32()?,
            },
            _ => {
                let (family, op) = head.split_at(1);
                let op = CmpOp::parse(op).ok_or_else(|| format!("bad guard {head:?}"))?;
                match family {
                    "i" => Cond::Int {
                        f: self.parse_usize()?,
                        op,
                        k: self.parse_i64()?,
                    },
                    "m" => Cond::MinMax {
                        f: self.parse_usize()?,
                        op,
                        k: self.parse_i64()?,
                    },
                    "x" => Cond::Event {
                        op,
                        k: self.parse_i64()?,
                    },
                    _ => return Err(format!("bad guard {head:?}")),
                }
            }
        };
        self.expect(")")?;
        Ok(cond)
    }

    fn parse_stmt(&mut self) -> std::result::Result<Stmt, String> {
        self.expect("(")?;
        let head = self.next_tok()?.to_string();
        let stmt = match head.as_str() {
            "iadd" | "isub" | "imul" | "irsub" => Stmt::IntOp {
                op: match head.as_str() {
                    "iadd" => IntOpKind::Add,
                    "isub" => IntOpKind::Sub,
                    "imul" => IntOpKind::Mul,
                    _ => IntOpKind::Rsub,
                },
                f: self.parse_usize()?,
                arg: self.parse_arg()?,
            },
            "iset" => Stmt::IntSet {
                f: self.parse_usize()?,
                arg: self.parse_arg()?,
            },
            "bset" => Stmt::BoolSet {
                f: self.parse_usize()?,
                v: self.parse_i64()? != 0,
            },
            "nset" => Stmt::EnumSet {
                f: self.parse_usize()?,
                c: self.parse_u32()?,
            },
            "mupd" => Stmt::MinMaxUpd {
                f: self.parse_usize()?,
                arg: self.parse_arg()?,
            },
            "mset" => Stmt::MinMaxSet {
                f: self.parse_usize()?,
                arg: self.parse_arg()?,
            },
            "pset" => Stmt::PredSet {
                f: self.parse_usize()?,
                arg: self.parse_arg()?,
            },
            "vpush" => Stmt::VecPush {
                f: self.parse_usize()?,
                arg: self.parse_arg()?,
            },
            "vpushi" => Stmt::VecPushInt {
                f: self.parse_usize()?,
                src: self.parse_usize()?,
            },
            "if" => {
                let cond = self.parse_cond()?;
                let then = self.parse_block()?;
                let els = self.parse_block()?;
                Stmt::If { cond, then, els }
            }
            other => return Err(format!("bad statement {other:?}")),
        };
        self.expect(")")?;
        Ok(stmt)
    }
}

fn parse_field(tok: &str) -> std::result::Result<FieldDecl, String> {
    if tok == "vec" {
        return Ok(FieldDecl::Vec);
    }
    if tok == "mmax" {
        return Ok(FieldDecl::MinMax { max: true });
    }
    if tok == "mmin" {
        return Ok(FieldDecl::MinMax { max: false });
    }
    let bad = || format!("bad field {tok:?}");
    let (head, val) = tok.split_once('=').ok_or_else(bad)?;
    match head.chars().next() {
        Some('i') => Ok(FieldDecl::Int {
            width: head[1..].parse().map_err(|_| bad())?,
            init: val.parse().map_err(|_| bad())?,
        }),
        Some('b') if head == "b" => Ok(FieldDecl::Bool { init: val != "0" }),
        Some('n') => Ok(FieldDecl::Enum {
            domain: head[1..].parse().map_err(|_| bad())?,
            init: val.parse().map_err(|_| bad())?,
        }),
        Some('p') => Ok(FieldDecl::Pred {
            window: head[1..].parse().map_err(|_| bad())?,
            kind: PredKind::parse(val).ok_or_else(bad)?,
        }),
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, MergePolicy};
    use crate::uda::{run_chunked_symbolic, run_sequential};

    /// A forky session-counter exercising every field kind. The int field
    /// is full-width: narrower ints trip the engine's conservative
    /// `check_width` on symbolic state (see
    /// `narrow_width_chunked_refuses_conservatively`), which would turn
    /// the strict-equality assertions below into refusal checks.
    fn kitchen_sink() -> Program {
        Program {
            fields: vec![
                FieldDecl::Int { width: 64, init: 0 },
                FieldDecl::Bool { init: false },
                FieldDecl::Enum { domain: 4, init: 0 },
                FieldDecl::MinMax { max: true },
                FieldDecl::Pred {
                    kind: PredKind::Lt,
                    window: 4,
                },
                FieldDecl::Vec,
            ],
            body: vec![
                Stmt::MinMaxUpd {
                    f: 3,
                    arg: IntArg::Event,
                },
                Stmt::If {
                    cond: Cond::Event {
                        op: CmpOp::Eq,
                        k: 0,
                    },
                    then: vec![
                        Stmt::BoolSet { f: 1, v: true },
                        Stmt::IntSet {
                            f: 0,
                            arg: IntArg::Const(0),
                        },
                        Stmt::EnumSet { f: 2, c: 1 },
                    ],
                    els: vec![Stmt::If {
                        cond: Cond::Bool { f: 1 },
                        then: vec![
                            Stmt::IntOp {
                                f: 0,
                                op: IntOpKind::Add,
                                arg: IntArg::EventMod(7),
                            },
                            Stmt::If {
                                cond: Cond::Int {
                                    f: 0,
                                    op: CmpOp::Gt,
                                    k: 9,
                                },
                                then: vec![
                                    Stmt::VecPushInt { f: 5, src: 0 },
                                    Stmt::IntSet {
                                        f: 0,
                                        arg: IntArg::Const(0),
                                    },
                                    Stmt::EnumSet { f: 2, c: 2 },
                                ],
                                els: vec![],
                            },
                        ],
                        els: vec![Stmt::If {
                            cond: Cond::Pred {
                                f: 4,
                                arg: IntArg::Event,
                            },
                            then: vec![Stmt::VecPush {
                                f: 5,
                                arg: IntArg::Const(-1),
                            }],
                            els: vec![Stmt::PredSet {
                                f: 4,
                                arg: IntArg::Event,
                            }],
                        }],
                    }],
                },
            ],
        }
    }

    fn sink_events() -> Vec<i64> {
        vec![5, 3, 0, 4, 6, 2, 9, 0, 1, 8, 8, 8, 7, -2, 0, 6, 6]
    }

    #[test]
    fn kitchen_sink_typechecks_and_round_trips() {
        let p = kitchen_sink();
        p.typecheck().unwrap();
        let token = p.to_token();
        assert!(!token.contains('\n'), "token must be single-line");
        let back = Program::parse_token(&token).unwrap();
        assert_eq!(back, p);
        // And re-rendering is stable.
        assert_eq!(back.to_token(), token);
    }

    #[test]
    fn concrete_reference_matches_uda_sequential() {
        let p = kitchen_sink();
        let events = sink_events();
        let reference = eval_concrete(&p, &events).unwrap();
        let uda = AstUda::new(p);
        let sequential = run_sequential(&uda, events.iter()).unwrap();
        assert_eq!(reference, sequential);
    }

    #[test]
    fn chunked_symbolic_matches_reference_all_splits() {
        let p = kitchen_sink();
        let events = sink_events();
        let expect = eval_concrete(&p, &events).unwrap();
        let uda = AstUda::new(p);
        for chunks in 1..=6 {
            for policy in [
                MergePolicy::Eager,
                MergePolicy::HighWater,
                MergePolicy::Never,
            ] {
                let cfg = EngineConfig {
                    merge_policy: policy,
                    ..EngineConfig::default()
                };
                let got = run_chunked_symbolic(&uda, &events, chunks, &cfg).unwrap();
                assert_eq!(got, expect, "chunks={chunks} policy={policy:?}");
            }
        }
    }

    #[test]
    fn narrow_width_chunked_refuses_conservatively() {
        // An unguarded add on a width-16 accumulator: `check_width` fails
        // whenever *any* feasible symbolic initial value would leave the
        // range, so symbolic chunks refuse with ArithmeticOverflow even
        // though every concrete trace stays far below the bound. The
        // sequential run (all-concrete) succeeds. Differential harnesses
        // must treat the overflow report as a conservative refusal.
        let p = Program {
            fields: vec![FieldDecl::Int { width: 16, init: 0 }],
            body: vec![Stmt::IntOp {
                f: 0,
                op: IntOpKind::Add,
                arg: IntArg::EventMod(7),
            }],
        };
        p.typecheck().unwrap();
        let events: Vec<i64> = (0..12).collect();
        let reference = eval_concrete(&p, &events).unwrap();
        let uda = AstUda::new(p);
        assert_eq!(run_sequential(&uda, events.iter()).unwrap(), reference);
        // Two chunks: the second starts from symbolic state and refuses.
        let chunked = run_chunked_symbolic(&uda, &events, 2, &EngineConfig::default());
        assert!(
            matches!(chunked, Err(Error::ArithmeticOverflow { .. })),
            "{chunked:?}"
        );
    }

    #[test]
    fn out_of_width_reset_fails_in_both_semantics() {
        // `iset` is width-checked like every other write: storing an
        // out-of-range value into an `i16` field would otherwise leave
        // state the field's symbolic range can never cover, which the
        // fuzzer surfaced as an Ok-vs-IncompleteSummary divergence
        // (program `fields[i16=0] body[(iset 0 ev)]`, a boundary event).
        let p = Program {
            fields: vec![FieldDecl::Int { width: 16, init: 0 }],
            body: vec![Stmt::IntSet {
                f: 0,
                arg: IntArg::Event,
            }],
        };
        p.typecheck().unwrap();
        let events = vec![3, i64::MAX / 2];
        let reference = eval_concrete(&p, &events);
        assert!(
            matches!(reference, Err(Error::ArithmeticOverflow { op: "set" })),
            "{reference:?}"
        );
        let uda = AstUda::new(p.clone());
        let seq = run_sequential(&uda, events.iter());
        assert!(
            matches!(seq, Err(Error::ArithmeticOverflow { op: "set" })),
            "{seq:?}"
        );
        // In-width resets still behave as plain rebinds.
        let ok = eval_concrete(&p, &[5, -7]).unwrap();
        assert_eq!(ok, vec![vec![-7]]);
        assert_eq!(run_sequential(&uda, [5, -7].iter()).unwrap(), ok);
    }

    #[test]
    fn transient_i64_overflow_is_never_a_wrong_ok() {
        // Fuzzer catch: `(iadd 0 ev)` then `(iset 0 ev)` on a width-64
        // field. Sequential execution traps mid-record when the entry
        // value plus a huge event overflows i64 — but the overflowing sum
        // is immediately overwritten, so the chunk summary's final
        // transfer looks innocent. Before `check_width` refined width-64
        // constraints, the 2-chunk run returned a wrong `Ok`; now the
        // trapping entry value is covered by no path and the engine
        // refuses (IncompleteSummary) instead.
        let p = Program {
            fields: vec![FieldDecl::Int { width: 64, init: 0 }],
            body: vec![
                Stmt::IntOp {
                    f: 0,
                    op: IntOpKind::Add,
                    arg: IntArg::Event,
                },
                Stmt::IntSet {
                    f: 0,
                    arg: IntArg::Event,
                },
            ],
        };
        p.typecheck().unwrap();
        let huge = i64::MAX / 2 + 1;
        let events = vec![huge, huge];
        assert!(matches!(
            eval_concrete(&p, &events),
            Err(Error::ArithmeticOverflow { .. })
        ));
        let uda = AstUda::new(p.clone());
        assert!(run_sequential(&uda, events.iter()).is_err());
        let chunked = run_chunked_symbolic(&uda, &events, 2, &EngineConfig::default());
        assert!(
            matches!(
                chunked,
                Err(Error::IncompleteSummary) | Err(Error::ArithmeticOverflow { .. })
            ),
            "wrong Ok resurfaced: {chunked:?}"
        );
        // Entry values that do NOT trap still get the exact answer.
        let small = vec![7, -9, 4, 30];
        let expect = eval_concrete(&p, &small).unwrap();
        assert_eq!(
            run_chunked_symbolic(&uda, &small, 2, &EngineConfig::default()).unwrap(),
            expect
        );
    }

    #[test]
    fn overflow_matches_reference() {
        // An 8-bit accumulator adding 100 per event overflows on the
        // second event in both interpreters, with the same variant.
        let p = Program {
            fields: vec![FieldDecl::Int { width: 8, init: 0 }],
            body: vec![Stmt::IntOp {
                f: 0,
                op: IntOpKind::Add,
                arg: IntArg::Const(100),
            }],
        };
        p.typecheck().unwrap();
        let events = [1i64, 1, 1];
        let reference = eval_concrete(&p, &events);
        let sequential = run_sequential(&AstUda::new(p), events.iter());
        assert!(matches!(reference, Err(Error::ArithmeticOverflow { .. })));
        assert!(matches!(sequential, Err(Error::ArithmeticOverflow { .. })));
    }

    #[test]
    fn typecheck_rejects_bad_programs() {
        // Out-of-range field reference.
        let p = Program {
            fields: vec![FieldDecl::Bool { init: false }],
            body: vec![Stmt::IntSet {
                f: 0,
                arg: IntArg::Const(1),
            }],
        };
        assert!(p.typecheck().is_err());
        // Enum constant outside the domain.
        let p = Program {
            fields: vec![FieldDecl::Enum { domain: 3, init: 0 }],
            body: vec![Stmt::EnumSet { f: 0, c: 3 }],
        };
        assert!(p.typecheck().is_err());
        // Eq on a minmax guard.
        let p = Program {
            fields: vec![FieldDecl::MinMax { max: true }],
            body: vec![Stmt::If {
                cond: Cond::MinMax {
                    f: 0,
                    op: CmpOp::Eq,
                    k: 0,
                },
                then: vec![],
                els: vec![],
            }],
        };
        assert!(p.typecheck().is_err());
        // Zero event modulus.
        let p = Program {
            fields: vec![FieldDecl::Vec],
            body: vec![Stmt::VecPush {
                f: 0,
                arg: IntArg::EventMod(0),
            }],
        };
        assert!(p.typecheck().is_err());
        // No fields at all.
        assert!(Program {
            fields: vec![],
            body: vec![],
        }
        .typecheck()
        .is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Program::parse_token("").is_err());
        assert!(Program::parse_token("fields[] body[]").is_err());
        assert!(Program::parse_token("fields[i32=0] body[(bogus 0 1)]").is_err());
        assert!(Program::parse_token("fields[i32=0] body[(iadd 0 ev) trailing").is_err());
        // Ill-typed but syntactically fine: parser must typecheck.
        assert!(Program::parse_token("fields[b=0] body[(iadd 0 1)]").is_err());
    }

    #[test]
    fn variants_cover_event_cuts() {
        let p = kitchen_sink();
        let vs = p.variants();
        assert!(vs.len() >= 3 && vs.len() <= 12);
        let values: Vec<i64> = vs.iter().map(|(_, v)| *v).collect();
        for needed in [0, 1, -1] {
            assert!(values.contains(&needed), "{needed} missing from {values:?}");
        }
        // Names are unique (the analyzer keys reports by name).
        let mut names: Vec<&str> = vs.iter().map(|(n, _)| *n).collect();
        names.dedup();
        assert_eq!(names.len(), vs.len());
    }

    #[test]
    fn analyzer_runs_on_generated_state() {
        let p = kitchen_sink();
        let variants = p.variants();
        let uda = AstUda::new(p);
        let a = crate::analysis::analyze_uda(&uda, &variants);
        assert_eq!(a.fields.len(), 6);
        assert!(a.max_branching() >= 1);
    }
}
