//! A fixed 256-bit set: the constraint representation behind
//! [`crate::SymEnum`].
//!
//! §4.1's canonical form needs set membership, intersection, union and
//! complement in constant time; a quadword array covers state machines up
//! to 256 states without heap allocation or variable-width logic.

use crate::wire;
use crate::wire::WireError;

/// Number of bits a [`BitSet256`] can hold.
pub const BITSET_CAPACITY: u32 = 256;

const WORDS: usize = 4;

/// A set of small integers in `0..256`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BitSet256 {
    words: [u64; WORDS],
}

impl BitSet256 {
    /// The empty set.
    pub const EMPTY: BitSet256 = BitSet256 { words: [0; WORDS] };

    /// The set `{0, …, domain−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `domain` exceeds [`BITSET_CAPACITY`] — a construction-time
    /// bug, not a data error.
    pub fn full(domain: u32) -> BitSet256 {
        assert!(domain <= BITSET_CAPACITY, "domain {domain} exceeds 256");
        let mut words = [0u64; WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            let lo = (i as u32) * 64;
            if domain > lo {
                let n = (domain - lo).min(64);
                *w = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            }
        }
        BitSet256 { words }
    }

    /// The singleton `{v}`.
    pub fn singleton(v: u32) -> BitSet256 {
        let mut s = BitSet256::EMPTY;
        s.insert(v);
        s
    }

    /// Builds a set from the low 64 values of a mask (convenience for
    /// small domains).
    pub fn from_mask64(mask: u64) -> BitSet256 {
        BitSet256 {
            words: [mask, 0, 0, 0],
        }
    }

    /// The low 64 values as a mask.
    pub fn low_mask64(&self) -> u64 {
        self.words[0]
    }

    /// Adds `v` to the set.
    pub fn insert(&mut self, v: u32) {
        debug_assert!(v < BITSET_CAPACITY);
        self.words[(v / 64) as usize] |= 1u64 << (v % 64);
    }

    /// Whether `v` is in the set.
    pub fn contains(&self, v: u32) -> bool {
        v < BITSET_CAPACITY && self.words[(v / 64) as usize] & (1u64 << (v % 64)) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of members.
    pub fn len(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Set intersection.
    pub fn intersect(&self, other: &BitSet256) -> BitSet256 {
        self.zip_with(other, |a, b| a & b)
    }

    /// Set union.
    pub fn union(&self, other: &BitSet256) -> BitSet256 {
        self.zip_with(other, |a, b| a | b)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &BitSet256) -> BitSet256 {
        self.zip_with(other, |a, b| a & !b)
    }

    fn zip_with(&self, other: &BitSet256, f: impl Fn(u64, u64) -> u64) -> BitSet256 {
        let mut words = [0u64; WORDS];
        for (w, (a, b)) in words.iter_mut().zip(self.words.iter().zip(&other.words)) {
            *w = f(*a, *b);
        }
        BitSet256 { words }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet256) -> bool {
        self.difference(other).is_empty()
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..BITSET_CAPACITY).filter(move |v| self.contains(*v))
    }

    /// Encodes only the words a domain of the given size needs.
    pub fn encode_for_domain(&self, domain: u32, buf: &mut Vec<u8>) {
        let words = domain.div_ceil(64) as usize;
        for w in &self.words[..words.max(1)] {
            wire::put_uvarint(buf, *w);
        }
    }

    /// Decodes the words a domain of the given size needs.
    pub fn decode_for_domain(domain: u32, buf: &mut &[u8]) -> Result<BitSet256, WireError> {
        let n = (domain.div_ceil(64) as usize).max(1);
        let mut words = [0u64; WORDS];
        for w in words.iter_mut().take(n) {
            *w = wire::get_uvarint(buf)?;
        }
        let s = BitSet256 { words };
        if !s.is_subset(&BitSet256::full(domain)) {
            return Err(WireError::LengthOverflow(domain as u64));
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_membership() {
        let s = BitSet256::full(100);
        assert_eq!(s.len(), 100);
        assert!(s.contains(0));
        assert!(s.contains(99));
        assert!(!s.contains(100));
        assert!(!s.contains(300));
        assert!(BitSet256::full(64).contains(63));
        assert_eq!(BitSet256::full(256).len(), 256);
        assert!(BitSet256::full(0).is_empty());
    }

    #[test]
    fn insert_singleton_iter() {
        let mut s = BitSet256::EMPTY;
        s.insert(3);
        s.insert(130);
        s.insert(255);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 130, 255]);
        assert_eq!(BitSet256::singleton(77).len(), 1);
    }

    #[test]
    fn algebra() {
        let a = BitSet256::full(10);
        let b = BitSet256::from_mask64(0b1010_1010);
        assert_eq!(a.intersect(&b), b);
        assert_eq!(a.union(&b), a);
        assert_eq!(a.difference(&b).len(), 10 - 4);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        // Across word boundaries.
        let hi = BitSet256::singleton(200);
        assert!(hi.intersect(&a).is_empty());
        assert_eq!(hi.union(&a).len(), 11);
    }

    #[test]
    fn wire_roundtrip_per_domain() {
        for domain in [1u32, 7, 64, 65, 128, 200, 256] {
            let mut s = BitSet256::EMPTY;
            for v in (0..domain).step_by(3) {
                s.insert(v);
            }
            let mut buf = Vec::new();
            s.encode_for_domain(domain, &mut buf);
            let mut rd = &buf[..];
            let back = BitSet256::decode_for_domain(domain, &mut rd).unwrap();
            assert!(rd.is_empty(), "domain {domain}");
            assert_eq!(back, s, "domain {domain}");
        }
    }

    #[test]
    fn wire_rejects_out_of_domain_bits() {
        let s = BitSet256::full(64);
        let mut buf = Vec::new();
        s.encode_for_domain(64, &mut buf);
        // Decode as a smaller domain: the high bits are invalid.
        let mut rd = &buf[..];
        assert!(BitSet256::decode_for_domain(10, &mut rd).is_err());
    }
}
