//! Summary application and composition (§3.6 of the paper).
//!
//! The reducer recovers the sequential result by applying each chunk's
//! summary, in input order, to the running concrete state:
//! `Sₙ(...(S₃(S₂(C₁))))`. Because function composition is associative, two
//! summaries can also be composed *symbolically* (`S₃ ∘ S₂`) before any
//! concrete input is known — enabling tree-shaped reduction.
//!
//! Both operations reduce to one primitive, [`compose_state`]: rewriting a
//! later path (a function of its input `y`) in terms of an earlier path's
//! input `x`, per field, discarding infeasible cross-products.

use crate::engine::merge::merge_paths;
use crate::error::{Error, Result};
use crate::state::SymState;
use crate::summary::{Summary, SummaryChain};

/// Composes one later path onto one earlier path.
///
/// Returns `Ok(None)` when the pair is infeasible (the earlier path's
/// output cannot satisfy the later path's constraint). Scalar fields are
/// composed before aggregates so that infeasibility is detected before any
/// vector substitution can observe an inconsistent state.
pub fn compose_state<S: SymState>(later: &S, earlier: &S) -> Result<Option<S>> {
    let mut out = later.clone();
    let prev_fields = earlier.fields_ref();
    for pass_aggregates in [false, true] {
        let mut out_fields = out.fields_mut();
        debug_assert_eq!(out_fields.len(), prev_fields.len());
        for (i, f) in out_fields.iter_mut().enumerate() {
            if f.is_aggregate() != pass_aggregates {
                continue;
            }
            if !f.compose_onto(prev_fields[i], &prev_fields)? {
                return Ok(None);
            }
        }
    }
    Ok(Some(out))
}

/// Applies a summary to a concrete state: `S(c)`.
///
/// Exactly one path constraint must match — a validity property of sound
/// and precise summaries that this function also verifies, returning
/// [`Error::IncompleteSummary`] / [`Error::OverlappingSummary`] otherwise.
pub fn apply_summary<S: SymState>(summary: &Summary<S>, state: &S) -> Result<S> {
    debug_assert!(
        crate::state::state_is_concrete(state),
        "apply_summary requires a fully concrete input state"
    );
    let mut matched: Option<S> = None;
    for path in summary.paths() {
        if let Some(s) = compose_state(path, state)? {
            if matched.is_some() {
                return Err(Error::OverlappingSummary);
            }
            matched = Some(s);
        }
    }
    matched.ok_or(Error::IncompleteSummary)
}

/// Applies every summary of a chain in order, starting from `state`.
pub fn apply_chain<S: SymState>(chain: &SummaryChain<S>, state: &S) -> Result<S> {
    let _span = symple_obs::span("compose.apply_chain");
    symple_obs::counter_add("compose.summaries_applied", chain.len() as u64);
    let mut cur = state.clone();
    for summary in chain.summaries() {
        cur = apply_summary(summary, &cur)?;
    }
    Ok(cur)
}

/// Composes two summaries symbolically: the result of `compose_summaries
/// (later, earlier)` behaves exactly like applying `earlier` then `later`.
///
/// Takes the cross-product of the paths, drops infeasible pairs, and merges
/// paths with equal transfer functions (§3.6's example: `S₃ ∘ S₂`).
pub fn compose_summaries<S: SymState>(
    later: &Summary<S>,
    earlier: &Summary<S>,
) -> Result<Summary<S>> {
    let _span = symple_obs::span("compose.compose_summaries");
    symple_obs::counter_add(
        "compose.path_products",
        (later.len() * earlier.len()) as u64,
    );
    let mut out = Vec::new();
    for pe in earlier.paths() {
        for pl in later.paths() {
            if let Some(c) = compose_state(pl, pe)? {
                out.push(c);
            }
        }
    }
    if out.is_empty() {
        return Err(Error::EmptyComposition);
    }
    merge_paths(&mut out);
    Ok(Summary::new(out))
}

/// Concatenates two chains: `earlier`'s summaries apply first.
pub fn compose_chain<S: SymState>(
    later: &SummaryChain<S>,
    earlier: &SummaryChain<S>,
) -> SummaryChain<S> {
    later.clone().after(earlier.clone())
}

/// Collapses a chain into a single summary by symbolic composition.
///
/// This is the expensive (cross-product) form; reducers that hold a
/// concrete running state should prefer [`apply_chain`].
pub fn collapse_chain<S: SymState>(chain: &SummaryChain<S>) -> Result<Summary<S>> {
    let mut iter = chain.summaries().iter();
    let first = iter.next().ok_or(Error::IncompleteSummary)?;
    let mut acc = first.clone();
    for s in iter {
        acc = compose_summaries(s, &acc)?;
    }
    Ok(acc)
}

/// Collapses an ordered slice of summaries by balanced pairwise
/// composition — §3.6's "one can further parallelize this computation as
/// function composition is associative". In a distributed reducer each
/// level of the tree would run in parallel; here the win is the shape
/// (depth `log n` instead of `n`), which the composition bench measures.
pub fn tree_collapse<S: SymState>(summaries: &[Summary<S>]) -> Result<Summary<S>> {
    let _span = symple_obs::span("compose.tree_collapse");
    match summaries {
        [] => Err(Error::IncompleteSummary),
        [one] => Ok(one.clone()),
        _ => {
            let mid = summaries.len() / 2;
            let left = tree_collapse(&summaries[..mid])?;
            let right = tree_collapse(&summaries[mid..])?;
            compose_summaries(&right, &left)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::SymCtx;
    use crate::impl_sym_state;
    use crate::interval::Interval;
    use crate::state::make_state_symbolic;
    use crate::types::sym_int::SymInt;
    use crate::types::sym_vector::SymVector;

    #[derive(Clone, Debug)]
    struct MaxS {
        max: SymInt,
    }
    impl_sym_state!(MaxS { max });

    /// Builds the Max summary of §3.5 for a chunk whose maximum is `m`:
    /// `x ≤ m−1 ⇒ m  ∧  x ≥ m ⇒ x` (using the paper's `<` convention the
    /// split lands at m).
    fn max_summary(m: i64) -> Summary<MaxS> {
        let mut lo = MaxS {
            max: SymInt::new(0),
        };
        make_state_symbolic(&mut lo);
        let mut ctx = SymCtx::symbolic();
        assert!(
            lo.max.lt(&mut ctx, m),
            "first exploration takes the true side"
        );
        lo.max.assign(m);
        let mut hi = MaxS {
            max: SymInt::new(0),
        };
        make_state_symbolic(&mut hi);
        let mut ctx = SymCtx::symbolic();
        assert!(hi.max.ge(&mut ctx, m));
        Summary::new(vec![lo, hi])
    }

    #[test]
    fn apply_matches_paper_example() {
        // §3.6: chunk 2 (max 10) applied to the concrete output 9 of chunk
        // 1 yields 10; chunk 3 (max 8) applied to 10 keeps 10.
        let s2 = max_summary(10);
        let s3 = max_summary(8);
        let c1 = MaxS {
            max: SymInt::new(9),
        };
        let after2 = apply_summary(&s2, &c1).unwrap();
        assert_eq!(after2.max.concrete_value(), Some(10));
        let after3 = apply_summary(&s3, &after2).unwrap();
        assert_eq!(after3.max.concrete_value(), Some(10));
    }

    #[test]
    fn compose_matches_paper_example() {
        // §3.6: S₃ ∘ S₂ = { y ≤ 9 ⇒ 10, y ≥ 10 ⇒ y } for maxima 10, 8.
        let s2 = max_summary(10);
        let s3 = max_summary(8);
        let s32 = compose_summaries(&s3, &s2).unwrap();
        assert_eq!(
            s32.len(),
            2,
            "infeasible pairs pruned, equal transfers merged"
        );
        // Composed-then-applied equals applied-sequentially.
        for v in [-5, 7, 9, 10, 11, 100] {
            let c = MaxS {
                max: SymInt::new(v),
            };
            let seq = apply_summary(&s3, &apply_summary(&s2, &c).unwrap()).unwrap();
            let comp = apply_summary(&s32, &c).unwrap();
            assert_eq!(seq.max.concrete_value(), comp.max.concrete_value(), "v={v}");
        }
    }

    #[test]
    fn composition_is_associative() {
        let s2 = max_summary(10);
        let s3 = max_summary(8);
        let s4 = max_summary(12);
        let left = compose_summaries(&s4, &compose_summaries(&s3, &s2).unwrap()).unwrap();
        let right = compose_summaries(&compose_summaries(&s4, &s3).unwrap(), &s2).unwrap();
        for v in [-1, 9, 10, 11, 12, 13, 50] {
            let c = MaxS {
                max: SymInt::new(v),
            };
            let a = apply_summary(&left, &c).unwrap().max.concrete_value();
            let b = apply_summary(&right, &c).unwrap().max.concrete_value();
            assert_eq!(a, b, "v={v}");
        }
    }

    #[test]
    fn incomplete_summary_detected() {
        // A summary missing the x ≥ 10 path cannot cover input 42.
        let s2 = max_summary(10);
        let partial = Summary::new(vec![s2.paths()[0].clone()]);
        let c = MaxS {
            max: SymInt::new(42),
        };
        assert!(matches!(
            apply_summary(&partial, &c),
            Err(Error::IncompleteSummary)
        ));
    }

    #[test]
    fn overlapping_summary_detected() {
        let s2 = max_summary(10);
        let dup = Summary::new(vec![s2.paths()[0].clone(), s2.paths()[0].clone()]);
        let c = MaxS {
            max: SymInt::new(3),
        };
        assert!(matches!(
            apply_summary(&dup, &c),
            Err(Error::OverlappingSummary)
        ));
    }

    #[derive(Clone, Debug)]
    struct CountS {
        count: SymInt,
        out: SymVector<i64>,
    }
    impl_sym_state!(CountS { count, out });

    #[test]
    fn vectors_stitch_across_composition() {
        // Earlier chunk: count += 2, pushed count (x+2).
        let mut e = CountS {
            count: SymInt::new(0),
            out: SymVector::new(),
        };
        make_state_symbolic(&mut e);
        e.count += 2;
        e.out.push_int(&e.count);
        // Later chunk: count += 3, pushed count (y+3).
        let mut l = CountS {
            count: SymInt::new(0),
            out: SymVector::new(),
        };
        make_state_symbolic(&mut l);
        l.count += 3;
        l.out.push_int(&l.count);

        let se = Summary::singleton(e);
        let sl = Summary::singleton(l);
        let s = compose_summaries(&sl, &se).unwrap();
        let init = CountS {
            count: SymInt::new(10),
            out: SymVector::new(),
        };
        let fin = apply_summary(&s, &init).unwrap();
        assert_eq!(fin.count.concrete_value(), Some(15));
        assert_eq!(fin.out.concrete_elems().unwrap(), vec![12, 15]);
    }

    #[test]
    fn apply_chain_runs_in_order() {
        let chain = SummaryChain::new(vec![max_summary(10), max_summary(8), max_summary(20)]);
        let c = MaxS {
            max: SymInt::new(9),
        };
        let fin = apply_chain(&chain, &c).unwrap();
        assert_eq!(fin.max.concrete_value(), Some(20));
    }

    #[test]
    fn collapse_chain_equals_apply_chain() {
        let chain = SummaryChain::new(vec![max_summary(10), max_summary(8), max_summary(20)]);
        let collapsed = collapse_chain(&chain).unwrap();
        for v in [0, 9, 15, 25] {
            let c = MaxS {
                max: SymInt::new(v),
            };
            let a = apply_chain(&chain, &c).unwrap().max.concrete_value();
            let b = apply_summary(&collapsed, &c).unwrap().max.concrete_value();
            assert_eq!(a, b, "v={v}");
        }
    }

    #[test]
    fn tree_collapse_equals_sequential_collapse() {
        let summaries: Vec<Summary<MaxS>> = [3, 10, 8, 20, 15, 1, 19]
            .iter()
            .map(|m| max_summary(*m))
            .collect();
        let tree = tree_collapse(&summaries).unwrap();
        let chain = SummaryChain::new(summaries.clone());
        for v in [-5, 9, 10, 19, 20, 21, 100] {
            let c = MaxS {
                max: SymInt::new(v),
            };
            let a = apply_summary(&tree, &c).unwrap().max.concrete_value();
            let b = apply_chain(&chain, &c).unwrap().max.concrete_value();
            assert_eq!(a, b, "v={v}");
        }
        assert!(tree_collapse::<MaxS>(&[]).is_err());
    }

    #[test]
    fn compose_constraint_intervals_pull_back() {
        let s2 = max_summary(10);
        let s3 = max_summary(8);
        let s32 = compose_summaries(&s3, &s2).unwrap();
        // Find the constant path; it should cover x ≤ 9 after pullback and
        // merging with the (5 ≤ x ≤ 10 ⇒ 10)-style region.
        let consts: Vec<_> = s32
            .paths()
            .iter()
            .filter(|p| p.max.concrete_value() == Some(10))
            .collect();
        assert_eq!(consts.len(), 1);
        assert_eq!(consts[0].max.constraint(), Interval::new(i64::MIN, 9));
    }
}
