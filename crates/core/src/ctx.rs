//! Execution context: the choice vector that drives systematic path
//! exploration (§5.1 of the paper).
//!
//! SYMPLE explores the feasible paths of one `Update` invocation by
//! re-running it, each time following a different *choice vector* of branch
//! outcomes. The paper uses binary digits (0 = then, 1 = else) and advances
//! the vector lexicographically: pop trailing maximal digits, then increment
//! the last remaining digit.
//!
//! This implementation generalizes digits to small arities, because an
//! equality test on a `SymInt` can have up to **three** feasible outcomes
//! (`x < x₀`, `x = x₀`, `x > x₀` — the "not equal" side of an interval is
//! not itself an interval, so it must fork). A multi-way choice is
//! semantically a sequence of binary choices; the mixed-radix vector is the
//! direct encoding.

use crate::error::Error;
use crate::state::FieldId;

/// A mixed-radix choice vector: one digit (with its arity) per branch at
/// which more than one outcome was feasible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChoiceVector {
    digits: Vec<Digit>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Digit {
    value: u8,
    arity: u8,
}

impl ChoiceVector {
    /// An empty vector: the first run takes the first feasible outcome at
    /// every branch.
    pub fn new() -> ChoiceVector {
        ChoiceVector::default()
    }

    /// Number of recorded choice points.
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// Whether no choice point has been recorded.
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// Advances to the lexicographically next vector.
    ///
    /// Pops trailing digits at their maximum and increments the last
    /// remaining digit. Returns `false` when the space is exhausted.
    pub fn advance(&mut self) -> bool {
        while let Some(d) = self.digits.last() {
            if d.value + 1 < d.arity {
                break;
            }
            self.digits.pop();
        }
        match self.digits.last_mut() {
            Some(d) => {
                d.value += 1;
                true
            }
            None => false,
        }
    }

    /// The digit values, for diagnostics and tests.
    pub fn values(&self) -> Vec<u8> {
        self.digits.iter().map(|d| d.value).collect()
    }

    /// Empties the vector, retaining its digit capacity so a recycled
    /// context never reallocates across records.
    pub(crate) fn clear(&mut self) {
        self.digits.clear();
    }
}

/// Execution mode of a [`SymCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Branches on symbolic values fork according to the choice vector.
    Symbolic,
    /// All state must be concrete; an attempted fork is an error.
    Concrete,
    /// Like [`Mode::Symbolic`], but additionally records every symbolic
    /// operation in a footprint for the static analyzer.
    Analysis,
}

/// The class of a symbolic operation recorded in an analysis footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A comparison or set-membership test that steers control flow.
    Guard,
    /// An arithmetic update (`add`, `mul`, …) on a symbolic scalar.
    Arith,
    /// An opaque-predicate evaluation ([`crate::SymPred::eval`]).
    PredEval,
}

/// One symbolic operation observed during an analysis-mode run.
///
/// The analyzer replays a UDA's `update` from an all-symbolic "top" state
/// and aggregates these records into per-query facts: which fields steer
/// control flow (guard liveness), how often predicates widen their decision
/// windows, and where arithmetic touches symbolic values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FootprintOp {
    /// What class of operation ran.
    pub kind: OpKind,
    /// The field the operation read or wrote, when the type knows it.
    pub field: Option<FieldId>,
    /// The operation's name (`"lt"`, `"add"`, `"eval"`, …).
    pub op: &'static str,
    /// Whether the operation forked the path (consumed a choice digit).
    pub forked: bool,
}

/// Per-run execution context threaded through every branching operation of
/// the symbolic data types.
///
/// The C++ SYMPLE library hides this state behind operator overloading and
/// thread-locals; in Rust the context is passed explicitly
/// (`sym_int.lt(ctx, 5)`), which keeps the engine a plain library with no
/// global mutable state.
///
/// A `SymCtx` is used in one of three modes:
///
/// * **symbolic** ([`SymCtx::symbolic`]) — branches with several feasible
///   outcomes consult the choice vector, appending new digits on first
///   visit;
/// * **concrete** ([`SymCtx::concrete`]) — used for the sequential
///   reference execution and for `Result` extraction; forks are engine
///   errors;
/// * **analysis** ([`SymCtx::analysis`]) — forks exactly like symbolic
///   mode, but additionally records the symbolic-op footprint
///   ([`FootprintOp`]) that the static analyzer in `crates/analyze` turns
///   into lint diagnostics.
///
/// Errors raised mid-`update` (overflow, explosion) are latched in the
/// context because `Update` returns `()`; the executor checks
/// [`SymCtx::take_error`] after every run.
#[derive(Debug)]
pub struct SymCtx {
    choices: ChoiceVector,
    pos: usize,
    mode: Mode,
    error: Option<Error>,
    forks_taken: u64,
    footprint: Vec<FootprintOp>,
    /// Sealed (probe) contexts refuse to fork: [`SymCtx::choose`] latches
    /// `fork_refused` and pins outcome 0 instead of appending a digit.
    sealed: bool,
    fork_refused: bool,
}

impl SymCtx {
    fn with_mode(mode: Mode) -> SymCtx {
        SymCtx {
            choices: ChoiceVector::new(),
            pos: 0,
            mode,
            error: None,
            forks_taken: 0,
            footprint: Vec::new(),
            sealed: false,
            fork_refused: false,
        }
    }

    /// Creates a context for symbolic exploration starting from the empty
    /// choice vector.
    pub fn symbolic() -> SymCtx {
        SymCtx::with_mode(Mode::Symbolic)
    }

    /// Creates a concrete-mode context: every branch must be deterministic.
    pub fn concrete() -> SymCtx {
        SymCtx::with_mode(Mode::Concrete)
    }

    /// Creates an analysis-mode context: forks behave exactly as in
    /// symbolic mode, and every symbolic operation the data types report
    /// via [`SymCtx::note_op`] is recorded in a per-run footprint.
    pub fn analysis() -> SymCtx {
        SymCtx::with_mode(Mode::Analysis)
    }

    /// Creates a *sealed* probe context: it behaves exactly like a
    /// symbolic context (so data-type semantics are unchanged) **until**
    /// an operation would fork — then [`SymCtx::choose`] latches
    /// [`SymCtx::fork_refused`], pins outcome 0, and the caller is
    /// expected to roll the run back and fall through to full
    /// exploration. The batched fast path in the engine uses this to
    /// apply fork-free records in place without cloning states.
    pub fn probe() -> SymCtx {
        let mut ctx = SymCtx::with_mode(Mode::Symbolic);
        ctx.sealed = true;
        ctx
    }

    /// Resets a sealed probe context for its next in-place run, keeping
    /// allocated capacity.
    pub fn begin_probe(&mut self) {
        debug_assert!(self.sealed, "begin_probe on a non-probe context");
        self.choices.clear();
        self.pos = 0;
        self.error = None;
        self.forks_taken = 0;
        self.footprint.clear();
        self.fork_refused = false;
    }

    /// Whether a sealed probe run attempted to fork (and was refused).
    pub fn fork_refused(&self) -> bool {
        self.fork_refused
    }

    /// Whether this context permits symbolic forks.
    pub fn is_symbolic(&self) -> bool {
        matches!(self.mode, Mode::Symbolic | Mode::Analysis)
    }

    /// Whether this context records an analysis footprint.
    pub fn is_analysis(&self) -> bool {
        self.mode == Mode::Analysis
    }

    /// Records a symbolic operation in the analysis footprint.
    ///
    /// No-op outside analysis mode, so the symbolic data types can call
    /// this unconditionally on their hot paths.
    pub fn note_op(
        &mut self,
        kind: OpKind,
        field: Option<FieldId>,
        op: &'static str,
        forked: bool,
    ) {
        if self.mode == Mode::Analysis {
            self.footprint.push(FootprintOp {
                kind,
                field,
                op,
                forked,
            });
        }
    }

    /// Takes the footprint accumulated since the last `begin_run`
    /// (analysis mode only; empty otherwise).
    pub fn take_footprint(&mut self) -> Vec<FootprintOp> {
        std::mem::take(&mut self.footprint)
    }

    /// Resets the cursor for the next run over the same (advanced) vector.
    pub(crate) fn begin_run(&mut self) {
        self.pos = 0;
        self.error = None;
        self.footprint.clear();
    }

    /// Advances the choice vector to the next unexplored path.
    ///
    /// Returns `false` when all paths have been explored.
    pub(crate) fn advance(&mut self) -> bool {
        self.choices.advance()
    }

    /// Picks an outcome at a branch where `arity ≥ 2` outcomes are feasible.
    ///
    /// On the first visit in this run the branch takes outcome 0 and a new
    /// digit is appended; on replays the recorded digit is returned.
    /// Symbolic data types must call this **only** when more than one
    /// outcome is feasible — deterministic branches consume no digit, which
    /// is what keeps concrete execution exactly as fast as native code
    /// (§4.1 "once bound, SymEnums are as fast as a C++ enum").
    pub fn choose(&mut self, arity: u8) -> u8 {
        debug_assert!(arity >= 2);
        if self.sealed {
            // Probe runs never explore: latch the refusal so the engine
            // rolls this run back, and pin the first outcome so the rest
            // of the (discarded) run stays well-defined.
            self.fork_refused = true;
            return 0;
        }
        if self.mode == Mode::Concrete {
            self.fail(Error::NonConcreteBranch);
            return 0;
        }
        self.forks_taken += 1;
        if self.pos < self.choices.digits.len() {
            let d = self.choices.digits[self.pos];
            debug_assert_eq!(
                d.arity, arity,
                "choice-vector replay diverged: the UDA update function is not deterministic"
            );
            self.pos += 1;
            d.value
        } else {
            self.choices.digits.push(Digit { value: 0, arity });
            self.pos += 1;
            0
        }
    }

    /// Latches an error; subsequent operations become no-ops at the type
    /// level and the executor aborts after the run.
    pub fn fail(&mut self, e: Error) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Whether an error has been latched.
    pub fn has_error(&self) -> bool {
        self.error.is_some()
    }

    /// Takes the latched error, if any.
    pub fn take_error(&mut self) -> Option<Error> {
        self.error.take()
    }

    /// Total forks taken across all runs (statistics).
    pub fn forks_taken(&self) -> u64 {
        self.forks_taken
    }

    /// The current choice vector (diagnostics and tests).
    pub fn choice_vector(&self) -> &ChoiceVector {
        &self.choices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_enumeration_matches_paper_order() {
        // §5.1's example: paths 0, 10, 11 for the Max function. We simulate
        // the feasibility structure of Figure 3: taking outcome 0 at the
        // first branch ends the path; outcome 1 exposes a second branch.
        let mut ctx = SymCtx::symbolic();
        let mut paths = Vec::new();
        loop {
            ctx.begin_run();
            let first = ctx.choose(2);
            let mut p = vec![first];
            if first == 1 {
                p.push(ctx.choose(2));
            }
            paths.push(p);
            if !ctx.advance() {
                break;
            }
        }
        assert_eq!(paths, vec![vec![0], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn full_binary_tree_enumeration() {
        let mut ctx = SymCtx::symbolic();
        let mut count = 0;
        loop {
            ctx.begin_run();
            let _ = ctx.choose(2);
            let _ = ctx.choose(2);
            let _ = ctx.choose(2);
            count += 1;
            if !ctx.advance() {
                break;
            }
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn mixed_radix_enumeration() {
        // A ternary fork followed by a binary fork: 3 × 2 = 6 paths in
        // lexicographic order.
        let mut ctx = SymCtx::symbolic();
        let mut paths = Vec::new();
        loop {
            ctx.begin_run();
            let a = ctx.choose(3);
            let b = ctx.choose(2);
            paths.push((a, b));
            if !ctx.advance() {
                break;
            }
        }
        assert_eq!(paths, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn no_choices_single_path() {
        let mut ctx = SymCtx::symbolic();
        ctx.begin_run();
        assert!(!ctx.advance(), "no forks means exactly one path");
    }

    #[test]
    fn concrete_mode_rejects_fork() {
        let mut ctx = SymCtx::concrete();
        let _ = ctx.choose(2);
        assert_eq!(ctx.take_error(), Some(Error::NonConcreteBranch));
    }

    #[test]
    fn fail_latches_first_error() {
        let mut ctx = SymCtx::symbolic();
        ctx.fail(Error::IncompleteSummary);
        ctx.fail(Error::EmptyComposition);
        assert_eq!(ctx.take_error(), Some(Error::IncompleteSummary));
        assert_eq!(ctx.take_error(), None);
    }

    #[test]
    fn begin_run_clears_error_and_cursor() {
        let mut ctx = SymCtx::symbolic();
        let _ = ctx.choose(2);
        ctx.fail(Error::IncompleteSummary);
        ctx.begin_run();
        assert!(!ctx.has_error());
        // Replay returns the recorded digit.
        assert_eq!(ctx.choose(2), 0);
    }

    #[test]
    fn analysis_mode_forks_and_records() {
        let mut ctx = SymCtx::analysis();
        assert!(ctx.is_symbolic());
        assert!(ctx.is_analysis());
        ctx.note_op(OpKind::Guard, Some(FieldId(1)), "lt", true);
        assert_eq!(ctx.choose(2), 0, "analysis forks like symbolic mode");
        assert!(!ctx.has_error());
        let fp = ctx.take_footprint();
        assert_eq!(fp.len(), 1);
        assert_eq!(fp[0].field, Some(FieldId(1)));
        assert_eq!(fp[0].op, "lt");
        ctx.note_op(OpKind::Arith, None, "add", false);
        ctx.begin_run();
        assert!(
            ctx.take_footprint().is_empty(),
            "begin_run clears the footprint"
        );
    }

    #[test]
    fn non_analysis_modes_ignore_note_op() {
        for mut ctx in [SymCtx::symbolic(), SymCtx::concrete()] {
            ctx.note_op(OpKind::Arith, None, "add", false);
            assert!(ctx.take_footprint().is_empty());
        }
    }

    #[test]
    fn probe_refuses_forks_without_counting() {
        let mut ctx = SymCtx::probe();
        ctx.begin_probe();
        assert!(ctx.is_symbolic(), "probe semantics are symbolic semantics");
        assert!(!ctx.fork_refused());
        assert_eq!(ctx.choose(2), 0, "refused forks pin outcome 0");
        assert!(ctx.fork_refused());
        assert_eq!(ctx.forks_taken(), 0, "refused forks are not statistics");
        assert!(ctx.choice_vector().is_empty(), "no digit is appended");
        assert!(!ctx.has_error(), "refusal is not an error");
        // A reset probe forgets the refusal.
        ctx.begin_probe();
        assert!(!ctx.fork_refused());
    }

    #[test]
    fn probe_latches_errors_like_symbolic() {
        let mut ctx = SymCtx::probe();
        ctx.begin_probe();
        ctx.fail(Error::IncompleteSummary);
        assert!(ctx.has_error());
        ctx.begin_probe();
        assert!(!ctx.has_error(), "begin_probe clears latched errors");
    }

    #[test]
    fn choice_vector_values() {
        let mut cv = ChoiceVector::new();
        assert!(cv.is_empty());
        assert!(!cv.advance());
        cv.digits.push(Digit { value: 0, arity: 2 });
        cv.digits.push(Digit { value: 0, arity: 3 });
        assert!(cv.advance());
        assert_eq!(cv.values(), vec![0, 1]);
        assert!(cv.advance());
        assert_eq!(cv.values(), vec![0, 2]);
        assert!(cv.advance());
        assert_eq!(cv.values(), vec![1]);
        assert_eq!(cv.len(), 1);
    }
}
