//! Per-chunk exploration arena: recycled state generations, a reusable
//! probe context, and rollback snapshots for batched event application.
//!
//! A chunk's exploration churns through `paths × choice-vectors` state
//! values per record. Allocating each generation afresh (and dropping the
//! previous one) dominated map CPU at scale, so the executor owns an
//! [`ExploreArena`] instead:
//!
//! * **Generation buffers** — the per-record exploration output (`out`)
//!   and the live path set swap roles every record, so the steady state
//!   allocates nothing: a record's output is written into the buffer the
//!   previous generation vacated.
//! * **Copy-on-write states** — the symbolic field types already share
//!   structure on clone (`SymVector` is a persistent cons list behind
//!   `Arc`; `SymPred` keeps its decisions in an `Arc` with make-mut
//!   semantics; the scalar types are inline). A "clone" of a path is
//!   therefore a shallow field snapshot: unchanged aggregate fields share
//!   storage with every other path that holds them. The arena counts
//!   those snapshots ([`ArenaStats::state_clones`]) so tests can pin that
//!   allocation scales with the *path count*, not path count × state
//!   size.
//! * **Batch window support** — the arena's snapshot buffer holds the
//!   live path set captured at a batch-window boundary, and its probe
//!   context is the reusable sealed [`SymCtx`] that
//!   applies fork-free records **in place** (zero clones). When a probe
//!   run forks or errors, the window rolls back to the snapshot and
//!   replays through full exploration — byte-identical summaries and
//!   statistics either way.
//!
//! The workspace forbids `unsafe`, so this is an arena in the recycling
//! sense (generation pools + structural sharing), not a raw bump
//! allocator: the same allocations are reused record after record, which
//! is what the hot path actually needs.

use crate::ctx::SymCtx;

/// Allocation-behavior counters for one chunk's exploration.
///
/// These are *diagnostics*, deliberately kept out of
/// [`ExploreStats`](crate::engine::ExploreStats): that struct is
/// serialized into checkpoint frames and equality-compared across
/// resume paths, so its layout is frozen, and the fast path must produce
/// identical values for it whether or not batching kicked in. Arena
/// counters, by contrast, describe *how* the work was done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Full (shallow, structure-sharing) state snapshots taken by the
    /// exploration slow path — one per update run.
    pub state_clones: u64,
    /// Update runs applied in place by the batched fast path (no clone).
    pub in_place_runs: u64,
    /// Records committed through batch windows.
    pub batched_records: u64,
    /// Batch windows that hit a fork or error, rolled back to their
    /// snapshot, and replayed through full exploration.
    pub rollbacks: u64,
    /// States captured into window snapshots (rollback insurance).
    pub snapshot_states: u64,
}

/// The recycled allocations backing one executor's hot loop.
#[derive(Debug)]
pub struct ExploreArena<S> {
    /// Per-record exploration output; swaps roles with the live path set
    /// every record, so both buffers are reused indefinitely.
    pub(crate) out: Vec<S>,
    /// Live-path snapshot taken at a batch-window boundary; restored
    /// wholesale on rollback.
    pub(crate) snapshots: Vec<S>,
    /// Reusable sealed probe context for in-place batched application.
    pub(crate) probe: SymCtx,
    /// Allocation-behavior counters.
    pub(crate) stats: ArenaStats,
}

impl<S> ExploreArena<S> {
    /// A fresh, empty arena.
    pub fn new() -> ExploreArena<S> {
        ExploreArena {
            out: Vec::new(),
            snapshots: Vec::new(),
            probe: SymCtx::probe(),
            stats: ArenaStats::default(),
        }
    }

    /// The arena's allocation-behavior counters so far.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

impl<S> Default for ExploreArena<S> {
    fn default() -> ExploreArena<S> {
        ExploreArena::new()
    }
}
