//! The symbolic executor: systematic path exploration with explosion
//! control (§5.1–5.2 of the paper).

use crate::ctx::SymCtx;
use crate::engine::arena::{ArenaStats, ExploreArena};
use crate::engine::merge::merge_paths;
use crate::error::{Error, Result};
use crate::state::make_state_symbolic;
use crate::summary::{Summary, SummaryChain};
use crate::uda::Uda;

/// Consecutive fork-free records required before [`SymbolicExecutor::feed_slice`]
/// opens a batch window (hysteresis against forky stretches, where probe
/// windows would roll back more than they save).
const CALM_STREAK: u32 = 4;

/// When path merging is attempted (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Merge after every input record. Produces the most compact
    /// summaries at some CPU cost.
    Eager,
    /// The paper's heuristic: merge only when the number of live paths
    /// exceeds the previously reached maximum.
    HighWater,
    /// Never merge (ablation baseline; relies entirely on the restart
    /// fallback to bound paths).
    Never,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Bound on paths produced while processing a *single* record; exceeded
    /// means the UDA likely loops on symbolic state (§5.2) →
    /// [`Error::PathExplosion`].
    pub max_paths_per_record: usize,
    /// Bound on live paths across records (paper default 8). Exceeding it
    /// flushes the current summary and restarts from fresh symbolic state,
    /// trading parallelism for sequential efficiency (§5.2).
    pub max_total_paths: usize,
    /// When to attempt path merging.
    pub merge_policy: MergePolicy,
    /// Batch-window size for [`SymbolicExecutor::feed_slice`]: after a
    /// calm (fork-free) streak, up to this many consecutive records are
    /// applied *in place* on the live paths instead of cloning per run,
    /// rolling back to full exploration the moment one forks. `0`
    /// disables batching. Output-invariant — summaries and
    /// [`ExploreStats`] are byte-identical for every value — so this knob
    /// is deliberately **excluded** from checkpoint/cache config
    /// fingerprints.
    pub batch_window: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_paths_per_record: 64,
            max_total_paths: 8,
            merge_policy: MergePolicy::HighWater,
            batch_window: 32,
        }
    }
}

/// Counters describing one chunk's exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Input records processed.
    pub records: u64,
    /// Update-function runs (≥ records; each run explores one path).
    pub runs: u64,
    /// Branch forks taken.
    pub forks: u64,
    /// Successful path merges.
    pub merges: u64,
    /// Summary flush/restarts triggered by the total-path bound.
    pub restarts: u64,
    /// Peak number of live paths.
    pub max_live_paths: usize,
}

/// Symbolically executes a UDA over one chunk, producing a
/// [`SummaryChain`].
///
/// # Examples
///
/// ```
/// use symple_core::prelude::*;
///
/// # struct MaxUda;
/// # #[derive(Clone, Debug)]
/// # struct MaxState { max: SymInt }
/// # impl_sym_state!(MaxState { max });
/// # impl Uda for MaxUda {
/// #     type State = MaxState;
/// #     type Event = i64;
/// #     type Output = i64;
/// #     fn init(&self) -> MaxState { MaxState { max: SymInt::new(i64::MIN) } }
/// #     fn update(&self, s: &mut MaxState, ctx: &mut SymCtx, e: &i64) {
/// #         if s.max.lt(ctx, *e) { s.max.assign(*e); }
/// #     }
/// #     fn result(&self, s: &MaxState, _ctx: &mut SymCtx) -> i64 {
/// #         s.max.concrete_value().unwrap()
/// #     }
/// # }
/// let uda = MaxUda;
/// let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
/// for e in [5, 3, 10] {
///     exec.feed(&e).unwrap();
/// }
/// let (chain, stats) = exec.finish();
/// assert_eq!(chain.total_paths(), 2); // x ≤ 9 ⇒ 10  ∧  x ≥ 10 ⇒ x
/// assert!(stats.forks >= 2);
/// ```
pub struct SymbolicExecutor<'a, U: Uda> {
    uda: &'a U,
    cfg: EngineConfig,
    paths: Vec<U::State>,
    emitted: Vec<Summary<U::State>>,
    high_water: usize,
    stats: ExploreStats,
    /// Recycled per-chunk allocations: generation buffers, batch-window
    /// snapshots, and the reusable probe context.
    arena: ExploreArena<U::State>,
    /// Consecutive fork-free records seen; gates the batched fast path.
    calm_streak: u32,
}

impl<'a, U: Uda> SymbolicExecutor<'a, U> {
    /// Creates an executor starting from the unknown symbolic state `x`.
    pub fn new(uda: &'a U, cfg: EngineConfig) -> SymbolicExecutor<'a, U> {
        let mut fresh = uda.init();
        make_state_symbolic(&mut fresh);
        SymbolicExecutor {
            uda,
            cfg,
            paths: vec![fresh],
            emitted: Vec::new(),
            high_water: 1,
            stats: ExploreStats {
                max_live_paths: 1,
                ..ExploreStats::default()
            },
            arena: ExploreArena::new(),
            calm_streak: 0,
        }
    }

    /// Processes one input record: every live path is re-executed under
    /// every feasible choice vector.
    pub fn feed(&mut self, e: &U::Event) -> Result<()> {
        self.stats.records += 1;
        self.arena.out.clear();
        let forks_before = self.stats.forks;
        for path in &self.paths {
            let mut ctx = SymCtx::symbolic();
            loop {
                // A shallow snapshot: aggregate fields share structure
                // with `path` until written (COW at the type level).
                let mut s = path.clone();
                self.arena.stats.state_clones += 1;
                ctx.begin_run();
                self.uda.update(&mut s, &mut ctx, e);
                if let Some(err) = ctx.take_error() {
                    return Err(err);
                }
                self.arena.out.push(s);
                self.stats.runs += 1;
                if self.arena.out.len() > self.cfg.max_paths_per_record {
                    return Err(Error::PathExplosion {
                        paths: self.arena.out.len(),
                        bound: self.cfg.max_paths_per_record,
                    });
                }
                if !ctx.advance() {
                    break;
                }
            }
            self.stats.forks += ctx.forks_taken();
        }

        let out = &mut self.arena.out;
        let do_merge = match self.cfg.merge_policy {
            MergePolicy::Eager => out.len() > 1,
            MergePolicy::HighWater => out.len() > self.high_water,
            MergePolicy::Never => false,
        };
        if do_merge {
            self.stats.merges += merge_paths(out);
        }
        if self.cfg.merge_policy == MergePolicy::HighWater {
            self.high_water = self.high_water.max(out.len());
        }
        self.stats.max_live_paths = self.stats.max_live_paths.max(out.len());
        // Generation swap: the new paths move in, the previous generation
        // becomes the next record's (cleared) output buffer.
        std::mem::swap(&mut self.paths, &mut self.arena.out);
        self.calm_streak = if self.stats.forks == forks_before {
            self.calm_streak.saturating_add(1)
        } else {
            0
        };

        if self.paths.len() > self.cfg.max_total_paths {
            self.flush_restart();
        }
        Ok(())
    }

    /// Processes a sequence of records.
    pub fn feed_all<'e>(&mut self, events: impl IntoIterator<Item = &'e U::Event>) -> Result<()>
    where
        U::Event: 'e,
    {
        for e in events {
            self.feed(e)?;
        }
        Ok(())
    }

    /// Processes a slice of records, applying fork-free stretches in
    /// batches.
    ///
    /// Semantically identical to calling [`SymbolicExecutor::feed`] per
    /// record — summaries, [`ExploreStats`], and errors all match byte
    /// for byte — but after a calm streak of fork-free records, windows of
    /// up to [`EngineConfig::batch_window`] records are applied **in
    /// place** on the live paths under a sealed probe context: one update
    /// run per (record × path), zero clones, no merge/restart machinery.
    /// The moment a probe run forks or errors, the window rolls back to
    /// its snapshot and replays through full exploration.
    ///
    /// Under [`MergePolicy::Eager`] windows open only while a single path
    /// is live: fork-free records with several live paths still reach the
    /// merger under that policy, and batching must not skip it.
    pub fn feed_slice(&mut self, events: &[U::Event]) -> Result<()> {
        if self.cfg.batch_window == 0 {
            return self.feed_all(events.iter());
        }
        let mut i = 0;
        while i < events.len() {
            if self.batch_ready() {
                let end = (i + self.cfg.batch_window).min(events.len());
                i += self.apply_window(&events[i..end])?;
            } else {
                self.feed(&events[i])?;
                i += 1;
            }
        }
        Ok(())
    }

    /// Whether the batched fast path may open a window right now.
    fn batch_ready(&self) -> bool {
        self.calm_streak >= CALM_STREAK
            && !self.paths.is_empty()
            && (self.cfg.merge_policy != MergePolicy::Eager || self.paths.len() == 1)
    }

    /// Applies one batch window in place, rolling back to the snapshot
    /// and replaying through [`SymbolicExecutor::feed`] if any record
    /// forks or errors. Returns how many of `window`'s records were
    /// consumed (all of them on commit; up to and including the
    /// anomalous record on rollback).
    fn apply_window(&mut self, window: &[U::Event]) -> Result<usize> {
        let live = self.paths.len();
        self.arena.snapshots.clear();
        self.arena.snapshots.extend(self.paths.iter().cloned());
        self.arena.stats.snapshot_states += live as u64;
        for (j, e) in window.iter().enumerate() {
            for k in 0..live {
                self.arena.probe.begin_probe();
                self.uda
                    .update(&mut self.paths[k], &mut self.arena.probe, e);
                if self.arena.probe.fork_refused() || self.arena.probe.has_error() {
                    // Restore the window-entry paths and replay the
                    // committed prefix plus this record the slow way;
                    // statistics were not yet applied for any of them, so
                    // the replay accounts them exactly once.
                    std::mem::swap(&mut self.paths, &mut self.arena.snapshots);
                    self.arena.snapshots.clear();
                    self.arena.stats.rollbacks += 1;
                    self.calm_streak = 0;
                    for e2 in &window[..=j] {
                        self.feed(e2)?;
                    }
                    return Ok(j + 1);
                }
            }
        }
        // Window committed: account the batched records exactly as the
        // slow path would have (one run per record × path, no forks).
        let n = window.len() as u64;
        self.stats.records += n;
        self.stats.runs += n * live as u64;
        self.arena.stats.batched_records += n;
        self.arena.stats.in_place_runs += n * live as u64;
        self.calm_streak = self.calm_streak.saturating_add(window.len() as u32);
        self.arena.snapshots.clear();
        Ok(window.len())
    }

    /// The currently live paths (diagnostics; e.g. the Figure 3 demo
    /// prints them after every record).
    pub fn live_paths(&self) -> &[U::State] {
        &self.paths
    }

    /// Exploration statistics so far.
    pub fn stats(&self) -> ExploreStats {
        self.stats
    }

    /// Allocation-behavior counters from the exploration arena
    /// (diagnostics; not part of the checkpointed [`ExploreStats`]).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Flushes the live paths as a finished summary and restarts from
    /// fresh symbolic state (§5.2's fallback: the mapper emits multiple
    /// summaries that the reducer applies in order).
    fn flush_restart(&mut self) {
        let done = Summary::new(std::mem::take(&mut self.paths));
        debug_assert!(
            done.paths_pairwise_disjoint(),
            "engine emitted overlapping path constraints"
        );
        self.emitted.push(done);
        let mut fresh = self.uda.init();
        make_state_symbolic(&mut fresh);
        self.paths = vec![fresh];
        self.high_water = 1;
        self.stats.restarts += 1;
    }

    /// Completes the chunk, returning the summary chain and statistics.
    pub fn finish(mut self) -> (SummaryChain<U::State>, ExploreStats) {
        let last = Summary::new(std::mem::take(&mut self.paths));
        debug_assert!(
            last.paths_pairwise_disjoint(),
            "engine emitted overlapping path constraints"
        );
        self.emitted.push(last);
        let chain = SummaryChain::new(self.emitted);
        if symple_obs::enabled() {
            symple_obs::counter_add("engine.chunks", 1);
            symple_obs::counter_add("engine.records", self.stats.records);
            symple_obs::counter_add("engine.runs", self.stats.runs);
            symple_obs::counter_add("engine.forks", self.stats.forks);
            symple_obs::counter_add("engine.merges", self.stats.merges);
            symple_obs::counter_add("engine.restarts", self.stats.restarts);
            symple_obs::counter_add("engine.batched_records", self.arena.stats.batched_records);
            symple_obs::counter_add("engine.in_place_runs", self.arena.stats.in_place_runs);
            symple_obs::counter_add("engine.batch_rollbacks", self.arena.stats.rollbacks);
            symple_obs::counter_add("summary.disjuncts", chain.total_paths() as u64);
        }
        (chain, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{apply_chain, apply_summary};
    use crate::impl_sym_state;
    use crate::interval::Interval;
    use crate::types::sym_int::SymInt;

    struct MaxUda;

    #[derive(Clone, Debug)]
    struct MaxState {
        max: SymInt,
    }
    impl_sym_state!(MaxState { max });

    impl Uda for MaxUda {
        type State = MaxState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> MaxState {
            MaxState {
                max: SymInt::new(i64::MIN),
            }
        }
        fn update(&self, s: &mut MaxState, ctx: &mut SymCtx, e: &i64) {
            if s.max.lt(ctx, *e) {
                s.max.assign(*e);
            }
        }
        fn result(&self, s: &MaxState, _ctx: &mut SymCtx) -> i64 {
            s.max.concrete_value().expect("final state concrete")
        }
    }

    #[test]
    fn figure3_summary_shape() {
        // §3.1–3.5 running example: input [5, 3, 10].
        let uda = MaxUda;
        let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
        exec.feed_all([5, 3, 10].iter()).unwrap();
        let (chain, stats) = exec.finish();
        assert_eq!(chain.len(), 1);
        let summary = &chain.summaries()[0];
        assert_eq!(summary.len(), 2);
        // x ≤ 9 ⇒ max = 10  (the paper writes x < 10).
        let consts: Vec<_> = summary
            .paths()
            .iter()
            .filter(|p| p.max.concrete_value() == Some(10))
            .collect();
        assert_eq!(consts.len(), 1);
        assert_eq!(consts[0].max.constraint(), Interval::new(i64::MIN, 9));
        // x ≥ 10 ⇒ max = x.
        let ids: Vec<_> = summary
            .paths()
            .iter()
            .filter(|p| p.max.coeffs() == (1, 0))
            .collect();
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0].max.constraint(), Interval::new(10, i64::MAX));
        assert!(stats.merges >= 1, "the two ⇒10 paths must have merged");
        assert_eq!(stats.records, 3);
    }

    #[test]
    fn merge_policies_agree_on_semantics() {
        let uda = MaxUda;
        let input = [5i64, 3, 10, 8, 2, 1, 42, 7];
        for policy in [
            MergePolicy::Eager,
            MergePolicy::HighWater,
            MergePolicy::Never,
        ] {
            let cfg = EngineConfig {
                merge_policy: policy,
                ..EngineConfig::default()
            };
            let mut exec = SymbolicExecutor::new(&uda, cfg);
            exec.feed_all(input.iter()).unwrap();
            let (chain, _) = exec.finish();
            for v in [-100, 0, 9, 10, 41, 42, 43] {
                let init = MaxState {
                    max: SymInt::new(v),
                };
                let fin = apply_chain(&chain, &init).unwrap();
                assert_eq!(
                    fin.max.concrete_value(),
                    Some(v.max(42)),
                    "policy {policy:?} v={v}"
                );
            }
        }
    }

    #[test]
    fn restart_fallback_produces_multiple_summaries() {
        // Force restarts with a tiny total-path bound and no merging.
        let uda = MaxUda;
        let cfg = EngineConfig {
            max_total_paths: 1,
            merge_policy: MergePolicy::Never,
            ..EngineConfig::default()
        };
        let mut exec = SymbolicExecutor::new(&uda, cfg);
        exec.feed_all([5, 3, 10].iter()).unwrap();
        let (chain, stats) = exec.finish();
        assert!(stats.restarts >= 1);
        assert!(chain.len() >= 2);
        // Semantics must be unaffected.
        let init = MaxState {
            max: SymInt::new(7),
        };
        let fin = apply_chain(&chain, &init).unwrap();
        assert_eq!(fin.max.concrete_value(), Some(10));
    }

    struct LoopyUda;

    #[derive(Clone, Debug)]
    struct LoopyState {
        v: SymInt,
    }
    impl_sym_state!(LoopyState { v });

    impl Uda for LoopyUda {
        type State = LoopyState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> LoopyState {
            LoopyState { v: SymInt::new(0) }
        }
        fn update(&self, s: &mut LoopyState, ctx: &mut SymCtx, _e: &i64) {
            // A bounded but exploding pattern: every record forks without
            // ever binding, and transfers differ so nothing merges.
            if s.v.lt(ctx, 0) {
                s.v += 1;
            } else {
                s.v += 2;
            }
        }
        fn result(&self, s: &LoopyState, _ctx: &mut SymCtx) -> i64 {
            s.v.concrete_value().unwrap_or(0)
        }
    }

    #[test]
    fn per_record_explosion_detected() {
        let uda = LoopyUda;
        let cfg = EngineConfig {
            max_paths_per_record: 4,
            max_total_paths: 1_000,
            merge_policy: MergePolicy::Never,
            ..EngineConfig::default()
        };
        let mut exec = SymbolicExecutor::new(&uda, cfg);
        // Each record multiplies live paths; per-record bound trips.
        let mut tripped = false;
        for e in 0..10 {
            if let Err(Error::PathExplosion { .. }) = exec.feed(&e) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn restart_bounds_live_paths() {
        let uda = LoopyUda;
        let cfg = EngineConfig {
            max_paths_per_record: 1_000,
            max_total_paths: 8,
            merge_policy: MergePolicy::Never,
            ..EngineConfig::default()
        };
        let mut exec = SymbolicExecutor::new(&uda, cfg);
        for e in 0..10 {
            exec.feed(&e).unwrap();
        }
        assert!(
            exec.live_paths().len() <= 16,
            "restart keeps live paths bounded"
        );
        let (chain, stats) = exec.finish();
        assert!(stats.restarts > 0);
        // Correctness through restarts: equals sequential execution.
        let init = LoopyState {
            v: SymInt::new(-100),
        };
        let fin = apply_chain(&chain, &init).unwrap();
        let mut expect = -100i64;
        for _ in 0..10 {
            expect += if expect < 0 { 1 } else { 2 };
        }
        assert_eq!(fin.max_value(), expect);
    }

    impl LoopyState {
        fn max_value(&self) -> i64 {
            self.v.concrete_value().unwrap()
        }
    }

    /// Forks only on negative events: positive stretches are fork-free
    /// (batchable), negatives force rollback + full exploration.
    struct MixedUda;

    #[derive(Clone, Debug)]
    struct MixedState {
        min: SymInt,
        n: SymInt,
    }
    impl_sym_state!(MixedState { min, n });

    impl Uda for MixedUda {
        type State = MixedState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> MixedState {
            MixedState {
                min: SymInt::new(0),
                n: SymInt::new(0),
            }
        }
        fn update(&self, s: &mut MixedState, ctx: &mut SymCtx, e: &i64) {
            s.n += 1;
            if *e < 0 && s.min.gt(ctx, *e) {
                s.min.assign(*e);
            }
        }
        fn result(&self, s: &MixedState, _ctx: &mut SymCtx) -> i64 {
            s.min.concrete_value().unwrap_or(0)
        }
    }

    /// Mostly-calm stream with periodic forking records.
    fn mixed_stream(n: usize) -> Vec<i64> {
        (0..n as i64)
            .map(|i| if i % 17 == 13 { -i } else { i % 7 })
            .collect()
    }

    #[test]
    fn feed_slice_is_byte_identical_to_feed() {
        // The batched fast path must be invisible: identical summary
        // bytes and identical ExploreStats for every merge policy, on a
        // stream that exercises commits *and* rollbacks.
        let events = mixed_stream(300);
        for policy in [
            MergePolicy::Eager,
            MergePolicy::HighWater,
            MergePolicy::Never,
        ] {
            let cfg = EngineConfig {
                merge_policy: policy,
                ..EngineConfig::default()
            };
            let mut per_record = SymbolicExecutor::new(&MixedUda, cfg);
            per_record.feed_all(events.iter()).unwrap();
            let (chain_a, stats_a) = per_record.finish();

            let mut batched = SymbolicExecutor::new(&MixedUda, cfg);
            batched.feed_slice(&events).unwrap();
            let arena = batched.arena_stats();
            let (chain_b, stats_b) = batched.finish();

            assert_eq!(stats_a, stats_b, "stats differ under {policy:?}");
            let (mut a, mut b) = (Vec::new(), Vec::new());
            chain_a.encode(&mut a);
            chain_b.encode(&mut b);
            assert_eq!(a, b, "summary bytes differ under {policy:?}");
            // The fast path must actually engage. Under Eager, once the
            // first fork leaves two live paths batching is (correctly)
            // ineligible, so the early window's rollback is the proof.
            assert!(
                arena.batched_records > 0 || arena.rollbacks > 0,
                "the fast path never engaged under {policy:?}"
            );
        }
    }

    #[test]
    fn batch_rollback_replays_forking_record_exactly() {
        // A window that hits a forking record rolls back and replays;
        // the rollback counter proves the path ran, the stats equality
        // proves it was invisible.
        let mut events = vec![1i64; 40];
        events.push(-100); // forks mid-window
        events.extend(std::iter::repeat_n(2, 20));
        let cfg = EngineConfig::default();

        let mut per_record = SymbolicExecutor::new(&MixedUda, cfg);
        per_record.feed_all(events.iter()).unwrap();
        let mut batched = SymbolicExecutor::new(&MixedUda, cfg);
        batched.feed_slice(&events).unwrap();

        assert!(batched.arena_stats().rollbacks >= 1);
        assert_eq!(per_record.stats(), batched.stats());
        let (ca, _) = per_record.finish();
        let (cb, _) = batched.finish();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        ca.encode(&mut a);
        cb.encode(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn feed_slice_with_zero_window_is_plain_feed() {
        let events = mixed_stream(100);
        let cfg = EngineConfig {
            batch_window: 0,
            ..EngineConfig::default()
        };
        let mut exec = SymbolicExecutor::new(&MixedUda, cfg);
        exec.feed_slice(&events).unwrap();
        let arena = exec.arena_stats();
        assert_eq!(arena.batched_records, 0);
        assert_eq!(arena.in_place_runs, 0);
        assert_eq!(exec.stats().records, 100);
    }

    /// Satellite regression: exploring a forky record over a state with a
    /// large aggregate field must *share* the aggregate across the
    /// resulting paths, not copy it — allocation scales with the path
    /// count, never path count × state size.
    struct VecLogUda;

    #[derive(Clone, Debug)]
    struct VecLogState {
        log: crate::types::sym_vector::SymVector<i64>,
        min: SymInt,
    }
    impl_sym_state!(VecLogState { log, min });

    impl Uda for VecLogUda {
        type State = VecLogState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> VecLogState {
            VecLogState {
                log: crate::types::sym_vector::SymVector::new(),
                min: SymInt::new(0),
            }
        }
        fn update(&self, s: &mut VecLogState, ctx: &mut SymCtx, e: &i64) {
            if *e >= 0 {
                s.log.push(*e);
            } else if s.min.gt(ctx, *e) {
                s.min.assign(*e);
            }
        }
        fn result(&self, s: &VecLogState, _ctx: &mut SymCtx) -> i64 {
            s.log.len() as i64
        }
    }

    #[test]
    fn forked_paths_share_large_aggregate_storage() {
        let uda = VecLogUda;
        let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
        // Grow the aggregate to 1000 elements over fork-free records (the
        // batched fast path applies these in place — zero clones).
        let warmup: Vec<i64> = (0..1000).collect();
        exec.feed_slice(&warmup).unwrap();
        let calm_clones = exec.arena_stats().state_clones;
        assert!(
            exec.arena_stats().in_place_runs >= 900,
            "calm records must batch"
        );

        // One forking record: every explored path snapshots the state.
        exec.feed(&-5).unwrap();
        let paths = exec.live_paths();
        assert!(paths.len() >= 2, "the record must fork");
        for w in paths.windows(2) {
            assert!(
                w[0].log.shares_storage_with(&w[1].log),
                "sibling paths must share the untouched 1000-element log"
            );
        }
        // The fork cost clones proportional to the explored runs — a
        // handful — regardless of the 1000-element aggregate.
        let fork_clones = exec.arena_stats().state_clones - calm_clones;
        assert!(
            fork_clones <= 8,
            "fork over a big state took {fork_clones} clones"
        );
    }

    #[test]
    fn first_summary_applies_to_concrete_init() {
        // A symbolic chunk applied to the UDA's concrete initial state must
        // match running that chunk concretely.
        let uda = MaxUda;
        let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
        exec.feed_all([2, 9, 1].iter()).unwrap();
        let (chain, _) = exec.finish();
        assert_eq!(chain.len(), 1);
        let fin = apply_summary(&chain.summaries()[0], &uda.init()).unwrap();
        assert_eq!(fin.max.concrete_value(), Some(9));
    }
}
