//! The symbolic executor: systematic path exploration with explosion
//! control (§5.1–5.2 of the paper).

use crate::ctx::SymCtx;
use crate::engine::merge::merge_paths;
use crate::error::{Error, Result};
use crate::state::make_state_symbolic;
use crate::summary::{Summary, SummaryChain};
use crate::uda::Uda;

/// When path merging is attempted (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Merge after every input record. Produces the most compact
    /// summaries at some CPU cost.
    Eager,
    /// The paper's heuristic: merge only when the number of live paths
    /// exceeds the previously reached maximum.
    HighWater,
    /// Never merge (ablation baseline; relies entirely on the restart
    /// fallback to bound paths).
    Never,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Bound on paths produced while processing a *single* record; exceeded
    /// means the UDA likely loops on symbolic state (§5.2) →
    /// [`Error::PathExplosion`].
    pub max_paths_per_record: usize,
    /// Bound on live paths across records (paper default 8). Exceeding it
    /// flushes the current summary and restarts from fresh symbolic state,
    /// trading parallelism for sequential efficiency (§5.2).
    pub max_total_paths: usize,
    /// When to attempt path merging.
    pub merge_policy: MergePolicy,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_paths_per_record: 64,
            max_total_paths: 8,
            merge_policy: MergePolicy::HighWater,
        }
    }
}

/// Counters describing one chunk's exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Input records processed.
    pub records: u64,
    /// Update-function runs (≥ records; each run explores one path).
    pub runs: u64,
    /// Branch forks taken.
    pub forks: u64,
    /// Successful path merges.
    pub merges: u64,
    /// Summary flush/restarts triggered by the total-path bound.
    pub restarts: u64,
    /// Peak number of live paths.
    pub max_live_paths: usize,
}

/// Symbolically executes a UDA over one chunk, producing a
/// [`SummaryChain`].
///
/// # Examples
///
/// ```
/// use symple_core::prelude::*;
///
/// # struct MaxUda;
/// # #[derive(Clone, Debug)]
/// # struct MaxState { max: SymInt }
/// # impl_sym_state!(MaxState { max });
/// # impl Uda for MaxUda {
/// #     type State = MaxState;
/// #     type Event = i64;
/// #     type Output = i64;
/// #     fn init(&self) -> MaxState { MaxState { max: SymInt::new(i64::MIN) } }
/// #     fn update(&self, s: &mut MaxState, ctx: &mut SymCtx, e: &i64) {
/// #         if s.max.lt(ctx, *e) { s.max.assign(*e); }
/// #     }
/// #     fn result(&self, s: &MaxState, _ctx: &mut SymCtx) -> i64 {
/// #         s.max.concrete_value().unwrap()
/// #     }
/// # }
/// let uda = MaxUda;
/// let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
/// for e in [5, 3, 10] {
///     exec.feed(&e).unwrap();
/// }
/// let (chain, stats) = exec.finish();
/// assert_eq!(chain.total_paths(), 2); // x ≤ 9 ⇒ 10  ∧  x ≥ 10 ⇒ x
/// assert!(stats.forks >= 2);
/// ```
pub struct SymbolicExecutor<'a, U: Uda> {
    uda: &'a U,
    cfg: EngineConfig,
    paths: Vec<U::State>,
    emitted: Vec<Summary<U::State>>,
    high_water: usize,
    stats: ExploreStats,
    /// Recycled buffer for the per-record exploration output, so the hot
    /// loop allocates nothing in the steady state.
    scratch: Vec<U::State>,
}

impl<'a, U: Uda> SymbolicExecutor<'a, U> {
    /// Creates an executor starting from the unknown symbolic state `x`.
    pub fn new(uda: &'a U, cfg: EngineConfig) -> SymbolicExecutor<'a, U> {
        let mut fresh = uda.init();
        make_state_symbolic(&mut fresh);
        SymbolicExecutor {
            uda,
            cfg,
            paths: vec![fresh],
            emitted: Vec::new(),
            high_water: 1,
            stats: ExploreStats {
                max_live_paths: 1,
                ..ExploreStats::default()
            },
            scratch: Vec::new(),
        }
    }

    /// Processes one input record: every live path is re-executed under
    /// every feasible choice vector.
    pub fn feed(&mut self, e: &U::Event) -> Result<()> {
        self.stats.records += 1;
        let mut out: Vec<U::State> = std::mem::take(&mut self.scratch);
        out.clear();
        for path in &self.paths {
            let mut ctx = SymCtx::symbolic();
            loop {
                let mut s = path.clone();
                ctx.begin_run();
                self.uda.update(&mut s, &mut ctx, e);
                if let Some(err) = ctx.take_error() {
                    return Err(err);
                }
                out.push(s);
                self.stats.runs += 1;
                if out.len() > self.cfg.max_paths_per_record {
                    return Err(Error::PathExplosion {
                        paths: out.len(),
                        bound: self.cfg.max_paths_per_record,
                    });
                }
                if !ctx.advance() {
                    break;
                }
            }
            self.stats.forks += ctx.forks_taken();
        }

        let do_merge = match self.cfg.merge_policy {
            MergePolicy::Eager => out.len() > 1,
            MergePolicy::HighWater => out.len() > self.high_water,
            MergePolicy::Never => false,
        };
        if do_merge {
            self.stats.merges += merge_paths(&mut out);
        }
        if self.cfg.merge_policy == MergePolicy::HighWater {
            self.high_water = self.high_water.max(out.len());
        }
        self.stats.max_live_paths = self.stats.max_live_paths.max(out.len());
        self.scratch = std::mem::replace(&mut self.paths, out);

        if self.paths.len() > self.cfg.max_total_paths {
            self.flush_restart();
        }
        Ok(())
    }

    /// Processes a sequence of records.
    pub fn feed_all<'e>(&mut self, events: impl IntoIterator<Item = &'e U::Event>) -> Result<()>
    where
        U::Event: 'e,
    {
        for e in events {
            self.feed(e)?;
        }
        Ok(())
    }

    /// The currently live paths (diagnostics; e.g. the Figure 3 demo
    /// prints them after every record).
    pub fn live_paths(&self) -> &[U::State] {
        &self.paths
    }

    /// Exploration statistics so far.
    pub fn stats(&self) -> ExploreStats {
        self.stats
    }

    /// Flushes the live paths as a finished summary and restarts from
    /// fresh symbolic state (§5.2's fallback: the mapper emits multiple
    /// summaries that the reducer applies in order).
    fn flush_restart(&mut self) {
        let done = Summary::new(std::mem::take(&mut self.paths));
        debug_assert!(
            done.paths_pairwise_disjoint(),
            "engine emitted overlapping path constraints"
        );
        self.emitted.push(done);
        let mut fresh = self.uda.init();
        make_state_symbolic(&mut fresh);
        self.paths = vec![fresh];
        self.high_water = 1;
        self.stats.restarts += 1;
    }

    /// Completes the chunk, returning the summary chain and statistics.
    pub fn finish(mut self) -> (SummaryChain<U::State>, ExploreStats) {
        let last = Summary::new(std::mem::take(&mut self.paths));
        debug_assert!(
            last.paths_pairwise_disjoint(),
            "engine emitted overlapping path constraints"
        );
        self.emitted.push(last);
        let chain = SummaryChain::new(self.emitted);
        if symple_obs::enabled() {
            symple_obs::counter_add("engine.chunks", 1);
            symple_obs::counter_add("engine.records", self.stats.records);
            symple_obs::counter_add("engine.runs", self.stats.runs);
            symple_obs::counter_add("engine.forks", self.stats.forks);
            symple_obs::counter_add("engine.merges", self.stats.merges);
            symple_obs::counter_add("engine.restarts", self.stats.restarts);
            symple_obs::counter_add("summary.disjuncts", chain.total_paths() as u64);
        }
        (chain, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{apply_chain, apply_summary};
    use crate::impl_sym_state;
    use crate::interval::Interval;
    use crate::types::sym_int::SymInt;

    struct MaxUda;

    #[derive(Clone, Debug)]
    struct MaxState {
        max: SymInt,
    }
    impl_sym_state!(MaxState { max });

    impl Uda for MaxUda {
        type State = MaxState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> MaxState {
            MaxState {
                max: SymInt::new(i64::MIN),
            }
        }
        fn update(&self, s: &mut MaxState, ctx: &mut SymCtx, e: &i64) {
            if s.max.lt(ctx, *e) {
                s.max.assign(*e);
            }
        }
        fn result(&self, s: &MaxState, _ctx: &mut SymCtx) -> i64 {
            s.max.concrete_value().expect("final state concrete")
        }
    }

    #[test]
    fn figure3_summary_shape() {
        // §3.1–3.5 running example: input [5, 3, 10].
        let uda = MaxUda;
        let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
        exec.feed_all([5, 3, 10].iter()).unwrap();
        let (chain, stats) = exec.finish();
        assert_eq!(chain.len(), 1);
        let summary = &chain.summaries()[0];
        assert_eq!(summary.len(), 2);
        // x ≤ 9 ⇒ max = 10  (the paper writes x < 10).
        let consts: Vec<_> = summary
            .paths()
            .iter()
            .filter(|p| p.max.concrete_value() == Some(10))
            .collect();
        assert_eq!(consts.len(), 1);
        assert_eq!(consts[0].max.constraint(), Interval::new(i64::MIN, 9));
        // x ≥ 10 ⇒ max = x.
        let ids: Vec<_> = summary
            .paths()
            .iter()
            .filter(|p| p.max.coeffs() == (1, 0))
            .collect();
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0].max.constraint(), Interval::new(10, i64::MAX));
        assert!(stats.merges >= 1, "the two ⇒10 paths must have merged");
        assert_eq!(stats.records, 3);
    }

    #[test]
    fn merge_policies_agree_on_semantics() {
        let uda = MaxUda;
        let input = [5i64, 3, 10, 8, 2, 1, 42, 7];
        for policy in [
            MergePolicy::Eager,
            MergePolicy::HighWater,
            MergePolicy::Never,
        ] {
            let cfg = EngineConfig {
                merge_policy: policy,
                ..EngineConfig::default()
            };
            let mut exec = SymbolicExecutor::new(&uda, cfg);
            exec.feed_all(input.iter()).unwrap();
            let (chain, _) = exec.finish();
            for v in [-100, 0, 9, 10, 41, 42, 43] {
                let init = MaxState {
                    max: SymInt::new(v),
                };
                let fin = apply_chain(&chain, &init).unwrap();
                assert_eq!(
                    fin.max.concrete_value(),
                    Some(v.max(42)),
                    "policy {policy:?} v={v}"
                );
            }
        }
    }

    #[test]
    fn restart_fallback_produces_multiple_summaries() {
        // Force restarts with a tiny total-path bound and no merging.
        let uda = MaxUda;
        let cfg = EngineConfig {
            max_total_paths: 1,
            merge_policy: MergePolicy::Never,
            ..EngineConfig::default()
        };
        let mut exec = SymbolicExecutor::new(&uda, cfg);
        exec.feed_all([5, 3, 10].iter()).unwrap();
        let (chain, stats) = exec.finish();
        assert!(stats.restarts >= 1);
        assert!(chain.len() >= 2);
        // Semantics must be unaffected.
        let init = MaxState {
            max: SymInt::new(7),
        };
        let fin = apply_chain(&chain, &init).unwrap();
        assert_eq!(fin.max.concrete_value(), Some(10));
    }

    struct LoopyUda;

    #[derive(Clone, Debug)]
    struct LoopyState {
        v: SymInt,
    }
    impl_sym_state!(LoopyState { v });

    impl Uda for LoopyUda {
        type State = LoopyState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> LoopyState {
            LoopyState { v: SymInt::new(0) }
        }
        fn update(&self, s: &mut LoopyState, ctx: &mut SymCtx, _e: &i64) {
            // A bounded but exploding pattern: every record forks without
            // ever binding, and transfers differ so nothing merges.
            if s.v.lt(ctx, 0) {
                s.v += 1;
            } else {
                s.v += 2;
            }
        }
        fn result(&self, s: &LoopyState, _ctx: &mut SymCtx) -> i64 {
            s.v.concrete_value().unwrap_or(0)
        }
    }

    #[test]
    fn per_record_explosion_detected() {
        let uda = LoopyUda;
        let cfg = EngineConfig {
            max_paths_per_record: 4,
            max_total_paths: 1_000,
            merge_policy: MergePolicy::Never,
        };
        let mut exec = SymbolicExecutor::new(&uda, cfg);
        // Each record multiplies live paths; per-record bound trips.
        let mut tripped = false;
        for e in 0..10 {
            if let Err(Error::PathExplosion { .. }) = exec.feed(&e) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn restart_bounds_live_paths() {
        let uda = LoopyUda;
        let cfg = EngineConfig {
            max_paths_per_record: 1_000,
            max_total_paths: 8,
            merge_policy: MergePolicy::Never,
        };
        let mut exec = SymbolicExecutor::new(&uda, cfg);
        for e in 0..10 {
            exec.feed(&e).unwrap();
        }
        assert!(
            exec.live_paths().len() <= 16,
            "restart keeps live paths bounded"
        );
        let (chain, stats) = exec.finish();
        assert!(stats.restarts > 0);
        // Correctness through restarts: equals sequential execution.
        let init = LoopyState {
            v: SymInt::new(-100),
        };
        let fin = apply_chain(&chain, &init).unwrap();
        let mut expect = -100i64;
        for _ in 0..10 {
            expect += if expect < 0 { 1 } else { 2 };
        }
        assert_eq!(fin.max_value(), expect);
    }

    impl LoopyState {
        fn max_value(&self) -> i64 {
            self.v.concrete_value().unwrap()
        }
    }

    #[test]
    fn first_summary_applies_to_concrete_init() {
        // A symbolic chunk applied to the UDA's concrete initial state must
        // match running that chunk concretely.
        let uda = MaxUda;
        let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
        exec.feed_all([2, 9, 1].iter()).unwrap();
        let (chain, _) = exec.finish();
        assert_eq!(chain.len(), 1);
        let fin = apply_summary(&chain.summaries()[0], &uda.init()).unwrap();
        assert_eq!(fin.max.concrete_value(), Some(9));
    }
}
