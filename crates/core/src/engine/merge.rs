//! Path merging (§3.5 of the paper).
//!
//! When two explored paths have the **same transfer function** (including
//! identical accumulated output), they behave identically from that point
//! on, so their path constraints can be merged — provided the disjunction
//! stays representable in the canonical forms.
//!
//! Path constraints here are conjunctions of independent per-field
//! constraints, so `(A₁∧B₁) ∨ (A₂∧B₂)` is representable exactly when the
//! two paths differ in **at most one** field's constraint and that field's
//! union is canonical (interval union for `SymInt`, always for `SymEnum`,
//! decision-list simplification for `SymPred`).

use crate::state::SymState;

/// Attempts to merge path `b` into path `a`.
///
/// Returns `true` (mutating `a`'s constraint) when the merge is sound:
/// all transfer functions equal and the constraints differ in at most one
/// field whose union is canonical.
pub fn try_merge_into<S: SymState>(a: &mut S, b: &S) -> bool {
    let diff_idx;
    {
        let af = a.fields_ref();
        let bf = b.fields_ref();
        debug_assert_eq!(af.len(), bf.len());
        if !af.iter().zip(&bf).all(|(x, y)| x.transfer_eq(*y)) {
            return false;
        }
        let mut diffs = af
            .iter()
            .zip(&bf)
            .enumerate()
            .filter(|(_, (x, y))| !x.constraint_eq(**y))
            .map(|(i, _)| i);
        match (diffs.next(), diffs.next()) {
            (None, _) => return true, // Identical paths: `b` is redundant.
            (Some(i), None) => diff_idx = i,
            (Some(_), Some(_)) => return false,
        }
    }
    let bf = b.fields_ref();
    let mut af = a.fields_mut();
    af[diff_idx].union_constraint(bf[diff_idx])
}

/// Merges paths pairwise to a fixpoint, returning the number of merges.
///
/// Quadratic in the number of live paths, which the engine bounds at a
/// small constant (§5.2, default 8).
pub fn merge_paths<S: SymState>(paths: &mut Vec<S>) -> u64 {
    let mut merges = 0;
    let mut changed = true;
    while changed {
        changed = false;
        'outer: for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                // Split so we can mutate `paths[i]` while reading `paths[j]`.
                let (head, tail) = paths.split_at_mut(j);
                if try_merge_into(&mut head[i], &tail[0]) {
                    paths.remove(j);
                    merges += 1;
                    changed = true;
                    break 'outer;
                }
            }
        }
    }
    merges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::SymCtx;
    use crate::impl_sym_state;
    use crate::interval::Interval;
    use crate::state::make_state_symbolic;
    use crate::types::sym_int::SymInt;
    use crate::types::sym_vector::SymVector;

    #[derive(Clone, Debug)]
    struct S {
        v: SymInt,
        out: SymVector<i64>,
    }
    impl_sym_state!(S { v, out });

    fn path(lb: i64, ub: i64, assign: Option<i64>, pushes: &[i64]) -> S {
        let mut s = S {
            v: SymInt::new(0),
            out: SymVector::new(),
        };
        make_state_symbolic(&mut s);
        let mut ctx = SymCtx::symbolic();
        if ub != i64::MAX {
            assert!(s.v.le(&mut ctx, ub));
        }
        if lb != i64::MIN {
            assert!(s.v.ge(&mut ctx, lb));
        }
        if let Some(a) = assign {
            s.v.assign(a);
        }
        for p in pushes {
            s.out.push(*p);
        }
        s
    }

    #[test]
    fn figure3_merge() {
        // §3.5: x < 5 ⇒ 10 and 5 ≤ x ≤ 10 ⇒ 10 merge to x ≤ 10 ⇒ 10;
        // x > 10 ⇒ x stays separate.
        let mut paths = vec![
            path(i64::MIN, 4, Some(10), &[]),
            path(5, 10, Some(10), &[]),
            path(11, i64::MAX, None, &[]),
        ];
        let merges = merge_paths(&mut paths);
        assert_eq!(merges, 1);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].v.constraint(), Interval::new(i64::MIN, 10));
        assert_eq!(paths[0].v.concrete_value(), Some(10));
    }

    #[test]
    fn different_transfers_do_not_merge() {
        let mut paths = vec![path(i64::MIN, 4, Some(10), &[]), path(5, 10, Some(11), &[])];
        assert_eq!(merge_paths(&mut paths), 0);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn different_outputs_do_not_merge() {
        let mut paths = vec![
            path(i64::MIN, 4, Some(10), &[1]),
            path(5, 10, Some(10), &[2]),
        ];
        assert_eq!(merge_paths(&mut paths), 0);
    }

    #[test]
    fn gap_prevents_merge() {
        let mut paths = vec![path(0, 4, Some(1), &[]), path(8, 10, Some(1), &[])];
        assert_eq!(merge_paths(&mut paths), 0);
    }

    #[test]
    fn cascading_merges_reach_fixpoint() {
        // Three adjacent intervals with the same transfer collapse to one.
        let mut paths = vec![
            path(0, 4, Some(1), &[]),
            path(5, 9, Some(1), &[]),
            path(10, 14, Some(1), &[]),
        ];
        assert_eq!(merge_paths(&mut paths), 2);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].v.constraint(), Interval::new(0, 14));
    }

    #[test]
    fn identical_paths_deduplicate() {
        let mut paths = vec![path(0, 4, Some(1), &[7]), path(0, 4, Some(1), &[7])];
        assert_eq!(merge_paths(&mut paths), 1);
        assert_eq!(paths.len(), 1);
    }

    #[derive(Clone, Debug)]
    struct Two {
        a: SymInt,
        b: SymInt,
    }
    impl_sym_state!(Two { a, b });

    #[test]
    fn two_differing_fields_do_not_merge() {
        // (A₁∧B₁) ∨ (A₂∧B₂) with both fields differing is not a conjunction
        // of per-field unions — merging it would be unsound.
        let mk = |alo: i64, ahi: i64, blo: i64, bhi: i64| {
            let mut s = Two {
                a: SymInt::new(0),
                b: SymInt::new(0),
            };
            make_state_symbolic(&mut s);
            let mut ctx = SymCtx::symbolic();
            assert!(s.a.ge(&mut ctx, alo));
            assert!(s.a.le(&mut ctx, ahi));
            assert!(s.b.ge(&mut ctx, blo));
            assert!(s.b.le(&mut ctx, bhi));
            s.a.assign(0);
            s.b.assign(0);
            s
        };
        let mut paths = vec![mk(0, 4, 0, 4), mk(5, 9, 5, 9)];
        assert_eq!(merge_paths(&mut paths), 0);
        // One differing field merges fine.
        let mut paths = vec![mk(0, 4, 0, 4), mk(0, 4, 5, 9)];
        assert_eq!(merge_paths(&mut paths), 1);
        assert_eq!(paths[0].b.constraint(), Interval::new(0, 9));
    }
}
