//! The symbolic exploration engine (§5.1–5.2 of the paper).
//!
//! [`SymbolicExecutor`] drives a UDA over one chunk of input starting from
//! an unknown symbolic state: it re-runs the update function per (path ×
//! choice vector), prunes infeasible branches via the data types' decision
//! procedures, merges paths with equal transfer functions, and bounds path
//! explosion by flushing partial summaries and restarting (the graceful
//! fallback to sequential composition).

pub mod arena;
pub mod executor;
pub mod merge;

pub use arena::{ArenaStats, ExploreArena};
pub use executor::{EngineConfig, ExploreStats, MergePolicy, SymbolicExecutor};
