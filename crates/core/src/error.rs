//! Error types shared across the SYMPLE core.

use std::fmt;

/// Result alias used throughout `symple-core`.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors raised by symbolic execution, summary composition, and the wire
/// format.
///
/// The engine is *sound and precise* (§2.3 of the paper): it never
/// approximates. Situations it cannot handle exactly are reported as errors
/// so callers can fall back to sequential execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The number of feasible paths explored for a *single* input record
    /// exceeded [`crate::EngineConfig::max_paths_per_record`].
    ///
    /// Per §5.2 this usually means the UDA contains a loop whose trip count
    /// depends on the aggregation state, which symbolic execution cannot
    /// bound.
    PathExplosion {
        /// Paths explored when the bound was hit.
        paths: usize,
        /// The configured bound.
        bound: usize,
    },
    /// Integer overflow in a symbolic arithmetic operation.
    ///
    /// `SymInt` tracks values as `a·x + b`; if updating `a` or `b` overflows
    /// `i64`, the execution is aborted rather than silently wrapping (the
    /// sequential semantics would have trapped or wrapped at a *different*
    /// point, so no sound summary exists).
    ArithmeticOverflow {
        /// Operation that overflowed, e.g. `"add"`.
        op: &'static str,
    },
    /// A branch on a symbolic value was taken while executing in concrete
    /// mode (sequential reference execution or `Result` extraction).
    ///
    /// This indicates state that was still symbolic where the engine
    /// requires concrete values — an engine-usage bug.
    NonConcreteBranch,
    /// A black-box predicate ([`crate::SymPred`]) accumulated more unbound
    /// decisions than its configured window bound.
    PredicateWindowExceeded {
        /// Decisions accumulated.
        decisions: usize,
        /// The configured window bound.
        bound: usize,
    },
    /// Applying a summary to a concrete state found no matching path.
    ///
    /// A valid summary is exhaustive (`⋁ᵢ PCᵢ = true`), so this indicates a
    /// corrupted or mismatched summary.
    IncompleteSummary,
    /// Applying a summary to a concrete state matched more than one path.
    ///
    /// A valid summary has pairwise-disjoint path constraints, so this
    /// indicates a corrupted or mismatched summary.
    OverlappingSummary,
    /// An enum value outside the declared domain was used with a
    /// [`crate::SymEnum`].
    EnumOutOfDomain {
        /// The offending value.
        value: i64,
        /// Number of values in the domain (valid values are `0..domain`).
        domain: u32,
    },
    /// Composition produced an empty summary (no feasible cross-product
    /// path), meaning the two summaries disagree about reachable states.
    EmptyComposition,
    /// A wire-format decoding failure.
    Wire(crate::wire::WireError),
    /// The UDA signalled a domain-specific failure.
    Uda(String),
    /// A scheduled task panicked on its final allowed attempt.
    ///
    /// The scheduler isolates per-attempt panics with `catch_unwind` and
    /// retries up to the configured cap; only a panic on the *last* attempt
    /// (with no surviving twin in flight) surfaces as this error.
    TaskPanicked {
        /// Task index within the scheduled phase.
        task: usize,
        /// The 1-based attempt number that panicked.
        attempt: u32,
    },
    /// A scheduled task failed every allowed attempt without panicking
    /// (e.g. an injected crash plan that fails every attempt).
    RetriesExhausted {
        /// Task index within the scheduled phase.
        task: usize,
        /// The configured attempt cap that was exhausted.
        attempts: u32,
    },
    /// The whole job process "died" after a number of committed map tasks
    /// — the in-process stand-in for a killed worker that the
    /// checkpoint/resume path recovers from (`FaultPlan::kill_after_n_tasks`
    /// in `symple-mapreduce`).
    JobKilled {
        /// Map tasks that committed (and, when checkpointing is enabled,
        /// persisted their summaries) before the kill.
        after_tasks: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PathExplosion { paths, bound } => write!(
                f,
                "path explosion: {paths} feasible paths for one record exceeds bound {bound} \
                 (does the UDA contain a loop that depends on the aggregation state?)"
            ),
            Error::ArithmeticOverflow { op } => {
                write!(f, "symbolic integer overflow in `{op}`")
            }
            Error::NonConcreteBranch => {
                write!(f, "branch on symbolic value during concrete-mode execution")
            }
            Error::PredicateWindowExceeded { decisions, bound } => write!(
                f,
                "black-box predicate recorded {decisions} unbound decisions, bound is {bound}"
            ),
            Error::IncompleteSummary => {
                write!(
                    f,
                    "summary is not exhaustive: no path matches the input state"
                )
            }
            Error::OverlappingSummary => {
                write!(
                    f,
                    "summary paths are not disjoint: multiple paths match the input state"
                )
            }
            Error::EnumOutOfDomain { value, domain } => {
                write!(f, "enum value {value} outside domain 0..{domain}")
            }
            Error::EmptyComposition => write!(f, "summary composition yielded no feasible path"),
            Error::Wire(e) => write!(f, "wire format error: {e}"),
            Error::Uda(msg) => write!(f, "UDA error: {msg}"),
            Error::TaskPanicked { task, attempt } => {
                write!(
                    f,
                    "task {task} panicked on attempt {attempt} (final attempt)"
                )
            }
            Error::RetriesExhausted { task, attempts } => {
                write!(f, "task {task} failed all {attempts} allowed attempts")
            }
            Error::JobKilled { after_tasks } => {
                write!(
                    f,
                    "job killed after {after_tasks} committed map tasks (resume from checkpoints)"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<crate::wire::WireError> for Error {
    fn from(e: crate::wire::WireError) -> Self {
        Error::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::PathExplosion {
            paths: 100,
            bound: 64,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("64"));

        let e = Error::EnumOutOfDomain {
            value: 9,
            domain: 4,
        };
        assert!(e.to_string().contains("0..4"));
    }

    #[test]
    fn wire_error_converts() {
        let w = crate::wire::WireError::UnexpectedEof;
        let e: Error = w.into();
        assert!(matches!(e, Error::Wire(_)));
    }
}
