//! Framed, checksummed records for durable chunk-summary checkpoints.
//!
//! A checkpoint frame wraps one chunk's encoded map output in enough
//! metadata to prove, on resume, that the bytes are (a) intact and (b)
//! still *meaningful* for the job being resumed:
//!
//! ```text
//! +-------+---------+-------------+-------------+--------------+---------+-------+
//! | magic | version | chunk_index | config_hash | input_digest | payload | crc32 |
//! | SYCP  |   u8    |   uvarint   |   uvarint   |   uvarint    | len+buf | u32le |
//! +-------+---------+-------------+-------------+--------------+---------+-------+
//! ```
//!
//! The CRC covers every byte before it. Integrity failures (truncation,
//! bit flips, unknown version, trailing garbage) classify as
//! [`FrameCheck::Corrupt`]; an intact frame whose metadata does not match
//! the resuming job (different engine configuration, different input
//! bytes, wrong chunk) classifies as [`FrameCheck::Stale`]. Both mean
//! "recompute this chunk"; the distinction is kept because stale frames
//! are evidence of an operator-visible configuration or data change, not
//! of storage rot.

use crate::wire::{get_bytes, get_len, get_uvarint, put_uvarint};

/// Magic prefix of every checkpoint frame ("SYmple CheckPoint").
pub const FRAME_MAGIC: [u8; 4] = *b"SYCP";

/// Current frame format version. Bump on any layout change; readers
/// refuse (quarantine) versions they do not know rather than guessing.
pub const FRAME_VERSION: u8 = 1;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) over `bytes`.
///
/// Hand-rolled so the wire layer stays dependency-free; the table is
/// computed at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// FNV-1a over a byte slice — the deterministic digest used for engine
/// configuration fingerprints and chunk input digests.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Folds more bytes into a running FNV-1a state (start from [`fnv1a`]'s
/// offset basis, or chain calls to digest a multi-part input).
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Word-at-a-time FNV fold: same xor-multiply structure as
/// [`fnv1a_extend`] but consuming 8 bytes per multiply, with the
/// byte-at-a-time tail for the remainder. Checkpointed map tasks digest
/// every grouped input event, so the byte-serial fold would dominate the
/// checkpoint overhead budget on large chunks. Produces different values
/// than [`fnv1a_extend`] — callers pick one and stick with it.
pub fn fnv1a_words(mut h: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The identity a checkpoint frame claims: which chunk it holds and under
/// which engine configuration / input bytes it was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Chunk (segment) index within the job.
    pub chunk_index: u64,
    /// Fingerprint of every engine/job knob that shapes the chunk's
    /// output bytes.
    pub config_hash: u64,
    /// Digest of the chunk's grouped input events.
    pub input_digest: u64,
}

/// Outcome of validating a frame against the resuming job's expectation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameCheck {
    /// Intact and matching: the payload may be trusted.
    Valid(Vec<u8>),
    /// Integrity failure — truncated, bit-flipped, bad magic, unknown
    /// version, or trailing garbage. The reason names the first check
    /// that failed.
    Corrupt(String),
    /// Intact bytes whose metadata does not match the resuming job
    /// (engine config changed, input changed, or wrong chunk).
    Stale(String),
}

/// Encodes a frame at the current [`FRAME_VERSION`].
pub fn encode_frame(meta: &FrameMeta, payload: &[u8]) -> Vec<u8> {
    encode_frame_with_version(FRAME_VERSION, meta, payload)
}

/// Encodes a frame with an explicit version byte.
///
/// Only the corruption-matrix tests and sabotage harnesses should pass
/// anything other than [`FRAME_VERSION`]: the frame is fully
/// CRC-consistent, so decoding exercises the version check itself rather
/// than the checksum.
pub fn encode_frame_with_version(version: u8, meta: &FrameMeta, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 32);
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.push(version);
    put_uvarint(&mut buf, meta.chunk_index);
    put_uvarint(&mut buf, meta.config_hash);
    put_uvarint(&mut buf, meta.input_digest);
    put_uvarint(&mut buf, payload.len() as u64);
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Parses a frame's header and payload after the CRC has been verified.
fn parse_body(body: &[u8]) -> Result<(u8, FrameMeta, Vec<u8>), String> {
    let mut rd = body;
    if rd.len() < FRAME_MAGIC.len() + 1 {
        return Err("frame shorter than header".into());
    }
    let (magic, rest) = rd.split_at(FRAME_MAGIC.len());
    if magic != FRAME_MAGIC {
        return Err("bad magic".into());
    }
    let version = rest[0];
    rd = &rest[1..];
    let meta = FrameMeta {
        chunk_index: get_uvarint(&mut rd).map_err(|e| format!("chunk index: {e}"))?,
        config_hash: get_uvarint(&mut rd).map_err(|e| format!("config hash: {e}"))?,
        input_digest: get_uvarint(&mut rd).map_err(|e| format!("input digest: {e}"))?,
    };
    let len = get_len(&mut rd).map_err(|e| format!("payload length: {e}"))?;
    let payload = get_bytes(&mut rd, len)
        .map_err(|e| format!("payload: {e}"))?
        .to_vec();
    if !rd.is_empty() {
        return Err(format!("{} trailing bytes after payload", rd.len()));
    }
    Ok((version, meta, payload))
}

/// Decodes a frame without comparing its metadata to any expectation.
///
/// Integrity (length, CRC, magic, structure) is still enforced — only the
/// *meaning* checks are skipped. This is the inspection path for
/// quarantine tooling and the deliberate bypass the sabotage self-tests
/// use to prove the metadata checks are load-bearing.
pub fn decode_frame_unchecked(bytes: &[u8]) -> Result<(u8, FrameMeta, Vec<u8>), String> {
    if bytes.len() < 4 {
        return Err("frame shorter than its checksum".into());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
    let computed = crc32(body);
    if stored != computed {
        return Err(format!(
            "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
        ));
    }
    parse_body(body)
}

/// Validates a frame against the resuming job's expected metadata.
pub fn decode_frame(bytes: &[u8], expect: &FrameMeta) -> FrameCheck {
    let (version, meta, payload) = match decode_frame_unchecked(bytes) {
        Ok(parts) => parts,
        Err(reason) => return FrameCheck::Corrupt(reason),
    };
    if version != FRAME_VERSION {
        return FrameCheck::Corrupt(format!(
            "unsupported frame version {version} (reader speaks {FRAME_VERSION})"
        ));
    }
    if meta.chunk_index != expect.chunk_index {
        return FrameCheck::Stale(format!(
            "chunk index {} but expected {}",
            meta.chunk_index, expect.chunk_index
        ));
    }
    if meta.config_hash != expect.config_hash {
        return FrameCheck::Stale(format!(
            "engine-config hash {:#018x} but job expects {:#018x}",
            meta.config_hash, expect.config_hash
        ));
    }
    if meta.input_digest != expect.input_digest {
        return FrameCheck::Stale(format!(
            "input digest {:#018x} but chunk digests to {:#018x}",
            meta.input_digest, expect.input_digest
        ));
    }
    FrameCheck::Valid(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: FrameMeta = FrameMeta {
        chunk_index: 7,
        config_hash: 0xDEAD_BEEF,
        input_digest: 0x1234_5678_9ABC,
    };

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_valid() {
        let frame = encode_frame(&META, b"payload bytes");
        assert_eq!(
            decode_frame(&frame, &META),
            FrameCheck::Valid(b"payload bytes".to_vec())
        );
        // Empty payloads frame fine too.
        let empty = encode_frame(&META, b"");
        assert_eq!(decode_frame(&empty, &META), FrameCheck::Valid(vec![]));
    }

    #[test]
    fn truncation_is_corrupt() {
        let frame = encode_frame(&META, b"some payload");
        for cut in [0, 3, 8, frame.len() - 5, frame.len() - 1] {
            match decode_frame(&frame[..cut], &META) {
                FrameCheck::Corrupt(_) => {}
                other => panic!("truncation at {cut} not corrupt: {other:?}"),
            }
        }
    }

    #[test]
    fn every_bit_flip_is_corrupt() {
        let frame = encode_frame(&META, b"abc");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut flipped = frame.clone();
                flipped[byte] ^= 1 << bit;
                match decode_frame(&flipped, &META) {
                    FrameCheck::Corrupt(_) => {}
                    other => panic!("flip at {byte}.{bit} not corrupt: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn version_bump_with_valid_crc_is_corrupt() {
        let frame = encode_frame_with_version(FRAME_VERSION + 1, &META, b"abc");
        // The CRC is consistent, so this exercises the version check.
        assert!(decode_frame_unchecked(&frame).is_ok());
        match decode_frame(&frame, &META) {
            FrameCheck::Corrupt(reason) => assert!(reason.contains("version"), "{reason}"),
            other => panic!("version bump not corrupt: {other:?}"),
        }
    }

    #[test]
    fn metadata_mismatches_are_stale() {
        let frame = encode_frame(&META, b"abc");
        let cases = [
            FrameMeta {
                chunk_index: 8,
                ..META
            },
            FrameMeta {
                config_hash: 1,
                ..META
            },
            FrameMeta {
                input_digest: 1,
                ..META
            },
        ];
        for expect in cases {
            match decode_frame(&frame, &expect) {
                FrameCheck::Stale(_) => {}
                other => panic!("mismatch vs {expect:?} not stale: {other:?}"),
            }
        }
    }

    #[test]
    fn unchecked_decode_skips_meaning_not_integrity() {
        let frame = encode_frame(&META, b"xyz");
        let (version, meta, payload) = decode_frame_unchecked(&frame).unwrap();
        assert_eq!(version, FRAME_VERSION);
        assert_eq!(meta, META);
        assert_eq!(payload, b"xyz");
        let mut bad = frame;
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(decode_frame_unchecked(&bad).is_err());
    }

    #[test]
    fn fnv_digest_is_order_sensitive() {
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        assert_eq!(fnv1a_extend(fnv1a(b"ab"), b"cd"), fnv1a(b"abcd"));
    }
}
