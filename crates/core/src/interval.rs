//! Closed integer intervals with exact division — the canonical constraint
//! form of [`crate::SymInt`] (§3.4 of the paper).
//!
//! An interval `[lb, ub]` over `i64` represents the path constraint
//! `lb ≤ x ≤ ub` on a symbolic integer `x`. `i64::MIN` / `i64::MAX` act as
//! −∞ / +∞. All bound arithmetic is carried out in `i128` so constraint
//! manipulation itself can never overflow.

/// A closed (possibly empty) interval of `i64` values.
///
/// The canonical constraint form for symbolic integers: `lb ≤ x ≤ ub`.
/// Supports the three operations the SYMPLE decision procedure needs —
/// splitting at a comparison bound, intersection (composition), and union
/// (path merging, only when the union is itself an interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lb: i64,
    /// Inclusive upper bound.
    pub ub: i64,
}

impl Interval {
    /// The full interval: no constraint on `x`.
    pub const FULL: Interval = Interval {
        lb: i64::MIN,
        ub: i64::MAX,
    };

    /// Creates `[lb, ub]`; an inverted pair yields an empty interval.
    pub fn new(lb: i64, ub: i64) -> Interval {
        Interval { lb, ub }
    }

    /// The singleton interval `[v, v]`.
    pub fn point(v: i64) -> Interval {
        Interval { lb: v, ub: v }
    }

    /// A canonical empty interval.
    pub fn empty() -> Interval {
        Interval { lb: 1, ub: 0 }
    }

    /// Whether no value satisfies the constraint.
    pub fn is_empty(&self) -> bool {
        self.lb > self.ub
    }

    /// Whether every `i64` satisfies the constraint.
    pub fn is_full(&self) -> bool {
        self.lb == i64::MIN && self.ub == i64::MAX
    }

    /// Whether `v` satisfies the constraint.
    pub fn contains(&self, v: i64) -> bool {
        self.lb <= v && v <= self.ub
    }

    /// Number of values in the interval, saturating at `u64::MAX`.
    pub fn len(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.ub as i128 - self.lb as i128 + 1).min(u64::MAX as i128) as u64
        }
    }

    /// Intersection of two constraints (used by summary composition).
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lb: self.lb.max(other.lb),
            ub: self.ub.min(other.ub),
        }
    }

    /// Union of two constraints, if the union is itself an interval.
    ///
    /// Two intervals can be merged when they overlap or are adjacent
    /// (`[0,4]` and `[5,9]` merge to `[0,9]`). Returns `None` when a gap
    /// would make the union non-canonical.
    pub fn union_if_contiguous(&self, other: &Interval) -> Option<Interval> {
        if self.is_empty() {
            return Some(*other);
        }
        if other.is_empty() {
            return Some(*self);
        }
        // Adjacency check in i128 to survive `ub == i64::MAX`.
        let (a, b) = if self.lb <= other.lb {
            (self, other)
        } else {
            (other, self)
        };
        if (b.lb as i128) <= (a.ub as i128) + 1 {
            Some(Interval {
                lb: a.lb,
                ub: a.ub.max(b.ub),
            })
        } else {
            None
        }
    }

    /// Splits at a comparison with an affine value: returns the
    /// sub-intervals of `self` on which `a·x + b < c` holds and does not
    /// hold, respectively.
    ///
    /// Requires `a != 0` (a zero coefficient means the value is concrete and
    /// no split is needed). Either side may come back empty, in which case
    /// the branch outcome is forced.
    pub fn split_lt(&self, a: i64, b: i64, c: i64) -> (Interval, Interval) {
        debug_assert!(a != 0);
        let a128 = a as i128;
        let rhs = c as i128 - b as i128;
        if a > 0 {
            // a·x < rhs  ⇔  x ≤ ceil(rhs / a) − 1 = floor((rhs − 1) / a).
            let nb = div_floor_i128(rhs - 1, a128);
            (self.clamp_above(nb), self.clamp_below(nb + 1))
        } else {
            // a·x < rhs  ⇔  x > rhs / a  ⇔  x ≥ floor(rhs / a) + 1.
            let nb = div_floor_i128(rhs, a128) + 1;
            (self.clamp_below(nb), self.clamp_above(nb - 1))
        }
    }

    /// Splits at `a·x + b ≤ c`: returns the (then, else) sub-intervals.
    pub fn split_le(&self, a: i64, b: i64, c: i64) -> (Interval, Interval) {
        // a·x + b ≤ c  ⇔  a·x + b < c + 1; avoid overflow by shifting rhs.
        debug_assert!(a != 0);
        let a128 = a as i128;
        let rhs = c as i128 - b as i128;
        if a > 0 {
            let nb = div_floor_i128(rhs, a128);
            (self.clamp_above(nb), self.clamp_below(nb + 1))
        } else {
            let nb = div_ceil_i128(rhs, a128);
            (self.clamp_below(nb), self.clamp_above(nb - 1))
        }
    }

    /// Solves `a·x + b == c` within the interval: the singleton solution
    /// interval (possibly empty) and the two residual sides.
    ///
    /// Returns `(eq, below, above)` where `below`/`above` are the parts of
    /// `self` strictly left/right of the solution point. When there is no
    /// integer solution, `eq` is empty and `below` is the whole interval
    /// (with `above` empty), so the caller sees a forced "not equal".
    pub fn split_eq(&self, a: i64, b: i64, c: i64) -> (Interval, Interval, Interval) {
        debug_assert!(a != 0);
        let num = c as i128 - b as i128;
        let den = a as i128;
        if num % den != 0 {
            return (Interval::empty(), *self, Interval::empty());
        }
        let x0 = num / den;
        if x0 < self.lb as i128 || x0 > self.ub as i128 {
            return (Interval::empty(), *self, Interval::empty());
        }
        let x0 = x0 as i64;
        let below = if x0 == i64::MIN {
            Interval::empty()
        } else {
            self.intersect(&Interval::new(i64::MIN, x0 - 1))
        };
        let above = if x0 == i64::MAX {
            Interval::empty()
        } else {
            self.intersect(&Interval::new(x0 + 1, i64::MAX))
        };
        (Interval::point(x0), below, above)
    }

    /// Pre-image of `self` under `y = a·x + b`: the interval of `x` such
    /// that `a·x + b ∈ self`. Used when composing summaries (§3.6).
    ///
    /// Requires `a != 0`.
    pub fn preimage_affine(&self, a: i64, b: i64) -> Interval {
        debug_assert!(a != 0);
        if self.is_empty() {
            return Interval::empty();
        }
        let a128 = a as i128;
        let lo = self.lb as i128 - b as i128;
        let hi = self.ub as i128 - b as i128;
        let (xl, xh) = if a > 0 {
            (div_ceil_i128(lo, a128), div_floor_i128(hi, a128))
        } else {
            (div_ceil_i128(hi, a128), div_floor_i128(lo, a128))
        };
        clamp_pair(xl, xh)
    }

    fn clamp_above(&self, nb: i128) -> Interval {
        // Constrain to x ≤ nb.
        if nb >= self.ub as i128 {
            *self
        } else if nb < self.lb as i128 {
            Interval::empty()
        } else {
            Interval {
                lb: self.lb,
                ub: nb as i64,
            }
        }
    }

    fn clamp_below(&self, nb: i128) -> Interval {
        // Constrain to x ≥ nb.
        if nb <= self.lb as i128 {
            *self
        } else if nb > self.ub as i128 {
            Interval::empty()
        } else {
            Interval {
                lb: nb as i64,
                ub: self.ub,
            }
        }
    }
}

/// Converts `i128` bounds back to a (possibly clamped) `i64` interval.
fn clamp_pair(lo: i128, hi: i128) -> Interval {
    if lo > hi {
        return Interval::empty();
    }
    let lo = lo.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
    let hi = hi.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
    Interval::new(lo, hi)
}

/// Floor division on `i128` (Rust `/` truncates toward zero).
fn div_floor_i128(n: i128, d: i128) -> i128 {
    let q = n / d;
    if (n % d != 0) && ((n < 0) != (d < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division on `i128`.
fn div_ceil_i128(n: i128, d: i128) -> i128 {
    let q = n / d;
    if (n % d != 0) && ((n < 0) == (d < 0)) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert!(Interval::empty().is_empty());
        assert!(!Interval::FULL.is_empty());
        assert!(Interval::FULL.is_full());
        assert!(Interval::FULL.contains(i64::MIN));
        assert!(Interval::FULL.contains(i64::MAX));
        assert_eq!(Interval::point(7).len(), 1);
        assert_eq!(Interval::new(3, 7).len(), 5);
    }

    #[test]
    fn intersect_basic() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.intersect(&b), Interval::new(5, 10));
        let c = Interval::new(11, 20);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn union_contiguous() {
        let a = Interval::new(0, 4);
        let b = Interval::new(5, 9);
        assert_eq!(a.union_if_contiguous(&b), Some(Interval::new(0, 9)));
        assert_eq!(b.union_if_contiguous(&a), Some(Interval::new(0, 9)));
        let c = Interval::new(7, 12);
        assert_eq!(a.union_if_contiguous(&c), None);
        // Containment merges too.
        let d = Interval::new(1, 3);
        assert_eq!(a.union_if_contiguous(&d), Some(a));
        // Empty is the identity.
        assert_eq!(a.union_if_contiguous(&Interval::empty()), Some(a));
    }

    #[test]
    fn union_at_extremes() {
        let a = Interval::new(0, i64::MAX);
        let b = Interval::new(i64::MIN, -1);
        assert_eq!(a.union_if_contiguous(&b), Some(Interval::FULL));
    }

    #[test]
    fn split_lt_identity_transfer() {
        // x < 5 over the full range: then = (-inf, 4], else = [5, +inf).
        let (t, e) = Interval::FULL.split_lt(1, 0, 5);
        assert_eq!(t, Interval::new(i64::MIN, 4));
        assert_eq!(e, Interval::new(5, i64::MAX));
    }

    #[test]
    fn split_lt_affine_positive() {
        // 2x + 1 < 8  ⇔  x ≤ 3.
        let (t, e) = Interval::new(0, 10).split_lt(2, 1, 8);
        assert_eq!(t, Interval::new(0, 3));
        assert_eq!(e, Interval::new(4, 10));
    }

    #[test]
    fn split_lt_affine_negative() {
        // -3x + 2 < 5  ⇔  -3x < 3  ⇔  x > -1  ⇔  x ≥ 0.
        let (t, e) = Interval::new(-10, 10).split_lt(-3, 2, 5);
        assert_eq!(t, Interval::new(0, 10));
        assert_eq!(e, Interval::new(-10, -1));
    }

    #[test]
    fn split_le_boundaries() {
        // x ≤ 5.
        let (t, e) = Interval::new(0, 10).split_le(1, 0, 5);
        assert_eq!(t, Interval::new(0, 5));
        assert_eq!(e, Interval::new(6, 10));
        // -x ≤ -4  ⇔  x ≥ 4.
        let (t, e) = Interval::new(0, 10).split_le(-1, 0, -4);
        assert_eq!(t, Interval::new(4, 10));
        assert_eq!(e, Interval::new(0, 3));
    }

    #[test]
    fn split_eq_cases() {
        // 2x + 1 == 7  ⇔  x == 3.
        let (eq, below, above) = Interval::new(0, 10).split_eq(2, 1, 7);
        assert_eq!(eq, Interval::point(3));
        assert_eq!(below, Interval::new(0, 2));
        assert_eq!(above, Interval::new(4, 10));
        // 2x == 7 has no integer solution.
        let (eq, below, above) = Interval::new(0, 10).split_eq(2, 0, 7);
        assert!(eq.is_empty());
        assert_eq!(below, Interval::new(0, 10));
        assert!(above.is_empty());
        // Solution outside interval.
        let (eq, ..) = Interval::new(0, 10).split_eq(1, 0, 42);
        assert!(eq.is_empty());
    }

    #[test]
    fn split_eq_at_interval_edge() {
        let (eq, below, above) = Interval::new(3, 10).split_eq(1, 0, 3);
        assert_eq!(eq, Interval::point(3));
        assert!(below.is_empty());
        assert_eq!(above, Interval::new(4, 10));
    }

    #[test]
    fn preimage_affine_roundtrip() {
        // y ∈ [10, 20], y = 3x + 1  ⇒  x ∈ [3, 6].
        let pre = Interval::new(10, 20).preimage_affine(3, 1);
        assert_eq!(pre, Interval::new(3, 6));
        for x in pre.lb..=pre.ub {
            assert!(Interval::new(10, 20).contains(3 * x + 1));
        }
        // Negative slope: y ∈ [0, 10], y = -2x  ⇒  x ∈ [-5, 0].
        let pre = Interval::new(0, 10).preimage_affine(-2, 0);
        assert_eq!(pre, Interval::new(-5, 0));
    }

    #[test]
    fn preimage_of_empty_is_empty() {
        assert!(Interval::empty().preimage_affine(2, 0).is_empty());
    }

    #[test]
    fn preimage_no_overflow_at_extremes() {
        // The math runs in i128, so extreme bounds must not panic.
        let pre = Interval::FULL.preimage_affine(2, -1);
        assert!(!pre.is_empty());
        let pre = Interval::new(i64::MIN, 0).preimage_affine(-1, 0);
        assert_eq!(pre, Interval::new(0, i64::MAX));
    }

    #[test]
    fn div_floor_ceil() {
        assert_eq!(div_floor_i128(7, 2), 3);
        assert_eq!(div_floor_i128(-7, 2), -4);
        assert_eq!(div_floor_i128(7, -2), -4);
        assert_eq!(div_ceil_i128(7, 2), 4);
        assert_eq!(div_ceil_i128(-7, 2), -3);
        assert_eq!(div_ceil_i128(7, -2), -3);
        assert_eq!(div_floor_i128(6, 3), 2);
        assert_eq!(div_ceil_i128(6, 3), 2);
    }

    #[test]
    fn split_lt_exhaustive_small() {
        // Brute-force check of the decision procedure on a small domain.
        let dom = Interval::new(-8, 8);
        for a in [-3i64, -1, 1, 2, 5] {
            for b in -4i64..=4 {
                for c in -20i64..=20 {
                    let (t, e) = dom.split_lt(a, b, c);
                    for x in dom.lb..=dom.ub {
                        let holds = a * x + b < c;
                        assert_eq!(t.contains(x), holds, "a={a} b={b} c={c} x={x}");
                        assert_eq!(e.contains(x), !holds, "a={a} b={b} c={c} x={x}");
                    }
                }
            }
        }
    }
}
