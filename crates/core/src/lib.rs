#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # symple-core
//!
//! Core library of SYMPLE-rs, a reproduction of *"Parallelizing User-Defined
//! Aggregations using Symbolic Execution"* (Raychev, Musuvathi, Mytkowicz —
//! SOSP 2015).
//!
//! A user-defined aggregation (UDA) iterates over an ordered list of records
//! while reading and updating aggregation state — a loop-carried dependence
//! that normally forces sequential execution in a MapReduce reducer. SYMPLE
//! breaks that dependence with *symbolic parallelism*: every mapper runs the
//! UDA on its chunk starting from an **unknown symbolic state** `x`, and
//! produces a compact **symbolic summary**
//!
//! ```text
//! ⋀ᵢ  PCᵢ(x)  ⇒  s = TFᵢ(x)
//! ```
//!
//! i.e. a disjoint, exhaustive set of *path constraints* `PCᵢ` with per-path
//! *transfer functions* `TFᵢ`. A reducer composes the summaries in input
//! order and recovers exactly the sequential result.
//!
//! The crate provides:
//!
//! * the symbolic data types of §4 of the paper — [`SymInt`], [`SymBool`],
//!   [`SymEnum`], [`SymPred`], [`SymVector`] — each with a canonical
//!   constraint form and a constant-time decision procedure;
//! * the choice-vector path-exploration engine of §5.1
//!   ([`engine::SymbolicExecutor`]);
//! * path merging and path-explosion controls of §3.5/§5.2;
//! * summary application and associative summary composition of §3.6
//!   ([`compose`]);
//! * a compact varint wire format for summaries and records ([`wire`]).
//!
//! # Examples
//!
//! The paper's running example (§3.1) — `Max` as an imperative UDA:
//!
//! ```
//! use symple_core::prelude::*;
//!
//! struct MaxUda;
//!
//! #[derive(Clone, Debug)]
//! struct MaxState {
//!     max: SymInt,
//! }
//! impl_sym_state!(MaxState { max });
//!
//! impl Uda for MaxUda {
//!     type State = MaxState;
//!     type Event = i64;
//!     type Output = i64;
//!
//!     fn init(&self) -> MaxState {
//!         MaxState { max: SymInt::new(i64::MIN) }
//!     }
//!     fn update(&self, s: &mut MaxState, ctx: &mut SymCtx, e: &i64) {
//!         if s.max.lt(ctx, *e) {
//!             s.max.assign(*e);
//!         }
//!     }
//!     fn result(&self, s: &MaxState, _ctx: &mut SymCtx) -> i64 {
//!         s.max.concrete_value().expect("final state is concrete")
//!     }
//! }
//!
//! // Chunked symbolic execution equals the sequential run.
//! let input = [2, 9, 1, 5, 3, 10, 8, 2, 1];
//! let seq = run_sequential(&MaxUda, input.iter()).unwrap();
//! let par = run_chunked_symbolic(&MaxUda, &input, 3, &EngineConfig::default()).unwrap();
//! assert_eq!(seq, 10);
//! assert_eq!(par, 10);
//! ```

pub mod analysis;
pub mod ast;
pub mod bitset;
pub mod compose;
pub mod ctx;
pub mod engine;
pub mod error;
pub mod frame;
pub mod interval;
pub mod rng;
pub mod state;
pub mod summary;
pub mod types;
pub mod uda;
pub mod validate;
pub mod wire;

pub use analysis::{analyze_uda, FieldReport, UdaAnalysis, VariantAnalysis};
pub use ast::{eval_concrete, AstUda, Program};
pub use bitset::BitSet256;
pub use compose::{apply_chain, apply_summary, compose_chain, compose_summaries};
pub use ctx::{ChoiceVector, FootprintOp, OpKind, SymCtx};
pub use engine::{EngineConfig, ExploreStats, MergePolicy, SymbolicExecutor};
pub use error::{Error, Result};
pub use frame::{FrameCheck, FrameMeta};
pub use interval::Interval;
pub use rng::Rng64;
pub use state::{FieldFacts, FieldId, SymField, SymState};
pub use summary::{Summary, SummaryChain};
pub use types::{
    scalar::{ScalarTransfer, SymScalar},
    sym_bool::SymBool,
    sym_enum::SymEnum,
    sym_int::SymInt,
    sym_minmax::{Extremum, SymMinMax},
    sym_pred::SymPred,
    sym_vector::SymVector,
};
pub use uda::{run_chunked_symbolic, run_sequential, Uda};
pub use validate::{validate_uda, UdaViolation};

/// Convenience re-exports for UDA authors.
pub mod prelude {
    pub use crate::wire::{Wire, WireBorrow, WireError};
    pub use crate::{
        apply_chain, apply_summary, compose_chain, compose_summaries, impl_sym_state,
        run_chunked_symbolic, run_sequential, EngineConfig, Error, MergePolicy, Result, Summary,
        SummaryChain, SymBool, SymCtx, SymEnum, SymInt, SymPred, SymState, SymVector,
        SymbolicExecutor, Uda,
    };
}
