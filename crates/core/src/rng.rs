//! A small, deterministic, dependency-free PRNG used by the dataset
//! generators, the differential-testing oracle, and the property tests.
//!
//! Everything in SYMPLE-rs that consumes randomness must be reproducible
//! from an explicit `u64` seed: repro artifacts store only the seed, and
//! re-executed map attempts must see byte-identical inputs. The generator
//! here is SplitMix64 feeding xoshiro256**, the standard construction for
//! seedable, fast, statistically solid (non-cryptographic) streams.

/// A seedable xoshiro256** generator.
///
/// Equal seeds yield equal streams on every platform — the property the
/// oracle's repro artifacts depend on.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

/// Expands a seed into well-mixed state words (SplitMix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from an explicit seed.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        let mut sm = seed;
        Rng64 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniformly random value of any integer (or bool/f64) type.
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of uniform mantissa, compared in float space.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges). Panics on an empty range, matching `rand`'s contract.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: std::ops::RangeBounds<T>,
    {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.step_up().expect("range start overflow"),
            Bound::Unbounded => T::MIN_VALUE,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.step_down().expect("empty range"),
            Bound::Unbounded => T::MAX_VALUE,
        };
        assert!(lo <= hi, "gen_range called with an empty range");
        T::sample_inclusive(self, lo, hi)
    }
}

/// Types with a direct uniform sampling from the raw generator.
pub trait FromRng {
    /// Draws one uniformly random value.
    fn from_rng(rng: &mut Rng64) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng(rng: &mut Rng64) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng(rng: &mut Rng64) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng(rng: &mut Rng64) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Smallest representable value.
    const MIN_VALUE: Self;
    /// Largest representable value.
    const MAX_VALUE: Self;
    /// `self + 1`, if representable.
    fn step_up(self) -> Option<Self>;
    /// `self - 1`, if representable.
    fn step_down(self) -> Option<Self>;
    /// Uniform sample from the inclusive range `[lo, hi]`.
    fn sample_inclusive(rng: &mut Rng64, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            const MIN_VALUE: $t = <$t>::MIN;
            const MAX_VALUE: $t = <$t>::MAX;
            fn step_up(self) -> Option<$t> {
                self.checked_add(1)
            }
            fn step_down(self) -> Option<$t> {
                self.checked_sub(1)
            }
            fn sample_inclusive(rng: &mut Rng64, lo: $t, hi: $t) -> $t {
                // Width as u128 avoids overflow at extreme bounds; modulo
                // bias is immaterial for test/datagen purposes.
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    const MIN_VALUE: f64 = f64::MIN;
    const MAX_VALUE: f64 = f64::MAX;
    fn step_up(self) -> Option<f64> {
        Some(self)
    }
    fn step_down(self) -> Option<f64> {
        Some(self)
    }
    fn sample_inclusive(rng: &mut Rng64, lo: f64, hi: f64) -> f64 {
        let f = f64::from_rng(rng);
        lo + (hi - lo) * f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u: u32 = rng.gen_range(0u32..=3);
            assert!(u <= 3);
            let w: usize = rng.gen_range(1usize..2);
            assert_eq!(w, 1);
            let f: f64 = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn extreme_ranges_do_not_overflow() {
        let mut rng = Rng64::seed_from_u64(1);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = Rng64::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn full_domain_sampling() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(rng.gen::<bool>())] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
