//! Symbolic summaries (§3.2 of the paper).
//!
//! A [`Summary`] is the output of symbolically executing a UDA over one
//! chunk: a set of *paths*, each a full clone of the aggregation state whose
//! fields carry their canonical path constraints and transfer functions.
//! Together the paths form
//!
//! ```text
//! ⋀ᵢ PCᵢ(x) ⇒ s = TFᵢ(x)
//! ```
//!
//! A **valid** summary is exhaustive (`⋁ᵢ PCᵢ = true`) and pairwise
//! disjoint (`PCᵢ ∧ PCⱼ = false` for `i ≠ j`).
//!
//! A [`SummaryChain`] is what a mapper actually emits: usually a single
//! summary, but when the engine's total-path bound triggers a restart
//! (§5.2), several summaries that must be applied in order.

use crate::error::{Error, Result};
use crate::state::{FieldId, SymState};
use crate::wire::{self, WireError};

/// A symbolic summary: the disjoint, exhaustive set of explored paths.
#[derive(Debug, Clone)]
pub struct Summary<S: SymState> {
    paths: Vec<S>,
}

impl<S: SymState> Summary<S> {
    /// Wraps a set of explored paths as a summary.
    pub fn new(paths: Vec<S>) -> Summary<S> {
        Summary { paths }
    }

    /// A summary holding a single (e.g. concrete) path.
    pub fn singleton(path: S) -> Summary<S> {
        Summary { paths: vec![path] }
    }

    /// The paths.
    pub fn paths(&self) -> &[S] {
        &self.paths
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the summary has no paths (invalid — summaries must be
    /// exhaustive).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Consumes the summary, returning its paths.
    pub fn into_paths(self) -> Vec<S> {
        self.paths
    }

    /// Checks pairwise disjointness of the path constraints, as far as the
    /// canonical forms can decide it.
    ///
    /// Two paths provably overlap when **every** field's constraints
    /// intersect; black-box predicate decisions are assumed compatible
    /// unless the same argument was decided both ways. Used as a validity
    /// diagnostic in tests.
    pub fn paths_pairwise_disjoint(&self) -> bool {
        for i in 0..self.paths.len() {
            for j in (i + 1)..self.paths.len() {
                let fi = self.paths[i].fields_ref();
                let fj = self.paths[j].fields_ref();
                let all_overlap = fi.iter().zip(&fj).all(|(a, b)| a.constraint_overlaps(*b));
                if all_overlap {
                    return false;
                }
            }
        }
        true
    }

    /// Serializes the summary (§2.3: compact network transfers).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        wire::put_uvarint(buf, self.paths.len() as u64);
        for p in &self.paths {
            let fields = p.fields_ref();
            wire::put_uvarint(buf, fields.len() as u64);
            for f in fields {
                f.encode_field(buf);
            }
        }
    }

    /// Deserializes a summary.
    ///
    /// `template` must be a state with the same shape as the encoder's —
    /// typically `uda.init()` — so that non-serializable parts (predicate
    /// closures, enum domains) are reconstructed in place.
    pub fn decode(template: &S, buf: &mut &[u8]) -> Result<Summary<S>, WireError> {
        let n_paths = wire::get_len(buf)?;
        let mut paths = Vec::with_capacity(n_paths.min(1024));
        for _ in 0..n_paths {
            let mut s = template.clone();
            let mut fields = s.fields_mut();
            let n_fields = wire::get_len(buf)?;
            if n_fields != fields.len() {
                return Err(WireError::LengthOverflow(n_fields as u64));
            }
            for (i, f) in fields.iter_mut().enumerate() {
                f.decode_field(buf, FieldId(i as u16))?;
            }
            drop(fields);
            paths.push(s);
        }
        Ok(Summary { paths })
    }

    /// Canonical wire encoding as an owned buffer.
    ///
    /// The wire form is deterministic — field order and varint widths are
    /// fixed — so two summaries are semantically interchangeable for a
    /// re-executed map attempt iff their bytes match. The differential
    /// oracle leans on this to check attempt determinism.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Whether two summaries have identical canonical wire bytes.
    pub fn byte_eq(&self, other: &Summary<S>) -> bool {
        self.to_bytes() == other.to_bytes()
    }

    /// Multi-line rendering of the summary's canonical forms, used by the
    /// paper-figure demos (e.g. Figure 3).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.paths.iter().enumerate() {
            let fields: Vec<String> = p.fields_ref().iter().map(|f| f.describe()).collect();
            out.push_str(&format!("path {i}: {}\n", fields.join(" | ")));
        }
        out
    }
}

/// The full output of one mapper's symbolic execution: one or more
/// summaries that must be applied in order (§5.2's restart fallback).
#[derive(Debug, Clone)]
pub struct SummaryChain<S: SymState> {
    summaries: Vec<Summary<S>>,
}

impl<S: SymState> SummaryChain<S> {
    /// Wraps an ordered list of summaries.
    pub fn new(summaries: Vec<Summary<S>>) -> SummaryChain<S> {
        SummaryChain { summaries }
    }

    /// A chain holding a single summary.
    pub fn single(summary: Summary<S>) -> SummaryChain<S> {
        SummaryChain {
            summaries: vec![summary],
        }
    }

    /// The summaries, in application order.
    pub fn summaries(&self) -> &[Summary<S>] {
        &self.summaries
    }

    /// Number of summaries in the chain (1 unless the engine restarted).
    pub fn len(&self) -> usize {
        self.summaries.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.summaries.is_empty()
    }

    /// Total number of paths across the chain.
    pub fn total_paths(&self) -> usize {
        self.summaries.iter().map(Summary::len).sum()
    }

    /// Concatenates two chains: `earlier` applies first, then `self`.
    pub fn after(self, earlier: SummaryChain<S>) -> SummaryChain<S> {
        let mut summaries = earlier.summaries;
        summaries.extend(self.summaries);
        SummaryChain { summaries }
    }

    /// Serializes the chain.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        wire::put_uvarint(buf, self.summaries.len() as u64);
        for s in &self.summaries {
            s.encode(buf);
        }
    }

    /// Deserializes a chain; see [`Summary::decode`] for `template`.
    pub fn decode(template: &S, buf: &mut &[u8]) -> Result<SummaryChain<S>, WireError> {
        let n = wire::get_len(buf)?;
        let mut summaries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            summaries.push(Summary::decode(template, buf)?);
        }
        Ok(SummaryChain { summaries })
    }

    /// Encoded size in bytes (shuffle accounting).
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Canonical wire encoding as an owned buffer (see [`Summary::to_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Whether two chains have identical canonical wire bytes.
    pub fn byte_eq(&self, other: &SummaryChain<S>) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl<S: SymState> From<Summary<S>> for SummaryChain<S> {
    fn from(s: Summary<S>) -> Self {
        SummaryChain::single(s)
    }
}

/// Validity check used by tests: every path of `summary` must be pairwise
/// disjoint, and the summary must not be empty.
pub fn check_validity<S: SymState>(summary: &Summary<S>) -> Result<()> {
    if summary.is_empty() {
        return Err(Error::IncompleteSummary);
    }
    if !summary.paths_pairwise_disjoint() {
        return Err(Error::OverlappingSummary);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_sym_state;
    use crate::interval::Interval;
    use crate::state::make_state_symbolic;
    use crate::types::sym_int::SymInt;

    #[derive(Clone, Debug)]
    struct S {
        v: SymInt,
    }
    impl_sym_state!(S { v });

    fn path(lb: i64, ub: i64, assign: Option<i64>) -> S {
        let mut s = S { v: SymInt::new(0) };
        make_state_symbolic(&mut s);
        let mut ctx = crate::ctx::SymCtx::symbolic();
        // Narrow the constraint via comparisons.
        if ub != i64::MAX {
            let _ = s.v.le(&mut ctx, ub);
        }
        if lb != i64::MIN {
            let _ = s.v.ge(&mut ctx, lb);
        }
        if let Some(a) = assign {
            s.v.assign(a);
        }
        s
    }

    #[test]
    fn disjointness_check() {
        // x ≤ 9 ⇒ 10  and  x ≥ 10 ⇒ x : disjoint (Figure 3's summary).
        let s = Summary::new(vec![path(i64::MIN, 9, Some(10)), path(10, i64::MAX, None)]);
        assert!(s.paths_pairwise_disjoint());
        assert!(check_validity(&s).is_ok());
        // Overlapping paths are flagged.
        let s = Summary::new(vec![path(i64::MIN, 10, Some(10)), path(10, i64::MAX, None)]);
        assert!(!s.paths_pairwise_disjoint());
        assert!(check_validity(&s).is_err());
    }

    #[test]
    fn empty_summary_is_invalid() {
        let s: Summary<S> = Summary::new(vec![]);
        assert!(matches!(check_validity(&s), Err(Error::IncompleteSummary)));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = Summary::new(vec![path(i64::MIN, 9, Some(10)), path(10, i64::MAX, None)]);
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let template = S { v: SymInt::new(0) };
        let mut rd = &buf[..];
        let back = Summary::decode(&template, &mut rd).unwrap();
        assert!(rd.is_empty());
        assert_eq!(back.len(), 2);
        assert_eq!(back.paths()[0].v.constraint(), Interval::new(i64::MIN, 9));
        assert_eq!(back.paths()[0].v.concrete_value(), Some(10));
        assert_eq!(back.paths()[1].v.coeffs(), (1, 0));
    }

    #[test]
    fn decode_rejects_wrong_field_count() {
        let mut buf = Vec::new();
        wire::put_uvarint(&mut buf, 1); // one path
        wire::put_uvarint(&mut buf, 7); // bogus field count
        let template = S { v: SymInt::new(0) };
        assert!(Summary::decode(&template, &mut &buf[..]).is_err());
    }

    #[test]
    fn chain_concatenation_order() {
        let a = SummaryChain::single(Summary::singleton(path(0, 5, None)));
        let b = SummaryChain::single(Summary::singleton(path(6, 9, None)));
        let c = b.clone().after(a.clone());
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.summaries()[0].paths()[0].v.constraint(),
            Interval::new(0, 5)
        );
        assert_eq!(
            c.summaries()[1].paths()[0].v.constraint(),
            Interval::new(6, 9)
        );
        assert_eq!(c.total_paths(), 2);
    }

    #[test]
    fn chain_roundtrip_and_wire_len() {
        let chain = SummaryChain::new(vec![
            Summary::singleton(path(0, 5, Some(1))),
            Summary::singleton(path(i64::MIN, i64::MAX, None)),
        ]);
        let mut buf = Vec::new();
        chain.encode(&mut buf);
        assert_eq!(chain.wire_len(), buf.len());
        let template = S { v: SymInt::new(0) };
        let back = SummaryChain::decode(&template, &mut &buf[..]).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn describe_contains_canonical_forms() {
        let s = Summary::new(vec![path(i64::MIN, 9, Some(10))]);
        let d = s.describe();
        assert!(d.contains("x≤9"), "got: {d}");
        assert!(d.contains("10"));
    }
}
