//! The symbolic data types of §4: enumerations, booleans, integers,
//! black-box predicates, and append-only vectors.
//!
//! Each type maintains its path constraint in a canonical form that makes
//! branch-feasibility decidable in (small) constant time, supports merging
//! (§3.5), and serializes compactly (§2.3). The types deliberately restrict
//! the allowed operations — e.g. two `SymInt`s cannot be compared — so that
//! every constraint mentions a single symbolic variable and never requires
//! a general-purpose solver (§4.3).

pub mod scalar;
pub mod sym_bool;
pub mod sym_enum;
pub mod sym_int;
pub mod sym_minmax;
pub mod sym_pred;
pub mod sym_vector;
