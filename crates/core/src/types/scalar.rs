//! Scalar transfer functions and symbolic scalar values.
//!
//! Every scalar symbolic field maps its initial unknown `x` to its current
//! value through an affine transfer `a·x + b` (possibly constant). These
//! small helpers centralize the checked affine algebra used by `SymInt`,
//! vector elements, and summary composition.

use crate::error::{Error, Result};
use crate::state::FieldId;
use crate::wire::{self, Wire, WireError};

/// The transfer function of a scalar field: current value as a function of
/// the field's own initial symbolic value `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarTransfer {
    /// The value is concrete: it no longer depends on `x`.
    Const(i64),
    /// The value is `a·x + b` with `a ≠ 0`.
    Affine {
        /// Coefficient of `x` (non-zero).
        a: i64,
        /// Constant offset.
        b: i64,
    },
}

impl ScalarTransfer {
    /// The identity transfer `x`.
    pub const IDENTITY: ScalarTransfer = ScalarTransfer::Affine { a: 1, b: 0 };

    /// Normalizes `(a, b)` coefficients into a transfer.
    pub fn from_coeffs(a: i64, b: i64) -> ScalarTransfer {
        if a == 0 {
            ScalarTransfer::Const(b)
        } else {
            ScalarTransfer::Affine { a, b }
        }
    }

    /// The `(a, b)` coefficient view (`Const(c)` is `(0, c)`).
    pub fn coeffs(self) -> (i64, i64) {
        match self {
            ScalarTransfer::Const(c) => (0, c),
            ScalarTransfer::Affine { a, b } => (a, b),
        }
    }

    /// Evaluates the transfer at a concrete input.
    pub fn eval(self, x: i64) -> Result<i64> {
        let (a, b) = self.coeffs();
        mul_add_checked(a, x, b)
    }

    /// Composes `self ∘ prev`: feeds `prev`'s output into `self`.
    ///
    /// With `self = a·y + b` and `prev = p·x + q`, the composition is
    /// `a·p·x + (a·q + b)`.
    pub fn compose(self, prev: ScalarTransfer) -> Result<ScalarTransfer> {
        let (a, b) = self.coeffs();
        let (p, q) = prev.coeffs();
        let na = a
            .checked_mul(p)
            .ok_or(Error::ArithmeticOverflow { op: "compose" })?;
        let nb = mul_add_checked(a, q, b)?;
        Ok(ScalarTransfer::from_coeffs(na, nb))
    }

    /// Whether the transfer is constant.
    pub fn is_const(self) -> bool {
        matches!(self, ScalarTransfer::Const(_))
    }
}

/// Checked `a·x + b`.
pub fn mul_add_checked(a: i64, x: i64, b: i64) -> Result<i64> {
    a.checked_mul(x)
        .and_then(|ax| ax.checked_add(b))
        .ok_or(Error::ArithmeticOverflow { op: "mul_add" })
}

/// A possibly-symbolic scalar value, used for vector elements and UDA
/// outputs: either a concrete `i64` or an affine function of the initial
/// value of one state field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymScalar {
    /// A known value.
    Concrete(i64),
    /// `a·x_f + b`, where `x_f` is the initial symbolic value of field `f`.
    Affine {
        /// The state field whose initial value this depends on.
        field: FieldId,
        /// Coefficient (non-zero).
        a: i64,
        /// Offset.
        b: i64,
    },
}

impl SymScalar {
    /// Builds a scalar from a field id and its transfer.
    pub fn from_transfer(field: FieldId, t: ScalarTransfer) -> SymScalar {
        match t {
            ScalarTransfer::Const(c) => SymScalar::Concrete(c),
            ScalarTransfer::Affine { a, b } => SymScalar::Affine { field, a, b },
        }
    }

    /// Whether the scalar is concrete.
    pub fn is_concrete(&self) -> bool {
        matches!(self, SymScalar::Concrete(_))
    }

    /// The concrete value, if known.
    pub fn concrete_value(&self) -> Option<i64> {
        match self {
            SymScalar::Concrete(v) => Some(*v),
            SymScalar::Affine { .. } => None,
        }
    }

    /// Rewrites this scalar (a function of the *later* chunk's initial
    /// state `y`) in terms of the *earlier* chunk's initial state `x`,
    /// given the earlier path's transfer for the referenced field.
    pub fn substitute(self, prev_transfer: ScalarTransfer) -> Result<SymScalar> {
        match self {
            SymScalar::Concrete(_) => Ok(self),
            SymScalar::Affine { field, a, b } => {
                let composed = ScalarTransfer::Affine { a, b }.compose(prev_transfer)?;
                Ok(SymScalar::from_transfer(field, composed))
            }
        }
    }
}

impl Wire for SymScalar {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SymScalar::Concrete(v) => {
                buf.push(0);
                wire::put_ivarint(buf, *v);
            }
            SymScalar::Affine { field, a, b } => {
                buf.push(1);
                wire::put_uvarint(buf, u64::from(field.0));
                wire::put_ivarint(buf, *a);
                wire::put_ivarint(buf, *b);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match wire::get_bytes(buf, 1)?[0] {
            0 => Ok(SymScalar::Concrete(wire::get_ivarint(buf)?)),
            1 => {
                let field = wire::get_uvarint(buf)?;
                let field = u16::try_from(field).map_err(|_| WireError::LengthOverflow(field))?;
                let a = wire::get_ivarint(buf)?;
                let b = wire::get_ivarint(buf)?;
                Ok(SymScalar::Affine {
                    field: FieldId(field),
                    a,
                    b,
                })
            }
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coeffs_roundtrip() {
        assert_eq!(ScalarTransfer::from_coeffs(0, 7), ScalarTransfer::Const(7));
        assert_eq!(
            ScalarTransfer::from_coeffs(2, 7),
            ScalarTransfer::Affine { a: 2, b: 7 }
        );
        assert_eq!(ScalarTransfer::Const(7).coeffs(), (0, 7));
    }

    #[test]
    fn eval_and_compose() {
        let f = ScalarTransfer::Affine { a: 2, b: 1 }; // 2y + 1
        let g = ScalarTransfer::Affine { a: 3, b: -4 }; // 3x - 4
                                                        // f ∘ g = 2(3x − 4) + 1 = 6x − 7.
        let fg = f.compose(g).unwrap();
        assert_eq!(fg, ScalarTransfer::Affine { a: 6, b: -7 });
        for x in -5..5 {
            assert_eq!(fg.eval(x).unwrap(), f.eval(g.eval(x).unwrap()).unwrap());
        }
        // Composing onto a constant collapses to a constant.
        let fc = f.compose(ScalarTransfer::Const(10)).unwrap();
        assert_eq!(fc, ScalarTransfer::Const(21));
    }

    #[test]
    fn compose_overflow_detected() {
        let f = ScalarTransfer::Affine { a: i64::MAX, b: 0 };
        assert!(f.compose(ScalarTransfer::Affine { a: 2, b: 0 }).is_err());
        assert!(f.eval(2).is_err());
    }

    #[test]
    fn identity_laws() {
        let f = ScalarTransfer::Affine { a: 5, b: 3 };
        assert_eq!(f.compose(ScalarTransfer::IDENTITY).unwrap(), f);
        assert_eq!(ScalarTransfer::IDENTITY.compose(f).unwrap(), f);
    }

    #[test]
    fn scalar_substitute() {
        let s = SymScalar::Affine {
            field: FieldId(0),
            a: 2,
            b: 1,
        };
        // Previous chunk left the field as 3x + 4.
        let sub = s.substitute(ScalarTransfer::Affine { a: 3, b: 4 }).unwrap();
        assert_eq!(
            sub,
            SymScalar::Affine {
                field: FieldId(0),
                a: 6,
                b: 9
            }
        );
        // Previous chunk bound the field to 10 — scalar concretizes.
        let sub = s.substitute(ScalarTransfer::Const(10)).unwrap();
        assert_eq!(sub, SymScalar::Concrete(21));
        // Concrete scalars are unaffected.
        let c = SymScalar::Concrete(9);
        assert_eq!(c.substitute(ScalarTransfer::Const(0)).unwrap(), c);
    }

    #[test]
    fn wire_roundtrip() {
        for s in [
            SymScalar::Concrete(-42),
            SymScalar::Affine {
                field: FieldId(3),
                a: -2,
                b: 100,
            },
        ] {
            let buf = s.to_wire();
            let mut rd = &buf[..];
            assert_eq!(SymScalar::decode(&mut rd).unwrap(), s);
            assert!(rd.is_empty());
        }
    }

    #[test]
    fn wire_bad_tag() {
        let mut rd: &[u8] = &[9];
        assert!(SymScalar::decode(&mut rd).is_err());
    }
}
