//! Symbolic booleans (§4.2 of the paper): a [`SymEnum`] over
//! `{false, true}` with boolean-flavored operators.

use crate::ctx::SymCtx;
use crate::error::Result;
use crate::state::{downcast, FieldFacts, FieldId, SymField};
use crate::types::scalar::ScalarTransfer;
use crate::types::sym_enum::SymEnum;
use crate::wire::WireError;

/// A symbolic boolean.
///
/// "`SymBool` is an instance of `SymEnum` over the bounded set
/// `{true, false}` with the appropriate operator overloading" (§4.2).
/// Reading the value (`get`) is a *branch*: if the boolean is still the
/// unknown initial value, both outcomes are explored.
///
/// # Examples
///
/// ```
/// use symple_core::{SymBool, SymCtx};
///
/// let mut found = SymBool::new(false);
/// let mut ctx = SymCtx::concrete();
/// assert!(!found.get(&mut ctx));
/// found.assign(true);
/// assert!(found.get(&mut ctx));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymBool {
    inner: SymEnum,
}

impl SymBool {
    /// Creates a concrete boolean.
    pub fn new(v: bool) -> SymBool {
        SymBool {
            inner: SymEnum::new(2, u32::from(v)),
        }
    }

    /// Assigns a concrete value, binding the variable.
    pub fn assign(&mut self, v: bool) {
        // Domain 2 assignment cannot fail; use a throwaway concrete ctx.
        let mut ctx = SymCtx::concrete();
        self.inner.assign(&mut ctx, u32::from(v));
        debug_assert!(!ctx.has_error());
    }

    /// Reads the value, forking when it is still symbolic.
    pub fn get(&mut self, ctx: &mut SymCtx) -> bool {
        self.inner.eq_c(ctx, 1)
    }

    /// The concrete value, if bound.
    pub fn concrete_value(&self) -> Option<bool> {
        self.inner.concrete_value().map(|v| v == 1)
    }

    /// The underlying enum (for diagnostics).
    pub fn as_enum(&self) -> &SymEnum {
        &self.inner
    }
}

impl From<bool> for SymBool {
    fn from(v: bool) -> SymBool {
        SymBool::new(v)
    }
}

impl SymField for SymBool {
    fn make_symbolic(&mut self, id: FieldId) {
        self.inner.make_symbolic(id);
    }
    fn is_concrete(&self) -> bool {
        self.inner.is_concrete()
    }
    fn transfer_eq(&self, other: &dyn SymField) -> bool {
        downcast::<SymBool>(other).is_some_and(|o| self.inner.transfer_eq(&o.inner))
    }
    fn constraint_eq(&self, other: &dyn SymField) -> bool {
        downcast::<SymBool>(other).is_some_and(|o| self.inner.constraint_eq(&o.inner))
    }
    fn constraint_overlaps(&self, other: &dyn SymField) -> bool {
        downcast::<SymBool>(other).is_some_and(|o| self.inner.constraint_overlaps(&o.inner))
    }
    fn union_constraint(&mut self, other: &dyn SymField) -> bool {
        match downcast::<SymBool>(other) {
            Some(o) => self.inner.union_constraint(&o.inner),
            None => false,
        }
    }
    fn compose_onto(&mut self, prev: &dyn SymField, prev_all: &[&dyn SymField]) -> Result<bool> {
        let prev = downcast::<SymBool>(prev)
            .ok_or(crate::error::Error::Uda("field type mismatch".into()))?;
        self.inner.compose_onto(&prev.inner, prev_all)
    }
    fn transfer(&self) -> Option<ScalarTransfer> {
        self.inner.transfer()
    }
    fn encode_field(&self, buf: &mut Vec<u8>) {
        self.inner.encode_field(buf);
    }
    fn decode_field(&mut self, buf: &mut &[u8], id: FieldId) -> Result<(), WireError> {
        self.inner.decode_field(buf, id)
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn facts(&self) -> FieldFacts {
        FieldFacts {
            kind: "bool",
            concrete: self.inner.is_concrete(),
            ..FieldFacts::default()
        }
    }
    fn perturb(&mut self) -> bool {
        match self.concrete_value() {
            Some(v) => {
                self.assign(!v);
                true
            }
            None => false,
        }
    }
    fn describe(&self) -> String {
        self.inner.describe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_get_never_forks() {
        let mut ctx = SymCtx::concrete();
        let mut b = SymBool::new(true);
        assert!(b.get(&mut ctx));
        b.assign(false);
        assert!(!b.get(&mut ctx));
        assert!(!ctx.has_error());
    }

    #[test]
    fn symbolic_get_explores_both() {
        let mut ctx = SymCtx::symbolic();
        let mut outcomes = Vec::new();
        loop {
            ctx.begin_run();
            let mut b = SymBool::new(false);
            b.make_symbolic(FieldId(0));
            outcomes.push(b.get(&mut ctx));
            if !ctx.advance() {
                break;
            }
        }
        assert_eq!(outcomes, vec![true, false]);
    }

    #[test]
    fn merge_true_false_paths() {
        // Two paths with the same transfer whose constraints x=true and
        // x=false union back to "any": the SymBool fork always heals.
        let mut ctx = SymCtx::symbolic();
        let mut a = SymBool::new(false);
        a.make_symbolic(FieldId(0));
        let mut b = a;
        ctx.begin_run();
        assert!(a.get(&mut ctx));
        a.assign(true);
        ctx.advance();
        ctx.begin_run();
        assert!(!b.get(&mut ctx));
        b.assign(true);
        assert!(a.transfer_eq(&b));
        assert!(a.union_constraint(&b));
        assert_eq!(a.as_enum().constraint_set(), 0b11);
    }

    #[test]
    fn wire_roundtrip() {
        let mut b = SymBool::new(true);
        b.make_symbolic(FieldId(2));
        let mut buf = Vec::new();
        b.encode_field(&mut buf);
        let mut back = SymBool::new(false);
        let mut rd = &buf[..];
        back.decode_field(&mut rd, FieldId(2)).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn transfer_reflects_binding() {
        let mut b = SymBool::new(false);
        b.make_symbolic(FieldId(0));
        assert_eq!(b.transfer(), Some(ScalarTransfer::IDENTITY));
        b.assign(true);
        assert_eq!(b.transfer(), Some(ScalarTransfer::Const(1)));
        assert_eq!(b.concrete_value(), Some(true));
    }
}
