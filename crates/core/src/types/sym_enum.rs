//! Symbolic enumerations (§4.1 of the paper).
//!
//! A `SymEnum` models a C++ `enum class` over a bounded domain `0..n`
//! (n ≤ 64). Its canonical form is
//!
//! ```text
//! x ∈ S  ⇒  v = (bound ? c : x)
//! ```
//!
//! a bit-set `S` constraining the initial symbolic value plus an optional
//! bound constant. Equality tests against constants split `S` in constant
//! time; path merging is just set union, which is *always* canonical — the
//! reason `SymEnum` (and [`crate::SymBool`]) can never cause path explosion
//! across records.

use crate::bitset::BitSet256;
use crate::ctx::{OpKind, SymCtx};
use crate::error::{Error, Result};
use crate::state::{downcast, FieldFacts, FieldId, SymField};
use crate::types::scalar::ScalarTransfer;
use crate::wire::{self, WireError};

/// Maximum number of values in a `SymEnum` domain (bit-set width).
pub const MAX_ENUM_DOMAIN: u32 = 256;

/// A symbolic enumeration over the domain `0..domain`.
///
/// Supports equality/inequality tests against constants and assignment of
/// constants. Two `SymEnum`s cannot be compared — the restriction that
/// keeps the canonical form closed (§4.1).
///
/// # Examples
///
/// ```
/// use symple_core::{SymCtx, SymEnum};
///
/// let mut op = SymEnum::new(4, 0);
/// let mut ctx = SymCtx::concrete();
/// op.assign(&mut ctx, 2);
/// assert!(op.eq_c(&mut ctx, 2));
/// assert_eq!(op.concrete_value(), Some(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymEnum {
    domain: u32,
    set: BitSet256,
    bound: Option<u32>,
    id: Option<FieldId>,
}

impl SymEnum {
    /// Creates a concrete enum over `0..domain` holding `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is 0, exceeds [`MAX_ENUM_DOMAIN`], or `initial`
    /// is outside the domain — construction-time bugs, not data errors.
    pub fn new(domain: u32, initial: u32) -> SymEnum {
        assert!(
            domain > 0 && domain <= MAX_ENUM_DOMAIN,
            "enum domain must be in 1..=256"
        );
        assert!(
            initial < domain,
            "initial value {initial} outside domain 0..{domain}"
        );
        SymEnum {
            domain,
            set: BitSet256::full(domain),
            bound: Some(initial),
            id: None,
        }
    }

    /// The domain size `n` (values are `0..n`).
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// The low 64 values of the constraint set `S`, as a mask
    /// (convenience for the common small domains).
    pub fn constraint_set(&self) -> u64 {
        self.set.low_mask64()
    }

    /// The full constraint set `S` on the initial symbolic value.
    pub fn constraint_bits(&self) -> BitSet256 {
        self.set
    }

    /// The field id, set once the value has been made symbolic.
    pub fn field_id(&self) -> Option<FieldId> {
        self.id
    }

    /// The concrete value, if bound.
    pub fn concrete_value(&self) -> Option<u32> {
        self.bound
    }

    /// Assigns a constant, binding the variable (§4.1: "the value of a
    /// SymEnum is bound on an assignment to a constant").
    pub fn assign(&mut self, ctx: &mut SymCtx, c: u32) {
        if c >= self.domain {
            ctx.fail(Error::EnumOutOfDomain {
                value: i64::from(c),
                domain: self.domain,
            });
            return;
        }
        self.bound = Some(c);
    }

    /// `value == c`, forking when the unbound value could go either way.
    ///
    /// Comparing against a constant outside the domain is simply `false`.
    pub fn eq_c(&mut self, ctx: &mut SymCtx, c: u32) -> bool {
        if let Some(v) = self.bound {
            return v == c;
        }
        if c >= self.domain {
            return false;
        }
        let bit = BitSet256::singleton(c);
        let then_set = self.set.intersect(&bit);
        let else_set = self.set.difference(&bit);
        match (then_set.is_empty(), else_set.is_empty()) {
            (false, true) => {
                ctx.note_op(OpKind::Guard, self.id, "eq", false);
                true
            }
            (true, false) => {
                ctx.note_op(OpKind::Guard, self.id, "eq", false);
                false
            }
            (false, false) => {
                ctx.note_op(OpKind::Guard, self.id, "eq", true);
                if ctx.choose(2) == 0 {
                    self.set = then_set;
                    true
                } else {
                    self.set = else_set;
                    false
                }
            }
            (true, true) => {
                debug_assert!(false, "SymEnum branch with empty path constraint");
                false
            }
        }
    }

    /// `value != c`; the complement of [`SymEnum::eq_c`].
    pub fn ne_c(&mut self, ctx: &mut SymCtx, c: u32) -> bool {
        !self.eq_c(ctx, c)
    }

    /// Applies a total transition function `f: state → state` in one step
    /// — the data-parallel-FSM move (§7's related work, done symbolically).
    ///
    /// A bound value transitions directly. An unbound value partitions its
    /// constraint set by `f`'s image: one fork per *distinct target*, each
    /// branch binding to its target with the pre-image as constraint. This
    /// both replaces a chain of `eq_c`/`assign` branches and caps the fork
    /// count at the number of reachable targets.
    ///
    /// Returns the (now bound) value on the explored path.
    pub fn map_transition(&mut self, ctx: &mut SymCtx, f: impl Fn(u32) -> u32) -> u32 {
        if let Some(v) = self.bound {
            let t = f(v);
            debug_assert!(t < self.domain, "transition target {t} outside domain");
            self.bound = Some(t);
            return t;
        }
        // Partition the feasible set by target, preserving target order of
        // first appearance for deterministic exploration.
        let mut targets: Vec<(u32, BitSet256)> = Vec::new();
        for v in self.set.iter() {
            let t = f(v);
            debug_assert!(t < self.domain, "transition target {t} outside domain");
            match targets.iter_mut().find(|(tt, _)| *tt == t) {
                Some((_, pre)) => pre.insert(v),
                None => targets.push((t, BitSet256::singleton(v))),
            }
        }
        debug_assert!(
            !targets.is_empty(),
            "SymEnum transition with empty constraint"
        );
        ctx.note_op(OpKind::Guard, self.id, "map_transition", targets.len() > 1);
        let pick = if targets.len() == 1 {
            0
        } else {
            // The choice vector is mixed-radix; arity = distinct targets.
            ctx.choose(targets.len().min(u8::MAX as usize) as u8) as usize
        };
        let (t, pre) = targets[pick];
        self.set = pre;
        self.bound = Some(t);
        t
    }

    /// Tests membership of the value in an arbitrary subset of the domain,
    /// given as a bit mask over the low 64 values.
    ///
    /// A common pattern in state machines: `if op.in_mask(ctx, PUSH | MERGE)`.
    pub fn in_mask(&mut self, ctx: &mut SymCtx, mask: u64) -> bool {
        self.in_set(ctx, &BitSet256::from_mask64(mask))
    }

    /// Tests membership of the value in an arbitrary subset of the domain.
    pub fn in_set(&mut self, ctx: &mut SymCtx, members: &BitSet256) -> bool {
        if let Some(v) = self.bound {
            return members.contains(v);
        }
        let members = members.intersect(&BitSet256::full(self.domain));
        let then_set = self.set.intersect(&members);
        let else_set = self.set.difference(&members);
        match (then_set.is_empty(), else_set.is_empty()) {
            (false, true) => {
                ctx.note_op(OpKind::Guard, self.id, "in_set", false);
                true
            }
            (true, false) => {
                ctx.note_op(OpKind::Guard, self.id, "in_set", false);
                false
            }
            (false, false) => {
                ctx.note_op(OpKind::Guard, self.id, "in_set", true);
                if ctx.choose(2) == 0 {
                    self.set = then_set;
                    true
                } else {
                    self.set = else_set;
                    false
                }
            }
            (true, true) => {
                debug_assert!(false, "SymEnum branch with empty path constraint");
                false
            }
        }
    }
}

impl SymField for SymEnum {
    fn make_symbolic(&mut self, id: FieldId) {
        self.set = BitSet256::full(self.domain);
        self.bound = None;
        self.id = Some(id);
    }

    fn is_concrete(&self) -> bool {
        self.bound.is_some()
    }

    fn transfer_eq(&self, other: &dyn SymField) -> bool {
        downcast::<SymEnum>(other).is_some_and(|o| self.bound == o.bound)
    }

    fn constraint_eq(&self, other: &dyn SymField) -> bool {
        downcast::<SymEnum>(other).is_some_and(|o| self.set == o.set)
    }

    fn constraint_overlaps(&self, other: &dyn SymField) -> bool {
        downcast::<SymEnum>(other).is_some_and(|o| !self.set.intersect(&o.set).is_empty())
    }

    fn union_constraint(&mut self, other: &dyn SymField) -> bool {
        // Set union is always canonical (§4.1 "Merging Path Constraints").
        let Some(o) = downcast::<SymEnum>(other) else {
            return false;
        };
        self.set = self.set.union(&o.set);
        true
    }

    fn compose_onto(&mut self, prev: &dyn SymField, _prev_all: &[&dyn SymField]) -> Result<bool> {
        let prev = downcast::<SymEnum>(prev).ok_or(Error::Uda("field type mismatch".into()))?;
        debug_assert_eq!(
            self.domain, prev.domain,
            "composed enums must share a domain"
        );
        match prev.bound {
            Some(cp) => {
                // Earlier value is the constant `cp`.
                if !self.set.contains(cp) {
                    return Ok(false);
                }
                self.set = prev.set;
                self.bound = Some(self.bound.unwrap_or(cp));
            }
            None => {
                // Earlier value is the earlier chunk's own `x`.
                let merged = self.set.intersect(&prev.set);
                if merged.is_empty() {
                    return Ok(false);
                }
                self.set = merged;
            }
        }
        self.id = prev.id;
        Ok(true)
    }

    fn transfer(&self) -> Option<ScalarTransfer> {
        Some(match self.bound {
            Some(c) => ScalarTransfer::Const(i64::from(c)),
            None => ScalarTransfer::IDENTITY,
        })
    }

    fn encode_field(&self, buf: &mut Vec<u8>) {
        self.set.encode_for_domain(self.domain, buf);
        match self.bound {
            None => buf.push(0),
            Some(c) => {
                buf.push(1);
                wire::put_uvarint(buf, u64::from(c));
            }
        }
    }

    fn decode_field(&mut self, buf: &mut &[u8], id: FieldId) -> Result<(), WireError> {
        let set = BitSet256::decode_for_domain(self.domain, buf)?;
        let bound = match wire::get_bytes(buf, 1)?[0] {
            0 => None,
            1 => {
                let c = wire::get_uvarint(buf)?;
                let c = u32::try_from(c).map_err(|_| WireError::LengthOverflow(c))?;
                if c >= self.domain {
                    return Err(WireError::InvalidTag(c as u8));
                }
                Some(c)
            }
            t => return Err(WireError::InvalidTag(t)),
        };
        self.set = set;
        self.bound = bound;
        self.id = Some(id);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn facts(&self) -> FieldFacts {
        FieldFacts {
            kind: "enum",
            concrete: self.bound.is_some(),
            ..FieldFacts::default()
        }
    }

    fn perturb(&mut self) -> bool {
        match self.bound {
            Some(v) if self.domain > 1 => {
                self.bound = Some((v + 1) % self.domain);
                true
            }
            _ => false,
        }
    }

    fn describe(&self) -> String {
        let members: Vec<String> = self.set.iter().map(|v| v.to_string()).collect();
        let c = if self.set == BitSet256::full(self.domain) {
            "x∈*".to_string()
        } else {
            format!("x∈{{{}}}", members.join(","))
        };
        match self.bound {
            Some(v) => format!("{c} ⇒ {v}"),
            None => format!("{c} ⇒ x"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbolic(domain: u32) -> SymEnum {
        let mut e = SymEnum::new(domain, 0);
        e.make_symbolic(FieldId(0));
        e
    }

    #[test]
    fn bound_enum_is_as_fast_as_concrete() {
        // §4.1: "Once bound, SymEnums are as fast as a C++ enum but for the
        // bound check" — operationally: no forks, no constraint changes.
        let mut ctx = SymCtx::concrete();
        let mut e = SymEnum::new(4, 3);
        assert!(e.eq_c(&mut ctx, 3));
        assert!(e.ne_c(&mut ctx, 1));
        assert!(!ctx.has_error());
    }

    #[test]
    fn unbound_eq_forks_and_splits_set() {
        let mut ctx = SymCtx::symbolic();
        ctx.begin_run();
        let mut e = symbolic(4);
        assert!(e.eq_c(&mut ctx, 2));
        assert_eq!(e.constraint_set(), 0b0100);
        assert!(ctx.advance());
        ctx.begin_run();
        let mut e = symbolic(4);
        assert!(!e.eq_c(&mut ctx, 2));
        assert_eq!(e.constraint_set(), 0b1011);
        assert!(!ctx.advance());
    }

    #[test]
    fn forced_outcomes_consume_no_choice() {
        let mut ctx = SymCtx::symbolic();
        let mut e = symbolic(4);
        e.set = BitSet256::from_mask64(0b0100);
        assert!(e.eq_c(&mut ctx, 2));
        assert!(!e.eq_c(&mut ctx, 1));
        assert!(ctx.choice_vector().is_empty());
    }

    #[test]
    fn out_of_domain_compare_is_false() {
        let mut ctx = SymCtx::symbolic();
        let mut e = symbolic(4);
        assert!(!e.eq_c(&mut ctx, 7));
        assert!(ctx.choice_vector().is_empty());
    }

    #[test]
    fn out_of_domain_assign_errors() {
        let mut ctx = SymCtx::concrete();
        let mut e = SymEnum::new(4, 0);
        e.assign(&mut ctx, 9);
        assert_eq!(
            ctx.take_error(),
            Some(Error::EnumOutOfDomain {
                value: 9,
                domain: 4
            })
        );
    }

    #[test]
    fn in_mask_splits() {
        let mut ctx = SymCtx::symbolic();
        ctx.begin_run();
        let mut e = symbolic(6);
        assert!(e.in_mask(&mut ctx, 0b000110));
        assert_eq!(e.constraint_set(), 0b000110);
        assert!(ctx.advance());
        ctx.begin_run();
        let mut e = symbolic(6);
        assert!(!e.in_mask(&mut ctx, 0b000110));
        assert_eq!(e.constraint_set(), 0b111001);
    }

    #[test]
    fn assignment_binds() {
        let mut ctx = SymCtx::symbolic();
        let mut e = symbolic(4);
        assert!(e.eq_c(&mut ctx, 1)); // narrows to {1}
        e.assign(&mut ctx, 3);
        assert_eq!(e.concrete_value(), Some(3));
        assert_eq!(e.constraint_set(), 0b0010, "constraint survives binding");
        assert!(e.is_concrete());
    }

    #[test]
    fn union_always_merges() {
        let mut a = symbolic(8);
        a.set = BitSet256::from_mask64(0b0000_0011);
        let mut b = symbolic(8);
        b.set = BitSet256::from_mask64(0b1100_0000);
        assert!(!a.constraint_overlaps(&b));
        assert!(a.union_constraint(&b));
        assert_eq!(a.constraint_set(), 0b1100_0011);
    }

    #[test]
    fn compose_with_bound_previous() {
        let mut later = symbolic(4);
        later.set = BitSet256::from_mask64(0b0110); // y ∈ {1, 2}
        later.bound = Some(3); // ⇒ v = 3
        let mut ctx = SymCtx::concrete();
        let mut prev = SymEnum::new(4, 0);
        prev.assign(&mut ctx, 2);
        let prev_all: Vec<&dyn SymField> = vec![&prev];
        assert!(later.compose_onto(&prev, &prev_all).unwrap());
        assert_eq!(later.concrete_value(), Some(3));
        // Infeasible: earlier constant not in later's set.
        let mut later = symbolic(4);
        later.set = BitSet256::from_mask64(0b0110);
        let mut prev = SymEnum::new(4, 0);
        prev.assign(&mut ctx, 3);
        let prev_all: Vec<&dyn SymField> = vec![&prev];
        assert!(!later.compose_onto(&prev, &prev_all).unwrap());
    }

    #[test]
    fn compose_with_unbound_previous_intersects() {
        let mut later = symbolic(4);
        later.set = BitSet256::from_mask64(0b0110);
        let mut prev = symbolic(4);
        prev.set = BitSet256::from_mask64(0b1100);
        let prev_all: Vec<&dyn SymField> = vec![&prev];
        assert!(later.compose_onto(&prev, &prev_all).unwrap());
        assert_eq!(later.constraint_set(), 0b0100);
        assert_eq!(
            later.concrete_value(),
            None,
            "identity ∘ identity = identity"
        );
        // Unbound later value becomes the earlier constant after binding.
        let mut later = symbolic(4);
        let mut ctx = SymCtx::concrete();
        let mut prev = SymEnum::new(4, 0);
        prev.assign(&mut ctx, 1);
        let prev_all: Vec<&dyn SymField> = vec![&prev];
        assert!(later.compose_onto(&prev, &prev_all).unwrap());
        assert_eq!(later.concrete_value(), Some(1));
    }

    #[test]
    fn wire_roundtrip() {
        let mut e = symbolic(7);
        e.set = BitSet256::from_mask64(0b101_0011);
        e.bound = Some(5);
        let mut buf = Vec::new();
        e.encode_field(&mut buf);
        let mut back = SymEnum::new(7, 0);
        let mut rd = &buf[..];
        back.decode_field(&mut rd, FieldId(0)).unwrap();
        assert!(rd.is_empty());
        assert_eq!(back, e);
    }

    #[test]
    fn wire_rejects_bad_payloads() {
        let e = SymEnum::new(4, 0);
        // Out-of-domain bound.
        let mut buf = Vec::new();
        wire::put_uvarint(&mut buf, 0b1111);
        buf.push(1);
        wire::put_uvarint(&mut buf, 9);
        let mut back = e;
        assert!(back.decode_field(&mut &buf[..], FieldId(0)).is_err());
        // Set with bits outside the domain.
        let mut buf = Vec::new();
        wire::put_uvarint(&mut buf, 0b1_0000);
        buf.push(0);
        let mut back = e;
        assert!(back.decode_field(&mut &buf[..], FieldId(0)).is_err());
    }

    #[test]
    fn describe_is_readable() {
        let mut e = symbolic(4);
        assert_eq!(e.describe(), "x∈* ⇒ x");
        e.set = BitSet256::from_mask64(0b0101);
        e.bound = Some(2);
        assert_eq!(e.describe(), "x∈{0,2} ⇒ 2");
    }

    #[test]
    fn large_domain_fsm_through_engine() {
        use crate::compose::apply_chain;
        use crate::engine::{EngineConfig, SymbolicExecutor};
        use crate::impl_sym_state;
        use crate::uda::Uda;

        // A 200-state ring counter: advance on each event, reset on zero.
        const N: u32 = 200;
        struct Ring;
        #[derive(Clone, Debug)]
        struct RState {
            s: SymEnum,
        }
        impl_sym_state!(RState { s });
        impl Uda for Ring {
            type State = RState;
            type Event = u32;
            type Output = u32;
            fn init(&self) -> RState {
                RState {
                    s: SymEnum::new(N, 0),
                }
            }
            fn update(&self, st: &mut RState, ctx: &mut SymCtx, e: &u32) {
                if *e == 0 {
                    st.s.assign(ctx, 0);
                } else {
                    // Advance: the transition target depends only on the
                    // event, so a single in_set keeps this one-fork.
                    let next = (*e) % N;
                    st.s.assign(ctx, next);
                }
            }
            fn result(&self, st: &RState, _ctx: &mut SymCtx) -> u32 {
                st.s.concrete_value().unwrap()
            }
        }
        let events: Vec<u32> = (0..50u32).map(|i| (i * 97 + 3) % 250).collect();
        let mut exec = SymbolicExecutor::new(&Ring, EngineConfig::default());
        exec.feed_all(events.iter()).unwrap();
        let (chain, _) = exec.finish();
        // Apply to every possible initial state: the first event binds, so
        // the outcome is initial-independent here — but decode/compose must
        // handle the 4-word constraint sets.
        for init_val in [0u32, 63, 64, 128, 199] {
            let mut init = Ring.init();
            let mut ctx = SymCtx::concrete();
            init.s.assign(&mut ctx, init_val);
            let fin = apply_chain(&chain, &init).unwrap();
            assert_eq!(fin.s.concrete_value(), Some(events[49] % N));
        }
        // Wire round-trip of a >64-state constraint.
        let mut e = SymEnum::new(N, 0);
        e.make_symbolic(FieldId(0));
        let mut ctx = SymCtx::symbolic();
        // First exploration takes the equality side: constraint = {150}.
        assert!(!e.ne_c(&mut ctx, 150));
        let mut buf = Vec::new();
        e.encode_field(&mut buf);
        let mut back = SymEnum::new(N, 0);
        back.decode_field(&mut &buf[..], FieldId(0)).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.constraint_bits().len(), 1);
    }

    #[test]
    fn in_set_large_domain() {
        let mut ctx = SymCtx::symbolic();
        let mut e = SymEnum::new(200, 0);
        e.make_symbolic(FieldId(0));
        let mut members = BitSet256::EMPTY;
        members.insert(10);
        members.insert(150);
        ctx.begin_run();
        assert!(e.in_set(&mut ctx, &members));
        assert_eq!(e.constraint_bits().len(), 2);
        ctx.advance();
        ctx.begin_run();
        let mut e = SymEnum::new(200, 0);
        e.make_symbolic(FieldId(0));
        assert!(!e.in_set(&mut ctx, &members));
        assert_eq!(e.constraint_bits().len(), 198);
    }

    #[test]
    fn map_transition_bound_is_direct() {
        let mut ctx = SymCtx::concrete();
        let mut e = SymEnum::new(6, 2);
        let t = e.map_transition(&mut ctx, |v| (v + 1).min(5));
        assert_eq!(t, 3);
        assert_eq!(e.concrete_value(), Some(3));
        assert!(!ctx.has_error());
    }

    #[test]
    fn map_transition_partitions_unbound() {
        // Saturating increment over domain 6: targets {1..5}; value 4 and 5
        // share target 5 → 5 distinct targets, preimage of 5 is {4, 5}.
        let mut ctx = SymCtx::symbolic();
        let mut seen = Vec::new();
        loop {
            ctx.begin_run();
            let mut e = symbolic(6);
            let t = e.map_transition(&mut ctx, |v| (v + 1).min(5));
            seen.push((t, e.constraint_bits().iter().collect::<Vec<_>>()));
            if !ctx.advance() {
                break;
            }
        }
        assert_eq!(
            seen,
            vec![
                (1, vec![0]),
                (2, vec![1]),
                (3, vec![2]),
                (4, vec![3]),
                (5, vec![4, 5]),
            ]
        );
    }

    #[test]
    fn map_transition_constant_function_never_forks() {
        let mut ctx = SymCtx::symbolic();
        let mut e = symbolic(16);
        let t = e.map_transition(&mut ctx, |_| 7);
        assert_eq!(t, 7);
        assert!(ctx.choice_vector().is_empty());
        assert_eq!(e.concrete_value(), Some(7));
    }

    #[test]
    fn map_transition_oracle() {
        use crate::compose::apply_chain;
        use crate::engine::{EngineConfig, SymbolicExecutor};
        use crate::impl_sym_state;
        use crate::uda::Uda;

        // A saturating counter FSM driven by map_transition; oracle-check
        // against concrete execution from every initial state.
        const N: u32 = 9;
        struct Fsm;
        #[derive(Clone, Debug)]
        struct FState {
            s: SymEnum,
        }
        impl_sym_state!(FState { s });
        impl Uda for Fsm {
            type State = FState;
            type Event = bool;
            type Output = u32;
            fn init(&self) -> FState {
                FState {
                    s: SymEnum::new(N, 0),
                }
            }
            fn update(&self, st: &mut FState, ctx: &mut SymCtx, up: &bool) {
                if *up {
                    st.s.map_transition(ctx, |v| (v + 1).min(N - 1));
                } else {
                    st.s.map_transition(ctx, |v| v.saturating_sub(1));
                }
            }
            fn result(&self, st: &FState, _ctx: &mut SymCtx) -> u32 {
                st.s.concrete_value().unwrap()
            }
        }
        let events = [true, true, false, true, true, true, false, false, true];
        let cfg = EngineConfig {
            max_total_paths: 64,
            ..EngineConfig::default()
        };
        let mut exec = SymbolicExecutor::new(&Fsm, cfg);
        exec.feed_all(events.iter()).unwrap();
        let (chain, _) = exec.finish();
        for x in 0..N {
            let mut init = Fsm.init();
            let mut ctx = SymCtx::concrete();
            init.s.assign(&mut ctx, x);
            let mut truth = init.clone();
            for e in &events {
                Fsm.update(&mut truth, &mut ctx, e);
            }
            let predicted = apply_chain(&chain, &init).unwrap();
            assert_eq!(
                predicted.s.concrete_value(),
                truth.s.concrete_value(),
                "x={x}"
            );
        }
    }

    #[test]
    fn domain_64_masks() {
        let e = symbolic(64);
        assert_eq!(e.constraint_set(), u64::MAX);
    }
}
