//! Symbolic integers with interval constraints and affine transfer
//! functions (§4.3 of the paper).
//!
//! A `SymInt` behaves like an `i64` but may hold a *symbolic* value: an
//! affine function `a·x + b` of the unknown initial value `x` that flowed in
//! from the previous chunk, valid under the canonical path constraint
//! `lb ≤ x ≤ ub`.
//!
//! The type deliberately supports only operations between a `SymInt` and a
//! concrete integer — addition, subtraction, multiplication, and the six
//! comparisons. Two `SymInt`s can never be combined or compared: this keeps
//! every constraint single-variable, so branch feasibility is a constant-time
//! interval check instead of an integer-linear-programming call (§4.3).
//! Division is likewise not provided (it is not affine).

use std::ops::{AddAssign, MulAssign, SubAssign};

use crate::ctx::{OpKind, SymCtx};
use crate::error::{Error, Result};
use crate::interval::Interval;
use crate::state::FieldFacts;
use crate::state::{downcast, FieldId, SymField};
use crate::types::scalar::{mul_add_checked, ScalarTransfer, SymScalar};
use crate::wire::{self, WireError};

/// A symbolic 64-bit integer.
///
/// Canonical form `(lb, ub, a, b)`: under the path constraint
/// `lb ≤ x ≤ ub`, the current value is `a·x + b` (§4.3). A concrete value
/// is simply the case `a = 0`.
///
/// # Examples
///
/// ```
/// use symple_core::{SymCtx, SymInt};
/// use symple_core::state::{FieldId, SymField};
///
/// let mut count = SymInt::new(0);
/// count += 1;
/// assert_eq!(count.concrete_value(), Some(1));
///
/// // A symbolic count forks on comparison: both outcomes are feasible, so
/// // the first exploration takes the `true` side and narrows the interval.
/// let mut count = SymInt::new(0);
/// count.make_symbolic(FieldId(0));
/// count += 5; // value is x + 5
/// let mut ctx = SymCtx::symbolic();
/// let taken = count.gt(&mut ctx, 10); // splits at x = 5
/// assert!(taken);
/// assert_eq!(count.constraint().lb, 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymInt {
    constraint: Interval,
    a: i64,
    b: i64,
    /// Bit width of the modeled integer (§4.3: "parametrized with the
    /// desired bit length"); values must stay in `[-2^(w-1), 2^(w-1)-1]`.
    width: u8,
    id: Option<FieldId>,
}

impl SymInt {
    /// Creates a concrete 64-bit `SymInt` holding `v`.
    pub fn new(v: i64) -> SymInt {
        SymInt {
            constraint: Interval::FULL,
            a: 0,
            b: v,
            width: 64,
            id: None,
        }
    }

    /// Creates a concrete `SymInt` of the given bit width (§4.3).
    ///
    /// Arithmetic that would leave `[-2^(w-1), 2^(w-1)-1]` for *any*
    /// feasible input reports [`Error::ArithmeticOverflow`], matching the
    /// narrower C++ integer the paper's UDAs would have used. A symbolic
    /// value of width `w` also starts constrained to the width's range.
    ///
    /// # Panics
    ///
    /// Panics unless `8 ≤ width ≤ 64` — a construction-time bug.
    pub fn with_width(width: u8, v: i64) -> SymInt {
        assert!((8..=64).contains(&width), "SymInt width must be in 8..=64");
        let s = SymInt {
            constraint: Interval::FULL,
            a: 0,
            b: v,
            width,
            id: None,
        };
        assert!(
            s.width_range().contains(v),
            "initial value {v} does not fit an i{width}"
        );
        s
    }

    /// The inclusive value range of this width.
    fn width_range(&self) -> Interval {
        if self.width >= 64 {
            Interval::FULL
        } else {
            let half = 1i64 << (self.width - 1);
            Interval::new(-half, half - 1)
        }
    }

    /// The bit width.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The extreme values `a·x + b` takes over the current constraint.
    fn value_bounds(&self) -> (i128, i128) {
        let lo = self.a as i128 * self.constraint.lb as i128 + self.b as i128;
        let hi = self.a as i128 * self.constraint.ub as i128 + self.b as i128;
        (lo.min(hi), lo.max(hi))
    }

    /// Enforces the width invariant after an arithmetic op.
    ///
    /// Narrow widths (< 64) refuse conservatively: if *any* feasible value
    /// of `a·x + b` leaves the declared range, the chunk fails with
    /// [`Error::ArithmeticOverflow`].
    ///
    /// Width 64 is the machine width, so the same conservative rule would
    /// refuse every unguarded accumulation (the unknown `x` spans all of
    /// `i64`). Instead the path constraint is *refined* to the entry
    /// values for which `a·x + b` stays in `i64` — entry values that would
    /// trap are then covered by no path, and summary application reports
    /// them as an incomplete summary rather than silently returning a
    /// value sequential execution never produces. (Found by the fuzzer:
    /// an `x + huge` whose result was later overwritten yielded a wrong
    /// `Ok` where the sequential run trapped mid-record.) If no feasible
    /// entry value survives, the op fails outright.
    fn check_width(&mut self, ctx: &mut SymCtx, op: &'static str) {
        let (lo, hi) = self.value_bounds();
        if self.width >= 64 {
            if self.a == 0 {
                // Concrete: the checked op itself already trapped.
                return;
            }
            if lo >= i64::MIN as i128 && hi <= i64::MAX as i128 {
                return;
            }
            let safe = Interval::FULL.preimage_affine(self.a, self.b);
            let refined = self.constraint.intersect(&safe);
            if refined.is_empty() {
                ctx.fail(Error::ArithmeticOverflow { op });
            } else {
                self.constraint = refined;
            }
            return;
        }
        let r = self.width_range();
        if lo < r.lb as i128 || hi > r.ub as i128 {
            ctx.fail(Error::ArithmeticOverflow { op });
        }
    }

    /// The current path constraint on this field's initial value `x`.
    pub fn constraint(&self) -> Interval {
        self.constraint
    }

    /// The `(a, b)` coefficients of the transfer function `a·x + b`.
    pub fn coeffs(&self) -> (i64, i64) {
        (self.a, self.b)
    }

    /// The field id, set once the value has been made symbolic.
    pub fn field_id(&self) -> Option<FieldId> {
        self.id
    }

    /// The concrete value, if the transfer function is constant.
    pub fn concrete_value(&self) -> Option<i64> {
        (self.a == 0).then_some(self.b)
    }

    /// Overwrites the value with a concrete constant (binds the variable).
    ///
    /// The path constraint is untouched: it records how execution got here.
    pub fn assign(&mut self, v: i64) {
        self.a = 0;
        self.b = v;
    }

    /// The current value as a [`SymScalar`], e.g. for vector appends.
    ///
    /// # Panics
    ///
    /// Panics if the value is symbolic but was never assigned a field id —
    /// symbolic `SymInt`s exist only inside engine-managed state, so this
    /// indicates an engine-usage bug.
    pub fn as_scalar(&self) -> SymScalar {
        if self.a == 0 {
            SymScalar::Concrete(self.b)
        } else {
            let field = self
                .id
                .expect("symbolic SymInt outside engine-managed state");
            SymScalar::Affine {
                field,
                a: self.a,
                b: self.b,
            }
        }
    }

    /// Checked addition of a constant; sets `ctx` error on overflow
    /// (of `i64`, or of the declared bit width).
    pub fn add(&mut self, ctx: &mut SymCtx, k: i64) {
        ctx.note_op(OpKind::Arith, self.id, "add", false);
        match self.b.checked_add(k) {
            Some(b) => self.b = b,
            None => ctx.fail(Error::ArithmeticOverflow { op: "add" }),
        }
        self.check_width(ctx, "add");
    }

    /// Checked subtraction of a constant; sets `ctx` error on overflow.
    pub fn sub(&mut self, ctx: &mut SymCtx, k: i64) {
        ctx.note_op(OpKind::Arith, self.id, "sub", false);
        match self.b.checked_sub(k) {
            Some(b) => self.b = b,
            None => ctx.fail(Error::ArithmeticOverflow { op: "sub" }),
        }
        self.check_width(ctx, "sub");
    }

    /// Checked multiplication by a constant; sets `ctx` error on overflow.
    pub fn mul(&mut self, ctx: &mut SymCtx, k: i64) {
        ctx.note_op(OpKind::Arith, self.id, "mul", false);
        match (self.a.checked_mul(k), self.b.checked_mul(k)) {
            (Some(a), Some(b)) => {
                self.a = a;
                self.b = b;
            }
            _ => ctx.fail(Error::ArithmeticOverflow { op: "mul" }),
        }
        self.check_width(ctx, "mul");
    }

    /// Replaces the value with `k − value` (e.g. a time difference against
    /// a concrete record timestamp); sets `ctx` error on overflow.
    pub fn rsub(&mut self, ctx: &mut SymCtx, k: i64) {
        ctx.note_op(OpKind::Arith, self.id, "rsub", false);
        match (self.a.checked_neg(), k.checked_sub(self.b)) {
            (Some(a), Some(b)) => {
                self.a = a;
                self.b = b;
            }
            _ => ctx.fail(Error::ArithmeticOverflow { op: "rsub" }),
        }
        self.check_width(ctx, "rsub");
    }

    /// `value < c`, forking if both outcomes are feasible.
    pub fn lt(&mut self, ctx: &mut SymCtx, c: i64) -> bool {
        if self.a == 0 {
            return self.b < c;
        }
        let (t, e) = self.constraint.split_lt(self.a, self.b, c);
        self.binary_branch(ctx, t, e, "lt")
    }

    /// `value ≤ c`, forking if both outcomes are feasible.
    pub fn le(&mut self, ctx: &mut SymCtx, c: i64) -> bool {
        if self.a == 0 {
            return self.b <= c;
        }
        let (t, e) = self.constraint.split_le(self.a, self.b, c);
        self.binary_branch(ctx, t, e, "le")
    }

    /// `value > c`, forking if both outcomes are feasible.
    pub fn gt(&mut self, ctx: &mut SymCtx, c: i64) -> bool {
        if self.a == 0 {
            return self.b > c;
        }
        let (le_side, gt_side) = self.constraint.split_le(self.a, self.b, c);
        self.binary_branch(ctx, gt_side, le_side, "gt")
    }

    /// `value ≥ c`, forking if both outcomes are feasible.
    pub fn ge(&mut self, ctx: &mut SymCtx, c: i64) -> bool {
        if self.a == 0 {
            return self.b >= c;
        }
        let (lt_side, ge_side) = self.constraint.split_lt(self.a, self.b, c);
        self.binary_branch(ctx, ge_side, lt_side, "ge")
    }

    /// `value == c`.
    ///
    /// The "not equal" region of an interval is not itself an interval, so
    /// this may fork **three** ways (`x < x₀`, `x = x₀`, `x > x₀`) — the
    /// reason the choice vector is mixed-radix rather than binary.
    pub fn eq_c(&mut self, ctx: &mut SymCtx, c: i64) -> bool {
        if self.a == 0 {
            return self.b == c;
        }
        let (eq, below, above) = self.constraint.split_eq(self.a, self.b, c);
        // Outcome order: the `true` side first, then the residuals.
        self.multi_branch(ctx, &[(eq, true), (below, false), (above, false)], "eq")
    }

    /// `value != c`; the complement of [`SymInt::eq_c`] with the same
    /// three-way split.
    pub fn ne_c(&mut self, ctx: &mut SymCtx, c: i64) -> bool {
        if self.a == 0 {
            return self.b != c;
        }
        let (eq, below, above) = self.constraint.split_eq(self.a, self.b, c);
        self.multi_branch(ctx, &[(below, true), (above, true), (eq, false)], "ne")
    }

    /// Resolves a binary branch: narrows the constraint to the chosen
    /// side's sub-interval and returns the branch outcome.
    fn binary_branch(
        &mut self,
        ctx: &mut SymCtx,
        true_side: Interval,
        false_side: Interval,
        op: &'static str,
    ) -> bool {
        match (true_side.is_empty(), false_side.is_empty()) {
            (false, true) => {
                ctx.note_op(OpKind::Guard, self.id, op, false);
                true
            }
            (true, false) => {
                ctx.note_op(OpKind::Guard, self.id, op, false);
                false
            }
            (false, false) => {
                ctx.note_op(OpKind::Guard, self.id, op, true);
                if ctx.choose(2) == 0 {
                    self.constraint = true_side;
                    true
                } else {
                    self.constraint = false_side;
                    false
                }
            }
            (true, true) => {
                // Both sides empty means the incoming constraint was empty —
                // a violated engine invariant.
                debug_assert!(false, "SymInt branch with empty path constraint");
                false
            }
        }
    }

    /// Resolves a branch with up to three feasible outcomes.
    fn multi_branch(
        &mut self,
        ctx: &mut SymCtx,
        outcomes: &[(Interval, bool)],
        op: &'static str,
    ) -> bool {
        let feasible: Vec<&(Interval, bool)> =
            outcomes.iter().filter(|(i, _)| !i.is_empty()).collect();
        match feasible.len() {
            0 => {
                debug_assert!(false, "SymInt branch with empty path constraint");
                false
            }
            1 => {
                ctx.note_op(OpKind::Guard, self.id, op, false);
                let (iv, out) = *feasible[0];
                self.constraint = iv;
                out
            }
            n => {
                ctx.note_op(OpKind::Guard, self.id, op, true);
                let pick = ctx.choose(n as u8) as usize;
                let (iv, out) = *feasible[pick];
                self.constraint = iv;
                out
            }
        }
    }
}

impl AddAssign<i64> for SymInt {
    /// Adds a constant.
    ///
    /// # Panics
    ///
    /// Panics on `i64` overflow of the transfer offset; use
    /// [`SymInt::add`] for the fallible form.
    fn add_assign(&mut self, k: i64) {
        self.b = self.b.checked_add(k).expect("SymInt += overflow");
    }
}

impl SubAssign<i64> for SymInt {
    /// Subtracts a constant.
    ///
    /// # Panics
    ///
    /// Panics on `i64` overflow; use [`SymInt::sub`] for the fallible form.
    fn sub_assign(&mut self, k: i64) {
        self.b = self.b.checked_sub(k).expect("SymInt -= overflow");
    }
}

impl MulAssign<i64> for SymInt {
    /// Multiplies by a constant.
    ///
    /// # Panics
    ///
    /// Panics on `i64` overflow; use [`SymInt::mul`] for the fallible form.
    fn mul_assign(&mut self, k: i64) {
        self.a = self.a.checked_mul(k).expect("SymInt *= overflow");
        self.b = self.b.checked_mul(k).expect("SymInt *= overflow");
    }
}

impl From<i64> for SymInt {
    fn from(v: i64) -> SymInt {
        SymInt::new(v)
    }
}

impl SymField for SymInt {
    fn make_symbolic(&mut self, id: FieldId) {
        // The unknown input of a width-w integer is itself width-w.
        self.constraint = self.width_range();
        self.a = 1;
        self.b = 0;
        self.id = Some(id);
    }

    fn is_concrete(&self) -> bool {
        self.a == 0
    }

    fn transfer_eq(&self, other: &dyn SymField) -> bool {
        downcast::<SymInt>(other).is_some_and(|o| self.a == o.a && self.b == o.b)
    }

    fn constraint_eq(&self, other: &dyn SymField) -> bool {
        downcast::<SymInt>(other).is_some_and(|o| self.constraint == o.constraint)
    }

    fn constraint_overlaps(&self, other: &dyn SymField) -> bool {
        downcast::<SymInt>(other)
            .is_some_and(|o| !self.constraint.intersect(&o.constraint).is_empty())
    }

    fn union_constraint(&mut self, other: &dyn SymField) -> bool {
        let Some(o) = downcast::<SymInt>(other) else {
            return false;
        };
        match self.constraint.union_if_contiguous(&o.constraint) {
            Some(u) => {
                self.constraint = u;
                true
            }
            None => false,
        }
    }

    fn compose_onto(&mut self, prev: &dyn SymField, _prev_all: &[&dyn SymField]) -> Result<bool> {
        let prev = downcast::<SymInt>(prev).ok_or(Error::Uda("field type mismatch".into()))?;
        debug_assert_eq!(
            self.width, prev.width,
            "composed SymInts must share a width"
        );
        if prev.a == 0 {
            // Earlier value is the constant `prev.b`: the later path is
            // feasible iff that constant satisfies our constraint on `y`.
            if !self.constraint.contains(prev.b) {
                return Ok(false);
            }
            let b = mul_add_checked(self.a, prev.b, self.b)?;
            self.constraint = prev.constraint;
            self.a = 0;
            self.b = b;
        } else {
            // Pull our constraint on `y = p·x + q` back to a constraint on
            // `x` and intersect with the earlier path's constraint.
            let pullback = self.constraint.preimage_affine(prev.a, prev.b);
            let merged = pullback.intersect(&prev.constraint);
            if merged.is_empty() {
                return Ok(false);
            }
            let a = self
                .a
                .checked_mul(prev.a)
                .ok_or(Error::ArithmeticOverflow { op: "compose" })?;
            let b = mul_add_checked(self.a, prev.b, self.b)?;
            self.constraint = merged;
            self.a = a;
            self.b = b;
        }
        self.id = prev.id;
        Ok(true)
    }

    fn transfer(&self) -> Option<ScalarTransfer> {
        Some(ScalarTransfer::from_coeffs(self.a, self.b))
    }

    fn encode_field(&self, buf: &mut Vec<u8>) {
        wire::put_ivarint(buf, self.constraint.lb);
        wire::put_ivarint(buf, self.constraint.ub);
        wire::put_ivarint(buf, self.a);
        wire::put_ivarint(buf, self.b);
    }

    fn decode_field(&mut self, buf: &mut &[u8], id: FieldId) -> Result<(), WireError> {
        let lb = wire::get_ivarint(buf)?;
        let ub = wire::get_ivarint(buf)?;
        self.a = wire::get_ivarint(buf)?;
        self.b = wire::get_ivarint(buf)?;
        self.constraint = Interval::new(lb, ub);
        self.id = Some(id);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn facts(&self) -> FieldFacts {
        FieldFacts {
            kind: "int",
            concrete: self.a == 0,
            affine: Some((self.a, self.b)),
            width: Some(self.width),
            ..FieldFacts::default()
        }
    }

    fn perturb(&mut self) -> bool {
        // Nudge the offset without leaving the declared width.
        if self.width >= 64 {
            self.b = self.b.wrapping_add(1);
        } else if self.b < self.width_range().ub {
            self.b += 1;
        } else {
            self.b -= 1;
        }
        true
    }

    fn describe(&self) -> String {
        let c = if self.constraint.is_full() {
            "x∈(-∞,+∞)".to_string()
        } else if self.constraint.lb == i64::MIN {
            format!("x≤{}", self.constraint.ub)
        } else if self.constraint.ub == i64::MAX {
            format!("x≥{}", self.constraint.lb)
        } else {
            format!("x∈[{},{}]", self.constraint.lb, self.constraint.ub)
        };
        match (self.a, self.b) {
            (0, b) => format!("{c} ⇒ {b}"),
            (1, 0) => format!("{c} ⇒ x"),
            (1, b) if b > 0 => format!("{c} ⇒ x+{b}"),
            (1, b) => format!("{c} ⇒ x{b}"),
            (a, 0) => format!("{c} ⇒ {a}x"),
            (a, b) if b > 0 => format!("{c} ⇒ {a}x+{b}"),
            (a, b) => format!("{c} ⇒ {a}x{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_sym_state;

    fn symbolic() -> SymInt {
        let mut s = SymInt::new(0);
        s.make_symbolic(FieldId(0));
        s
    }

    #[test]
    fn concrete_comparisons_never_fork() {
        let mut ctx = SymCtx::concrete();
        let mut v = SymInt::new(5);
        assert!(v.lt(&mut ctx, 6));
        assert!(!v.lt(&mut ctx, 5));
        assert!(v.le(&mut ctx, 5));
        assert!(v.gt(&mut ctx, 4));
        assert!(v.ge(&mut ctx, 5));
        assert!(v.eq_c(&mut ctx, 5));
        assert!(v.ne_c(&mut ctx, 4));
        assert!(!ctx.has_error(), "no fork may happen on concrete values");
    }

    #[test]
    fn arithmetic_updates_transfer() {
        let mut v = symbolic();
        v += 3;
        v -= 1;
        v *= 2;
        // (x + 2) · 2 = 2x + 4.
        assert_eq!(v.coeffs(), (2, 4));
        let mut ctx = SymCtx::symbolic();
        v.rsub(&mut ctx, 10); // 10 − (2x + 4) = −2x + 6.
        assert_eq!(v.coeffs(), (-2, 6));
        assert!(!ctx.has_error());
    }

    #[test]
    fn fallible_arithmetic_latches_overflow() {
        let mut ctx = SymCtx::symbolic();
        let mut v = SymInt::new(i64::MAX);
        v.add(&mut ctx, 1);
        assert_eq!(
            ctx.take_error(),
            Some(Error::ArithmeticOverflow { op: "add" })
        );
        let mut v = symbolic();
        v.mul(&mut ctx, 2);
        v.mul(&mut ctx, i64::MAX);
        assert!(ctx.has_error());
    }

    #[test]
    fn symbolic_lt_forks_and_narrows() {
        // The paper's Figure 3 first iteration: max (= x) < 5.
        let mut ctx = SymCtx::symbolic();
        ctx.begin_run();
        let mut v = symbolic();
        let out = v.lt(&mut ctx, 5);
        assert!(out, "first exploration takes the true side");
        assert_eq!(v.constraint(), Interval::new(i64::MIN, 4));
        assert!(ctx.advance());
        ctx.begin_run();
        let mut v = symbolic();
        let out = v.lt(&mut ctx, 5);
        assert!(!out);
        assert_eq!(v.constraint(), Interval::new(5, i64::MAX));
        assert!(!ctx.advance());
    }

    #[test]
    fn forced_branch_consumes_no_choice() {
        // Figure 3, second iteration on the x ≥ 5 path: x < 3 is infeasible.
        let mut ctx = SymCtx::symbolic();
        let mut v = symbolic();
        v.constraint = Interval::new(5, i64::MAX);
        assert!(!v.lt(&mut ctx, 3));
        assert!(ctx.choice_vector().is_empty());
        assert_eq!(v.constraint(), Interval::new(5, i64::MAX));
    }

    #[test]
    fn eq_three_way_fork() {
        let mut ctx = SymCtx::symbolic();
        let mut outcomes = Vec::new();
        loop {
            ctx.begin_run();
            let mut v = symbolic();
            v.constraint = Interval::new(0, 10);
            let out = v.eq_c(&mut ctx, 5);
            outcomes.push((out, v.constraint()));
            if !ctx.advance() {
                break;
            }
        }
        assert_eq!(
            outcomes,
            vec![
                (true, Interval::point(5)),
                (false, Interval::new(0, 4)),
                (false, Interval::new(6, 10)),
            ]
        );
    }

    #[test]
    fn eq_no_integer_solution_is_deterministic() {
        let mut ctx = SymCtx::symbolic();
        let mut v = symbolic();
        v *= 2; // value = 2x
        assert!(!v.eq_c(&mut ctx, 7));
        assert!(ctx.choice_vector().is_empty());
    }

    #[test]
    fn ne_three_way_fork_covers_domain() {
        let mut ctx = SymCtx::symbolic();
        let mut seen = Vec::new();
        loop {
            ctx.begin_run();
            let mut v = symbolic();
            v.constraint = Interval::new(0, 10);
            let out = v.ne_c(&mut ctx, 0); // boundary: below side is empty
            seen.push((out, v.constraint()));
            if !ctx.advance() {
                break;
            }
        }
        assert_eq!(
            seen,
            vec![(true, Interval::new(1, 10)), (false, Interval::point(0))]
        );
    }

    #[test]
    fn compose_concrete_previous() {
        // Later path: y ≥ 5 ⇒ value = y + 1. Earlier: constant 9.
        let mut later = symbolic();
        later.constraint = Interval::new(5, i64::MAX);
        later += 1;
        let prev = SymInt::new(9);
        let prev_all: Vec<&dyn SymField> = vec![&prev];
        assert!(later.compose_onto(&prev, &prev_all).unwrap());
        assert_eq!(later.concrete_value(), Some(10));
        // Infeasible case: y ≥ 5 but earlier value is 3.
        let mut later = symbolic();
        later.constraint = Interval::new(5, i64::MAX);
        let prev = SymInt::new(3);
        let prev_all: Vec<&dyn SymField> = vec![&prev];
        assert!(!later.compose_onto(&prev, &prev_all).unwrap());
    }

    #[test]
    fn compose_symbolic_previous() {
        // Later: y ≤ 10 ⇒ value = 10 (Figure 3's merged summary).
        // Earlier: x ≤ 4 ⇒ value = 2x + 1.
        let mut later = symbolic();
        later.constraint = Interval::new(i64::MIN, 10);
        later.assign(10);
        let mut prev = symbolic();
        prev.constraint = Interval::new(i64::MIN, 4);
        prev *= 2;
        prev += 1;
        let prev_all: Vec<&dyn SymField> = vec![&prev];
        assert!(later.compose_onto(&prev, &prev_all).unwrap());
        // 2x + 1 ≤ 10 ⇔ x ≤ 4 (floor). The lower bound is the *exact*
        // preimage of y ≥ i64::MIN under 2x + 1, i.e. x ≥ −2⁶²: inputs
        // below it would have overflowed in the earlier chunk's own
        // arithmetic, so they are correctly excluded.
        assert_eq!(later.constraint(), Interval::new(-(1i64 << 62), 4));
        assert_eq!(later.concrete_value(), Some(10));
        assert_eq!(later.field_id(), Some(FieldId(0)));
    }

    #[test]
    fn merge_contiguous_constraints() {
        // Figure 3 third iteration: x < 5 ⇒ 10 and 5 ≤ x ≤ 10 ⇒ 10 merge
        // into x ≤ 10 ⇒ 10.
        let mut a = symbolic();
        a.constraint = Interval::new(i64::MIN, 4);
        a.assign(10);
        let mut b = symbolic();
        b.constraint = Interval::new(5, 10);
        b.assign(10);
        assert!(a.transfer_eq(&b));
        assert!(!a.constraint_eq(&b));
        assert!(!a.constraint_overlaps(&b));
        assert!(a.union_constraint(&b));
        assert_eq!(a.constraint(), Interval::new(i64::MIN, 10));
        // Gap prevents merging.
        let mut c = symbolic();
        c.constraint = Interval::new(13, 20);
        c.assign(10);
        assert!(!a.union_constraint(&c));
    }

    #[test]
    fn wire_roundtrip() {
        let mut v = symbolic();
        v.constraint = Interval::new(-3, 88);
        v *= -2;
        v += 7;
        let mut buf = Vec::new();
        v.encode_field(&mut buf);
        let mut back = SymInt::new(0);
        let mut rd = &buf[..];
        back.decode_field(&mut rd, FieldId(0)).unwrap();
        assert!(rd.is_empty());
        assert_eq!(back, v);
    }

    #[test]
    fn describe_is_readable() {
        let mut v = symbolic();
        assert_eq!(v.describe(), "x∈(-∞,+∞) ⇒ x");
        v.constraint = Interval::new(i64::MIN, 9);
        v.assign(10);
        assert_eq!(v.describe(), "x≤9 ⇒ 10");
        let mut v = symbolic();
        v.constraint = Interval::new(10, i64::MAX);
        assert_eq!(v.describe(), "x≥10 ⇒ x");
    }

    #[test]
    fn width_bounds_symbolic_input() {
        let mut v = SymInt::with_width(8, 0);
        v.make_symbolic(FieldId(0));
        assert_eq!(v.constraint(), Interval::new(-128, 127));
        assert_eq!(v.width(), 8);
    }

    #[test]
    fn width_overflow_detected() {
        // Concrete: 120 + 10 leaves i8.
        let mut ctx = SymCtx::symbolic();
        let mut v = SymInt::with_width(8, 120);
        v.add(&mut ctx, 10);
        assert!(matches!(
            ctx.take_error(),
            Some(Error::ArithmeticOverflow { op: "add" })
        ));
        // Symbolic: x ∈ [-128,127], x·2 can leave i8 for some x.
        let mut v = SymInt::with_width(8, 0);
        v.make_symbolic(FieldId(0));
        v.mul(&mut ctx, 2);
        assert!(ctx.take_error().is_some());
        // But after narrowing to a safe range, the same op is fine.
        let mut v = SymInt::with_width(8, 0);
        v.make_symbolic(FieldId(0));
        assert!(v.lt(&mut ctx, 60));
        assert!(v.ge(&mut ctx, -60));
        v.mul(&mut ctx, 2);
        assert!(ctx.take_error().is_none());
    }

    #[test]
    fn width_64_keeps_full_range() {
        let mut ctx = SymCtx::symbolic();
        let mut v = SymInt::with_width(64, 0);
        v.make_symbolic(FieldId(0));
        assert_eq!(v.constraint(), Interval::FULL);
        v.add(&mut ctx, i64::MAX);
        assert!(
            ctx.take_error().is_none(),
            "64-bit width defers to i64 checks"
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn width_rejects_oversized_initial() {
        let _ = SymInt::with_width(8, 1_000);
    }

    #[test]
    fn narrow_width_chunked_soundness() {
        use crate::uda::{run_chunked_symbolic, run_sequential, Uda};
        struct Sat8;
        #[derive(Clone, Debug)]
        struct S8 {
            v: SymInt,
        }
        impl_sym_state!(S8 { v });
        impl Uda for Sat8 {
            type State = S8;
            type Event = i64;
            type Output = i64;
            fn init(&self) -> S8 {
                S8 {
                    v: SymInt::with_width(8, 0),
                }
            }
            fn update(&self, s: &mut S8, ctx: &mut SymCtx, e: &i64) {
                // Saturating-ish counter that resets near the i8 edge.
                if s.v.gt(ctx, 100) {
                    s.v.assign(0);
                }
                s.v.add(ctx, e % 7);
            }
            fn result(&self, s: &S8, _ctx: &mut SymCtx) -> i64 {
                s.v.concrete_value().unwrap()
            }
        }
        let input: Vec<i64> = (0..300).collect();
        let seq = run_sequential(&Sat8, input.iter()).unwrap();
        for n in [2, 7, 31] {
            let par =
                run_chunked_symbolic(&Sat8, &input, n, &crate::EngineConfig::default()).unwrap();
            assert_eq!(par, seq, "chunks={n}");
        }
    }

    #[test]
    fn as_scalar_forms() {
        let v = SymInt::new(7);
        assert_eq!(v.as_scalar(), SymScalar::Concrete(7));
        let mut v = symbolic();
        v += 2;
        assert_eq!(
            v.as_scalar(),
            SymScalar::Affine {
                field: FieldId(0),
                a: 1,
                b: 2
            }
        );
    }
}
