//! A user-defined symbolic data type: running minima / maxima.
//!
//! §4.5 of the paper: "SYMPLE exposes a C++ interface for specifying new
//! data types … a modular way to increase the expressivity. These
//! user-provided data types should (i) have a canonical form, (ii)
//! implement efficient decision procedures, (iii) implement a merge
//! function … and (iv) serialization functions."
//!
//! [`SymMinMax`] is exactly such a type, written against the same
//! [`SymField`] interface every built-in uses. Its canonical form is
//!
//! ```text
//! lb ≤ x ≤ ub  ⇒  v = op(x, c)        (op ∈ {min, max}, c a constant)
//! ```
//!
//! which is closed under updates (`max(max(x,c), e) = max(x, max(c,e))`)
//! — so a running-extremum UDA explores **exactly one path** with **zero
//! forks**, where the `if (max < e) max = e` formulation over `SymInt`
//! pays a fork per chunk and a two-path summary. The `minmax` ablation
//! bench quantifies the difference.

use std::cmp::Ordering;

use crate::ctx::{OpKind, SymCtx};
use crate::error::{Error, Result};
use crate::interval::Interval;
use crate::state::{downcast, FieldFacts, FieldId, SymField};
use crate::types::scalar::ScalarTransfer;
use crate::wire::{self, WireError};

/// Which extremum the type tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extremum {
    /// Running minimum.
    Min,
    /// Running maximum.
    Max,
}

impl Extremum {
    fn fold(self, a: i64, b: i64) -> i64 {
        match self {
            Extremum::Min => a.min(b),
            Extremum::Max => a.max(b),
        }
    }

    /// The fold identity — the seed value (`INT_MIN` for `Max`, as in the
    /// paper's `SymInt max = INT_MIN`).
    fn seed(self) -> i64 {
        match self {
            Extremum::Min => i64::MAX,
            Extremum::Max => i64::MIN,
        }
    }
}

/// A running minimum or maximum over the values fed to it.
///
/// # Examples
///
/// The paper's `Max` UDA without any branching:
///
/// ```
/// use symple_core::types::sym_minmax::{Extremum, SymMinMax};
///
/// let mut max = SymMinMax::new(Extremum::Max);
/// max.update(5);
/// max.update(3);
/// max.update(10);
/// assert_eq!(max.concrete_value(), Some(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymMinMax {
    mode: Extremum,
    constraint: Interval,
    /// Accumulated extremum of concrete updates, seeded with the fold
    /// identity.
    acc: i64,
    /// Whether the unknown initial value still participates in `v`.
    tracking_input: bool,
    id: Option<FieldId>,
}

impl SymMinMax {
    /// Creates a fresh tracker seeded with the fold identity (`INT_MIN`
    /// for `Max`), exactly like the paper's `SymInt max = INT_MIN`.
    pub fn new(mode: Extremum) -> SymMinMax {
        SymMinMax {
            mode,
            constraint: Interval::FULL,
            acc: mode.seed(),
            tracking_input: false,
            id: None,
        }
    }

    /// The tracked extremum mode.
    pub fn mode(&self) -> Extremum {
        self.mode
    }

    /// Folds a concrete value into the extremum — never forks.
    pub fn update(&mut self, e: i64) {
        self.acc = self.mode.fold(self.acc, e);
    }

    /// Overwrites with a concrete value, dropping the input dependence.
    pub fn assign(&mut self, v: i64) {
        self.acc = v;
        self.tracking_input = false;
    }

    /// The accumulated concrete extremum (the fold identity before the
    /// first update).
    pub fn accumulated(&self) -> i64 {
        self.acc
    }

    /// The concrete value, if the input no longer participates.
    pub fn concrete_value(&self) -> Option<i64> {
        if self.tracking_input {
            None
        } else {
            Some(self.acc)
        }
    }

    /// `v < t`, forking if both outcomes are feasible.
    ///
    /// For `Max`: `max(x, c) < t ⇔ x < t ∧ c < t`, so a large accumulated
    /// constant decides the branch without consulting `x` at all.
    pub fn lt(&mut self, ctx: &mut SymCtx, t: i64) -> bool {
        self.cmp_with(ctx, t, true)
    }

    /// `v ≥ t`; the complement of [`SymMinMax::lt`].
    pub fn ge(&mut self, ctx: &mut SymCtx, t: i64) -> bool {
        !self.cmp_with(ctx, t, true)
    }

    /// `v ≤ t`, forking if both outcomes are feasible.
    pub fn le(&mut self, ctx: &mut SymCtx, t: i64) -> bool {
        self.cmp_with(ctx, t, false)
    }

    /// `v > t`; the complement of [`SymMinMax::le`].
    pub fn gt(&mut self, ctx: &mut SymCtx, t: i64) -> bool {
        !self.cmp_with(ctx, t, false)
    }

    /// Decides `v < t` (strict) or `v ≤ t`.
    fn cmp_with(&mut self, ctx: &mut SymCtx, t: i64, strict: bool) -> bool {
        let against = |value: i64| -> bool {
            match value.cmp(&t) {
                Ordering::Less => true,
                Ordering::Equal => !strict,
                Ordering::Greater => false,
            }
        };
        if !self.tracking_input {
            return against(self.acc);
        }
        // v = op(x, c). Decompose per mode.
        match self.mode {
            Extremum::Max => {
                if !against(self.acc) {
                    // c ≥ t (or > for ≤): the max already exceeds t.
                    return false;
                }
                // Outcome now depends on x alone: x < t (or ≤).
                let (below, above) = if strict {
                    self.constraint.split_lt(1, 0, t)
                } else {
                    self.constraint.split_le(1, 0, t)
                };
                self.binary(ctx, below, above, true)
            }
            Extremum::Min => {
                if against(self.acc) {
                    // c < t: the min is already below t.
                    return true;
                }
                let (below, above) = if strict {
                    self.constraint.split_lt(1, 0, t)
                } else {
                    self.constraint.split_le(1, 0, t)
                };
                self.binary(ctx, below, above, true)
            }
        }
    }

    fn binary(
        &mut self,
        ctx: &mut SymCtx,
        true_side: Interval,
        false_side: Interval,
        outcome_is_true_side: bool,
    ) -> bool {
        match (true_side.is_empty(), false_side.is_empty()) {
            (false, true) => {
                ctx.note_op(OpKind::Guard, self.id, "cmp", false);
                outcome_is_true_side
            }
            (true, false) => {
                ctx.note_op(OpKind::Guard, self.id, "cmp", false);
                !outcome_is_true_side
            }
            (false, false) => {
                ctx.note_op(OpKind::Guard, self.id, "cmp", true);
                if ctx.choose(2) == 0 {
                    self.constraint = true_side;
                    outcome_is_true_side
                } else {
                    self.constraint = false_side;
                    !outcome_is_true_side
                }
            }
            (true, true) => {
                debug_assert!(false, "SymMinMax branch with empty path constraint");
                false
            }
        }
    }
}

impl SymField for SymMinMax {
    fn make_symbolic(&mut self, id: FieldId) {
        self.constraint = Interval::FULL;
        self.acc = self.mode.seed();
        self.tracking_input = true;
        self.id = Some(id);
    }

    fn is_concrete(&self) -> bool {
        !self.tracking_input
    }

    fn transfer_eq(&self, other: &dyn SymField) -> bool {
        downcast::<SymMinMax>(other).is_some_and(|o| {
            self.mode == o.mode && self.tracking_input == o.tracking_input && self.acc == o.acc
        })
    }

    fn constraint_eq(&self, other: &dyn SymField) -> bool {
        downcast::<SymMinMax>(other).is_some_and(|o| self.constraint == o.constraint)
    }

    fn constraint_overlaps(&self, other: &dyn SymField) -> bool {
        downcast::<SymMinMax>(other)
            .is_some_and(|o| !self.constraint.intersect(&o.constraint).is_empty())
    }

    fn union_constraint(&mut self, other: &dyn SymField) -> bool {
        let Some(o) = downcast::<SymMinMax>(other) else {
            return false;
        };
        match self.constraint.union_if_contiguous(&o.constraint) {
            Some(u) => {
                self.constraint = u;
                true
            }
            None => false,
        }
    }

    fn compose_onto(&mut self, prev: &dyn SymField, _prev_all: &[&dyn SymField]) -> Result<bool> {
        let prev = downcast::<SymMinMax>(prev).ok_or(Error::Uda("field type mismatch".into()))?;
        debug_assert_eq!(self.mode, prev.mode, "composed extrema must share a mode");
        if !self.tracking_input {
            // Later path discarded its input: only the constraint on `y`
            // must be discharged against the earlier value.
            if !self.feasible_against(prev) {
                return Ok(false);
            }
            self.constraint = prev.constraint;
            self.id = prev.id;
            return Ok(true);
        }
        if prev.tracking_input {
            // y = op(x, c1); pull the constraint on y back to x.
            let pulled = self.pullback(prev.acc);
            // (Seeds never reach here as constants: a tracking earlier
            // path keeps its seed folded into `op(x, ·)` instead.)
            let merged = pulled.intersect(&prev.constraint);
            if merged.is_empty() {
                return Ok(false);
            }
            self.acc = self.mode.fold(self.acc, prev.acc);
            self.constraint = merged;
        } else {
            // Earlier value is the constant `prev.acc`.
            if !self.constraint.contains(prev.acc) {
                return Ok(false);
            }
            self.acc = self.mode.fold(self.acc, prev.acc);
            self.tracking_input = false;
            self.constraint = prev.constraint;
        }
        self.id = prev.id;
        Ok(true)
    }

    fn transfer(&self) -> Option<ScalarTransfer> {
        self.concrete_value().map(ScalarTransfer::Const)
    }

    fn encode_field(&self, buf: &mut Vec<u8>) {
        buf.push(match self.mode {
            Extremum::Min => 0,
            Extremum::Max => 1,
        });
        buf.push(u8::from(self.tracking_input));
        wire::put_ivarint(buf, self.acc);
        wire::put_ivarint(buf, self.constraint.lb);
        wire::put_ivarint(buf, self.constraint.ub);
    }

    fn decode_field(&mut self, buf: &mut &[u8], id: FieldId) -> Result<(), WireError> {
        self.mode = match wire::get_bytes(buf, 1)?[0] {
            0 => Extremum::Min,
            1 => Extremum::Max,
            t => return Err(WireError::InvalidTag(t)),
        };
        self.tracking_input = match wire::get_bytes(buf, 1)?[0] {
            0 => false,
            1 => true,
            t => return Err(WireError::InvalidTag(t)),
        };
        self.acc = wire::get_ivarint(buf)?;
        let lb = wire::get_ivarint(buf)?;
        let ub = wire::get_ivarint(buf)?;
        self.constraint = Interval::new(lb, ub);
        self.id = Some(id);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn facts(&self) -> FieldFacts {
        FieldFacts {
            kind: "minmax",
            concrete: !self.tracking_input,
            ..FieldFacts::default()
        }
    }

    fn perturb(&mut self) -> bool {
        // Shift the accumulated extremum; the seed saturates away from the
        // fold identity so the change survives later updates.
        self.acc = match self.mode {
            Extremum::Min => self.acc.saturating_sub(1),
            Extremum::Max => self.acc.saturating_add(1),
        };
        true
    }

    fn describe(&self) -> String {
        let op = match self.mode {
            Extremum::Min => "min",
            Extremum::Max => "max",
        };
        let c = if self.constraint.is_full() {
            "x∈(-∞,+∞)".to_string()
        } else {
            format!("x∈[{},{}]", self.constraint.lb, self.constraint.ub)
        };
        if self.tracking_input {
            if self.acc == self.mode.seed() {
                format!("{c} ⇒ x")
            } else {
                format!("{c} ⇒ {op}(x,{})", self.acc)
            }
        } else {
            format!("{c} ⇒ {}", self.acc)
        }
    }
}

impl SymMinMax {
    /// Whether a concrete earlier value satisfies this path's constraint.
    fn feasible_against(&self, prev: &SymMinMax) -> bool {
        match prev.concrete_value() {
            Some(k) => self.constraint.contains(k),
            None => false,
        }
    }

    /// Pre-image of the interval constraint under `y = op(x, c1)`.
    fn pullback(&self, c1: i64) -> Interval {
        let iv = self.constraint;
        match self.mode {
            Extremum::Max => {
                // y = max(x, c1): y ≤ ub ⇔ x ≤ ub ∧ c1 ≤ ub;
                //                 y ≥ lb ⇔ x ≥ lb ∨ c1 ≥ lb.
                if c1 > iv.ub {
                    return Interval::empty();
                }
                let lb = if c1 >= iv.lb { i64::MIN } else { iv.lb };
                Interval::new(lb, iv.ub)
            }
            Extremum::Min => {
                if c1 < iv.lb {
                    return Interval::empty();
                }
                let ub = if c1 <= iv.ub { i64::MAX } else { iv.ub };
                Interval::new(iv.lb, ub)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::apply_summary;
    use crate::engine::{EngineConfig, SymbolicExecutor};
    use crate::impl_sym_state;
    use crate::uda::Uda;

    struct MaxUda;

    #[derive(Clone, Debug)]
    struct MaxState {
        max: SymMinMax,
    }
    impl_sym_state!(MaxState { max });

    impl Uda for MaxUda {
        type State = MaxState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> MaxState {
            MaxState {
                max: SymMinMax::new(Extremum::Max),
            }
        }
        fn update(&self, s: &mut MaxState, _ctx: &mut SymCtx, e: &i64) {
            s.max.update(*e);
        }
        fn result(&self, s: &MaxState, _ctx: &mut SymCtx) -> i64 {
            s.max.concrete_value().expect("concrete")
        }
    }

    #[test]
    fn max_uda_explores_one_path_with_zero_forks() {
        let uda = MaxUda;
        let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
        exec.feed_all([5i64, 3, 10, -4, 9].iter()).unwrap();
        let (chain, stats) = exec.finish();
        assert_eq!(chain.total_paths(), 1, "canonical form absorbs updates");
        assert_eq!(stats.forks, 0);
        // Apply to concrete 9 and 42.
        let mut init = uda.init();
        init.max.assign(9);
        let fin = apply_summary(&chain.summaries()[0], &init).unwrap();
        assert_eq!(fin.max.concrete_value(), Some(10));
        let mut init = uda.init();
        init.max.assign(42);
        let fin = apply_summary(&chain.summaries()[0], &init).unwrap();
        assert_eq!(fin.max.concrete_value(), Some(42));
    }

    #[test]
    fn chunked_equals_sequential() {
        use crate::uda::{run_chunked_symbolic, run_sequential};
        let input: Vec<i64> = vec![2, 9, 1, 5, 3, 10, 8, 2, 1, -7, 12, 12, 0];
        let seq = run_sequential(&MaxUda, input.iter()).unwrap();
        assert_eq!(seq, 12);
        for n in 1..=input.len() {
            let par = run_chunked_symbolic(&MaxUda, &input, n, &EngineConfig::default()).unwrap();
            assert_eq!(par, seq, "chunks={n}");
        }
    }

    #[test]
    fn comparisons_fork_only_when_needed() {
        let mut m = SymMinMax::new(Extremum::Max);
        m.make_symbolic(FieldId(0));
        m.update(10);
        let mut ctx = SymCtx::symbolic();
        // v = max(x, 10) ≥ 10: with c = 10 ≥ t = 10 the branch is forced.
        assert!(m.ge(&mut ctx, 10));
        assert!(ctx.choice_vector().is_empty());
        // v < 20 depends on x: forks.
        assert!(m.lt(&mut ctx, 20));
        assert_eq!(ctx.choice_vector().len(), 1);
        assert_eq!(m.constraint, Interval::new(i64::MIN, 19));
    }

    #[test]
    fn min_mode_mirrors() {
        let mut m = SymMinMax::new(Extremum::Min);
        m.make_symbolic(FieldId(0));
        m.update(10);
        let mut ctx = SymCtx::symbolic();
        // v = min(x, 10) ≤ 10 always.
        assert!(m.le(&mut ctx, 10));
        assert!(ctx.choice_vector().is_empty());
        // v < 5 depends on x.
        assert!(m.lt(&mut ctx, 5));
        assert_eq!(m.constraint, Interval::new(i64::MIN, 4));
    }

    #[test]
    fn oracle_against_concrete() {
        // Symbolic summary of a chunk matches concrete execution for all
        // initial values in a window.
        let uda = MaxUda;
        let chunk = [7i64, -3, 15, 2];
        let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
        exec.feed_all(chunk.iter()).unwrap();
        let (chain, _) = exec.finish();
        for x in -20i64..=20 {
            let mut init = uda.init();
            init.max.assign(x);
            let fin = crate::compose::apply_chain(&chain, &init).unwrap();
            assert_eq!(fin.max.concrete_value(), Some(x.max(15)), "x={x}");
        }
    }

    #[test]
    fn wire_roundtrip() {
        let mut m = SymMinMax::new(Extremum::Max);
        m.make_symbolic(FieldId(3));
        m.update(42);
        let mut ctx = SymCtx::symbolic();
        let _ = m.lt(&mut ctx, 100);
        let mut buf = Vec::new();
        m.encode_field(&mut buf);
        let mut back = SymMinMax::new(Extremum::Min);
        let mut rd = &buf[..];
        back.decode_field(&mut rd, FieldId(3)).unwrap();
        assert!(rd.is_empty());
        assert_eq!(back, m);
    }

    #[test]
    fn merge_same_transfer() {
        let mut a = SymMinMax::new(Extremum::Max);
        a.make_symbolic(FieldId(0));
        a.update(5);
        a.constraint = Interval::new(0, 9);
        let mut b = a;
        b.constraint = Interval::new(10, 20);
        assert!(a.transfer_eq(&b));
        assert!(a.union_constraint(&b));
        assert_eq!(a.constraint, Interval::new(0, 20));
    }

    #[test]
    fn compose_symbolic_chain() {
        // Chunk A: max(x, 9); chunk B: max(y, 8) with y ≤ 19 (from a
        // comparison); compose and check against every concrete x.
        let mut a = SymMinMax::new(Extremum::Max);
        a.make_symbolic(FieldId(0));
        a.update(9);
        let mut b = SymMinMax::new(Extremum::Max);
        b.make_symbolic(FieldId(0));
        b.update(8);
        let mut ctx = SymCtx::symbolic();
        assert!(b.lt(&mut ctx, 20));
        let prev_all: Vec<&dyn SymField> = vec![&a];
        let mut composed = b;
        assert!(composed.compose_onto(&a, &prev_all).unwrap());
        // y = max(x,9) < 20 ⇔ x < 20; value = max(x, 9).
        assert_eq!(composed.constraint, Interval::new(i64::MIN, 19));
        assert_eq!(composed.accumulated(), 9);
        assert!(composed.tracking_input);
    }
}
