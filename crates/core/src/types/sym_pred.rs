//! Black-box predicates over windowed state (§4.4 of the paper).
//!
//! Some UDAs need predicates on the aggregation state that are not amenable
//! to symbolic reasoning — e.g. "is the GPS distance between the previous
//! and current event below a bound?". A [`SymPred`] holds a possibly
//! symbolic value of type `T` and supports exactly two operations:
//! assigning a concrete value, and evaluating a pre-specified black-box
//! predicate against a concrete argument.
//!
//! When the held value is still the unknown input from the previous chunk,
//! evaluation *blindly forks both outcomes*, recording the (argument,
//! outcome) pair as a path-constraint **decision**. Because UDAs with
//! *windowed dependence* assign a concrete value on every record, at most a
//! bounded number of decisions accumulate before the value binds — the
//! paper's "path blowup of at most two" for window size one.

use std::fmt;
use std::sync::Arc;

use crate::ctx::{OpKind, SymCtx};
use crate::error::{Error, Result};
use crate::state::{downcast, FieldFacts, FieldId, SymField};
use crate::types::scalar::{ScalarTransfer, SymScalar};
use crate::wire::{self, Wire, WireError};

/// Default bound on decisions recorded while unbound.
pub const DEFAULT_MAX_DECISIONS: usize = 8;

/// The black-box predicate: `pred(held_value, argument)`.
pub type PredFn<T> = Arc<dyn Fn(&T, &T) -> bool + Send + Sync>;

/// Value types storable in a [`SymPred`].
///
/// `to_i64` lets integer-like values (e.g. timestamps) be referenced by
/// [`crate::SymVector`] elements; types that are not scalar return `None`
/// and simply cannot be pushed symbolically.
pub trait PredValue: Clone + PartialEq + fmt::Debug + Send + Sync + Wire + 'static {
    /// The value as an `i64`, if the type is integer-like.
    fn to_i64(&self) -> Option<i64> {
        None
    }
}

impl PredValue for i64 {
    fn to_i64(&self) -> Option<i64> {
        Some(*self)
    }
}
impl PredValue for u64 {}
impl PredValue for u32 {}
impl PredValue for String {}
impl PredValue for (i64, i64) {}
impl PredValue for (f64, f64) {}

/// The held value of a [`SymPred`].
#[derive(Debug, Clone, PartialEq)]
enum Held<T> {
    /// The unknown value flowing in from the previous chunk.
    Unknown,
    /// Concretely never assigned (the UDA's initial state).
    Unset,
    /// Concretely assigned.
    Set(T),
}

/// A placeholder for a possibly-symbolic value of type `T` with a
/// black-box predicate (§4.4).
///
/// # Examples
///
/// The paper's GPS sessionization pattern:
///
/// ```
/// use symple_core::{SymCtx, SymPred};
///
/// let mut prev: SymPred<(f64, f64)> = SymPred::new(|prev: &(f64, f64), cur| {
///     let (dx, dy) = (prev.0 - cur.0, prev.1 - cur.1);
///     (dx * dx + dy * dy).sqrt() < 0.5
/// });
/// let mut ctx = SymCtx::concrete();
/// // First event of the stream: concretely no previous event.
/// assert!(!prev.eval(&mut ctx, &(1.0, 1.0)));
/// prev.set((1.0, 1.0));
/// assert!(prev.eval(&mut ctx, &(1.1, 1.0)));
/// ```
#[derive(Clone)]
pub struct SymPred<T: PredValue> {
    pred: PredFn<T>,
    held: Held<T>,
    // Shared, copy-on-write: path exploration clones the state once per
    // explored run, and decisions mutate only at (rare) forks.
    decisions: Arc<Vec<(T, bool)>>,
    initial_outcome: bool,
    max_decisions: usize,
    id: Option<FieldId>,
}

impl<T: PredValue> fmt::Debug for SymPred<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymPred")
            .field("held", &self.held)
            .field("decisions", &self.decisions)
            .field("initial_outcome", &self.initial_outcome)
            .finish()
    }
}

impl<T: PredValue> PartialEq for SymPred<T> {
    fn eq(&self, other: &Self) -> bool {
        self.held == other.held
            && (Arc::ptr_eq(&self.decisions, &other.decisions) || self.decisions == other.decisions)
    }
}

impl<T: PredValue> SymPred<T> {
    /// Creates a predicate holder with no previous value.
    ///
    /// `pred(held, arg)` is the black-box predicate evaluated by
    /// [`SymPred::eval`]. While the value is concretely unset, `eval`
    /// returns `false`; see [`SymPred::with_initial_outcome`].
    pub fn new(pred: impl Fn(&T, &T) -> bool + Send + Sync + 'static) -> SymPred<T> {
        SymPred {
            pred: Arc::new(pred),
            held: Held::Unset,
            decisions: Arc::new(Vec::new()),
            initial_outcome: false,
            max_decisions: DEFAULT_MAX_DECISIONS,
            id: None,
        }
    }

    /// Sets the outcome `eval` reports while the value is concretely unset
    /// (i.e. at the very beginning of the input, before any `set`).
    pub fn with_initial_outcome(mut self, outcome: bool) -> SymPred<T> {
        self.initial_outcome = outcome;
        self
    }

    /// Overrides the bound on decisions recorded while unbound (the
    /// predicate *window*; the default is [`DEFAULT_MAX_DECISIONS`]).
    pub fn with_max_decisions(mut self, bound: usize) -> SymPred<T> {
        self.max_decisions = bound;
        self
    }

    /// Assigns a concrete value (the paper's `setValue`).
    ///
    /// Decisions recorded while unbound are kept: they constrain the
    /// chunk's unknown input, not the new value.
    pub fn set(&mut self, v: T) {
        self.held = Held::Set(v);
    }

    /// Evaluates the black-box predicate against `arg` (the paper's
    /// `evalPred`).
    ///
    /// * concretely set → evaluates the predicate;
    /// * concretely unset → returns the configured initial outcome;
    /// * unknown → forks both outcomes, recording the decision. A repeated
    ///   argument reuses its recorded outcome instead of forking again.
    pub fn eval(&mut self, ctx: &mut SymCtx, arg: &T) -> bool {
        match &self.held {
            Held::Set(v) => (self.pred)(v, arg),
            Held::Unset => self.initial_outcome,
            Held::Unknown => {
                if let Some((_, out)) = self.decisions.iter().find(|(a, _)| a == arg) {
                    ctx.note_op(OpKind::PredEval, self.id, "eval", false);
                    return *out;
                }
                ctx.note_op(OpKind::PredEval, self.id, "eval", true);
                if self.decisions.len() >= self.max_decisions {
                    ctx.fail(Error::PredicateWindowExceeded {
                        decisions: self.decisions.len(),
                        bound: self.max_decisions,
                    });
                    return self.initial_outcome;
                }
                let outcome = ctx.choose(2) == 0;
                Arc::make_mut(&mut self.decisions).push((arg.clone(), outcome));
                outcome
            }
        }
    }

    /// The concretely held value, if set.
    pub fn value(&self) -> Option<&T> {
        match &self.held {
            Held::Set(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is still the unknown previous-chunk input.
    pub fn is_unknown(&self) -> bool {
        matches!(self.held, Held::Unknown)
    }

    /// The decisions recorded while unbound (diagnostics and tests).
    pub fn decisions(&self) -> &[(T, bool)] {
        &self.decisions
    }

    /// The field id, set once the value has been made symbolic.
    pub fn field_id(&self) -> Option<FieldId> {
        self.id
    }

    /// The current value as a [`SymScalar`], for vector appends.
    ///
    /// `None` when the value is concretely unset (there is nothing to
    /// report) or when `T` is not integer-like.
    pub fn as_scalar(&self) -> Option<SymScalar> {
        match &self.held {
            Held::Set(v) => v.to_i64().map(SymScalar::Concrete),
            Held::Unknown => {
                let field = self.id?;
                Some(SymScalar::Affine { field, a: 1, b: 0 })
            }
            Held::Unset => None,
        }
    }

    /// The value `a·v + b` over the held value `v`, as a [`SymScalar`].
    ///
    /// Lets UDAs report derived quantities such as time gaps
    /// (`gap = now − prev` is `affine_scalar(-1, now)`). `None` when the
    /// value is concretely unset or `T` is not integer-like.
    pub fn affine_scalar(&self, a: i64, b: i64) -> Option<SymScalar> {
        match &self.held {
            Held::Set(v) => {
                let v = v.to_i64()?;
                Some(SymScalar::Concrete(a.checked_mul(v)?.checked_add(b)?))
            }
            Held::Unknown => {
                let field = self.id?;
                Some(SymScalar::Affine { field, a, b })
            }
            Held::Unset => None,
        }
    }

    /// The outcome `eval(arg)` would produce against a *final held value*
    /// of another path — the composition-time feasibility check.
    fn outcome_against(&self, prev_held: &Held<T>, arg: &T) -> Option<bool> {
        match prev_held {
            Held::Set(v) => Some((self.pred)(v, arg)),
            Held::Unset => Some(self.initial_outcome),
            Held::Unknown => None,
        }
    }
}

impl<T: PredValue> SymField for SymPred<T> {
    fn make_symbolic(&mut self, id: FieldId) {
        self.held = Held::Unknown;
        self.decisions = Arc::new(Vec::new());
        self.id = Some(id);
    }

    fn is_concrete(&self) -> bool {
        !matches!(self.held, Held::Unknown)
    }

    fn transfer_eq(&self, other: &dyn SymField) -> bool {
        downcast::<SymPred<T>>(other).is_some_and(|o| self.held == o.held)
    }

    fn constraint_eq(&self, other: &dyn SymField) -> bool {
        downcast::<SymPred<T>>(other).is_some_and(|o| {
            Arc::ptr_eq(&self.decisions, &o.decisions) || self.decisions == o.decisions
        })
    }

    fn constraint_overlaps(&self, other: &dyn SymField) -> bool {
        // Black-box constraints provably conflict only when the same
        // argument was decided both ways; otherwise assume overlap.
        downcast::<SymPred<T>>(other).is_some_and(|o| {
            !self
                .decisions
                .iter()
                .any(|(a, b)| o.decisions.iter().any(|(a2, b2)| a == a2 && b != b2))
        })
    }

    fn union_constraint(&mut self, other: &dyn SymField) -> bool {
        let Some(o) = downcast::<SymPred<T>>(other) else {
            return false;
        };
        if Arc::ptr_eq(&self.decisions, &o.decisions) || self.decisions == o.decisions {
            return true;
        }
        // Identical except one decision with the same argument and opposite
        // outcomes: `D ∧ p(arg)` ∨ `D ∧ ¬p(arg)` simplifies to `D`.
        if self.decisions.len() == o.decisions.len() {
            let mut flip = None;
            for (i, (d1, d2)) in self.decisions.iter().zip(o.decisions.iter()).enumerate() {
                if d1 == d2 {
                    continue;
                }
                if d1.0 == d2.0 && d1.1 != d2.1 && flip.is_none() {
                    flip = Some(i);
                } else {
                    return false;
                }
            }
            if let Some(i) = flip {
                Arc::make_mut(&mut self.decisions).remove(i);
                return true;
            }
            return true; // All equal (unreachable given the == check above).
        }
        // One list a superset of the other: A ∨ (A ∧ B) = A.
        type Decisions<'a, T> = &'a [(T, bool)];
        let (small, big): (Decisions<T>, Decisions<T>) = if self.decisions.len() < o.decisions.len()
        {
            (&self.decisions, &o.decisions)
        } else {
            (&o.decisions, &self.decisions)
        };
        if small.iter().all(|d| big.contains(d)) {
            let weaker = Arc::new(small.to_vec());
            self.decisions = weaker;
            return true;
        }
        false
    }

    fn compose_onto(&mut self, prev: &dyn SymField, _prev_all: &[&dyn SymField]) -> Result<bool> {
        let prev = downcast::<SymPred<T>>(prev).ok_or(Error::Uda("field type mismatch".into()))?;
        match &prev.held {
            Held::Unknown => {
                // Decisions cannot be discharged yet: both lists constrain
                // the earlier chunk's unknown `x`. Conflicts on the same
                // argument make the path infeasible.
                let mut merged: Vec<(T, bool)> = prev.decisions.as_ref().clone();
                for (arg, out) in self.decisions.iter() {
                    match merged.iter().find(|(a, _)| a == arg) {
                        Some((_, o)) if o != out => return Ok(false),
                        Some(_) => {}
                        None => merged.push((arg.clone(), *out)),
                    }
                }
                if merged.len() > self.max_decisions.max(prev.max_decisions) {
                    return Err(Error::PredicateWindowExceeded {
                        decisions: merged.len(),
                        bound: self.max_decisions.max(prev.max_decisions),
                    });
                }
                self.decisions = Arc::new(merged);
                // An Unknown later value stays Unknown; a Set value is
                // unaffected by what flowed in.
            }
            concrete => {
                // Discharge our decisions against the earlier final value.
                for (arg, expected) in self.decisions.iter() {
                    match self.outcome_against(concrete, arg) {
                        Some(actual) if actual == *expected => {}
                        Some(_) => return Ok(false),
                        None => unreachable!("concrete held value"),
                    }
                }
                self.decisions = Arc::clone(&prev.decisions);
                if matches!(self.held, Held::Unknown) {
                    self.held = concrete.clone();
                }
            }
        }
        self.id = prev.id;
        Ok(true)
    }

    fn transfer(&self) -> Option<ScalarTransfer> {
        match &self.held {
            Held::Set(v) => v.to_i64().map(ScalarTransfer::Const),
            Held::Unknown => Some(ScalarTransfer::IDENTITY),
            Held::Unset => None,
        }
    }

    fn encode_field(&self, buf: &mut Vec<u8>) {
        match &self.held {
            Held::Unknown => buf.push(0),
            Held::Unset => buf.push(1),
            Held::Set(v) => {
                buf.push(2);
                v.encode(buf);
            }
        }
        wire::put_uvarint(buf, self.decisions.len() as u64);
        for (arg, out) in self.decisions.iter() {
            arg.encode(buf);
            out.encode(buf);
        }
    }

    fn decode_field(&mut self, buf: &mut &[u8], id: FieldId) -> Result<(), WireError> {
        self.held = match wire::get_bytes(buf, 1)?[0] {
            0 => Held::Unknown,
            1 => Held::Unset,
            2 => Held::Set(T::decode(buf)?),
            t => return Err(WireError::InvalidTag(t)),
        };
        let n = wire::get_len(buf)?;
        let mut decisions = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let arg = T::decode(buf)?;
            let out = bool::decode(buf)?;
            decisions.push((arg, out));
        }
        self.decisions = Arc::new(decisions);
        self.id = Some(id);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn facts(&self) -> FieldFacts {
        FieldFacts {
            kind: "pred",
            concrete: !matches!(self.held, Held::Unknown),
            decisions: Some(self.decisions.len()),
            max_decisions: Some(self.max_decisions),
            ..FieldFacts::default()
        }
    }

    fn perturb(&mut self) -> bool {
        // Forget any concrete binding and flip the initial outcome: both
        // future `eval` results and `as_scalar`/`affine_scalar` reports
        // change, so any data or control dependence on this field shows
        // up in the analyzer's liveness probe.
        self.held = Held::Unset;
        self.initial_outcome = !self.initial_outcome;
        true
    }

    fn describe(&self) -> String {
        let c = if self.decisions.is_empty() {
            "⊤".to_string()
        } else {
            self.decisions
                .iter()
                .map(|(a, o)| {
                    if *o {
                        format!("p(x,{a:?})")
                    } else {
                        format!("¬p(x,{a:?})")
                    }
                })
                .collect::<Vec<_>>()
                .join("∧")
        };
        match &self.held {
            Held::Unknown => format!("{c} ⇒ x"),
            Held::Unset => format!("{c} ⇒ ⊥"),
            Held::Set(v) => format!("{c} ⇒ {v:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lt_pred() -> SymPred<i64> {
        // "previous < current" as a black-box predicate.
        SymPred::new(|prev, cur| prev < cur)
    }

    #[test]
    fn concrete_eval_uses_predicate() {
        let mut ctx = SymCtx::concrete();
        let mut p = lt_pred();
        assert!(!p.eval(&mut ctx, &10), "unset → initial outcome false");
        p.set(5);
        assert!(p.eval(&mut ctx, &10));
        assert!(!p.eval(&mut ctx, &3));
        assert!(!ctx.has_error());
    }

    #[test]
    fn initial_outcome_configurable() {
        let mut ctx = SymCtx::concrete();
        let mut p = lt_pred().with_initial_outcome(true);
        assert!(p.eval(&mut ctx, &0));
    }

    #[test]
    fn unknown_eval_forks_both_outcomes() {
        let mut ctx = SymCtx::symbolic();
        let mut outcomes = Vec::new();
        loop {
            ctx.begin_run();
            let mut p = lt_pred();
            p.make_symbolic(FieldId(0));
            let out = p.eval(&mut ctx, &10);
            outcomes.push((out, p.decisions().to_vec()));
            if !ctx.advance() {
                break;
            }
        }
        assert_eq!(
            outcomes,
            vec![(true, vec![(10, true)]), (false, vec![(10, false)])]
        );
    }

    #[test]
    fn repeated_argument_does_not_refork() {
        let mut ctx = SymCtx::symbolic();
        let mut p = lt_pred();
        p.make_symbolic(FieldId(0));
        let a = p.eval(&mut ctx, &10);
        let b = p.eval(&mut ctx, &10);
        assert_eq!(a, b);
        assert_eq!(p.decisions().len(), 1);
        assert_eq!(ctx.choice_vector().len(), 1);
    }

    #[test]
    fn window_bound_enforced() {
        let mut ctx = SymCtx::symbolic();
        let mut p = lt_pred().with_max_decisions(2);
        p.make_symbolic(FieldId(0));
        let _ = p.eval(&mut ctx, &1);
        let _ = p.eval(&mut ctx, &2);
        let _ = p.eval(&mut ctx, &3);
        assert!(matches!(
            ctx.take_error(),
            Some(Error::PredicateWindowExceeded {
                decisions: 2,
                bound: 2
            })
        ));
    }

    #[test]
    fn set_keeps_decisions_binds_value() {
        let mut ctx = SymCtx::symbolic();
        let mut p = lt_pred();
        p.make_symbolic(FieldId(0));
        let _ = p.eval(&mut ctx, &10);
        p.set(42);
        assert_eq!(p.value(), Some(&42));
        assert_eq!(p.decisions().len(), 1);
        assert!(p.is_concrete());
    }

    #[test]
    fn compose_discharges_decisions_against_set_value() {
        // Later path assumed p(x, 10) = true, i.e. x < 10.
        let mut later = lt_pred();
        later.make_symbolic(FieldId(0));
        let mut ctx = SymCtx::symbolic();
        assert!(later.eval(&mut ctx, &10));
        later.set(99);
        // Earlier chunk ended with value 5: 5 < 10 holds → feasible.
        let mut prev = lt_pred();
        prev.set(5);
        let prev_all: Vec<&dyn SymField> = vec![&prev];
        assert!(later.clone().compose_onto(&prev, &prev_all).unwrap());
        // Earlier chunk ended with 50: 50 < 10 fails → infeasible.
        let mut prev = lt_pred();
        prev.set(50);
        let prev_all: Vec<&dyn SymField> = vec![&prev];
        assert!(!later.clone().compose_onto(&prev, &prev_all).unwrap());
    }

    #[test]
    fn compose_against_unset_uses_initial_outcome() {
        let mut later = lt_pred();
        later.make_symbolic(FieldId(0));
        let mut ctx = SymCtx::symbolic();
        assert!(later.eval(&mut ctx, &10)); // decision (10, true)
        let prev = lt_pred(); // concretely unset, initial outcome false
        let prev_all: Vec<&dyn SymField> = vec![&prev];
        assert!(!later.compose_onto(&prev, &prev_all).unwrap());
    }

    #[test]
    fn compose_through_unknown_accumulates() {
        let mut later = lt_pred();
        later.make_symbolic(FieldId(0));
        let mut ctx = SymCtx::symbolic();
        assert!(later.eval(&mut ctx, &10));
        let mut prev = lt_pred();
        prev.make_symbolic(FieldId(0));
        let mut ctx2 = SymCtx::symbolic();
        assert!(prev.eval(&mut ctx2, &3));
        let prev_all: Vec<&dyn SymField> = vec![&prev];
        let mut composed = later.clone();
        assert!(composed.compose_onto(&prev, &prev_all).unwrap());
        assert_eq!(composed.decisions(), &[(3, true), (10, true)]);
        assert!(composed.is_unknown());
        // Conflicting decisions on the same argument → infeasible.
        let mut conflicting = lt_pred();
        conflicting.make_symbolic(FieldId(0));
        let mut ctx3 = SymCtx::symbolic();
        ctx3.begin_run();
        let _ = conflicting.eval(&mut ctx3, &3);
        ctx3.advance();
        ctx3.begin_run();
        let mut conflicting = lt_pred();
        conflicting.make_symbolic(FieldId(0));
        assert!(!conflicting.eval(&mut ctx3, &3)); // decision (3, false)
        let mut composed = conflicting;
        assert!(!composed.compose_onto(&prev, &prev_all).unwrap());
    }

    #[test]
    fn union_drops_single_flip() {
        let mut a = lt_pred();
        a.make_symbolic(FieldId(0));
        a.decisions = Arc::new(vec![(5, true), (9, true)]);
        let mut b = lt_pred();
        b.make_symbolic(FieldId(0));
        b.decisions = Arc::new(vec![(5, true), (9, false)]);
        assert!(a.union_constraint(&b));
        assert_eq!(a.decisions(), &[(5, true)]);
    }

    #[test]
    fn union_subset_takes_weaker() {
        let mut a = lt_pred();
        a.make_symbolic(FieldId(0));
        a.decisions = Arc::new(vec![(5, true), (9, true)]);
        let mut b = lt_pred();
        b.make_symbolic(FieldId(0));
        b.decisions = Arc::new(vec![(5, true)]);
        assert!(a.union_constraint(&b));
        assert_eq!(a.decisions(), &[(5, true)]);
    }

    #[test]
    fn union_rejects_incompatible() {
        let mut a = lt_pred();
        a.make_symbolic(FieldId(0));
        a.decisions = Arc::new(vec![(5, true)]);
        let mut b = lt_pred();
        b.make_symbolic(FieldId(0));
        b.decisions = Arc::new(vec![(6, false)]);
        assert!(!a.union_constraint(&b));
    }

    #[test]
    fn overlap_detects_conflicts() {
        let mut a = lt_pred();
        a.decisions = Arc::new(vec![(5, true)]);
        let mut b = lt_pred();
        b.decisions = Arc::new(vec![(5, false)]);
        assert!(!a.constraint_overlaps(&b));
        b.decisions = Arc::new(vec![(6, false)]);
        assert!(a.constraint_overlaps(&b));
    }

    #[test]
    fn wire_roundtrip() {
        let mut p = lt_pred();
        p.make_symbolic(FieldId(1));
        p.decisions = Arc::new(vec![(7, true), (-2, false)]);
        p.set(33);
        let mut buf = Vec::new();
        p.encode_field(&mut buf);
        let mut back = lt_pred();
        let mut rd = &buf[..];
        back.decode_field(&mut rd, FieldId(1)).unwrap();
        assert!(rd.is_empty());
        assert_eq!(back, p);
    }

    #[test]
    fn as_scalar_forms() {
        let mut p = lt_pred();
        assert_eq!(p.as_scalar(), None, "unset has no reportable value");
        p.set(42);
        assert_eq!(p.as_scalar(), Some(SymScalar::Concrete(42)));
        let mut p = lt_pred();
        p.make_symbolic(FieldId(3));
        assert_eq!(
            p.as_scalar(),
            Some(SymScalar::Affine {
                field: FieldId(3),
                a: 1,
                b: 0
            })
        );
    }

    #[test]
    fn non_scalar_types_have_no_transfer_when_set() {
        let mut p: SymPred<String> = SymPred::new(|a, b| a == b);
        p.set("x".to_string());
        assert_eq!(p.transfer(), None);
        let mut p: SymPred<String> = SymPred::new(|a, b| a == b);
        p.make_symbolic(FieldId(0));
        assert_eq!(p.transfer(), Some(ScalarTransfer::IDENTITY));
    }
}
