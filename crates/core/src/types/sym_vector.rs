//! Append-only symbolic vectors (§4.5 of the paper).
//!
//! Inspired by Cilk reducer hyperobjects, a [`SymVector`] captures the
//! *output* of a UDA: each chunk appends to a local vector, and summary
//! composition stitches the locals together in input order. Elements may be
//! symbolic — e.g. a count `x + 5` appended before the chunk's input
//! dependence resolved — and are concretized during composition once the
//! referenced field's value becomes known.
//!
//! The append-only restriction is essential: the UDA can never *read* the
//! vector, so the unknown prefix produced by earlier chunks cannot affect
//! control flow and needs no constraint.
//!
//! Internally the vector is a **persistent list**: path exploration clones
//! the whole aggregation state once per explored run, and a `Vec` payload
//! would make that clone — and therefore the whole engine — quadratic in
//! the output size. Structural sharing makes clones `O(1)` and lets
//! sibling paths share their common prefix, which also makes the
//! merge-time equality check `O(divergence)` instead of `O(length)`.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::state::{downcast, FieldFacts, FieldId, SymField};
use crate::types::scalar::{ScalarTransfer, SymScalar};
use crate::types::sym_enum::SymEnum;
use crate::types::sym_int::SymInt;
use crate::types::sym_pred::{PredValue, SymPred};
use crate::wire::{self, Wire, WireError};

/// Element types storable in a [`SymVector`].
///
/// `from_i64` converts a concretized symbolic scalar back into the element
/// type; types that cannot hold symbolic elements return `None` (and must
/// only ever be appended concretely).
pub trait VecElem: Clone + PartialEq + std::fmt::Debug + Send + Sync + Wire + 'static {
    /// Converts a concretized symbolic scalar into the element type.
    fn from_i64(v: i64) -> Option<Self>;
}

impl VecElem for i64 {
    fn from_i64(v: i64) -> Option<Self> {
        Some(v)
    }
}
impl VecElem for u64 {
    fn from_i64(v: i64) -> Option<Self> {
        u64::try_from(v).ok()
    }
}
impl VecElem for u32 {
    fn from_i64(v: i64) -> Option<Self> {
        u32::try_from(v).ok()
    }
}
impl VecElem for i32 {
    fn from_i64(v: i64) -> Option<Self> {
        i32::try_from(v).ok()
    }
}
impl VecElem for String {
    fn from_i64(_v: i64) -> Option<Self> {
        None
    }
}
impl VecElem for (i64, i64) {
    fn from_i64(_v: i64) -> Option<Self> {
        None
    }
}

/// One element of a [`SymVector`]: concrete, or an affine function of a
/// state field's initial symbolic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Elem<T> {
    /// A known value.
    Concrete(T),
    /// A still-symbolic scalar (always the `Affine` variant).
    Sym(SymScalar),
}

impl<T: VecElem> Wire for Elem<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Elem::Concrete(v) => {
                buf.push(0);
                v.encode(buf);
            }
            Elem::Sym(s) => {
                buf.push(1);
                s.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match wire::get_bytes(buf, 1)?[0] {
            0 => Ok(Elem::Concrete(T::decode(buf)?)),
            1 => Ok(Elem::Sym(SymScalar::decode(buf)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// A persistent cons cell; `prev` points toward the front of the vector.
#[derive(Debug)]
struct Node<T> {
    elem: Elem<T>,
    prev: Option<Arc<Node<T>>>,
}

/// An append-only vector of possibly-symbolic elements with `O(1)` clone.
///
/// # Examples
///
/// ```
/// use symple_core::SymVector;
///
/// let mut out: SymVector<i64> = SymVector::new();
/// out.push(3);
/// out.push(5);
/// assert_eq!(out.concrete_elems().unwrap(), vec![3, 5]);
/// ```
#[derive(Debug, Clone)]
pub struct SymVector<T: VecElem> {
    tail: Option<Arc<Node<T>>>,
    len: usize,
    sym_len: usize,
    id: Option<FieldId>,
}

impl<T: VecElem> Default for SymVector<T> {
    fn default() -> Self {
        SymVector::new()
    }
}

impl<T: VecElem> Drop for SymVector<T> {
    fn drop(&mut self) {
        // Unlink iteratively: the default recursive drop of a long cons
        // chain would overflow the stack. A node that is still shared
        // stops the walk — its remaining chain stays alive with the other
        // owner, whose own drop will continue the work.
        let mut cur = self.tail.take();
        while let Some(node) = cur {
            match Arc::try_unwrap(node) {
                Ok(mut n) => cur = n.prev.take(),
                Err(_) => break,
            }
        }
    }
}

impl<T: VecElem> PartialEq for SymVector<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.sym_len == other.sym_len && lists_eq(&self.tail, &other.tail)
    }
}

/// Element-wise equality with a structural-sharing shortcut: once both
/// cursors reach the same node, the remaining prefix is shared and equal.
fn lists_eq<T: VecElem>(a: &Option<Arc<Node<T>>>, b: &Option<Arc<Node<T>>>) -> bool {
    let (mut x, mut y) = (a, b);
    loop {
        match (x, y) {
            (None, None) => return true,
            (Some(nx), Some(ny)) => {
                if Arc::ptr_eq(nx, ny) {
                    return true;
                }
                if nx.elem != ny.elem {
                    return false;
                }
                x = &nx.prev;
                y = &ny.prev;
            }
            _ => return false,
        }
    }
}

impl<T: VecElem> SymVector<T> {
    /// Creates an empty vector.
    pub fn new() -> SymVector<T> {
        SymVector {
            tail: None,
            len: 0,
            sym_len: 0,
            id: None,
        }
    }

    fn push_elem(&mut self, elem: Elem<T>) {
        if matches!(elem, Elem::Sym(_)) {
            self.sym_len += 1;
        }
        self.tail = Some(Arc::new(Node {
            elem,
            prev: self.tail.take(),
        }));
        self.len += 1;
    }

    /// Whether this vector's list physically shares its newest node with
    /// `other` (diagnostics: lets tests pin that clones are O(1)
    /// structure-sharing snapshots rather than deep copies).
    pub fn shares_storage_with(&self, other: &SymVector<T>) -> bool {
        match (&self.tail, &other.tail) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Appends a concrete element.
    pub fn push(&mut self, v: T) {
        self.push_elem(Elem::Concrete(v));
    }

    /// Appends the current value of a symbolic scalar.
    ///
    /// # Panics
    ///
    /// Panics if the scalar is symbolic but `T` cannot represent symbolic
    /// elements (`T::from_i64` is `None` for all inputs) — pushing a
    /// symbolic integer into, say, a `SymVector<String>` is a UDA type
    /// error.
    pub fn push_scalar(&mut self, s: SymScalar) {
        match s {
            SymScalar::Concrete(v) => {
                let v =
                    T::from_i64(v).expect("concrete scalar does not fit the vector element type");
                self.push_elem(Elem::Concrete(v));
            }
            sym @ SymScalar::Affine { .. } => {
                assert!(
                    T::from_i64(0).is_some(),
                    "vector element type cannot hold symbolic scalars"
                );
                self.push_elem(Elem::Sym(sym));
            }
        }
    }

    /// Appends the current value of a [`SymInt`].
    ///
    /// # Panics
    ///
    /// See [`SymVector::push_scalar`].
    pub fn push_int(&mut self, v: &SymInt) {
        self.push_scalar(v.as_scalar());
    }

    /// Appends the current value of a [`SymEnum`].
    ///
    /// # Panics
    ///
    /// See [`SymVector::push_scalar`].
    pub fn push_enum(&mut self, v: &SymEnum) {
        match v.concrete_value() {
            Some(c) => self.push_scalar(SymScalar::Concrete(i64::from(c))),
            None => {
                let field = v.field_id().expect("symbolic SymEnum outside engine state");
                self.push_scalar(SymScalar::Affine { field, a: 1, b: 0 });
            }
        }
    }

    /// Appends the value held by a [`SymPred`], if it has one.
    ///
    /// Returns `false` (appending nothing) when the predicate's value is
    /// concretely unset.
    pub fn push_pred<P: PredValue>(&mut self, v: &SymPred<P>) -> bool {
        match v.as_scalar() {
            Some(s) => {
                self.push_scalar(s);
                true
            }
            None => false,
        }
    }

    /// Number of elements appended so far (including any stitched prefix).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no element has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements in append order (allocates; diagnostics and tests).
    pub fn elems(&self) -> Vec<Elem<T>> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = &self.tail;
        while let Some(n) = cur {
            out.push(n.elem.clone());
            cur = &n.prev;
        }
        out.reverse();
        out
    }

    /// Extracts the elements, requiring all of them to be concrete.
    ///
    /// Used by `Result` functions, which run on a fully concretized state.
    pub fn concrete_elems(&self) -> Result<Vec<T>> {
        self.elems()
            .into_iter()
            .map(|e| match e {
                Elem::Concrete(v) => Ok(v),
                Elem::Sym(_) => Err(Error::Uda(
                    "vector still holds symbolic elements; result extraction requires a \
                     fully concrete state"
                        .into(),
                )),
            })
            .collect()
    }
}

impl<T: VecElem> SymField for SymVector<T> {
    fn make_symbolic(&mut self, id: FieldId) {
        // The unknown prefix lives in earlier chunks; the local vector
        // starts empty (hyperobject-style, §4.5).
        self.tail = None;
        self.len = 0;
        self.sym_len = 0;
        self.id = Some(id);
    }

    fn is_concrete(&self) -> bool {
        self.sym_len == 0
    }

    fn is_aggregate(&self) -> bool {
        true
    }

    fn transfer_eq(&self, other: &dyn SymField) -> bool {
        downcast::<SymVector<T>>(other).is_some_and(|o| self == o)
    }

    fn constraint_eq(&self, _other: &dyn SymField) -> bool {
        true // Vectors carry no path constraint.
    }

    fn constraint_overlaps(&self, _other: &dyn SymField) -> bool {
        true
    }

    fn union_constraint(&mut self, _other: &dyn SymField) -> bool {
        true
    }

    fn compose_onto(&mut self, prev: &dyn SymField, prev_all: &[&dyn SymField]) -> Result<bool> {
        let prev =
            downcast::<SymVector<T>>(prev).ok_or(Error::Uda("field type mismatch".into()))?;
        // Start from the earlier chunk's (shared) list and append our own
        // elements, substituting symbolic references through the earlier
        // path's transfers.
        let own = self.elems();
        let mut stitched = prev.clone();
        for e in own {
            match e {
                Elem::Concrete(_) => stitched.push_elem(e),
                Elem::Sym(s) => {
                    let SymScalar::Affine { field, .. } = s else {
                        unreachable!("Sym elements are always affine");
                    };
                    let t = prev_all
                        .get(field.index())
                        .and_then(|f| f.transfer())
                        .ok_or_else(|| {
                            Error::Uda(format!(
                                "vector element references field {} which has no scalar \
                                 transfer (was the value reported before it was ever set?)",
                                field.0
                            ))
                        })?;
                    match s.substitute(t)? {
                        SymScalar::Concrete(v) => {
                            let v = T::from_i64(v).ok_or_else(|| {
                                Error::Uda("concretized element does not fit type".into())
                            })?;
                            stitched.push_elem(Elem::Concrete(v));
                        }
                        sym => stitched.push_elem(Elem::Sym(sym)),
                    }
                }
            }
        }
        stitched.id = prev.id;
        *self = stitched;
        Ok(true)
    }

    fn transfer(&self) -> Option<ScalarTransfer> {
        None
    }

    fn encode_field(&self, buf: &mut Vec<u8>) {
        self.elems().encode(buf);
    }

    fn decode_field(&mut self, buf: &mut &[u8], id: FieldId) -> Result<(), WireError> {
        let elems = Vec::<Elem<T>>::decode(buf)?;
        self.tail = None;
        self.len = 0;
        self.sym_len = 0;
        for e in elems {
            self.push_elem(e);
        }
        self.id = Some(id);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn facts(&self) -> FieldFacts {
        let mut refs: Vec<FieldId> = self
            .elems()
            .iter()
            .filter_map(|e| match e {
                Elem::Sym(SymScalar::Affine { field, .. }) => Some(*field),
                _ => None,
            })
            .collect();
        refs.sort_unstable();
        refs.dedup();
        FieldFacts {
            kind: "vector",
            concrete: self.sym_len == 0,
            len: Some(self.len),
            symbolic_elems: Some(self.sym_len),
            refs,
            ..FieldFacts::default()
        }
    }

    fn perturb(&mut self) -> bool {
        // Append a sentinel element so any result that reads the vector
        // observes the change. Element types that cannot be fabricated
        // from an i64 stay unperturbed (the analyzer then assumes live).
        match T::from_i64(1) {
            Some(v) => {
                self.push(v);
                true
            }
            None => false,
        }
    }

    fn describe(&self) -> String {
        let items: Vec<String> = self
            .elems()
            .iter()
            .map(|e| match e {
                Elem::Concrete(v) => format!("{v:?}"),
                Elem::Sym(SymScalar::Affine { field, a, b }) => {
                    format!("{a}·x{}+{b}", field.0)
                }
                Elem::Sym(SymScalar::Concrete(v)) => format!("{v}"),
            })
            .collect();
        format!("[{}]", items.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_extract_concrete() {
        let mut v: SymVector<i64> = SymVector::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.concrete_elems().unwrap(), vec![1, 2]);
        assert!(v.is_concrete());
    }

    #[test]
    fn clone_is_structural_sharing() {
        let mut a: SymVector<i64> = SymVector::new();
        for i in 0..100 {
            a.push(i);
        }
        let mut b = a.clone();
        b.push(100);
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 101);
        assert_eq!(a.concrete_elems().unwrap(), (0..100).collect::<Vec<_>>());
        assert_eq!(b.concrete_elems().unwrap(), (0..101).collect::<Vec<_>>());
    }

    #[test]
    fn equality_with_and_without_sharing() {
        let mut a: SymVector<i64> = SymVector::new();
        a.push(1);
        a.push(2);
        let b = a.clone();
        assert_eq!(a, b);
        // Built independently: still equal.
        let mut c: SymVector<i64> = SymVector::new();
        c.push(1);
        c.push(2);
        assert_eq!(a, c);
        let mut d = a.clone();
        d.push(3);
        assert_ne!(a, d);
        // Divergent tails over a shared prefix.
        let mut e = a.clone();
        e.push(9);
        let mut f = a.clone();
        f.push(8);
        assert_ne!(e, f);
    }

    #[test]
    fn push_symbolic_int() {
        let mut count = SymInt::new(0);
        count.make_symbolic(FieldId(0));
        count += 5;
        let mut v: SymVector<i64> = SymVector::new();
        v.push_int(&count);
        assert!(!v.is_concrete());
        assert!(v.concrete_elems().is_err());
        assert_eq!(
            v.elems()[0],
            Elem::Sym(SymScalar::Affine {
                field: FieldId(0),
                a: 1,
                b: 5
            })
        );
    }

    #[test]
    #[should_panic(expected = "cannot hold symbolic scalars")]
    fn push_symbolic_into_string_vector_panics() {
        let mut count = SymInt::new(0);
        count.make_symbolic(FieldId(0));
        let mut v: SymVector<String> = SymVector::new();
        v.push_int(&count);
    }

    #[test]
    fn push_enum_and_pred() {
        let mut e = SymEnum::new(4, 1);
        let mut v: SymVector<i64> = SymVector::new();
        v.push_enum(&e);
        e.make_symbolic(FieldId(2));
        v.push_enum(&e);
        assert_eq!(v.elems()[0], Elem::Concrete(1));
        assert_eq!(
            v.elems()[1],
            Elem::Sym(SymScalar::Affine {
                field: FieldId(2),
                a: 1,
                b: 0
            })
        );

        let mut p: SymPred<i64> = SymPred::new(|a, b| a < b);
        assert!(!v.push_pred(&p), "unset pred appends nothing");
        p.set(9);
        assert!(v.push_pred(&p));
        assert_eq!(v.elems()[2], Elem::Concrete(9));
    }

    #[test]
    fn compose_stitches_and_concretizes() {
        // Earlier path: count ended as x + 2 (symbolic), vector [7].
        let mut prev_count = SymInt::new(0);
        prev_count.make_symbolic(FieldId(0));
        prev_count += 2;
        let mut prev_vec: SymVector<i64> = SymVector::new();
        prev_vec.make_symbolic(FieldId(1));
        prev_vec.push(7);

        // Later path: pushed its own symbolic count y·2 then a concrete 1.
        let mut later: SymVector<i64> = SymVector::new();
        later.make_symbolic(FieldId(1));
        later.push_scalar(SymScalar::Affine {
            field: FieldId(0),
            a: 2,
            b: 0,
        });
        later.push(1);

        let prev_all: Vec<&dyn SymField> = vec![&prev_count, &prev_vec];
        assert!(later.compose_onto(&prev_vec, &prev_all).unwrap());
        assert_eq!(
            later.elems(),
            vec![
                Elem::Concrete(7),
                // 2·y with y = x + 2 ⇒ 2x + 4.
                Elem::Sym(SymScalar::Affine {
                    field: FieldId(0),
                    a: 2,
                    b: 4
                }),
                Elem::Concrete(1),
            ]
        );

        // Composing again onto a concrete earlier state concretizes fully.
        let concrete_count = SymInt::new(10);
        let mut concrete_vec: SymVector<i64> = SymVector::new();
        concrete_vec.push(0);
        let prev_all: Vec<&dyn SymField> = vec![&concrete_count, &concrete_vec];
        let mut fin = later.clone();
        assert!(fin.compose_onto(&concrete_vec, &prev_all).unwrap());
        assert_eq!(fin.concrete_elems().unwrap(), vec![0, 7, 24, 1]);
    }

    #[test]
    fn compose_unset_pred_reference_errors() {
        let unset: SymPred<i64> = SymPred::new(|a, b| a < b);
        let mut prev_vec: SymVector<i64> = SymVector::new();
        prev_vec.make_symbolic(FieldId(1));
        let mut later: SymVector<i64> = SymVector::new();
        later.make_symbolic(FieldId(1));
        later.push_scalar(SymScalar::Affine {
            field: FieldId(0),
            a: 1,
            b: 0,
        });
        let prev_all: Vec<&dyn SymField> = vec![&unset, &prev_vec];
        assert!(later.compose_onto(&prev_vec, &prev_all).is_err());
    }

    #[test]
    fn make_symbolic_clears_local() {
        let mut v: SymVector<i64> = SymVector::new();
        v.push(1);
        v.make_symbolic(FieldId(0));
        assert!(v.is_empty());
        assert!(v.is_aggregate());
    }

    #[test]
    fn transfer_eq_compares_contents() {
        let mut a: SymVector<i64> = SymVector::new();
        let mut b: SymVector<i64> = SymVector::new();
        assert!(a.transfer_eq(&b));
        a.push(1);
        assert!(!a.transfer_eq(&b));
        b.push(1);
        assert!(a.transfer_eq(&b));
        assert!(a.constraint_eq(&b));
        assert!(a.constraint_overlaps(&b));
        assert!(a.union_constraint(&b));
    }

    #[test]
    fn wire_roundtrip() {
        let mut v: SymVector<i64> = SymVector::new();
        v.push(5);
        v.push_scalar(SymScalar::Affine {
            field: FieldId(0),
            a: -1,
            b: 3,
        });
        let mut buf = Vec::new();
        v.encode_field(&mut buf);
        let mut back: SymVector<i64> = SymVector::new();
        let mut rd = &buf[..];
        back.decode_field(&mut rd, FieldId(9)).unwrap();
        assert!(rd.is_empty());
        assert_eq!(back.elems(), v.elems());
        assert!(!back.is_concrete(), "sym_len restored by decode");
    }

    #[test]
    fn string_vector_concrete_roundtrip() {
        let mut v: SymVector<String> = SymVector::new();
        v.push("abc".to_string());
        let mut buf = Vec::new();
        v.encode_field(&mut buf);
        let mut back: SymVector<String> = SymVector::new();
        back.decode_field(&mut &buf[..], FieldId(0)).unwrap();
        assert_eq!(back.concrete_elems().unwrap(), vec!["abc".to_string()]);
    }

    #[test]
    fn describe_shows_symbolic_elements() {
        let mut v: SymVector<i64> = SymVector::new();
        v.push(5);
        v.push_scalar(SymScalar::Affine {
            field: FieldId(0),
            a: 2,
            b: 1,
        });
        assert_eq!(v.describe(), "[5, 2·x0+1]");
    }

    #[test]
    fn deep_list_drop_does_not_overflow_stack() {
        // A naive recursive Drop on the cons list would blow the stack.
        let mut v: SymVector<i64> = SymVector::new();
        for i in 0..200_000 {
            v.push(i);
        }
        drop(v);
    }
}
