//! The UDA programming model (§2.1 of the paper) and reference runners.
//!
//! SYMPLE implements every aggregation with the template
//!
//! ```text
//! V Aggregate(K key, List<E> input) {
//!     State s;                      // init
//!     foreach (e in input) Update(s, e);
//!     return Result(s);
//! }
//! ```
//!
//! The user provides the initial state, the per-record `Update`, and the
//! pure `Result` extractor. All loop-carried state must live in the
//! [`crate::SymState`] struct; `Update` must be deterministic and free of
//! side effects outside the state.

use crate::compose::apply_chain;
use crate::ctx::SymCtx;
use crate::engine::{EngineConfig, SymbolicExecutor};
use crate::error::Result;
use crate::state::SymState;
use crate::summary::SummaryChain;

/// A user-defined aggregation over an ordered sequence of records.
pub trait Uda: Send + Sync {
    /// The aggregation state (all loop-carried dependences).
    type State: SymState;
    /// The per-record event type produced by the groupby.
    type Event;
    /// The aggregation result type.
    type Output;

    /// The initial (concrete) aggregation state.
    fn init(&self) -> Self::State;

    /// Updates the state for one record.
    ///
    /// Must be deterministic, must capture all side effects in the state,
    /// and must not contain loops whose trip count depends on symbolic
    /// state (§5.2 — such loops make path exploration unbounded).
    fn update(&self, s: &mut Self::State, ctx: &mut SymCtx, e: &Self::Event);

    /// Extracts the result from a final, fully concrete state.
    ///
    /// Must be pure (§2.1). Runs with a concrete-mode context, so any
    /// branch on still-symbolic state is reported as an error.
    fn result(&self, s: &Self::State, ctx: &mut SymCtx) -> Self::Output;
}

/// Runs a UDA concretely over `events`, returning the final state.
///
/// This is both the sequential baseline and what SYMPLE's *first* mapper
/// does (it knows the true initial state, §2.2).
pub fn run_concrete_state<'e, U: Uda>(
    uda: &U,
    events: impl IntoIterator<Item = &'e U::Event>,
) -> Result<U::State>
where
    U::Event: 'e,
{
    let mut s = uda.init();
    let mut ctx = SymCtx::concrete();
    for e in events {
        uda.update(&mut s, &mut ctx, e);
        if let Some(err) = ctx.take_error() {
            return Err(err);
        }
    }
    Ok(s)
}

/// Extracts the UDA result from a final state, checking purity errors.
pub fn extract_result<U: Uda>(uda: &U, s: &U::State) -> Result<U::Output> {
    let mut ctx = SymCtx::concrete();
    let out = uda.result(s, &mut ctx);
    match ctx.take_error() {
        Some(err) => Err(err),
        None => Ok(out),
    }
}

/// Runs a UDA sequentially over `events` — the reference semantics every
/// symbolic execution must reproduce exactly.
pub fn run_sequential<'e, U: Uda>(
    uda: &U,
    events: impl IntoIterator<Item = &'e U::Event>,
) -> Result<U::Output>
where
    U::Event: 'e,
{
    let s = run_concrete_state(uda, events)?;
    extract_result(uda, &s)
}

/// Symbolically executes one chunk, returning its summary chain.
pub fn summarize_chunk<'e, U: Uda>(
    uda: &U,
    events: impl IntoIterator<Item = &'e U::Event>,
    cfg: &EngineConfig,
) -> Result<SummaryChain<U::State>>
where
    U::Event: 'e,
{
    let mut exec = SymbolicExecutor::new(uda, *cfg);
    exec.feed_all(events)?;
    Ok(exec.finish().0)
}

/// End-to-end chunked execution (§2.2, Figure 2): splits `input` into
/// `num_chunks` contiguous chunks, runs the first concretely and the rest
/// symbolically (as parallel mappers would), then composes in order.
///
/// The output provably equals [`run_sequential`] on the same input — the
/// soundness property the property-based tests exercise.
pub fn run_chunked_symbolic<U: Uda>(
    uda: &U,
    input: &[U::Event],
    num_chunks: usize,
    cfg: &EngineConfig,
) -> Result<U::Output> {
    let num_chunks = num_chunks.max(1);
    let chunk_len = input.len().div_ceil(num_chunks).max(1);
    let mut chunks = input.chunks(chunk_len);

    // First chunk: concrete partial aggregation.
    let first = chunks.next().unwrap_or(&[]);
    let mut state = run_concrete_state(uda, first)?;

    // Remaining chunks: symbolic summaries, then in-order application.
    for chunk in chunks {
        let chain = summarize_chunk(uda, chunk, cfg)?;
        state = apply_chain(&chain, &state)?;
    }
    extract_result(uda, &state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_sym_state;
    use crate::types::sym_bool::SymBool;
    use crate::types::sym_int::SymInt;
    use crate::types::sym_vector::SymVector;

    /// The Figure 1 UDA, reduced: count events above a threshold since the
    /// last "reset" marker, reporting counts > 2 at each reset.
    struct Sessions;

    #[derive(Clone, Debug)]
    struct SessState {
        active: SymBool,
        count: SymInt,
        out: SymVector<i64>,
    }
    impl_sym_state!(SessState { active, count, out });

    impl Uda for Sessions {
        type State = SessState;
        type Event = i64;
        type Output = Vec<i64>;
        fn init(&self) -> SessState {
            SessState {
                active: SymBool::new(false),
                count: SymInt::new(0),
                out: SymVector::new(),
            }
        }
        fn update(&self, s: &mut SessState, ctx: &mut SymCtx, e: &i64) {
            if *e == 0 {
                // Session start marker.
                s.active.assign(true);
                s.count.assign(0);
            } else if *e == -1 {
                // Session end marker: report long sessions.
                if s.active.get(ctx) {
                    if s.count.gt(ctx, 2) {
                        s.out.push_int(&s.count);
                    }
                    s.active.assign(false);
                }
            } else if s.active.get(ctx) {
                s.count += 1;
            }
        }
        fn result(&self, s: &SessState, _ctx: &mut SymCtx) -> Vec<i64> {
            s.out.concrete_elems().expect("concrete at result time")
        }
    }

    #[test]
    fn sequential_reference() {
        let input = [5, 0, 1, 1, 1, 1, -1, 0, 1, -1, 0, 1, 1, 1, -1];
        let out = run_sequential(&Sessions, input.iter()).unwrap();
        assert_eq!(out, vec![4, 3]);
    }

    #[test]
    fn chunked_matches_sequential_all_splits() {
        let input = [5, 0, 1, 1, 1, 1, -1, 0, 1, -1, 0, 1, 1, 1, -1];
        let expect = run_sequential(&Sessions, input.iter()).unwrap();
        for n in 1..=input.len() {
            let got = run_chunked_symbolic(&Sessions, &input, n, &EngineConfig::default()).unwrap();
            assert_eq!(got, expect, "chunks = {n}");
        }
    }

    #[test]
    fn empty_input() {
        let out = run_chunked_symbolic(&Sessions, &[], 4, &EngineConfig::default()).unwrap();
        assert!(out.is_empty());
        assert_eq!(
            run_sequential(&Sessions, [].iter()).unwrap(),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn chunk_boundary_mid_session() {
        // A session straddling every chunk boundary still reports exactly
        // once with the correct count.
        let input = [0, 1, 1, 1, 1, 1, 1, -1];
        for n in 2..=4 {
            let got = run_chunked_symbolic(&Sessions, &input, n, &EngineConfig::default()).unwrap();
            assert_eq!(got, vec![6], "chunks = {n}");
        }
    }

    #[test]
    fn summarize_chunk_stats() {
        let chain = summarize_chunk(&Sessions, [1, -1].iter(), &EngineConfig::default()).unwrap();
        assert!(chain.total_paths() >= 1);
    }
}
