//! Runtime verification of user-written UDAs (§5.3).
//!
//! C++ SYMPLE "relies on the user to provide code in the following pattern"
//! and statically checks what it can with the type system; the Rust type
//! system already enforces that all loop-carried state lives in symbolic
//! types. What *cannot* be checked statically in either language are the
//! behavioural contracts of §2.1 and §5.3:
//!
//! * `Update` must be **deterministic** — the engine replays it under
//!   different choice vectors and assumes identical branch structure;
//! * `Update` must capture **all side effects in the state** (no hidden
//!   globals that would diverge between concrete and symbolic runs);
//! * `Result` must be **pure**;
//! * symbolic execution from unknown state must agree with concrete
//!   execution — the soundness that all of the above protect.
//!
//! [`validate_uda`] probes these contracts on caller-provided sample
//! events and reports the first violation, turning silent wrong answers
//! into actionable errors during UDA development.

use crate::compose::apply_chain;
use crate::ctx::SymCtx;
use crate::engine::{EngineConfig, SymbolicExecutor};
use crate::error::Result;
use crate::state::{state_is_concrete, SymState};
use crate::uda::{extract_result, Uda};

/// Problems [`validate_uda`] can detect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdaViolation {
    /// `init()` returned state with symbolic fields.
    InitNotConcrete,
    /// Two `update` runs over the same events produced different states —
    /// the update function reads something outside the state.
    NonDeterministicUpdate {
        /// Index of the first event after which the states diverged.
        at_event: usize,
    },
    /// Two `result` calls on the same state disagreed.
    ImpureResult,
    /// Symbolic execution of a chunk, applied to the concrete prefix
    /// state, disagreed with direct concrete execution.
    SymbolicMismatch {
        /// The chunk boundary (event index) at which the check failed.
        split_at: usize,
    },
}

impl std::fmt::Display for UdaViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UdaViolation::InitNotConcrete => {
                write!(f, "init() must return fully concrete state")
            }
            UdaViolation::NonDeterministicUpdate { at_event } => write!(
                f,
                "update is not deterministic (diverged after event {at_event}); \
                 does it read state outside the SymState struct?"
            ),
            UdaViolation::ImpureResult => write!(f, "result is not pure"),
            UdaViolation::SymbolicMismatch { split_at } => write!(
                f,
                "symbolic execution disagrees with concrete execution when the \
                 input is split at event {split_at}"
            ),
        }
    }
}

/// Compares two states field-wise (transfer + constraint).
fn states_eq<S: SymState>(a: &S, b: &S) -> bool {
    let fa = a.fields_ref();
    let fb = b.fields_ref();
    fa.len() == fb.len()
        && fa
            .iter()
            .zip(&fb)
            .all(|(x, y)| x.transfer_eq(*y) && x.constraint_eq(*y))
}

/// Probes a UDA's behavioural contracts on sample events.
///
/// Runs the checks listed in the module docs and returns the first
/// violation found, `Ok(None)` when everything holds, or `Err` when the
/// UDA itself errored (overflow, explosion) — which is a legitimate
/// outcome, not a contract violation.
///
/// # Examples
///
/// ```
/// use symple_core::prelude::*;
/// use symple_core::validate::validate_uda;
///
/// # struct CountUda;
/// # #[derive(Clone, Debug)]
/// # struct S { n: SymInt }
/// # impl_sym_state!(S { n });
/// # impl Uda for CountUda {
/// #     type State = S;
/// #     type Event = i64;
/// #     type Output = i64;
/// #     fn init(&self) -> S { S { n: SymInt::new(0) } }
/// #     fn update(&self, s: &mut S, _ctx: &mut SymCtx, _e: &i64) { s.n += 1; }
/// #     fn result(&self, s: &S, _ctx: &mut SymCtx) -> i64 {
/// #         s.n.concrete_value().unwrap()
/// #     }
/// # }
/// let verdict = validate_uda(&CountUda, &[1, 2, 3, 4], &EngineConfig::default()).unwrap();
/// assert!(verdict.is_none());
/// ```
pub fn validate_uda<U>(
    uda: &U,
    sample_events: &[U::Event],
    cfg: &EngineConfig,
) -> Result<Option<UdaViolation>>
where
    U: Uda,
    U::Output: PartialEq,
{
    // 1. init() must be concrete.
    let init = uda.init();
    if !state_is_concrete(&init) {
        return Ok(Some(UdaViolation::InitNotConcrete));
    }

    // 2. Determinism: run the same prefix twice, comparing after each event.
    let mut a = uda.init();
    let mut b = uda.init();
    let mut ctx_a = SymCtx::concrete();
    let mut ctx_b = SymCtx::concrete();
    for (i, e) in sample_events.iter().enumerate() {
        uda.update(&mut a, &mut ctx_a, e);
        uda.update(&mut b, &mut ctx_b, e);
        if let Some(err) = ctx_a.take_error() {
            return Err(err);
        }
        let _ = ctx_b.take_error();
        if !states_eq(&a, &b) {
            return Ok(Some(UdaViolation::NonDeterministicUpdate { at_event: i }));
        }
    }

    // 3. Result purity: two extractions must agree.
    let r1 = extract_result(uda, &a)?;
    let r2 = extract_result(uda, &a)?;
    if r1 != r2 {
        return Ok(Some(UdaViolation::ImpureResult));
    }

    // 4. Soundness probe: split at a few points; symbolic suffix applied
    //    to the concrete prefix must equal the full concrete run.
    let n = sample_events.len();
    let expected = extract_result(uda, &a)?;
    for split_at in [n / 3, n / 2, (2 * n) / 3] {
        if split_at == 0 || split_at >= n {
            continue;
        }
        let mut prefix_state = uda.init();
        let mut ctx = SymCtx::concrete();
        for e in &sample_events[..split_at] {
            uda.update(&mut prefix_state, &mut ctx, e);
            if let Some(err) = ctx.take_error() {
                return Err(err);
            }
        }
        let mut exec = SymbolicExecutor::new(uda, *cfg);
        exec.feed_all(&sample_events[split_at..])?;
        let (chain, _) = exec.finish();
        let combined = apply_chain(&chain, &prefix_state)?;
        let got = extract_result(uda, &combined)?;
        if got != expected {
            return Ok(Some(UdaViolation::SymbolicMismatch { split_at }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_sym_state;
    use crate::types::sym_int::SymInt;
    use std::sync::atomic::{AtomicI64, Ordering};

    #[derive(Clone, Debug)]
    struct S {
        n: SymInt,
    }
    impl_sym_state!(S { n });

    struct GoodUda;
    impl Uda for GoodUda {
        type State = S;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> S {
            S { n: SymInt::new(0) }
        }
        fn update(&self, s: &mut S, ctx: &mut SymCtx, e: &i64) {
            if s.n.lt(ctx, 100) {
                s.n.add(ctx, *e);
            }
        }
        fn result(&self, s: &S, _ctx: &mut SymCtx) -> i64 {
            s.n.concrete_value().unwrap_or(0)
        }
    }

    #[test]
    fn good_uda_passes() {
        let events: Vec<i64> = (0..40).map(|i| i % 7).collect();
        let verdict = validate_uda(&GoodUda, &events, &EngineConfig::default()).unwrap();
        assert_eq!(verdict, None);
    }

    /// A deliberately broken UDA: reads a global counter.
    struct GlobalReader(AtomicI64);
    impl Uda for GlobalReader {
        type State = S;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> S {
            S { n: SymInt::new(0) }
        }
        fn update(&self, s: &mut S, ctx: &mut SymCtx, _e: &i64) {
            // Side effect outside the state: the cardinal sin of §2.1.
            let hidden = self.0.fetch_add(1, Ordering::Relaxed);
            s.n.add(ctx, hidden % 3);
        }
        fn result(&self, s: &S, _ctx: &mut SymCtx) -> i64 {
            s.n.concrete_value().unwrap_or(0)
        }
    }

    #[test]
    fn hidden_global_state_detected() {
        let uda = GlobalReader(AtomicI64::new(0));
        let events = vec![1i64; 10];
        let verdict = validate_uda(&uda, &events, &EngineConfig::default()).unwrap();
        assert!(
            matches!(verdict, Some(UdaViolation::NonDeterministicUpdate { .. })),
            "{verdict:?}"
        );
        assert!(verdict.unwrap().to_string().contains("deterministic"));
    }

    #[test]
    fn erroring_uda_reports_error_not_violation() {
        struct OverflowUda;
        impl Uda for OverflowUda {
            type State = S;
            type Event = i64;
            type Output = i64;
            fn init(&self) -> S {
                S {
                    n: SymInt::new(i64::MAX - 1),
                }
            }
            fn update(&self, s: &mut S, ctx: &mut SymCtx, _e: &i64) {
                s.n.add(ctx, 1);
            }
            fn result(&self, s: &S, _ctx: &mut SymCtx) -> i64 {
                s.n.concrete_value().unwrap_or(0)
            }
        }
        let events = vec![0i64; 5];
        let out = validate_uda(&OverflowUda, &events, &EngineConfig::default());
        assert!(matches!(
            out,
            Err(crate::error::Error::ArithmeticOverflow { .. })
        ));
    }

    #[test]
    fn empty_sample_is_fine() {
        let verdict = validate_uda(&GoodUda, &[], &EngineConfig::default()).unwrap();
        assert_eq!(verdict, None);
    }
}
