//! Compact binary wire format for symbolic summaries and shuffle records.
//!
//! §2.3 of the paper calls out compact serialization of symbolic expressions
//! as a first-order design requirement: summaries travel the network in the
//! MapReduce shuffle, and the whole point of SYMPLE is to shrink that
//! shuffle. This module implements a small LEB128-style varint codec with
//! zigzag encoding for signed values, plus a [`Wire`] trait implemented for
//! the primitives, tuples and containers that records and summaries are
//! built from.
//!
//! The format is self-contained and deterministic: equal values encode to
//! equal bytes, which the shuffle relies on for byte-accurate accounting.
//!
//! # Examples
//!
//! ```
//! use symple_core::wire::Wire;
//!
//! let mut buf = Vec::new();
//! (42i64, "hello".to_string()).encode(&mut buf);
//! let mut rd = &buf[..];
//! let back = <(i64, String)>::decode(&mut rd).unwrap();
//! assert_eq!(back, (42, "hello".to_string()));
//! assert!(rd.is_empty());
//! ```

use std::fmt;

/// Errors produced while decoding the wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// A varint ran longer than the maximum 10 bytes for a `u64`.
    VarintOverflow,
    /// A tag or discriminant byte had an invalid value.
    InvalidTag(u8),
    /// A length prefix exceeded the sanity bound.
    LengthOverflow(u64),
    /// A string payload was not valid UTF-8.
    InvalidUtf8,
    /// A buffer held more bytes than its declared contents.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            WireError::InvalidTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            WireError::LengthOverflow(n) => write!(f, "length prefix {n} exceeds sanity bound"),
            WireError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            WireError::TrailingBytes => write!(f, "buffer holds bytes past its declared contents"),
        }
    }
}

impl std::error::Error for WireError {}

/// Sanity bound on decoded collection lengths (guards corrupted buffers).
const MAX_LEN: u64 = 1 << 32;

/// Writes `v` as an unsigned LEB128 varint.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint, advancing `buf`.
pub fn get_uvarint(buf: &mut &[u8]) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for i in 0..10 {
        let Some(&byte) = buf.get(i) else {
            return Err(WireError::UnexpectedEof);
        };
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            *buf = &buf[i + 1..];
            return Ok(v);
        }
        shift += 7;
    }
    Err(WireError::VarintOverflow)
}

/// Zigzag-encodes a signed value so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes `v` as a zigzag varint.
pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
    put_uvarint(buf, zigzag(v));
}

/// Reads a zigzag varint.
pub fn get_ivarint(buf: &mut &[u8]) -> Result<i64, WireError> {
    Ok(unzigzag(get_uvarint(buf)?))
}

/// Reads exactly `n` bytes, advancing `buf`.
pub fn get_bytes<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::UnexpectedEof);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

/// Reads a collection length prefix with the sanity bound applied.
pub fn get_len(buf: &mut &[u8]) -> Result<usize, WireError> {
    let n = get_uvarint(buf)?;
    if n > MAX_LEN {
        return Err(WireError::LengthOverflow(n));
    }
    Ok(n as usize)
}

/// Reads a length-prefixed string *in place*: the payload is validated as
/// UTF-8 where it sits in `buf` and returned as a borrowed `&str` — no
/// copy, no allocation. This is the zero-copy tier under both
/// [`String::decode`] (which adds exactly one allocation to take
/// ownership) and `<&str as WireBorrow>::decode_borrowed`.
pub fn get_str<'a>(buf: &mut &'a [u8]) -> Result<&'a str, WireError> {
    let n = get_len(buf)?;
    let b = get_bytes(buf, n)?;
    std::str::from_utf8(b).map_err(|_| WireError::InvalidUtf8)
}

/// Writes a length-prefixed string slice, byte-compatible with
/// [`String::encode`].
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Writes a length-prefixed byte slice: one length prefix, payload
/// verbatim. Note this framing differs from `Vec::<u8>::encode`, which
/// varint-encodes each element (bytes ≥ 0x80 would take two bytes);
/// the borrowed record tier uses this verbatim framing so payloads can
/// be returned without copying.
pub fn put_raw_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_uvarint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

/// Reads a length-prefixed byte slice in place (inverse of
/// [`put_raw_bytes`]).
pub fn get_raw_bytes<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8], WireError> {
    let n = get_len(buf)?;
    get_bytes(buf, n)
}

/// Values that serialize to the SYMPLE wire format.
///
/// Implemented for the primitives and containers that shuffle records,
/// keys, and symbolic summaries are built from. Implementations must be
/// *round-trip exact*: `decode(encode(v)) == v`.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a value, advancing `buf` past it.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Convenience: encodes into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Number of bytes `self` occupies on the wire.
    fn wire_len(&self) -> usize {
        self.to_wire().len()
    }
}

macro_rules! wire_unsigned {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                put_uvarint(buf, *self as u64);
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                let v = get_uvarint(buf)?;
                <$t>::try_from(v).map_err(|_| WireError::LengthOverflow(v))
            }
        }
    )*};
}

macro_rules! wire_signed {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                put_ivarint(buf, *self as i64);
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                let v = get_ivarint(buf)?;
                <$t>::try_from(v).map_err(|_| WireError::LengthOverflow(v as u64))
            }
        }
    )*};
}

wire_unsigned!(u8, u16, u32, u64, usize);
wire_signed!(i8, i16, i32, i64, isize);

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match get_bytes(buf, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let b = get_bytes(buf, 8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_uvarint(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        // Validate in place on the borrowed tier, then take ownership with
        // a single exact-capacity allocation (`to_vec` + `from_utf8` used
        // to copy twice on the error-checking path).
        Ok(get_str(buf)?.to_owned())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match get_bytes(buf, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_uvarint(buf, self.len() as u64);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = get_len(buf)?;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                Ok(($($name::decode(buf)?,)+))
            }
        }
    };
}

wire_tuple!(A: 0);
wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Zero-copy decoding tier: values that can be decoded *borrowing* from
/// the wire buffer instead of owning their payload.
///
/// For every pair of [`Wire`] and `WireBorrow` impls over the same
/// framing (`String` / `&str`), the two tiers are value-equal on every
/// buffer: `T::decode(b)` succeeds iff `B::decode_borrowed(b)` succeeds,
/// with equal values and equal cursor advance (pinned by property tests).
/// Variable-length payloads (`&str`, `&[u8]`) are validated and returned
/// in place — the only allocation in a borrowed decode chain is whatever
/// the caller later chooses to own.
pub trait WireBorrow<'a>: Sized {
    /// Decodes a value that may borrow from `buf`, advancing it.
    fn decode_borrowed(buf: &mut &'a [u8]) -> Result<Self, WireError>;
}

/// Fixed-size primitives have nothing to borrow; the borrowed tier is
/// the owned tier.
macro_rules! wire_borrow_owned {
    ($($t:ty),*) => {$(
        impl<'a> WireBorrow<'a> for $t {
            fn decode_borrowed(buf: &mut &'a [u8]) -> Result<Self, WireError> {
                <$t as Wire>::decode(buf)
            }
        }
    )*};
}

wire_borrow_owned!(
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    bool,
    f64,
    ()
);

impl<'a> WireBorrow<'a> for &'a str {
    fn decode_borrowed(buf: &mut &'a [u8]) -> Result<Self, WireError> {
        get_str(buf)
    }
}

impl<'a> WireBorrow<'a> for &'a [u8] {
    fn decode_borrowed(buf: &mut &'a [u8]) -> Result<Self, WireError> {
        get_raw_bytes(buf)
    }
}

impl<'a, T: WireBorrow<'a>> WireBorrow<'a> for Option<T> {
    fn decode_borrowed(buf: &mut &'a [u8]) -> Result<Self, WireError> {
        match get_bytes(buf, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode_borrowed(buf)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

macro_rules! wire_borrow_tuple {
    ($($name:ident),+) => {
        impl<'a, $($name: WireBorrow<'a>),+> WireBorrow<'a> for ($($name,)+) {
            fn decode_borrowed(buf: &mut &'a [u8]) -> Result<Self, WireError> {
                Ok(($($name::decode_borrowed(buf)?,)+))
            }
        }
    };
}

wire_borrow_tuple!(A);
wire_borrow_tuple!(A, B);
wire_borrow_tuple!(A, B, C);
wire_borrow_tuple!(A, B, C, D);
wire_borrow_tuple!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let buf = v.to_wire();
        let mut rd = &buf[..];
        let back = T::decode(&mut rd).unwrap();
        assert_eq!(back, v);
        assert!(rd.is_empty(), "trailing bytes after decoding {v:?}");
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut rd = &buf[..];
            assert_eq!(get_uvarint(&mut rd).unwrap(), v);
            assert!(rd.is_empty());
        }
    }

    #[test]
    fn varint_compactness() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 5);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_ivarint(&mut buf, -3);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(i32::MIN);
        roundtrip(-1i8);
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.25f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip("héllo wörld".to_string());
        roundtrip(String::new());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(Some(42i64));
        roundtrip(Option::<i64>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<i64>::new());
        roundtrip((1u32, -5i64, "k".to_string()));
        roundtrip(vec![(1u64, true), (2, false)]);
    }

    #[test]
    fn decode_eof_errors() {
        let mut rd: &[u8] = &[];
        assert_eq!(u64::decode(&mut rd), Err(WireError::UnexpectedEof));
        let mut rd: &[u8] = &[0x80];
        assert_eq!(u64::decode(&mut rd), Err(WireError::UnexpectedEof));
        let mut rd: &[u8] = &[2, b'a'];
        assert_eq!(String::decode(&mut rd), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn decode_bad_tags() {
        let mut rd: &[u8] = &[7];
        assert_eq!(bool::decode(&mut rd), Err(WireError::InvalidTag(7)));
        let mut rd: &[u8] = &[9, 1];
        assert_eq!(Option::<u8>::decode(&mut rd), Err(WireError::InvalidTag(9)));
    }

    #[test]
    fn varint_overflow_rejected() {
        let mut rd: &[u8] = &[0xff; 11];
        assert_eq!(get_uvarint(&mut rd), Err(WireError::VarintOverflow));
    }

    #[test]
    fn narrowing_rejects_oversized() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::from(u32::MAX) + 1);
        let mut rd = &buf[..];
        assert!(u32::decode(&mut rd).is_err());
    }

    #[test]
    fn wire_len_matches() {
        let v = vec![1i64, -200, 3];
        assert_eq!(v.wire_len(), v.to_wire().len());
    }

    #[test]
    fn string_decode_allocates_exactly_once() {
        // The owned tier validates in place and then makes one
        // exact-capacity allocation: any spare capacity would betray an
        // intermediate buffer (the old to_vec + from_utf8 path grew a
        // Vec first and converted second).
        for s in ["", "a", "héllo wörld", &"x".repeat(4096)] {
            let buf = s.to_string().to_wire();
            let mut rd = &buf[..];
            let out = String::decode(&mut rd).unwrap();
            assert_eq!(out, s);
            assert_eq!(
                out.capacity(),
                out.len(),
                "decode of {:?} over-allocated: cap {} for len {}",
                s,
                out.capacity(),
                out.len()
            );
        }
    }

    #[test]
    fn borrowed_str_points_into_buffer() {
        let buf = "symple".to_string().to_wire();
        let mut rd = &buf[..];
        let s = <&str>::decode_borrowed(&mut rd).unwrap();
        assert_eq!(s, "symple");
        assert!(rd.is_empty());
        // Zero-copy: the &str must alias the wire buffer itself.
        let payload = &buf[1..];
        assert_eq!(s.as_bytes().as_ptr(), payload.as_ptr());
    }

    #[test]
    fn borrowed_matches_owned_on_errors() {
        // Truncated payload.
        let mut rd: &[u8] = &[5, b'a', b'b'];
        assert_eq!(
            <&str>::decode_borrowed(&mut rd),
            Err(WireError::UnexpectedEof)
        );
        // Invalid UTF-8 rejected without allocating.
        let mut rd: &[u8] = &[2, 0xff, 0xfe];
        assert_eq!(
            <&str>::decode_borrowed(&mut rd),
            Err(WireError::InvalidUtf8)
        );
        let mut rd: &[u8] = &[2, 0xff, 0xfe];
        assert_eq!(String::decode(&mut rd), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn borrowed_raw_bytes_roundtrip() {
        let mut buf = Vec::new();
        put_raw_bytes(&mut buf, &[0x80, 0xff, 0]);
        let mut rd = &buf[..];
        let b = <&[u8]>::decode_borrowed(&mut rd).unwrap();
        assert_eq!(b, &[0x80, 0xff, 0]);
        assert!(rd.is_empty());
        // Verbatim framing: high bytes occupy one byte each.
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn borrowed_tuple_mixes_tiers() {
        let mut buf = Vec::new();
        42u64.encode(&mut buf);
        put_str(&mut buf, "key");
        true.encode(&mut buf);
        let mut rd = &buf[..];
        let (n, s, f) = <(u64, &str, bool)>::decode_borrowed(&mut rd).unwrap();
        assert_eq!((n, s, f), (42, "key", true));
        assert!(rd.is_empty());
    }

    #[test]
    fn borrowed_option_str() {
        let buf = Some("v".to_string()).to_wire();
        let mut rd = &buf[..];
        assert_eq!(Option::<&str>::decode_borrowed(&mut rd), Ok(Some("v")));
        let buf = Option::<String>::None.to_wire();
        let mut rd = &buf[..];
        assert_eq!(Option::<&str>::decode_borrowed(&mut rd), Ok(None));
    }
}
