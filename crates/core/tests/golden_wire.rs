//! Golden-file tests for the summary wire format: one encoded
//! [`SummaryChain`] per symbolic type family, with the exact bytes
//! checked in under `tests/golden/*.hex`.
//!
//! The wire format is a compatibility surface — map outputs produced by
//! one build are decoded by another — so format changes must be loud and
//! deliberate. If an encoding change is intentional, regenerate with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p symple-core --test golden_wire
//! ```
//!
//! and commit the updated `.hex` files alongside the change.

use symple_core::compose::apply_chain;
use symple_core::engine::EngineConfig;
use symple_core::impl_sym_state;
use symple_core::prelude::*;
use symple_core::summary::SummaryChain;
use symple_core::types::sym_enum::SymEnum;
use symple_core::types::sym_minmax::{Extremum, SymMinMax};
use symple_core::uda::{extract_result, summarize_chunk, Uda};

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn from_hex(hex: &str) -> Vec<u8> {
    let hex = hex.trim();
    assert!(hex.len().is_multiple_of(2), "odd hex length");
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
        .collect()
}

/// Encodes the chain a UDA produces for `events`, checks it against the
/// checked-in golden bytes, and proves the golden bytes decode to a chain
/// with identical semantics (same result from the initial state) and a
/// byte-identical re-encoding.
fn check_golden<U: Uda>(uda: &U, events: &[U::Event], golden_hex: &str, name: &str)
where
    U::Output: std::fmt::Debug + PartialEq,
{
    let chain = summarize_chunk(uda, events.iter(), &EngineConfig::default()).unwrap();
    let mut bytes = Vec::new();
    chain.encode(&mut bytes);

    if std::env::var_os("REGEN_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{name}.hex", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, format!("{}\n", to_hex(&bytes))).unwrap();
        return;
    }

    assert_eq!(
        to_hex(&bytes),
        golden_hex.trim(),
        "{name}: wire encoding changed — if intentional, regenerate with \
         REGEN_GOLDEN=1 and commit the new golden file"
    );

    // The golden bytes decode, apply identically, and re-encode
    // canonically.
    let template = uda.init();
    let golden_bytes = from_hex(golden_hex);
    let mut rd = &golden_bytes[..];
    let decoded = SummaryChain::<U::State>::decode(&template, &mut rd).unwrap();
    assert!(rd.is_empty(), "{name}: trailing bytes after decode");
    let run = |c: &SummaryChain<U::State>| {
        extract_result(uda, &apply_chain(c, &uda.init()).unwrap()).unwrap()
    };
    assert_eq!(
        run(&decoded),
        run(&chain),
        "{name}: decoded chain behaves differently"
    );
    let mut re = Vec::new();
    decoded.encode(&mut re);
    assert_eq!(re, golden_bytes, "{name}: re-encoding not canonical");
}

// ---------------------------------------------------------------- SymInt

struct IntUda;
#[derive(Clone, Debug)]
struct IntState {
    sum: SymInt,
}
impl_sym_state!(IntState { sum });
impl Uda for IntUda {
    type State = IntState;
    type Event = i64;
    type Output = i64;
    fn init(&self) -> IntState {
        IntState {
            sum: SymInt::new(0),
        }
    }
    fn update(&self, s: &mut IntState, ctx: &mut SymCtx, e: &i64) {
        s.sum.add(ctx, *e);
        if s.sum.gt(ctx, 100) {
            s.sum.assign(0);
        }
    }
    fn result(&self, s: &IntState, _ctx: &mut SymCtx) -> i64 {
        s.sum.concrete_value().unwrap_or(-1)
    }
}

#[test]
fn golden_sym_int() {
    check_golden(
        &IntUda,
        &[40, 50, 7, -3],
        include_str!("golden/sym_int.hex"),
        "sym_int",
    );
}

// --------------------------------------------------------------- SymBool

struct BoolUda;
#[derive(Clone, Debug)]
struct BoolState {
    all_even: SymBool,
}
impl_sym_state!(BoolState { all_even });
impl Uda for BoolUda {
    type State = BoolState;
    type Event = i64;
    type Output = bool;
    fn init(&self) -> BoolState {
        BoolState {
            all_even: SymBool::new(true),
        }
    }
    fn update(&self, s: &mut BoolState, _ctx: &mut SymCtx, e: &i64) {
        if e % 2 != 0 {
            s.all_even.assign(false);
        }
    }
    fn result(&self, s: &BoolState, _ctx: &mut SymCtx) -> bool {
        s.all_even.concrete_value().unwrap_or(false)
    }
}

#[test]
fn golden_sym_bool() {
    check_golden(
        &BoolUda,
        &[2, 4, 6, 8],
        include_str!("golden/sym_bool.hex"),
        "sym_bool",
    );
}

// --------------------------------------------------------------- SymEnum

struct EnumUda;
#[derive(Clone, Debug)]
struct EnumState {
    mode: SymEnum,
}
impl_sym_state!(EnumState { mode });
impl Uda for EnumUda {
    type State = EnumState;
    type Event = i64;
    type Output = u32;
    fn init(&self) -> EnumState {
        EnumState {
            mode: SymEnum::new(4, 0),
        }
    }
    fn update(&self, s: &mut EnumState, ctx: &mut SymCtx, e: &i64) {
        let shift = (*e % 4) as u32;
        s.mode.map_transition(ctx, |m| (m + shift) % 4);
    }
    fn result(&self, s: &EnumState, _ctx: &mut SymCtx) -> u32 {
        s.mode.concrete_value().unwrap_or(u32::MAX)
    }
}

#[test]
fn golden_sym_enum() {
    check_golden(
        &EnumUda,
        &[1, 2, 3],
        include_str!("golden/sym_enum.hex"),
        "sym_enum",
    );
}

// ------------------------------------------------------------- SymMinMax

struct MaxUda;
#[derive(Clone, Debug)]
struct MaxState {
    max: SymMinMax,
}
impl_sym_state!(MaxState { max });
impl Uda for MaxUda {
    type State = MaxState;
    type Event = i64;
    type Output = i64;
    fn init(&self) -> MaxState {
        MaxState {
            max: SymMinMax::new(Extremum::Max),
        }
    }
    fn update(&self, s: &mut MaxState, _ctx: &mut SymCtx, e: &i64) {
        s.max.update(*e);
    }
    fn result(&self, s: &MaxState, _ctx: &mut SymCtx) -> i64 {
        s.max.concrete_value().unwrap_or(i64::MIN)
    }
}

#[test]
fn golden_sym_minmax() {
    check_golden(
        &MaxUda,
        &[3, 99, -20, 41],
        include_str!("golden/sym_minmax.hex"),
        "sym_minmax",
    );
}

// --------------------------------------------------------------- SymPred

struct PredUda;
#[derive(Clone, Debug)]
struct PredState {
    p: SymPred<i64>,
    hits: SymInt,
}
impl_sym_state!(PredState { p, hits });
impl Uda for PredUda {
    type State = PredState;
    type Event = i64;
    type Output = i64;
    fn init(&self) -> PredState {
        PredState {
            p: SymPred::new(|a: &i64, b: &i64| a < b).with_max_decisions(16),
            hits: SymInt::new(0),
        }
    }
    fn update(&self, s: &mut PredState, ctx: &mut SymCtx, e: &i64) {
        if s.p.eval(ctx, e) {
            s.hits.add(ctx, 1);
        }
        if *e > 10 {
            s.p.set(*e);
        }
    }
    fn result(&self, s: &PredState, _ctx: &mut SymCtx) -> i64 {
        s.hits.concrete_value().unwrap_or(-1)
    }
}

#[test]
fn golden_sym_pred() {
    check_golden(
        &PredUda,
        &[5, 20, 7],
        include_str!("golden/sym_pred.hex"),
        "sym_pred",
    );
}

// ------------------------------------------------------------- SymVector

struct VecUda;
#[derive(Clone, Debug)]
struct VecState {
    n: SymInt,
    out: SymVector<i64>,
}
impl_sym_state!(VecState { n, out });
impl Uda for VecUda {
    type State = VecState;
    type Event = i64;
    type Output = Vec<i64>;
    fn init(&self) -> VecState {
        VecState {
            n: SymInt::new(0),
            out: SymVector::new(),
        }
    }
    fn update(&self, s: &mut VecState, ctx: &mut SymCtx, e: &i64) {
        s.n.add(ctx, *e);
        if s.n.gt(ctx, 5) {
            s.out.push_int(&s.n);
            s.n.assign(0);
        }
    }
    fn result(&self, s: &VecState, _ctx: &mut SymCtx) -> Vec<i64> {
        s.out.concrete_elems().unwrap_or_default()
    }
}

#[test]
fn golden_sym_vector() {
    check_golden(
        &VecUda,
        &[2, 2, 3, 1, 4, 2],
        include_str!("golden/sym_vector.hex"),
        "sym_vector",
    );
}
