//! Property tests for the interval algebra — the decision procedure under
//! every `SymInt`, checked against brute force on small domains.

use proptest::prelude::*;

use symple_core::Interval;

fn small_interval() -> impl Strategy<Value = Interval> {
    (-60i64..60, -60i64..60).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intersect_is_pointwise(a in small_interval(), b in small_interval()) {
        let c = a.intersect(&b);
        for x in -70i64..=70 {
            prop_assert_eq!(c.contains(x), a.contains(x) && b.contains(x), "x={}", x);
        }
    }

    #[test]
    fn union_if_contiguous_is_exact(a in small_interval(), b in small_interval()) {
        match a.union_if_contiguous(&b) {
            Some(u) => {
                for x in -70i64..=70 {
                    prop_assert_eq!(u.contains(x), a.contains(x) || b.contains(x), "x={}", x);
                }
            }
            None => {
                // A refusal must mean the union genuinely has a gap.
                let mut inside = false;
                let mut gap_after_inside = false;
                for x in -70i64..=70 {
                    let member = a.contains(x) || b.contains(x);
                    if member && gap_after_inside {
                        // second component found
                        return Ok(());
                    }
                    if inside && !member {
                        gap_after_inside = true;
                    }
                    inside |= member;
                }
                prop_assert!(false, "union refused but set was contiguous: {:?} {:?}", a, b);
            }
        }
    }

    #[test]
    fn split_lt_partitions(iv in small_interval(), a in prop_oneof![-4i64..0, 1i64..5], b in -20i64..20, c in -80i64..80) {
        let (t, e) = iv.split_lt(a, b, c);
        for x in iv.lb..=iv.ub {
            let holds = a * x + b < c;
            prop_assert_eq!(t.contains(x), holds);
            prop_assert_eq!(e.contains(x), !holds);
        }
    }

    #[test]
    fn split_le_partitions(iv in small_interval(), a in prop_oneof![-4i64..0, 1i64..5], b in -20i64..20, c in -80i64..80) {
        let (t, e) = iv.split_le(a, b, c);
        for x in iv.lb..=iv.ub {
            let holds = a * x + b <= c;
            prop_assert_eq!(t.contains(x), holds);
            prop_assert_eq!(e.contains(x), !holds);
        }
    }

    #[test]
    fn split_eq_partitions(iv in small_interval(), a in prop_oneof![-4i64..0, 1i64..5], b in -20i64..20, c in -80i64..80) {
        let (eq, below, above) = iv.split_eq(a, b, c);
        for x in iv.lb..=iv.ub {
            let holds = a * x + b == c;
            prop_assert_eq!(eq.contains(x), holds);
            // The residual sides cover exactly the non-solutions.
            prop_assert_eq!(below.contains(x) || above.contains(x), !holds);
            prop_assert!(!(below.contains(x) && above.contains(x)));
        }
    }

    #[test]
    fn preimage_is_exact(iv in small_interval(), a in prop_oneof![-4i64..0, 1i64..5], b in -20i64..20) {
        let pre = iv.preimage_affine(a, b);
        for x in -80i64..=80 {
            prop_assert_eq!(pre.contains(x), iv.contains(a * x + b), "x={}", x);
        }
    }
}
