//! Brute-force oracles for the symbolic data types: a random *program* of
//! operations is executed once symbolically (from unknown `x`) and once
//! concretely for every `x` in a small domain; the summary's prediction
//! must match the concrete run exactly — the type-level statement of
//! "sound and precise" (§2.3).

use proptest::prelude::*;

use symple_core::compose::apply_summary;
use symple_core::engine::{EngineConfig, SymbolicExecutor};
use symple_core::impl_sym_state;
use symple_core::types::{sym_enum::SymEnum, sym_int::SymInt, sym_vector::SymVector};
use symple_core::uda::Uda;
use symple_core::SymCtx;

// ------------------------------------------------------------- SymInt ---

/// One step of a straight-line integer program. Comparisons gate an
/// assignment so that branch decisions feed back into the transfer
/// function.
#[derive(Debug, Clone, Copy)]
enum IntOp {
    Add(i64),
    Mul(i64),
    Rsub(i64),
    IfLtAssign(i64, i64),
    IfGeAdd(i64, i64),
    IfEqAssign(i64, i64),
    IfNeMul(i64, i64),
    PushCount,
}

fn int_op_strategy() -> impl Strategy<Value = IntOp> {
    prop_oneof![
        (-20i64..20).prop_map(IntOp::Add),
        (-3i64..4).prop_map(IntOp::Mul),
        (-20i64..20).prop_map(IntOp::Rsub),
        ((-30i64..30), (-20i64..20)).prop_map(|(c, v)| IntOp::IfLtAssign(c, v)),
        ((-30i64..30), (-10i64..10)).prop_map(|(c, v)| IntOp::IfGeAdd(c, v)),
        ((-30i64..30), (-20i64..20)).prop_map(|(c, v)| IntOp::IfEqAssign(c, v)),
        ((-30i64..30), (-2i64..3)).prop_map(|(c, v)| IntOp::IfNeMul(c, v)),
        Just(IntOp::PushCount),
    ]
}

struct IntProgram;

#[derive(Clone, Debug)]
struct IntState {
    v: SymInt,
    out: SymVector<i64>,
}
impl_sym_state!(IntState { v, out });

impl Uda for IntProgram {
    type State = IntState;
    type Event = IntOp;
    type Output = ();
    fn init(&self) -> IntState {
        IntState {
            v: SymInt::new(0),
            out: SymVector::new(),
        }
    }
    fn update(&self, s: &mut IntState, ctx: &mut SymCtx, op: &IntOp) {
        match *op {
            IntOp::Add(k) => s.v.add(ctx, k),
            IntOp::Mul(k) => s.v.mul(ctx, k),
            IntOp::Rsub(k) => s.v.rsub(ctx, k),
            IntOp::IfLtAssign(c, v) => {
                if s.v.lt(ctx, c) {
                    s.v.assign(v);
                }
            }
            IntOp::IfGeAdd(c, v) => {
                if s.v.ge(ctx, c) {
                    s.v.add(ctx, v);
                }
            }
            IntOp::IfEqAssign(c, v) => {
                if s.v.eq_c(ctx, c) {
                    s.v.assign(v);
                }
            }
            IntOp::IfNeMul(c, v) => {
                if s.v.ne_c(ctx, c) {
                    s.v.mul(ctx, v);
                }
            }
            IntOp::PushCount => s.out.push_int(&s.v),
        }
    }
    fn result(&self, _s: &IntState, _ctx: &mut SymCtx) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The SymInt decision procedures and canonical-form algebra predict
    /// exactly what concrete execution computes, for every initial value.
    #[test]
    fn sym_int_summary_matches_concrete_oracle(
        program in prop::collection::vec(int_op_strategy(), 0..12),
    ) {
        // Symbolic run from unknown initial value.
        let uda = IntProgram;
        let cfg = EngineConfig { max_paths_per_record: 512, max_total_paths: 64, ..Default::default() };
        let mut exec = SymbolicExecutor::new(&uda, cfg);
        // Feed the whole program as individual "records".
        for op in &program {
            exec.feed(op).unwrap();
        }
        let (chain, _) = exec.finish();

        // Oracle: run concretely for every x in a window around the
        // constants used.
        for x in -40i64..=40 {
            let mut init = uda.init();
            init.v.assign(x);
            // Concrete truth.
            let mut truth = init.clone();
            let mut ctx = SymCtx::concrete();
            for op in &program {
                uda.update(&mut truth, &mut ctx, op);
                prop_assert!(ctx.take_error().is_none());
            }
            // Symbolic prediction.
            let mut predicted = init.clone();
            for summary in chain.summaries() {
                predicted = apply_summary(summary, &predicted).unwrap();
            }
            prop_assert_eq!(
                predicted.v.concrete_value(), truth.v.concrete_value(),
                "x={} program={:?}", x, program
            );
            prop_assert_eq!(
                predicted.out.concrete_elems().unwrap(),
                truth.out.concrete_elems().unwrap(),
                "outputs diverged at x={}", x
            );
        }
    }
}

// ------------------------------------------------------------ SymEnum ---

/// One step of a state-machine program over a small enum domain.
#[derive(Debug, Clone, Copy)]
enum EnumOp {
    IfEqAssign(u32, u32),
    IfNeAssign(u32, u32),
    IfInMaskAssign(u64, u32),
    PushState,
}

const DOMAIN: u32 = 5;

fn enum_op_strategy() -> impl Strategy<Value = EnumOp> {
    prop_oneof![
        ((0u32..DOMAIN), (0u32..DOMAIN)).prop_map(|(c, v)| EnumOp::IfEqAssign(c, v)),
        ((0u32..DOMAIN), (0u32..DOMAIN)).prop_map(|(c, v)| EnumOp::IfNeAssign(c, v)),
        ((0u64..(1 << DOMAIN)), (0u32..DOMAIN)).prop_map(|(m, v)| EnumOp::IfInMaskAssign(m, v)),
        Just(EnumOp::PushState),
    ]
}

struct EnumProgram;

#[derive(Clone, Debug)]
struct EnumState {
    s: SymEnum,
    out: SymVector<i64>,
}
impl_sym_state!(EnumState { s, out });

impl Uda for EnumProgram {
    type State = EnumState;
    type Event = EnumOp;
    type Output = ();
    fn init(&self) -> EnumState {
        EnumState {
            s: SymEnum::new(DOMAIN, 0),
            out: SymVector::new(),
        }
    }
    fn update(&self, st: &mut EnumState, ctx: &mut SymCtx, op: &EnumOp) {
        match *op {
            EnumOp::IfEqAssign(c, v) => {
                if st.s.eq_c(ctx, c) {
                    st.s.assign(ctx, v);
                }
            }
            EnumOp::IfNeAssign(c, v) => {
                if st.s.ne_c(ctx, c) {
                    st.s.assign(ctx, v);
                }
            }
            EnumOp::IfInMaskAssign(m, v) => {
                if st.s.in_mask(ctx, m) {
                    st.s.assign(ctx, v);
                }
            }
            EnumOp::PushState => st.out.push_enum(&st.s),
        }
    }
    fn result(&self, _s: &EnumState, _ctx: &mut SymCtx) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The SymEnum bit-set procedures predict concrete FSM execution for
    /// every initial state in the domain.
    #[test]
    fn sym_enum_summary_matches_concrete_oracle(
        program in prop::collection::vec(enum_op_strategy(), 0..10),
    ) {
        let uda = EnumProgram;
        let cfg = EngineConfig { max_paths_per_record: 512, max_total_paths: 64, ..Default::default() };
        let mut exec = SymbolicExecutor::new(&uda, cfg);
        for op in &program {
            exec.feed(op).unwrap();
        }
        let (chain, _) = exec.finish();

        for x in 0..DOMAIN {
            let mut init = uda.init();
            let mut ctx = SymCtx::concrete();
            init.s.assign(&mut ctx, x);
            let mut truth = init.clone();
            for op in &program {
                uda.update(&mut truth, &mut ctx, op);
                prop_assert!(ctx.take_error().is_none());
            }
            let mut predicted = init.clone();
            for summary in chain.summaries() {
                predicted = apply_summary(summary, &predicted).unwrap();
            }
            prop_assert_eq!(
                predicted.s.concrete_value(), truth.s.concrete_value(),
                "x={} program={:?}", x, program
            );
            prop_assert_eq!(
                predicted.out.concrete_elems().unwrap(),
                truth.out.concrete_elems().unwrap(),
                "outputs diverged at x={}", x
            );
        }
    }
}

// --------------------------------------------------- mixed-state oracle --

/// Random two-field programs: verifies the conjunction-of-constraints path
/// model across fields (merging only ever unions one field's constraint).
#[derive(Debug, Clone, Copy)]
enum MixedOp {
    Int(IntOp),
    Enum(EnumOp),
    /// Gate an int update behind an enum test — cross-field control flow.
    IfEnumEqAddInt(u32, i64),
}

fn mixed_op_strategy() -> impl Strategy<Value = MixedOp> {
    prop_oneof![
        int_op_strategy().prop_map(MixedOp::Int),
        enum_op_strategy().prop_map(MixedOp::Enum),
        ((0u32..DOMAIN), (-10i64..10)).prop_map(|(c, v)| MixedOp::IfEnumEqAddInt(c, v)),
    ]
}

struct MixedProgram;

#[derive(Clone, Debug)]
struct MixedState {
    v: SymInt,
    out: SymVector<i64>,
    s: SymEnum,
    out2: SymVector<i64>,
}
impl_sym_state!(MixedState { v, out, s, out2 });

impl Uda for MixedProgram {
    type State = MixedState;
    type Event = MixedOp;
    type Output = ();
    fn init(&self) -> MixedState {
        MixedState {
            v: SymInt::new(0),
            out: SymVector::new(),
            s: SymEnum::new(DOMAIN, 0),
            out2: SymVector::new(),
        }
    }
    fn update(&self, st: &mut MixedState, ctx: &mut SymCtx, op: &MixedOp) {
        match *op {
            MixedOp::Int(iop) => {
                let mut sub = IntState {
                    v: st.v,
                    out: SymVector::new(),
                };
                IntProgram.update(&mut sub, ctx, &iop);
                st.v = sub.v;
                for e in sub.out.elems() {
                    match e {
                        symple_core::types::sym_vector::Elem::Concrete(c) => st.out.push(c),
                        symple_core::types::sym_vector::Elem::Sym(sc) => st.out.push_scalar(sc),
                    }
                }
            }
            MixedOp::Enum(eop) => {
                let mut sub = EnumState {
                    s: st.s,
                    out: SymVector::new(),
                };
                EnumProgram.update(&mut sub, ctx, &eop);
                st.s = sub.s;
                for e in sub.out.elems() {
                    match e {
                        symple_core::types::sym_vector::Elem::Concrete(c) => st.out2.push(c),
                        symple_core::types::sym_vector::Elem::Sym(sc) => st.out2.push_scalar(sc),
                    }
                }
            }
            MixedOp::IfEnumEqAddInt(c, v) => {
                if st.s.eq_c(ctx, c) {
                    st.v.add(ctx, v);
                }
            }
        }
    }
    fn result(&self, _s: &MixedState, _ctx: &mut SymCtx) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mixed_state_summary_matches_concrete_oracle(
        program in prop::collection::vec(mixed_op_strategy(), 0..8),
    ) {
        let uda = MixedProgram;
        let cfg = EngineConfig { max_paths_per_record: 2_048, max_total_paths: 256, ..Default::default() };
        let mut exec = SymbolicExecutor::new(&uda, cfg);
        for op in &program {
            exec.feed(op).unwrap();
        }
        let (chain, _) = exec.finish();

        for x in -15i64..=15 {
            for e in 0..DOMAIN {
                let mut init = uda.init();
                init.v.assign(x);
                let mut ctx = SymCtx::concrete();
                init.s.assign(&mut ctx, e);
                let mut truth = init.clone();
                for op in &program {
                    uda.update(&mut truth, &mut ctx, op);
                    prop_assert!(ctx.take_error().is_none());
                }
                let mut predicted = init.clone();
                for summary in chain.summaries() {
                    predicted = apply_summary(summary, &predicted).unwrap();
                }
                prop_assert_eq!(predicted.v.concrete_value(), truth.v.concrete_value());
                prop_assert_eq!(predicted.s.concrete_value(), truth.s.concrete_value());
                prop_assert_eq!(
                    predicted.out.concrete_elems().unwrap(),
                    truth.out.concrete_elems().unwrap()
                );
                prop_assert_eq!(
                    predicted.out2.concrete_elems().unwrap(),
                    truth.out2.concrete_elems().unwrap()
                );
            }
        }
    }
}

// ----------------------------------------------------------- SymMinMax --

#[derive(Debug, Clone, Copy)]
enum MmOp {
    Update(i64),
    IfLtAssign(i64, i64),
    IfGtUpdate(i64, i64),
    IfLeUpdate(i64, i64),
    IfGeAssign(i64, i64),
}

fn mm_op_strategy() -> impl Strategy<Value = MmOp> {
    prop_oneof![
        (-25i64..25).prop_map(MmOp::Update),
        ((-30i64..30), (-25i64..25)).prop_map(|(c, v)| MmOp::IfLtAssign(c, v)),
        ((-30i64..30), (-25i64..25)).prop_map(|(c, v)| MmOp::IfGtUpdate(c, v)),
        ((-30i64..30), (-25i64..25)).prop_map(|(c, v)| MmOp::IfLeUpdate(c, v)),
        ((-30i64..30), (-25i64..25)).prop_map(|(c, v)| MmOp::IfGeAssign(c, v)),
    ]
}

struct MmProgram(symple_core::Extremum);

#[derive(Clone, Debug)]
struct MmState {
    m: symple_core::SymMinMax,
}
impl_sym_state!(MmState { m });

impl Uda for MmProgram {
    type State = MmState;
    type Event = MmOp;
    type Output = ();
    fn init(&self) -> MmState {
        MmState {
            m: symple_core::SymMinMax::new(self.0),
        }
    }
    fn update(&self, s: &mut MmState, ctx: &mut SymCtx, op: &MmOp) {
        match *op {
            MmOp::Update(e) => s.m.update(e),
            MmOp::IfLtAssign(c, v) => {
                if s.m.lt(ctx, c) {
                    s.m.assign(v);
                }
            }
            MmOp::IfGtUpdate(c, v) => {
                if s.m.gt(ctx, c) {
                    s.m.update(v);
                }
            }
            MmOp::IfLeUpdate(c, v) => {
                if s.m.le(ctx, c) {
                    s.m.update(v);
                }
            }
            MmOp::IfGeAssign(c, v) => {
                if s.m.ge(ctx, c) {
                    s.m.assign(v);
                }
            }
        }
    }
    fn result(&self, _s: &MmState, _ctx: &mut SymCtx) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The user-defined SymMinMax type obeys the same oracle as the
    /// built-ins, in both modes.
    #[test]
    fn sym_minmax_summary_matches_concrete_oracle(
        program in prop::collection::vec(mm_op_strategy(), 0..10),
        is_max in any::<bool>(),
    ) {
        let mode = if is_max {
            symple_core::Extremum::Max
        } else {
            symple_core::Extremum::Min
        };
        let uda = MmProgram(mode);
        let cfg = EngineConfig { max_paths_per_record: 512, max_total_paths: 64, ..Default::default() };
        let mut exec = SymbolicExecutor::new(&uda, cfg);
        for op in &program {
            exec.feed(op).unwrap();
        }
        let (chain, _) = exec.finish();

        for x in -40i64..=40 {
            let mut init = uda.init();
            init.m.assign(x);
            let mut truth = init.clone();
            let mut ctx = SymCtx::concrete();
            for op in &program {
                uda.update(&mut truth, &mut ctx, op);
                prop_assert!(ctx.take_error().is_none());
            }
            let mut predicted = init.clone();
            for summary in chain.summaries() {
                predicted = apply_summary(summary, &predicted).unwrap();
            }
            prop_assert_eq!(
                predicted.m.concrete_value(), truth.m.concrete_value(),
                "mode={:?} x={} program={:?}", mode, x, program
            );
        }
    }
}

/// Wire round-trips preserve application semantics for random programs.
#[test]
fn summary_wire_roundtrip_random_programs() {
    use symple_core::summary::SummaryChain;
    let uda = IntProgram;
    let programs: Vec<Vec<IntOp>> = vec![
        vec![IntOp::Add(3), IntOp::IfLtAssign(5, -2), IntOp::PushCount],
        vec![
            IntOp::Mul(2),
            IntOp::IfEqAssign(4, 9),
            IntOp::Rsub(7),
            IntOp::PushCount,
        ],
        vec![IntOp::IfGeAdd(0, 1), IntOp::IfNeMul(3, 2)],
    ];
    for program in programs {
        let mut exec = SymbolicExecutor::new(&uda, EngineConfig::default());
        for op in &program {
            exec.feed(op).unwrap();
        }
        let (chain, _) = exec.finish();
        let mut buf = Vec::new();
        chain.encode(&mut buf);
        let template = uda.init();
        let decoded = SummaryChain::decode(&template, &mut &buf[..]).unwrap();
        for x in -10i64..10 {
            let mut init = uda.init();
            init.v.assign(x);
            let a = symple_core::compose::apply_chain(&chain, &init).unwrap();
            let b = symple_core::compose::apply_chain(&decoded, &init).unwrap();
            assert_eq!(a.v.concrete_value(), b.v.concrete_value());
        }
    }
}
