//! Fuzz-style robustness tests for the wire format: decoding arbitrary or
//! mutated bytes must never panic, loop, or mis-decode into something a
//! re-encode doesn't reproduce.

use proptest::prelude::*;

use symple_core::impl_sym_state;
use symple_core::summary::SummaryChain;
use symple_core::types::{
    sym_bool::SymBool, sym_enum::SymEnum, sym_int::SymInt, sym_pred::SymPred, sym_vector::SymVector,
};
use symple_core::wire::Wire;

#[derive(Clone, Debug)]
struct Kitchen {
    b: SymBool,
    e: SymEnum,
    i: SymInt,
    p: SymPred<i64>,
    v: SymVector<i64>,
}
impl_sym_state!(Kitchen { b, e, i, p, v });

fn template() -> Kitchen {
    Kitchen {
        b: SymBool::new(false),
        e: SymEnum::new(12, 0),
        i: SymInt::new(0),
        p: SymPred::new(|a: &i64, b: &i64| a < b),
        v: SymVector::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: decode must return (Ok or Err), never panic.
    #[test]
    fn summary_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let t = template();
        let mut rd = &bytes[..];
        let _ = SummaryChain::<Kitchen>::decode(&t, &mut rd);
    }

    /// Primitive decoders on byte soup.
    #[test]
    fn primitive_decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut rd = &bytes[..];
        let _ = u64::decode(&mut rd);
        let mut rd = &bytes[..];
        let _ = i64::decode(&mut rd);
        let mut rd = &bytes[..];
        let _ = String::decode(&mut rd);
        let mut rd = &bytes[..];
        let _ = Vec::<i64>::decode(&mut rd);
        let mut rd = &bytes[..];
        let _ = Option::<(u32, bool)>::decode(&mut rd);
    }

    /// Single-byte mutations of a valid encoding: decode either fails or
    /// yields something that re-encodes deterministically.
    #[test]
    fn mutated_valid_encodings_stay_safe(
        flip_at in 0usize..64,
        xor in 1u8..=255,
    ) {
        use symple_core::engine::{EngineConfig, SymbolicExecutor};
        use symple_core::uda::Uda;
        use symple_core::SymCtx;

        struct K;
        impl Uda for K {
            type State = Kitchen;
            type Event = i64;
            type Output = ();
            fn init(&self) -> Kitchen {
                template()
            }
            fn update(&self, s: &mut Kitchen, ctx: &mut SymCtx, e: &i64) {
                if s.b.get(ctx) {
                    s.i.add(ctx, *e);
                }
                if s.e.eq_c(ctx, 3) {
                    s.v.push_int(&s.i);
                }
                if s.p.eval(ctx, e) {
                    s.b.assign(true);
                }
                s.p.set(*e);
                let _ = s.e.ne_c(ctx, (e % 12).unsigned_abs() as u32);
            }
            fn result(&self, _s: &Kitchen, _ctx: &mut SymCtx) {}
        }

        let mut exec = SymbolicExecutor::new(&K, EngineConfig::default());
        exec.feed_all([3i64, 9, 4].iter()).unwrap();
        let (chain, _) = exec.finish();
        let mut buf = Vec::new();
        chain.encode(&mut buf);
        let i = flip_at % buf.len();
        buf[i] ^= xor;
        let t = template();
        let mut rd = &buf[..];
        if let Ok(decoded) = SummaryChain::<Kitchen>::decode(&t, &mut rd) {
            let mut re = Vec::new();
            decoded.encode(&mut re);
            let mut rd2 = &re[..];
            let again = SummaryChain::<Kitchen>::decode(&t, &mut rd2)
                .expect("re-encoded output must decode");
            let mut re2 = Vec::new();
            again.encode(&mut re2);
            prop_assert_eq!(re, re2, "encode∘decode must be idempotent");
        }
    }

    /// Borrowed tier ≡ owned tier over arbitrary byte soup: identical
    /// Ok/Err outcome, identical value, identical cursor advance.
    #[test]
    fn borrowed_string_decode_matches_owned(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        use symple_core::wire::WireBorrow;
        let mut owned_rd = &bytes[..];
        let owned = String::decode(&mut owned_rd);
        let mut borrowed_rd = &bytes[..];
        let borrowed = <&str>::decode_borrowed(&mut borrowed_rd);
        match (&owned, &borrowed) {
            (Ok(o), Ok(b)) => {
                prop_assert_eq!(o.as_str(), *b);
                prop_assert_eq!(owned_rd, borrowed_rd);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "tiers disagree: owned {:?} vs borrowed {:?}", owned, borrowed),
        }
    }

    /// Valid strings put through truncation and single-byte corruption:
    /// the tiers must still agree bit-for-bit on outcome, including
    /// invalid-UTF-8 payloads and cut-short length prefixes.
    #[test]
    fn borrowed_matches_owned_on_mutated_strings(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..96,
        at in 0usize..96,
        xor in 0u8..=255,
    ) {
        use symple_core::wire::WireBorrow;
        let s = String::from_utf8_lossy(&payload).into_owned();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        if at < buf.len() {
            buf[at] ^= xor; // may corrupt the length, the payload, or (xor=0) nothing
        }
        let end = cut.min(buf.len());
        let buf = &buf[..end];
        let mut owned_rd = buf;
        let owned = String::decode(&mut owned_rd);
        let mut borrowed_rd = buf;
        let borrowed = <&str>::decode_borrowed(&mut borrowed_rd);
        match (&owned, &borrowed) {
            (Ok(o), Ok(b)) => {
                prop_assert_eq!(o.as_str(), *b);
                prop_assert_eq!(owned_rd, borrowed_rd);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "tiers disagree: owned {:?} vs borrowed {:?}", owned, borrowed),
        }
    }

    /// Composite records: the borrowed tuple tier tracks the owned one.
    #[test]
    fn borrowed_tuple_decode_matches_owned(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        use symple_core::wire::WireBorrow;
        let mut owned_rd = &bytes[..];
        let owned = <(u64, String, bool)>::decode(&mut owned_rd);
        let mut borrowed_rd = &bytes[..];
        let borrowed = <(u64, &str, bool)>::decode_borrowed(&mut borrowed_rd);
        match (&owned, &borrowed) {
            (Ok((n1, s1, b1)), Ok((n2, s2, b2))) => {
                prop_assert_eq!((n1, s1.as_str(), b1), (n2, *s2, b2));
                prop_assert_eq!(owned_rd, borrowed_rd);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "tiers disagree: owned {:?} vs borrowed {:?}", owned, borrowed),
        }
    }
}
