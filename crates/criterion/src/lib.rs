#![forbid(unsafe_code)]

//! In-tree, dependency-free subset of the `criterion` crate API.
//!
//! The CI environment for this workspace has no access to crates.io, so the
//! micro-benchmarks under `crates/bench/benches/` compile against this shim
//! instead of the real crate. It implements exactly the surface those
//! benches use — `criterion_group!` / `criterion_main!`, benchmark groups
//! with throughput annotations, and `Bencher::iter` — with simple
//! wall-clock timing (warmup, then a fixed-duration measurement loop) and a
//! plain-text median/mean report. There is no statistical analysis, HTML
//! output, or baseline comparison.

use std::time::{Duration, Instant};

/// Benchmark registry and runner (the `c` in `fn bench(c: &mut Criterion)`).
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Overrides the measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measure = d;
        self
    }

    /// Accepted for API compatibility; this shim has no sample count.
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }
}

/// Throughput annotation echoed in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input elements processed per iteration.
    Elements(u64),
    /// Input bytes processed per iteration.
    Bytes(u64),
}

/// Parameterized benchmark id (`BenchmarkId::from_parameter(n)`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    pub fn from_parameter(p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: p.to_string() }
    }

    /// A `function_name/parameter` id.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{p}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.c.warmup,
            measure: self.c.measure,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, warm then measured, recording per-call samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run until the warmup budget elapses, and size batches so
        // a single sample is neither trivially short nor over-long.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed() / calls.max(1) as u32;

        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
        }
        let _ = per_call;
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!(" ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(
                    " ({:.1} MiB/s)",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{group}/{id}: median {median:?}, mean {mean:?}, {} samples{rate}",
            sorted.len()
        );
    }
}

/// Re-export point so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip the timed
            // loops there so test runs stay fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        c.warmup = Duration::from_millis(5);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        let mut ran = 0u64;
        g.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter(42), &7u64, |b, i| {
            b.iter(|| i * 2)
        });
        g.finish();
        assert!(ran > 0);
    }
}
