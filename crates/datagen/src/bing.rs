//! Synthetic Bing-style query logs (queries B1–B3).
//!
//! The real dataset holds 1.9 billion queries (300 GB) and never leaves the
//! 380-node cluster. The generator emits a timestamp-ordered query stream
//! with the structure the three Bing queries mine:
//!
//! * **global outages** — configured windows in which *no* query succeeds
//!   (B1: "more than 2 minutes with no successful query by any user");
//! * **local outages** — windows in which one geographic area fails (B2);
//! * **user sessions** — per-user query bursts with < 2-minute gaps (B3).

use symple_core::rng::Rng64 as StdRng;
use symple_core::wire::{Wire, WireError};

/// One query-log row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BingQuery {
    /// Querying user.
    pub user_id: u64,
    /// Geographic area of the query.
    pub geo: u32,
    /// Seconds since epoch; the stream is sorted by this field.
    pub timestamp: i64,
    /// Whether the query was answered successfully.
    pub success: bool,
    /// Hash of the query text (unused by the queries; raw-record ballast).
    pub query_hash: u64,
}

impl Wire for BingQuery {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.user_id.encode(buf);
        self.geo.encode(buf);
        self.timestamp.encode(buf);
        self.success.encode(buf);
        self.query_hash.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(BingQuery {
            user_id: u64::decode(buf)?,
            geo: u32::decode(buf)?,
            timestamp: i64::decode(buf)?,
            success: bool::decode(buf)?,
            query_hash: u64::decode(buf)?,
        })
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct BingConfig {
    /// Records to generate.
    pub num_records: usize,
    /// Distinct users (B3's group count regime).
    pub num_users: u64,
    /// Distinct geographic areas (B2's group count regime).
    pub num_geos: u32,
    /// Mean seconds between consecutive queries in the whole stream.
    pub mean_gap_s: f64,
    /// Global outage windows `(start, end)` in which no query succeeds.
    pub global_outages: Vec<(i64, i64)>,
    /// Per-geo outage windows `(geo, start, end)`.
    pub local_outages: Vec<(u32, i64, i64)>,
    /// Baseline probability a query fails outside outages.
    pub base_failure_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BingConfig {
    fn default() -> BingConfig {
        let t0 = START_TS;
        BingConfig {
            num_records: 100_000,
            num_users: 3_000,
            num_geos: 50,
            mean_gap_s: 1.0,
            global_outages: vec![(t0 + 20_000, t0 + 20_400), (t0 + 60_000, t0 + 60_200)],
            local_outages: vec![(7, t0 + 40_000, t0 + 44_000)],
            base_failure_rate: 0.02,
            seed: 0xb1_46,
        }
    }
}

/// Stream start timestamp.
pub const START_TS: i64 = 1_420_000_000;

/// Generates a timestamp-ordered Bing-style query stream.
pub fn generate_bing(cfg: &BingConfig) -> Vec<BingQuery> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ts = START_TS;
    let mut out: Vec<BingQuery> = Vec::with_capacity(cfg.num_records);
    for _ in 0..cfg.num_records {
        // Exponential-ish inter-arrival via geometric sampling.
        let gap = if rng.gen_bool((1.0 / cfg.mean_gap_s).clamp(0.01, 1.0)) {
            1
        } else {
            rng.gen_range(1..=(2.0 * cfg.mean_gap_s).ceil() as i64 + 1)
        };
        ts += gap;
        let geo = rng.gen_range(0..cfg.num_geos);
        // Session-biased user choice: half the time, reuse a recent user.
        let user_id = if rng.gen_bool(0.5) && !out.is_empty() {
            let back: usize = rng.gen_range(1..=out.len().min(20));
            out[out.len() - back].user_id
        } else {
            rng.gen_range(0..cfg.num_users)
        };
        let in_global_outage = cfg.global_outages.iter().any(|(s, e)| ts >= *s && ts < *e);
        let in_local_outage = cfg
            .local_outages
            .iter()
            .any(|(g, s, e)| *g == geo && ts >= *s && ts < *e);
        let success = !in_global_outage && !in_local_outage && !rng.gen_bool(cfg.base_failure_rate);
        out.push(BingQuery {
            user_id,
            geo,
            timestamp: ts,
            success,
            query_hash: rng.gen(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        let cfg = BingConfig {
            num_records: 10_000,
            ..BingConfig::default()
        };
        let a = generate_bing(&cfg);
        assert_eq!(a, generate_bing(&cfg));
        assert!(a.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn global_outages_have_no_successes() {
        let cfg = BingConfig {
            num_records: 100_000,
            ..BingConfig::default()
        };
        let qs = generate_bing(&cfg);
        for (s, e) in &cfg.global_outages {
            let in_window: Vec<_> = qs
                .iter()
                .filter(|q| q.timestamp >= *s && q.timestamp < *e)
                .collect();
            assert!(
                !in_window.is_empty(),
                "outage window should contain queries"
            );
            assert!(in_window.iter().all(|q| !q.success));
        }
    }

    #[test]
    fn local_outage_hits_only_its_geo() {
        let cfg = BingConfig {
            num_records: 100_000,
            ..BingConfig::default()
        };
        let qs = generate_bing(&cfg);
        let (geo, s, e) = cfg.local_outages[0];
        let in_window: Vec<_> = qs
            .iter()
            .filter(|q| q.timestamp >= s && q.timestamp < e && q.geo == geo)
            .collect();
        assert!(!in_window.is_empty());
        assert!(in_window.iter().all(|q| !q.success));
        // Other geos mostly succeed in that window.
        let others: Vec<_> = qs
            .iter()
            .filter(|q| q.timestamp >= s && q.timestamp < e && q.geo != geo)
            .collect();
        let ok = others.iter().filter(|q| q.success).count();
        assert!(ok * 2 > others.len(), "other geos should mostly succeed");
    }

    #[test]
    fn wire_roundtrip() {
        let q = BingQuery {
            user_id: 5,
            geo: 3,
            timestamp: START_TS,
            success: true,
            query_hash: 9,
        };
        let mut rd = &q.to_wire()[..];
        assert_eq!(BingQuery::decode(&mut rd).unwrap(), q);
    }

    #[test]
    fn users_repeat_for_sessions() {
        let cfg = BingConfig {
            num_records: 10_000,
            ..BingConfig::default()
        };
        let qs = generate_bing(&cfg);
        let repeats = qs
            .windows(2)
            .filter(|w| w[0].user_id == w[1].user_id)
            .count();
        assert!(
            repeats > 100,
            "session bias should produce consecutive same-user queries"
        );
    }
}
