//! Synthetic GitHub-archive repository operations (queries G1–G4).
//!
//! The real dataset holds repository operations from February 2011 to
//! September 2014 (419 GB, 12 M–22 M repositories). The generator emits a
//! timestamp-ordered stream of per-repository operations with realistic
//! structure: pushes dominate, pull requests open and later close, branches
//! are created and deleted, and a fraction of repositories see only pushes
//! (the G1 pattern).

use symple_core::rng::Rng64 as StdRng;
use symple_core::wire::{self, Wire, WireError};

/// A repository operation kind.
///
/// The discriminants are stable and small so the kind can live in a
/// `SymEnum` domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum GithubOp {
    /// A push of commits.
    Push = 0,
    /// A pull request opened.
    PullOpen = 1,
    /// A pull request closed.
    PullClose = 2,
    /// The repository (or an artifact in it) deleted.
    Delete = 3,
    /// A branch created.
    BranchCreate = 4,
    /// A branch deleted.
    BranchDelete = 5,
    /// A fork.
    Fork = 6,
    /// An issue opened.
    IssueOpen = 7,
    /// An issue closed.
    IssueClose = 8,
    /// A watch/star.
    Watch = 9,
}

impl GithubOp {
    /// Number of operation kinds (the `SymEnum` domain size).
    pub const DOMAIN: u32 = 10;

    /// All operation kinds.
    pub const ALL: [GithubOp; 10] = [
        GithubOp::Push,
        GithubOp::PullOpen,
        GithubOp::PullClose,
        GithubOp::Delete,
        GithubOp::BranchCreate,
        GithubOp::BranchDelete,
        GithubOp::Fork,
        GithubOp::IssueOpen,
        GithubOp::IssueClose,
        GithubOp::Watch,
    ];

    /// The kind as a small integer (for `SymEnum` comparisons).
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Decodes a kind from its code.
    pub fn from_code(c: u32) -> Option<GithubOp> {
        GithubOp::ALL.get(c as usize).copied()
    }
}

impl Wire for GithubOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let b = wire::get_bytes(buf, 1)?[0];
        GithubOp::from_code(u32::from(b)).ok_or(WireError::InvalidTag(b))
    }
}

/// One repository operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GithubEvent {
    /// The repository.
    pub repo_id: u64,
    /// The operation.
    pub op: GithubOp,
    /// Seconds since epoch; the stream is sorted by this field.
    pub timestamp: i64,
    /// Acting user (unused by the queries; part of the raw record).
    pub actor_id: u64,
}

impl Wire for GithubEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.repo_id.encode(buf);
        self.op.encode(buf);
        self.timestamp.encode(buf);
        self.actor_id.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(GithubEvent {
            repo_id: u64::decode(buf)?,
            op: GithubOp::decode(buf)?,
            timestamp: i64::decode(buf)?,
            actor_id: u64::decode(buf)?,
        })
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GithubConfig {
    /// Records to generate.
    pub num_records: usize,
    /// Distinct repositories (the paper's 12 M–22 M, scaled down).
    pub num_repos: u64,
    /// Fraction of repositories that only ever see pushes (G1's answer
    /// set).
    pub push_only_fraction: f64,
    /// Fraction of repositories forming the "hot" set — real GitHub
    /// activity is heavily skewed toward a small core of busy projects,
    /// which is what lets per-(mapper, repo) summaries beat per-record
    /// shuffles by the paper's 4–8x.
    pub hot_repo_fraction: f64,
    /// Fraction of events landing on the hot set.
    pub hot_traffic: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GithubConfig {
    fn default() -> GithubConfig {
        GithubConfig {
            num_records: 100_000,
            num_repos: 2_000,
            push_only_fraction: 0.3,
            hot_repo_fraction: 0.01,
            hot_traffic: 0.9,
            seed: 0x91_7b_00,
        }
    }
}

/// Generates a timestamp-ordered GitHub operation stream.
pub fn generate_github(cfg: &GithubConfig) -> Vec<GithubEvent> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ts: i64 = 1_300_000_000; // ≈ Feb 2011, as in the archive.
    let mut out = Vec::with_capacity(cfg.num_records);
    // Per-repo open pull-request and branch bookkeeping keeps the streams
    // structurally plausible (closes follow opens, deletes follow creates).
    let mut open_pulls: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut deleted_branches: std::collections::HashMap<u64, u32> =
        std::collections::HashMap::new();

    let hot_repos = ((cfg.hot_repo_fraction * cfg.num_repos as f64) as u64).max(1);
    for _ in 0..cfg.num_records {
        ts += rng.gen_range(1..120);
        // Skewed repo choice: hot repos absorb most of the traffic.
        let repo_id = if rng.gen_bool(cfg.hot_traffic.clamp(0.0, 1.0)) {
            // Hot repos are spread across the id space (and thus across
            // the push-only band) by striding.
            let h = rng.gen_range(0..hot_repos);
            (h * cfg.num_repos.div_euclid(hot_repos).max(1)) % cfg.num_repos
        } else {
            rng.gen_range(0..cfg.num_repos)
        };
        let push_only = (repo_id as f64) < cfg.push_only_fraction * cfg.num_repos as f64;
        let op = if push_only {
            GithubOp::Push
        } else {
            match rng.gen_range(0..100) {
                0..=44 => GithubOp::Push,
                45..=54 => {
                    *open_pulls.entry(repo_id).or_default() += 1;
                    GithubOp::PullOpen
                }
                55..=64 => {
                    let n = open_pulls.entry(repo_id).or_default();
                    if *n > 0 {
                        *n -= 1;
                        GithubOp::PullClose
                    } else {
                        GithubOp::Push
                    }
                }
                65..=69 => GithubOp::Delete,
                70..=76 => {
                    let n = deleted_branches.entry(repo_id).or_default();
                    if *n > 0 {
                        *n -= 1;
                        GithubOp::BranchCreate
                    } else {
                        GithubOp::BranchCreate
                    }
                }
                77..=83 => {
                    *deleted_branches.entry(repo_id).or_default() += 1;
                    GithubOp::BranchDelete
                }
                84..=88 => GithubOp::Fork,
                89..=93 => GithubOp::IssueOpen,
                94..=96 => GithubOp::IssueClose,
                _ => GithubOp::Watch,
            }
        };
        out.push(GithubEvent {
            repo_id,
            op,
            timestamp: ts,
            actor_id: rng.gen_range(0..50_000),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        let cfg = GithubConfig {
            num_records: 5_000,
            ..GithubConfig::default()
        };
        let a = generate_github(&cfg);
        let b = generate_github(&cfg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn push_only_repos_exist() {
        let cfg = GithubConfig {
            num_records: 20_000,
            ..GithubConfig::default()
        };
        let events = generate_github(&cfg);
        let cutoff = (cfg.push_only_fraction * cfg.num_repos as f64) as u64;
        assert!(events
            .iter()
            .filter(|e| e.repo_id < cutoff)
            .all(|e| e.op == GithubOp::Push));
        // Non-push-only repos do see other ops.
        assert!(events
            .iter()
            .any(|e| e.repo_id >= cutoff && e.op != GithubOp::Push));
    }

    #[test]
    fn seeds_differ() {
        let a = generate_github(&GithubConfig {
            seed: 1,
            ..GithubConfig::default()
        });
        let b = generate_github(&GithubConfig {
            seed: 2,
            ..GithubConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn op_codes_roundtrip() {
        for op in GithubOp::ALL {
            assert_eq!(GithubOp::from_code(op.code()), Some(op));
        }
        assert_eq!(GithubOp::from_code(99), None);
        assert!(GithubOp::ALL.len() as u32 == GithubOp::DOMAIN);
    }

    #[test]
    fn event_wire_roundtrip() {
        let e = GithubEvent {
            repo_id: 77,
            op: GithubOp::BranchDelete,
            timestamp: 1_400_000_123,
            actor_id: 9,
        };
        let buf = e.to_wire();
        let mut rd = &buf[..];
        assert_eq!(GithubEvent::decode(&mut rd).unwrap(), e);
    }
}
