#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # symple-datagen
//!
//! Seeded synthetic datasets matching the schemas, group cardinalities and
//! temporal structure of the four datasets in the SYMPLE evaluation
//! (§6.1, Table 1).
//!
//! The originals are proprietary or impractically large (Bing query logs —
//! 300 GB, Twitter — 1.23 TB, GitHub archive — 419 GB, RedShift ad
//! impressions — 1.2 TB), so each generator produces a scaled-down,
//! deterministic stand-in that preserves what the queries exercise:
//!
//! * timestamp-ordered records;
//! * the *group-count regime* (1 group for B1, tens of geo areas for B2,
//!   millions-of-users-scaled for B3/G\*, 10 K advertisers for R\*) — the
//!   variable §6.5 identifies as the driver of SYMPLE's benefit;
//! * the temporal patterns the UDAs mine (outage windows, sessions, spam
//!   bursts, purchase funnels, campaign runs);
//! * realistic *raw record sizes* (≈1 KB records with many unused fields)
//!   so that I/O and shuffle accounting scale like the paper's.
//!
//! All generators are pure functions of their config (seeded `StdRng`), so
//! repeated runs — and re-executed mapper tasks — see identical data.

pub mod bing;
pub mod github;
pub mod redshift;
pub mod store;
pub mod text;
pub mod twitter;
pub mod weblog;

pub use bing::{generate_bing, BingConfig, BingQuery};
pub use github::{generate_github, GithubConfig, GithubEvent, GithubOp};
pub use redshift::{generate_redshift, AdImpression, RedshiftConfig};
pub use store::{list_segments, read_segment, read_segment_lines, write_segments, StoreError};
pub use text::{to_lines, TextRecord};
pub use twitter::{generate_twitter, Tweet, TwitterConfig};
pub use weblog::{generate_weblog, WebEvent, WebEventKind, WeblogConfig};

/// Raw on-storage bytes per record, used for I/O accounting.
///
/// Derived from the paper's dataset sizes and record counts: "most queries
/// will read through the datasets and discard most of their fields" (§6.3).
pub mod raw_sizes {
    /// GitHub archive events (419 GB of JSON-ish records).
    pub const GITHUB: u64 = 1024;
    /// Bing query-log rows (300 GB / 1.9 B queries ≈ 158 B).
    pub const BING: u64 = 158;
    /// Tweets with metadata (1.23 TB / 24 h of tweets).
    pub const TWITTER: u64 = 2458;
    /// RedShift ad-impression rows, complete variant (≈1 KB, §6.3).
    pub const REDSHIFT: u64 = 1000;
    /// RedShift condensed variant: only the four used columns (50 GB).
    pub const REDSHIFT_CONDENSED: u64 = 42;
    /// Synthetic web activity log (Figure 1's motivating workload).
    pub const WEBLOG: u64 = 512;
}
