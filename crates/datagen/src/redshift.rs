//! Synthetic RedShift-benchmark ad impressions (queries R1–R4).
//!
//! The real dataset is the Amazon Redshift benchmark: 1.2 TB, four months
//! of ad impressions over 10 K advertisers. The queries use four columns —
//! advertiser, campaign, timestamp, country — which is also the paper's
//! "condensed" variant (50 GB). The generator injects the mined patterns:
//!
//! * single-country advertisers (R2's answer set);
//! * serving gaps of more than an hour per advertiser (R3);
//! * runs in which only a single campaign of an advertiser shows (R4).

use symple_core::rng::Rng64 as StdRng;
use symple_core::wire::{Wire, WireError};

/// One ad impression row (the four used columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdImpression {
    /// Advertiser (the grouping key for R1–R4).
    pub advertiser_id: u32,
    /// Campaign within the advertiser.
    pub campaign_id: u32,
    /// Seconds since epoch; the stream is sorted by this field.
    pub timestamp: i64,
    /// Country code the impression was served in.
    pub country: u8,
}

impl Wire for AdImpression {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.advertiser_id.encode(buf);
        self.campaign_id.encode(buf);
        self.timestamp.encode(buf);
        self.country.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(AdImpression {
            advertiser_id: u32::decode(buf)?,
            campaign_id: u32::decode(buf)?,
            timestamp: i64::decode(buf)?,
            country: u8::decode(buf)?,
        })
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct RedshiftConfig {
    /// Records to generate.
    pub num_records: usize,
    /// Distinct advertisers (the paper's 10 K, scaled down).
    pub num_advertisers: u32,
    /// Campaigns per advertiser.
    pub campaigns_per_advertiser: u32,
    /// Number of countries.
    pub num_countries: u8,
    /// Fraction of advertisers operating in a single country (R2).
    pub single_country_fraction: f64,
    /// Probability that an advertiser's impression starts a serving gap
    /// longer than an hour (R3's pattern; implemented as timestamp jumps).
    pub gap_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RedshiftConfig {
    fn default() -> RedshiftConfig {
        RedshiftConfig {
            num_records: 100_000,
            num_advertisers: 500,
            campaigns_per_advertiser: 8,
            num_countries: 30,
            single_country_fraction: 0.2,
            gap_probability: 0.0005,
            seed: 0x4ed5,
        }
    }
}

/// Generates a timestamp-ordered ad-impression stream.
pub fn generate_redshift(cfg: &RedshiftConfig) -> Vec<AdImpression> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ts: i64 = 1_410_000_000; // ≈ 4 months before the github end.
    let mut out = Vec::with_capacity(cfg.num_records);
    // Advertisers below the cutoff operate in exactly one country.
    let single_cutoff = (cfg.single_country_fraction * cfg.num_advertisers as f64) as u32;
    // Advertisers currently "paused": impressions suppressed until the
    // stored resume timestamp (creates R3's >1 h serving gaps).
    let mut paused_until: std::collections::HashMap<u32, i64> = std::collections::HashMap::new();
    // Last campaign served per advertiser (drives R4's campaign runs).
    let mut last_campaign: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();

    for _ in 0..cfg.num_records {
        ts += rng.gen_range(0..6);
        let mut advertiser_id = rng.gen_range(0..cfg.num_advertisers);
        // Respect pauses: skip to another advertiser if paused.
        for _ in 0..4 {
            match paused_until.get(&advertiser_id) {
                Some(until) if ts < *until => {
                    advertiser_id = rng.gen_range(0..cfg.num_advertisers);
                }
                _ => break,
            }
        }
        if rng.gen_bool(cfg.gap_probability) {
            // Start a gap of 1–6 hours for this advertiser.
            let gap = rng.gen_range(3_700..=21_600);
            paused_until.insert(advertiser_id, ts + gap);
        }
        let country = if advertiser_id < single_cutoff {
            (advertiser_id % u32::from(cfg.num_countries)) as u8
        } else {
            rng.gen_range(0..cfg.num_countries)
        };
        // Campaign runs: reuse the previous campaign of this advertiser
        // with high probability so R4's "single-campaign runs" exist.
        let campaign_id = if rng.gen_bool(0.85) {
            last_campaign
                .get(&advertiser_id)
                .copied()
                .unwrap_or_else(|| rng.gen_range(0..cfg.campaigns_per_advertiser))
        } else {
            rng.gen_range(0..cfg.campaigns_per_advertiser)
        };
        last_campaign.insert(advertiser_id, campaign_id);
        out.push(AdImpression {
            advertiser_id,
            campaign_id,
            timestamp: ts,
            country,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        let cfg = RedshiftConfig {
            num_records: 20_000,
            ..RedshiftConfig::default()
        };
        let a = generate_redshift(&cfg);
        assert_eq!(a, generate_redshift(&cfg));
        assert!(a.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn single_country_advertisers() {
        let cfg = RedshiftConfig {
            num_records: 50_000,
            ..RedshiftConfig::default()
        };
        let imps = generate_redshift(&cfg);
        let cutoff = (cfg.single_country_fraction * cfg.num_advertisers as f64) as u32;
        for a in 0..cutoff {
            let countries: std::collections::HashSet<u8> = imps
                .iter()
                .filter(|i| i.advertiser_id == a)
                .map(|i| i.country)
                .collect();
            assert!(countries.len() <= 1, "advertiser {a} spans {countries:?}");
        }
        // Multi-country advertisers exist.
        let big: std::collections::HashSet<u8> = imps
            .iter()
            .filter(|i| i.advertiser_id == cfg.num_advertisers - 1)
            .map(|i| i.country)
            .collect();
        assert!(big.len() > 1);
    }

    #[test]
    fn serving_gaps_exist() {
        let cfg = RedshiftConfig {
            num_records: 100_000,
            gap_probability: 0.002,
            ..RedshiftConfig::default()
        };
        let imps = generate_redshift(&cfg);
        // Some advertiser must have a >1h gap between consecutive
        // impressions.
        let mut last: std::collections::HashMap<u32, i64> = std::collections::HashMap::new();
        let mut found = false;
        for i in &imps {
            if let Some(prev) = last.insert(i.advertiser_id, i.timestamp) {
                if i.timestamp - prev > 3_600 {
                    found = true;
                }
            }
        }
        assert!(found, "no serving gap was generated");
    }

    #[test]
    fn campaign_runs_exist() {
        let cfg = RedshiftConfig {
            num_records: 30_000,
            ..RedshiftConfig::default()
        };
        let imps = generate_redshift(&cfg);
        // Per-advertiser streams should contain repeats of campaigns.
        let mut repeats = 0;
        let mut last: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for i in &imps {
            if last.insert(i.advertiser_id, i.campaign_id) == Some(i.campaign_id) {
                repeats += 1;
            }
        }
        assert!(
            repeats > imps.len() / 4,
            "campaign runs too rare: {repeats}"
        );
    }

    #[test]
    fn wire_roundtrip() {
        let i = AdImpression {
            advertiser_id: 1,
            campaign_id: 2,
            timestamp: 3,
            country: 4,
        };
        let mut rd = &i.to_wire()[..];
        assert_eq!(AdImpression::decode(&mut rd).unwrap(), i);
    }
}
