//! File-backed datasets: write generated records as text-log segment
//! files and read them back, so jobs can exercise a real disk I/O path
//! (the paper's mappers read file segments; §2.1's "distributed chunks").
//!
//! Layout: `<dir>/segment-00000.log`, one record per line in the
//! [`crate::TextRecord`] format, segments split contiguously so the global
//! order is reconstituted by segment index.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};

use crate::text::{to_lines, TextRecord};

/// Errors from the segment store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A line failed to parse as the expected record type.
    Parse {
        /// Offending file.
        file: PathBuf,
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "segment store I/O error: {e}"),
            StoreError::Parse { file, line } => {
                write!(f, "unparseable record at {}:{line}", file.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The file path of segment `id` under `dir`.
pub fn segment_path(dir: &Path, id: usize) -> PathBuf {
    dir.join(format!("segment-{id:05}.log"))
}

/// Writes `records` as `num_segments` contiguous text-log files under
/// `dir` (created if missing). Returns the paths in segment order.
pub fn write_segments<R: TextRecord>(
    records: &[R],
    dir: &Path,
    num_segments: usize,
) -> Result<Vec<PathBuf>, StoreError> {
    fs::create_dir_all(dir)?;
    let num_segments = num_segments.max(1);
    let chunk = records.len().div_ceil(num_segments).max(1);
    let mut paths = Vec::new();
    for (id, part) in records.chunks(chunk).enumerate() {
        let path = segment_path(dir, id);
        let mut w = BufWriter::new(File::create(&path)?);
        for line in to_lines(part) {
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        w.flush()?;
        paths.push(path);
    }
    Ok(paths)
}

/// Reads one segment file back as raw lines (what a line-parsing mapper
/// consumes).
pub fn read_segment_lines(path: &Path) -> Result<Vec<String>, StoreError> {
    let f = File::open(path)?;
    let mut out = Vec::new();
    for line in BufReader::new(f).lines() {
        out.push(line?);
    }
    Ok(out)
}

/// Reads one segment file back as parsed records.
pub fn read_segment<R: TextRecord>(path: &Path) -> Result<Vec<R>, StoreError> {
    let lines = read_segment_lines(path)?;
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match R::parse_line(line) {
            Some(r) => out.push(r),
            None => {
                return Err(StoreError::Parse {
                    file: path.to_path_buf(),
                    line: i + 1,
                })
            }
        }
    }
    Ok(out)
}

/// Lists the segment files under `dir` in segment order.
pub fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("segment-") && n.ends_with(".log"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_github, GithubConfig, GithubEvent};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("symple-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_through_files() {
        let dir = tmp_dir("rt");
        let records = generate_github(&GithubConfig {
            num_records: 500,
            ..Default::default()
        });
        let paths = write_segments(&records, &dir, 4).unwrap();
        assert_eq!(paths.len(), 4);
        assert_eq!(list_segments(&dir).unwrap(), paths);

        let mut back: Vec<GithubEvent> = Vec::new();
        for p in &paths {
            back.extend(read_segment::<GithubEvent>(p).unwrap());
        }
        assert_eq!(
            back, records,
            "file round-trip must be lossless and ordered"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_line_reports_location() {
        let dir = tmp_dir("bad");
        fs::create_dir_all(&dir).unwrap();
        let p = segment_path(&dir, 0);
        fs::write(&p, "not a record\n").unwrap();
        let err = read_segment::<GithubEvent>(&p).unwrap_err();
        match err {
            StoreError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn raw_lines_feed_line_mappers() {
        let dir = tmp_dir("lines");
        let records = generate_github(&GithubConfig {
            num_records: 50,
            ..Default::default()
        });
        let paths = write_segments(&records, &dir, 2).unwrap();
        let lines = read_segment_lines(&paths[0]).unwrap();
        assert_eq!(lines.len(), 25);
        assert!(GithubEvent::parse_line(&lines[0]).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_input_writes_nothing() {
        let dir = tmp_dir("empty");
        let paths = write_segments::<GithubEvent>(&[], &dir, 3).unwrap();
        assert!(paths.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
