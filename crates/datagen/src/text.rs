//! Textual record format: CSV-ish log lines with real datetime fields.
//!
//! The paper's mappers read raw ≈1 KB records and discard most fields; it
//! even observes that R3c's runtime "is dominated by C standard lib
//! datetime parsing" (§6.3). To reproduce that cost profile, every dataset
//! can be rendered to (and parsed from) log lines whose timestamps are
//! `YYYY-MM-DD HH:MM:SS` strings, with filler columns standing in for the
//! fields real logs carry but the queries discard.

use crate::{AdImpression, BingQuery, GithubEvent, GithubOp, Tweet, WebEvent, WebEventKind};

/// Days from civil date — Howard Hinnant's algorithm.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Civil date from days — the inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Formats an epoch second as `YYYY-MM-DD HH:MM:SS`.
pub fn format_datetime(epoch: i64, out: &mut String) {
    use std::fmt::Write;
    let days = epoch.div_euclid(86_400);
    let secs = epoch.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    let (h, mi, s) = (secs / 3_600, (secs / 60) % 60, secs % 60);
    let _ = write!(out, "{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}");
}

/// Parses `YYYY-MM-DD HH:MM:SS` into an epoch second.
pub fn parse_datetime(s: &str) -> Option<i64> {
    let b = s.as_bytes();
    if b.len() != 19
        || b[4] != b'-'
        || b[7] != b'-'
        || b[10] != b' '
        || b[13] != b':'
        || b[16] != b':'
    {
        return None;
    }
    let num = |r: std::ops::Range<usize>| -> Option<i64> { s.get(r)?.parse().ok() };
    let (y, m, d) = (num(0..4)?, num(5..7)? as u32, num(8..10)? as u32);
    let (h, mi, sec) = (num(11..13)?, num(14..16)?, num(17..19)?);
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) || h > 23 || mi > 59 || sec > 59 {
        return None;
    }
    Some(days_from_civil(y, m, d) * 86_400 + h * 3_600 + mi * 60 + sec)
}

/// Records that can be rendered to and parsed from a log line.
///
/// `to_line` appends a line *without* the trailing newline; `parse_line`
/// must accept exactly what `to_line` produced (round-trip identity is
/// property-tested).
pub trait TextRecord: Sized {
    /// Appends the record as a log line.
    fn to_line(&self, out: &mut String);
    /// Parses a log line.
    fn parse_line(line: &str) -> Option<Self>;
}

/// Renders a record list to lines.
pub fn to_lines<R: TextRecord>(records: &[R]) -> Vec<String> {
    records
        .iter()
        .map(|r| {
            let mut s = String::with_capacity(96);
            r.to_line(&mut s);
            s
        })
        .collect()
}

/// Filler column emulating a log field the queries discard.
fn filler(seed: u64, out: &mut String) {
    use std::fmt::Write;
    let _ = write!(out, "{:016x}", seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
}

const GITHUB_OP_NAMES: [&str; 10] = [
    "push",
    "pull_open",
    "pull_close",
    "delete",
    "branch_create",
    "branch_delete",
    "fork",
    "issue_open",
    "issue_close",
    "watch",
];

impl TextRecord for GithubEvent {
    fn to_line(&self, out: &mut String) {
        use std::fmt::Write;
        format_datetime(self.timestamp, out);
        let _ = write!(
            out,
            ",repo_{:08},{},actor_{:06},",
            self.repo_id, GITHUB_OP_NAMES[self.op as usize], self.actor_id
        );
        filler(self.repo_id ^ self.actor_id, out);
    }
    fn parse_line(line: &str) -> Option<Self> {
        let mut cols = line.split(',');
        let timestamp = parse_datetime(cols.next()?)?;
        let repo_id = cols.next()?.strip_prefix("repo_")?.parse().ok()?;
        let op_name = cols.next()?;
        let op_code = GITHUB_OP_NAMES.iter().position(|n| *n == op_name)? as u32;
        let op = GithubOp::from_code(op_code)?;
        let actor_id = cols.next()?.strip_prefix("actor_")?.parse().ok()?;
        let _ = cols.next()?; // filler
        Some(GithubEvent {
            repo_id,
            op,
            timestamp,
            actor_id,
        })
    }
}

impl TextRecord for BingQuery {
    fn to_line(&self, out: &mut String) {
        use std::fmt::Write;
        format_datetime(self.timestamp, out);
        let _ = write!(
            out,
            ",user_{:08},geo_{:03},{},q_{:016x},",
            self.user_id,
            self.geo,
            if self.success { "ok" } else { "fail" },
            self.query_hash
        );
        filler(self.user_id ^ self.query_hash, out);
    }
    fn parse_line(line: &str) -> Option<Self> {
        let mut cols = line.split(',');
        let timestamp = parse_datetime(cols.next()?)?;
        let user_id = cols.next()?.strip_prefix("user_")?.parse().ok()?;
        let geo = cols.next()?.strip_prefix("geo_")?.parse().ok()?;
        let success = match cols.next()? {
            "ok" => true,
            "fail" => false,
            _ => return None,
        };
        let query_hash = u64::from_str_radix(cols.next()?.strip_prefix("q_")?, 16).ok()?;
        let _ = cols.next()?;
        Some(BingQuery {
            user_id,
            geo,
            timestamp,
            success,
            query_hash,
        })
    }
}

impl TextRecord for Tweet {
    fn to_line(&self, out: &mut String) {
        use std::fmt::Write;
        format_datetime(self.timestamp, out);
        let _ = write!(
            out,
            ",tag_{:08},user_{:08},{},",
            self.hashtag_id,
            self.user_id,
            if self.is_spam { "spam" } else { "ham" }
        );
        filler(self.hashtag_id ^ self.user_id, out);
    }
    fn parse_line(line: &str) -> Option<Self> {
        let mut cols = line.split(',');
        let timestamp = parse_datetime(cols.next()?)?;
        let hashtag_id = cols.next()?.strip_prefix("tag_")?.parse().ok()?;
        let user_id = cols.next()?.strip_prefix("user_")?.parse().ok()?;
        let is_spam = match cols.next()? {
            "spam" => true,
            "ham" => false,
            _ => return None,
        };
        let _ = cols.next()?;
        Some(Tweet {
            hashtag_id,
            user_id,
            timestamp,
            is_spam,
        })
    }
}

impl TextRecord for AdImpression {
    fn to_line(&self, out: &mut String) {
        use std::fmt::Write;
        format_datetime(self.timestamp, out);
        let _ = write!(
            out,
            ",adv_{:06},camp_{:04},cc_{:03},",
            self.advertiser_id, self.campaign_id, self.country
        );
        filler(
            u64::from(self.advertiser_id) ^ u64::from(self.campaign_id),
            out,
        );
    }
    fn parse_line(line: &str) -> Option<Self> {
        let mut cols = line.split(',');
        let timestamp = parse_datetime(cols.next()?)?;
        let advertiser_id = cols.next()?.strip_prefix("adv_")?.parse().ok()?;
        let campaign_id = cols.next()?.strip_prefix("camp_")?.parse().ok()?;
        let country = cols.next()?.strip_prefix("cc_")?.parse().ok()?;
        let _ = cols.next()?;
        Some(AdImpression {
            advertiser_id,
            campaign_id,
            timestamp,
            country,
        })
    }
}

const WEB_KIND_NAMES: [&str; 4] = ["search", "review", "purchase", "other"];

impl TextRecord for WebEvent {
    fn to_line(&self, out: &mut String) {
        use std::fmt::Write;
        format_datetime(self.timestamp, out);
        let _ = write!(
            out,
            ",user_{:08},{},item_{:08},",
            self.user_id, WEB_KIND_NAMES[self.kind as usize], self.item_id
        );
        filler(self.user_id ^ self.item_id, out);
    }
    fn parse_line(line: &str) -> Option<Self> {
        let mut cols = line.split(',');
        let timestamp = parse_datetime(cols.next()?)?;
        let user_id = cols.next()?.strip_prefix("user_")?.parse().ok()?;
        let kind = match cols.next()? {
            "search" => WebEventKind::Search,
            "review" => WebEventKind::Review,
            "purchase" => WebEventKind::Purchase,
            "other" => WebEventKind::Other,
            _ => return None,
        };
        let item_id = cols.next()?.strip_prefix("item_")?.parse().ok()?;
        let _ = cols.next()?;
        Some(WebEvent {
            user_id,
            kind,
            item_id,
            timestamp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datetime_roundtrip_known_values() {
        let mut s = String::new();
        format_datetime(0, &mut s);
        assert_eq!(s, "1970-01-01 00:00:00");
        s.clear();
        format_datetime(1_420_070_400, &mut s);
        assert_eq!(s, "2015-01-01 00:00:00");
        assert_eq!(parse_datetime("2015-01-01 00:00:00"), Some(1_420_070_400));
        assert_eq!(parse_datetime("1970-01-01 00:00:01"), Some(1));
    }

    #[test]
    fn datetime_roundtrip_sweep() {
        // Sweep across leap years, month ends and random offsets.
        for base in [
            0i64,
            951_782_400,
            1_330_000_000,
            1_456_704_000,
            4_102_444_800,
        ] {
            for off in [0i64, 1, 59, 3_600, 86_399, 86_400, 2_678_400, 31_536_000] {
                let t = base + off;
                let mut s = String::new();
                format_datetime(t, &mut s);
                assert_eq!(parse_datetime(&s), Some(t), "t={t} s={s}");
            }
        }
    }

    #[test]
    fn datetime_rejects_malformed() {
        for bad in [
            "2015-01-01",
            "2015/01/01 00:00:00",
            "2015-13-01 00:00:00",
            "2015-01-32 00:00:00",
            "2015-01-01 24:00:00",
            "2015-01-01 00:60:00",
            "x015-01-01 00:00:00",
        ] {
            assert_eq!(parse_datetime(bad), None, "{bad}");
        }
    }

    #[test]
    fn github_line_roundtrip() {
        let e = GithubEvent {
            repo_id: 123,
            op: GithubOp::BranchDelete,
            timestamp: 1_400_000_000,
            actor_id: 45,
        };
        let mut line = String::new();
        e.to_line(&mut line);
        assert_eq!(GithubEvent::parse_line(&line), Some(e));
        assert!(line.contains("branch_delete"));
        assert_eq!(GithubEvent::parse_line("garbage"), None);
    }

    #[test]
    fn bing_line_roundtrip() {
        let q = BingQuery {
            user_id: 9,
            geo: 44,
            timestamp: 1_420_000_123,
            success: false,
            query_hash: 0xdead_beef,
        };
        let mut line = String::new();
        q.to_line(&mut line);
        assert_eq!(BingQuery::parse_line(&line), Some(q));
        assert!(line.contains("fail"));
    }

    #[test]
    fn tweet_line_roundtrip() {
        let t = Tweet {
            hashtag_id: 3,
            user_id: 7,
            timestamp: 1_430_000_042,
            is_spam: true,
        };
        let mut line = String::new();
        t.to_line(&mut line);
        assert_eq!(Tweet::parse_line(&line), Some(t));
    }

    #[test]
    fn impression_line_roundtrip() {
        let i = AdImpression {
            advertiser_id: 500,
            campaign_id: 3,
            timestamp: 1_410_000_999,
            country: 12,
        };
        let mut line = String::new();
        i.to_line(&mut line);
        assert_eq!(AdImpression::parse_line(&line), Some(i));
    }

    #[test]
    fn web_event_line_roundtrip() {
        let e = WebEvent {
            user_id: 1,
            kind: WebEventKind::Purchase,
            item_id: 2,
            timestamp: 1_440_000_000,
        };
        let mut line = String::new();
        e.to_line(&mut line);
        assert_eq!(WebEvent::parse_line(&line), Some(e));
    }

    #[test]
    fn to_lines_batch() {
        let events = crate::generate_github(&crate::GithubConfig {
            num_records: 200,
            ..Default::default()
        });
        let lines = to_lines(&events);
        assert_eq!(lines.len(), 200);
        for (l, e) in lines.iter().zip(&events) {
            assert_eq!(GithubEvent::parse_line(l).as_ref(), Some(e));
        }
    }
}
