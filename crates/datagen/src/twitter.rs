//! Synthetic Twitter-style tweet logs (query T1).
//!
//! The real dataset holds all tweets in a 24-hour period (1.23 TB). T1
//! measures *spam learning speed*: per hashtag, the number of tweets **not**
//! marked as spam that precede a run of at least 5 tweets marked as spam.
//! The generator injects exactly that structure: per-hashtag streams that
//! start clean and, for a configurable fraction of hashtags, flip into a
//! spam burst once the (simulated) spam classifier catches on.

use symple_core::rng::Rng64 as StdRng;
use symple_core::wire::{Wire, WireError};

/// One tweet row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tweet {
    /// Hashtag the tweet is grouped by.
    pub hashtag_id: u64,
    /// Authoring user.
    pub user_id: u64,
    /// Seconds since epoch; the stream is sorted by this field.
    pub timestamp: i64,
    /// Whether the spam classifier marked this tweet as spam.
    pub is_spam: bool,
}

impl Wire for Tweet {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.hashtag_id.encode(buf);
        self.user_id.encode(buf);
        self.timestamp.encode(buf);
        self.is_spam.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Tweet {
            hashtag_id: u64::decode(buf)?,
            user_id: u64::decode(buf)?,
            timestamp: i64::decode(buf)?,
            is_spam: bool::decode(buf)?,
        })
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TwitterConfig {
    /// Records to generate.
    pub num_records: usize,
    /// Distinct hashtags (T1's group-count regime: large).
    pub num_hashtags: u64,
    /// Fraction of hashtags that are spam campaigns.
    pub spam_fraction: f64,
    /// Mean number of clean tweets before a spam hashtag's burst starts.
    pub mean_learning_tweets: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwitterConfig {
    fn default() -> TwitterConfig {
        TwitterConfig {
            num_records: 100_000,
            num_hashtags: 5_000,
            spam_fraction: 0.1,
            mean_learning_tweets: 8,
            seed: 0x73_11,
        }
    }
}

/// Generates a timestamp-ordered tweet stream.
pub fn generate_twitter(cfg: &TwitterConfig) -> Vec<Tweet> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ts: i64 = 1_430_000_000;
    let mut out = Vec::with_capacity(cfg.num_records);
    // Per-hashtag clean-tweet budget before spam marking kicks in.
    let mut clean_left: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let spam_cutoff = (cfg.spam_fraction * cfg.num_hashtags as f64) as u64;

    for _ in 0..cfg.num_records {
        ts += rng.gen_range(0..3);
        let hashtag_id = rng.gen_range(0..cfg.num_hashtags);
        let is_spam_campaign = hashtag_id < spam_cutoff;
        let is_spam = if is_spam_campaign {
            let left = clean_left
                .entry(hashtag_id)
                .or_insert_with(|| rng.gen_range(1..=cfg.mean_learning_tweets * 2));
            if *left > 0 {
                *left -= 1;
                false
            } else {
                true // The classifier has learned: everything is marked.
            }
        } else {
            rng.gen_bool(0.01) // Sporadic false positives elsewhere.
        };
        out.push(Tweet {
            hashtag_id,
            user_id: rng.gen_range(0..100_000),
            timestamp: ts,
            is_spam,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        let cfg = TwitterConfig {
            num_records: 20_000,
            ..TwitterConfig::default()
        };
        let a = generate_twitter(&cfg);
        assert_eq!(a, generate_twitter(&cfg));
        assert!(a.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn spam_hashtags_flip_clean_then_spam() {
        let cfg = TwitterConfig {
            num_records: 50_000,
            num_hashtags: 100,
            ..TwitterConfig::default()
        };
        let tweets = generate_twitter(&cfg);
        let spam_cutoff = (cfg.spam_fraction * cfg.num_hashtags as f64) as u64;
        // For a spam hashtag: once spam starts, it never reverts.
        for h in 0..spam_cutoff {
            let marks: Vec<bool> = tweets
                .iter()
                .filter(|t| t.hashtag_id == h)
                .map(|t| t.is_spam)
                .collect();
            if marks.len() < 10 {
                continue;
            }
            let first_spam = marks.iter().position(|m| *m);
            if let Some(p) = first_spam {
                assert!(
                    marks[p..].iter().all(|m| *m),
                    "hashtag {h} reverted to clean"
                );
                assert!(p >= 1, "hashtag {h} had no learning phase");
            }
        }
    }

    #[test]
    fn wire_roundtrip() {
        let t = Tweet {
            hashtag_id: 1,
            user_id: 2,
            timestamp: 3,
            is_spam: true,
        };
        let mut rd = &t.to_wire()[..];
        assert_eq!(Tweet::decode(&mut rd).unwrap(), t);
    }
}
