//! Synthetic web-activity logs: the paper's motivating workload
//! (Figure 1 — search, read reviews, purchase).
//!
//! Used by the `purchase_funnel` example and the quickstart tests rather
//! than the evaluation figures; kept deliberately simple.

use symple_core::rng::Rng64 as StdRng;
use symple_core::wire::{self, Wire, WireError};

/// What a user did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WebEventKind {
    /// Searched for an item.
    Search = 0,
    /// Read a review of the item they searched for.
    Review = 1,
    /// Purchased an item.
    Purchase = 2,
    /// Anything else (browse, click, …).
    Other = 3,
}

impl WebEventKind {
    /// The kind as a small integer.
    pub fn code(self) -> u32 {
        self as u32
    }
}

impl Wire for WebEventKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match wire::get_bytes(buf, 1)?[0] {
            0 => Ok(WebEventKind::Search),
            1 => Ok(WebEventKind::Review),
            2 => Ok(WebEventKind::Purchase),
            3 => Ok(WebEventKind::Other),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// One user-activity event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebEvent {
    /// The acting user (the groupby key in Figure 1).
    pub user_id: u64,
    /// What happened.
    pub kind: WebEventKind,
    /// The item involved.
    pub item_id: u64,
    /// Seconds since epoch; the stream is sorted by this field.
    pub timestamp: i64,
}

impl Wire for WebEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.user_id.encode(buf);
        self.kind.encode(buf);
        self.item_id.encode(buf);
        self.timestamp.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(WebEvent {
            user_id: u64::decode(buf)?,
            kind: WebEventKind::decode(buf)?,
            item_id: u64::decode(buf)?,
            timestamp: i64::decode(buf)?,
        })
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct WeblogConfig {
    /// Records to generate.
    pub num_records: usize,
    /// Distinct users.
    pub num_users: u64,
    /// Distinct items.
    pub num_items: u64,
    /// Probability a search funnel converts into ≥10 reviews + purchase.
    pub funnel_conversion: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WeblogConfig {
    fn default() -> WeblogConfig {
        WeblogConfig {
            num_records: 50_000,
            num_users: 500,
            num_items: 2_000,
            funnel_conversion: 0.2,
            seed: 0x3eb_106,
        }
    }
}

/// Generates a timestamp-ordered web activity stream containing genuine
/// Figure 1 funnels (search → ≥10 reviews → purchase).
pub fn generate_weblog(cfg: &WeblogConfig) -> Vec<WebEvent> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ts: i64 = 1_440_000_000;
    let mut out = Vec::with_capacity(cfg.num_records);
    while out.len() < cfg.num_records {
        ts += rng.gen_range(1..30);
        let user_id = rng.gen_range(0..cfg.num_users);
        let item_id = rng.gen_range(0..cfg.num_items);
        if rng.gen_bool(0.15) {
            // Start a funnel: search, then reviews, maybe purchase.
            out.push(WebEvent {
                user_id,
                kind: WebEventKind::Search,
                item_id,
                timestamp: ts,
            });
            let converts = rng.gen_bool(cfg.funnel_conversion);
            let reviews = if converts {
                rng.gen_range(11..20)
            } else {
                rng.gen_range(0..=10)
            };
            for _ in 0..reviews {
                ts += rng.gen_range(1..10);
                out.push(WebEvent {
                    user_id,
                    kind: WebEventKind::Review,
                    item_id,
                    timestamp: ts,
                });
            }
            if converts || rng.gen_bool(0.1) {
                ts += rng.gen_range(1..10);
                out.push(WebEvent {
                    user_id,
                    kind: WebEventKind::Purchase,
                    item_id,
                    timestamp: ts,
                });
            }
        } else {
            out.push(WebEvent {
                user_id,
                kind: WebEventKind::Other,
                item_id,
                timestamp: ts,
            });
        }
    }
    out.truncate(cfg.num_records);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        let cfg = WeblogConfig {
            num_records: 10_000,
            ..WeblogConfig::default()
        };
        let a = generate_weblog(&cfg);
        assert_eq!(a, generate_weblog(&cfg));
        assert!(a.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        assert_eq!(a.len(), 10_000);
    }

    #[test]
    fn funnels_exist() {
        let cfg = WeblogConfig {
            num_records: 20_000,
            ..WeblogConfig::default()
        };
        let events = generate_weblog(&cfg);
        let searches = events
            .iter()
            .filter(|e| e.kind == WebEventKind::Search)
            .count();
        let purchases = events
            .iter()
            .filter(|e| e.kind == WebEventKind::Purchase)
            .count();
        assert!(searches > 100);
        assert!(purchases > 10);
    }

    #[test]
    fn wire_roundtrip() {
        let e = WebEvent {
            user_id: 1,
            kind: WebEventKind::Purchase,
            item_id: 2,
            timestamp: 3,
        };
        let mut rd = &e.to_wire()[..];
        assert_eq!(WebEvent::decode(&mut rd).unwrap(), e);
        let mut bad: &[u8] = &[9];
        assert!(WebEventKind::decode(&mut bad).is_err());
    }
}
