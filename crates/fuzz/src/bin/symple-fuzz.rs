//! Coverage-guided UDA fuzzer CLI.
//!
//! ```text
//! symple-fuzz --smoke                        # CI gate: seed 0, 48 iterations, 60 s cap
//! symple-fuzz --seed 7 --budget 500          # longer deterministic run
//! symple-fuzz --smoke --sabotage drop-last-event   # self-test: must find a bug
//! symple-fuzz --replay tests/corpus/repro-FUZZ-....txt
//! ```
//!
//! Exit codes: `0` clean run / artifact no longer reproduces, `1`
//! divergences found / artifact reproduced, `2` usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use symple_fuzz::{run_fuzz, FuzzOptions};
use symple_oracle::{Artifact, ReplayOutcome, Sabotage};

const USAGE: &str = "\
symple-fuzz: coverage-guided differential fuzzer for SYMPLE UDAs

USAGE:
    symple-fuzz --smoke [OPTIONS]           bounded CI run (seed 0, 48 iters, 60 s)
    symple-fuzz [OPTIONS]                   run with explicit --seed/--budget
    symple-fuzz --replay <ARTIFACT>         re-run a repro artifact

OPTIONS:
    --seed <u64>          master seed (default 0); same seed + budget =>
                          same case sequence, coverage map, and findings
    --budget <u64>        iteration budget (default 48)
    --max-secs <u64>      wall-clock cap; truncates the run (default: none,
                          60 with --smoke)
    --sabotage <KIND>     deliberately break an executor:
                          drop-last-event | reorder-chunks | stale-checkpoint
                          | forged-cache-entry
                          (self-test: the run must then FAIL)
    --artifact-dir <DIR>  where repro files go (default target/fuzz)
    --no-artifacts        do not write repro files
    --help                this text

EXIT CODES:
    0  clean run, or replayed artifact no longer reproduces
    1  divergences found, or replayed artifact still reproduces
    2  usage error";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let mut opts = FuzzOptions::new();
    let mut replay = None;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match arg {
            "--smoke" => {
                // The CI preset; later flags may still override pieces.
                opts.seed = 0;
                opts.budget = 48;
                opts.max_secs = Some(60);
            }
            "--replay" => match value(&mut i) {
                Some(p) => replay = Some(PathBuf::from(p)),
                None => return usage_error("--replay needs a file"),
            },
            "--seed" => match value(&mut i).and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => opts.seed = s,
                None => return usage_error("--seed needs a u64"),
            },
            "--budget" => match value(&mut i).and_then(|v| v.parse::<u64>().ok()) {
                Some(b) => opts.budget = b,
                None => return usage_error("--budget needs a u64"),
            },
            "--max-secs" => match value(&mut i).and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => opts.max_secs = Some(s),
                None => return usage_error("--max-secs needs a u64"),
            },
            "--sabotage" => match value(&mut i).as_deref().and_then(Sabotage::parse) {
                Some(s) => opts.sabotage = s,
                None => {
                    return usage_error(
                        "--sabotage needs drop-last-event, reorder-chunks, stale-checkpoint, or forged-cache-entry",
                    )
                }
            },
            "--artifact-dir" => match value(&mut i) {
                Some(d) => opts.artifact_dir = PathBuf::from(d),
                None => return usage_error("--artifact-dir needs a path"),
            },
            "--no-artifacts" => opts.write_artifacts = false,
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    if let Some(path) = replay {
        return run_replay(&path);
    }

    println!(
        "symple-fuzz: seed {}, budget {}{}{}",
        opts.seed,
        opts.budget,
        opts.max_secs
            .map(|s| format!(", max {s}s"))
            .unwrap_or_default(),
        if opts.sabotage != Sabotage::None {
            format!(", SABOTAGE {}", opts.sabotage.as_str())
        } else {
            String::new()
        },
    );

    let report = run_fuzz(&opts);
    println!(
        "ran {} iterations, {} differential comparisons; {} behavior classes, corpus {}",
        report.iterations,
        report.comparisons,
        report.coverage.len(),
        report.corpus_size,
    );
    let diag = report.coverage.diag_union();
    println!(
        "diagnostic coverage: {}/8 codes [{}]",
        diag.len(),
        diag.codes().join(", ")
    );

    if report.clean() {
        println!("PASS: every generated case agreed with the sequential reference");
        return ExitCode::SUCCESS;
    }

    if !report.interp_mismatches.is_empty() {
        println!(
            "FAIL: concrete reference interpreter disagreed with sequential \
             execution on {} program(s):",
            report.interp_mismatches.len()
        );
        for token in &report.interp_mismatches {
            println!("  {token}");
        }
    }
    if !report.findings.is_empty() {
        println!("FAIL: {} finding(s)", report.findings.len());
        for f in &report.findings {
            println!();
            println!(
                "  [{}] {} — {}",
                f.artifact.kind.as_str(),
                f.artifact.program.as_deref().unwrap_or(&f.artifact.case),
                f.artifact.cell.describe()
            );
            println!(
                "    input: kind={} seed={} len={} kept={}",
                f.artifact.input_kind.as_deref().unwrap_or("?"),
                f.artifact.input.seed,
                f.artifact.input.len,
                f.artifact.input.kept_str()
            );
            println!("    expected: {}", f.artifact.expected);
            println!("    actual:   {}", f.artifact.actual);
            match &f.path {
                Some(p) => println!("    repro: {}", p.display()),
                None => println!("    repro: (not written)"),
            }
        }
    }
    ExitCode::FAILURE
}

fn run_replay(path: &PathBuf) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return usage_error(&format!("cannot read {}: {e}", path.display())),
    };
    let artifact = match Artifact::parse(&text) {
        Ok(a) => a,
        Err(e) => return usage_error(&format!("cannot parse {}: {e}", path.display())),
    };
    println!(
        "replaying {} ({} on {}, {})",
        path.display(),
        artifact.kind.as_str(),
        artifact.program.as_deref().unwrap_or(&artifact.case),
        artifact.cell.describe()
    );
    match artifact.replay() {
        Ok(ReplayOutcome::Reproduced { expected, actual }) => {
            println!("REPRODUCED");
            println!("  expected: {expected}");
            println!("  actual:   {actual}");
            ExitCode::FAILURE
        }
        Ok(ReplayOutcome::NotReproduced { actual }) => {
            println!("not reproduced — current tree agrees ({actual})");
            ExitCode::SUCCESS
        }
        Err(e) => usage_error(&e),
    }
}
