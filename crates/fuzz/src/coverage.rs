//! The fuzzer's coverage signature: which *behavior classes* a generated
//! program has exercised, combining the analyzer's diagnostic space
//! (`SY001`–`SY008` as a bitmask) with log₂-bucketed engine exploration
//! metrics (forks, merges, restarts, peak live paths) and the probe
//! outcome.
//!
//! Exact metric values would make nearly every program "novel" and the
//! corpus would grow without bound; bucketing to powers of two keeps the
//! key space small while still separating "never forks" from "forks a
//! few times" from "forks until the engine refuses".

use std::collections::BTreeSet;

use symple_analyze::DiagCoverage;
use symple_core::engine::ExploreStats;

/// Log₂ bucket of a metric: 0 → 0, 1 → 1, 2–3 → 2, 4–7 → 3, …
pub fn bucket(n: u64) -> u8 {
    (64 - n.leading_zeros()) as u8
}

/// One behavior class: a point in (diagnostic space × outcome ×
/// bucketed exploration metrics).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CoverageKey {
    /// Analyzer diagnostic signature ([`DiagCoverage::bits`]).
    pub diag_bits: u8,
    /// Probe outcome token (`"ok"` or `"err:<Variant>"`).
    pub outcome: String,
    /// Bucketed [`ExploreStats::forks`].
    pub forks: u8,
    /// Bucketed [`ExploreStats::merges`].
    pub merges: u8,
    /// Bucketed [`ExploreStats::restarts`].
    pub restarts: u8,
    /// Bucketed [`ExploreStats::max_live_paths`].
    pub live: u8,
}

impl CoverageKey {
    /// Builds a key from an analyzer signature, an engine probe, and the
    /// probe's outcome token.
    pub fn new(diag: DiagCoverage, outcome: &str, stats: &ExploreStats) -> CoverageKey {
        CoverageKey {
            diag_bits: diag.bits(),
            outcome: outcome.to_string(),
            forks: bucket(stats.forks),
            merges: bucket(stats.merges),
            restarts: bucket(stats.restarts),
            live: bucket(stats.max_live_paths as u64),
        }
    }
}

/// The set of behavior classes seen so far, plus the running union of
/// diagnostic codes. Iteration order (and therefore [`render`]) is the
/// `BTreeSet` order — fully deterministic.
///
/// [`render`]: CoverageMap::render
#[derive(Debug, Default)]
pub struct CoverageMap {
    keys: BTreeSet<CoverageKey>,
    diag_union: DiagCoverage,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Records a key; returns `true` when it is novel (a behavior class
    /// no earlier program reached — the signal that seeds the corpus).
    pub fn insert(&mut self, key: CoverageKey) -> bool {
        self.diag_union = self
            .diag_union
            .union(DiagCoverage::from_bits(key.diag_bits));
        self.keys.insert(key)
    }

    /// Number of distinct behavior classes seen.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Union of all diagnostic codes any program exercised.
    pub fn diag_union(&self) -> DiagCoverage {
        self.diag_union
    }

    /// Deterministic multi-line rendering, one key per line — used by the
    /// CLI report and by the determinism acceptance test (same seed ⇒
    /// byte-identical render).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for k in &self.keys {
            out.push_str(&format!(
                "diag={:#04x} outcome={} forks^{} merges^{} restarts^{} live^{}\n",
                k.diag_bits, k.outcome, k.forks, k.merges, k.restarts, k.live
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(forks: u64, merges: u64, restarts: u64, live: usize) -> ExploreStats {
        ExploreStats {
            forks,
            merges,
            restarts,
            max_live_paths: live,
            ..ExploreStats::default()
        }
    }

    #[test]
    fn bucket_is_log2() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(7), 3);
        assert_eq!(bucket(8), 4);
        assert_eq!(bucket(u64::MAX), 64);
    }

    #[test]
    fn novelty_respects_buckets_not_exact_values() {
        let mut map = CoverageMap::new();
        let d = DiagCoverage::EMPTY;
        assert!(map.insert(CoverageKey::new(d, "ok", &stats(2, 0, 0, 1))));
        // 3 forks lands in the same bucket as 2: not novel.
        assert!(!map.insert(CoverageKey::new(d, "ok", &stats(3, 0, 0, 1))));
        // 4 forks crosses a bucket boundary: novel.
        assert!(map.insert(CoverageKey::new(d, "ok", &stats(4, 0, 0, 1))));
        // Same metrics, different outcome: novel.
        assert!(map.insert(CoverageKey::new(d, "err:PathExplosion", &stats(4, 0, 0, 1))));
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        let d = DiagCoverage::EMPTY;
        let k1 = CoverageKey::new(d, "ok", &stats(9, 1, 0, 4));
        let k2 = CoverageKey::new(d, "err:ArithmeticOverflow", &stats(0, 0, 0, 1));
        // Insertion order differs; render must not.
        a.insert(k1.clone());
        a.insert(k2.clone());
        b.insert(k2);
        b.insert(k1);
        assert_eq!(a.render(), b.render());
        assert!(a.render().lines().count() == 2);
    }
}
