//! The coverage-guided fuzz loop.
//!
//! Each iteration: pick a program (mutate a corpus member or generate
//! fresh), pick an adversarial input shape, *probe* it (analyzer
//! diagnostic signature + one symbolic-execution run's [`ExploreStats`]),
//! fold the probe into the [`CoverageMap`], and — the actual oracle —
//! sweep the program through a focused executor matrix via
//! [`run_oracle_on`], differential-checking every cell against the
//! sequential reference. Programs that reach a novel behavior class seed
//! the mutation corpus.
//!
//! Alongside the executor sweep, every iteration cross-checks the
//! concrete reference interpreter ([`eval_concrete`]) against sequential
//! UDA execution on the probe stream: the interpreter is the independent
//! ground truth the parity suite leans on, so the fuzzer guards it too.
//!
//! Everything is deterministic in (seed, budget): randomness flows from
//! one [`Rng64`] stream, the sweep seeds derive from it, and wall-clock
//! (`max_secs`) can only *truncate* the iteration sequence, never reorder
//! it.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use symple_analyze::diag_signature;
use symple_core::ast::{eval_concrete, AstUda, Program};
use symple_core::engine::{EngineConfig, ExploreStats, MergePolicy, SymbolicExecutor};
use symple_core::rng::Rng64;
use symple_core::uda::run_sequential;
use symple_core::Result;
use symple_oracle::case::error_variant;
use symple_oracle::{
    program_case, run_oracle_on, Cell, Depth, ExecutorKind, Finding, InputKind, OracleOptions,
    Sabotage,
};

use crate::coverage::{CoverageKey, CoverageMap};
use crate::gen::{gen_program, GenConfig};
use crate::mutate::mutate;

/// Events per coverage probe: long enough for restarts and merges to
/// show up, short enough to stay microseconds-cheap.
const PROBE_LEN: usize = 24;

/// Input lengths each generated case is swept with. Short on purpose —
/// engine disagreements reproduce at small scale (the shrinker would
/// minimize there anyway), and short inputs keep per-iteration sweep cost
/// flat.
const FUZZ_LENS: [usize; 3] = [0, 5, 17];

/// Fuzzer configuration.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed; same seed (and budget) ⇒ same case sequence, same
    /// coverage map, same findings.
    pub seed: u64,
    /// Iteration budget (the determinism unit — *not* wall-clock).
    pub budget: u64,
    /// Optional wall-clock cap; truncates the iteration sequence.
    pub max_secs: Option<u64>,
    /// Deliberate executor break for self-tests: the fuzzer must find it.
    pub sabotage: Sabotage,
    /// Where repro artifacts are written (when `write_artifacts`).
    pub artifact_dir: PathBuf,
    /// Whether findings are persisted to disk.
    pub write_artifacts: bool,
    /// Stop fuzzing after this many findings (each one is shrunk, which
    /// dominates cost once bugs are plentiful — e.g. under sabotage).
    pub max_findings: usize,
}

impl FuzzOptions {
    /// Defaults: seed 0, budget 48, no wall-clock cap, no sabotage,
    /// artifacts under `target/fuzz`.
    pub fn new() -> FuzzOptions {
        FuzzOptions {
            seed: 0,
            budget: 48,
            max_secs: None,
            sabotage: Sabotage::None,
            artifact_dir: PathBuf::from("target/fuzz"),
            write_artifacts: true,
            max_findings: 5,
        }
    }
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions::new()
    }
}

/// Outcome of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Iterations actually executed (≤ budget; wall-clock may truncate).
    pub iterations: u64,
    /// Differential comparisons executed across all sweeps.
    pub comparisons: u64,
    /// Programs that reached a novel behavior class (= corpus size).
    pub corpus_size: usize,
    /// The accumulated coverage map.
    pub coverage: CoverageMap,
    /// Confirmed, shrunk divergences (each artifact embeds its program).
    pub findings: Vec<Finding>,
    /// Program tokens where the concrete reference interpreter disagreed
    /// with sequential UDA execution — a bug in `core` itself, reported
    /// separately because no executor cell is involved.
    pub interp_mismatches: Vec<String>,
}

impl FuzzReport {
    /// True when nothing diverged.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.interp_mismatches.is_empty()
    }
}

/// The focused matrix generated cases sweep against: one representative
/// cell per executor plus the knobs that historically disagree first
/// (restart-heavy `Never`, all-symbolic, crash-resume). Tree cells are
/// included but branching programs opt out via
/// [`program_case`]'s supports() decision.
pub fn fuzz_matrix() -> Vec<Cell> {
    let base = Cell::default_chunked(1);
    vec![
        Cell { chunks: 2, ..base },
        Cell {
            chunks: 3,
            merge_policy: MergePolicy::Never,
            max_total_paths: 2,
            ..base
        },
        Cell {
            chunks: 3,
            first_segment_concrete: false,
            ..base
        },
        Cell {
            executor: ExecutorKind::MapReduce,
            chunks: 3,
            ..base
        },
        Cell {
            executor: ExecutorKind::MapReduceTree,
            chunks: 3,
            ..base
        },
        Cell {
            executor: ExecutorKind::CrashResume,
            chunks: 4,
            ..base
        },
        Cell {
            executor: ExecutorKind::WarmResweep,
            chunks: 4,
            ..base
        },
    ]
}

/// One symbolic-execution probe: feeds `events` through a fresh executor
/// and reports the outcome token plus exploration counters. Errors stop
/// the feed but still report the stats accumulated up to that point —
/// "refused after 3 forks" and "refused after 40" are different behavior
/// classes.
fn probe(uda: &AstUda, events: &[i64]) -> (String, ExploreStats) {
    let cfg = EngineConfig {
        max_paths_per_record: 1024,
        max_total_paths: 8,
        merge_policy: MergePolicy::HighWater,
        ..EngineConfig::default()
    };
    let mut ex = SymbolicExecutor::new(uda, cfg);
    let mut outcome = "ok".to_string();
    for e in events {
        if let Err(err) = ex.feed(e) {
            outcome = format!("err:{}", error_variant(&err));
            break;
        }
    }
    (outcome, ex.stats())
}

fn results_match(a: &Result<Vec<Vec<i64>>>, b: &Result<Vec<Vec<i64>>>) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => x == y,
        (Err(x), Err(y)) => error_variant(x) == error_variant(y),
        _ => false,
    }
}

/// Runs the fuzz loop. Deterministic: same options ⇒ same report
/// (wall-clock capping aside, which can only cut the sequence short).
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let _span = symple_obs::span("fuzz.run");
    let cfg = GenConfig::default();
    let mut rng = Rng64::seed_from_u64(opts.seed);
    let mut corpus: Vec<Program> = Vec::new();
    let mut report = FuzzReport::default();
    let deadline = opts
        .max_secs
        .map(|s| Instant::now() + Duration::from_secs(s));

    for _ in 0..opts.budget {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        if report.findings.len() >= opts.max_findings {
            break;
        }
        // Drawn unconditionally, first, so the stream position at each
        // iteration is independent of what earlier iterations found.
        let sweep_seed = rng.gen::<u64>();

        let program = if !corpus.is_empty() && rng.gen_bool(0.5) {
            let pick = rng.gen_range(0usize..corpus.len());
            mutate(&mut rng, &corpus[pick], &cfg)
        } else {
            gen_program(&mut rng, &cfg)
        };
        let kind = InputKind::ALL[rng.gen_range(0usize..InputKind::ALL.len())];
        report.iterations += 1;
        symple_obs::counter_add("fuzz.iterations", 1);

        // Coverage probe: analyzer signature + one engine run.
        let variants = program.variants();
        let uda = AstUda::new(program.clone());
        let diag = diag_signature(&symple_core::analyze_uda(&uda, &variants));
        let events = kind.generate(sweep_seed, PROBE_LEN);
        let (outcome, stats) = probe(&uda, &events);

        // Ground-truth guard: the concrete interpreter and sequential UDA
        // execution must agree on every program, not just the committed
        // parity suite.
        if !results_match(
            &eval_concrete(&program, &events),
            &run_sequential(&uda, &events),
        ) {
            report.interp_mismatches.push(program.to_token());
            symple_obs::counter_add("fuzz.interp_mismatches", 1);
        }

        if report
            .coverage
            .insert(CoverageKey::new(diag, &outcome, &stats))
        {
            symple_obs::counter_add("fuzz.novel", 1);
            corpus.push(program.clone());
        }

        // The differential oracle sweep — same driver, shrinker, and
        // artifact machinery as the registry cases.
        let case = match program_case(program, kind) {
            Ok(c) => c,
            // Unreachable for generated programs (they typecheck by
            // construction), but never worth a panic mid-fuzz.
            Err(_) => continue,
        };
        let sweep_opts = OracleOptions {
            seed: sweep_seed,
            sabotage: opts.sabotage,
            artifact_dir: opts.artifact_dir.clone(),
            write_artifacts: opts.write_artifacts,
            max_findings_per_case: 1,
            // Predicted-refusal cells carry no differential signal; skip
            // them instead of growing paths to the bound.
            analyze_first: true,
            matrix: Some(fuzz_matrix()),
            lens: Some(FUZZ_LENS.to_vec()),
            ..OracleOptions::new(Depth::Smoke)
        };
        let cases = vec![case];
        let sweep = run_oracle_on(&cases, &sweep_opts);
        report.comparisons += sweep.comparisons;
        report.findings.extend(sweep.findings);
    }

    report.corpus_size = corpus.len();
    symple_obs::counter_add("fuzz.findings", report.findings.len() as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_oracle::ReplayOutcome;

    fn quiet(seed: u64, budget: u64) -> FuzzOptions {
        FuzzOptions {
            seed,
            budget,
            write_artifacts: false,
            ..FuzzOptions::new()
        }
    }

    #[test]
    fn fuzz_runs_are_deterministic() {
        let opts = quiet(5, 6);
        let a = run_fuzz(&opts);
        let b = run_fuzz(&opts);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.comparisons, b.comparisons);
        assert_eq!(a.corpus_size, b.corpus_size);
        assert_eq!(a.coverage.render(), b.coverage.render());
        assert_eq!(a.findings.len(), b.findings.len());
        for (x, y) in a.findings.iter().zip(&b.findings) {
            assert_eq!(x.artifact, y.artifact);
        }
    }

    #[test]
    fn different_seeds_explore_different_programs() {
        let a = run_fuzz(&quiet(1, 6));
        let b = run_fuzz(&quiet(2, 6));
        // Weak but meaningful: distinct streams should not produce
        // byte-identical coverage on six iterations each.
        assert!(
            a.coverage.render() != b.coverage.render() || a.comparisons != b.comparisons,
            "seeds 1 and 2 produced identical runs"
        );
    }

    #[test]
    fn clean_engine_produces_no_findings() {
        let report = run_fuzz(&quiet(3, 10));
        assert_eq!(report.iterations, 10);
        assert!(
            report.interp_mismatches.is_empty(),
            "{:?}",
            report.interp_mismatches
        );
        assert!(report.clean(), "findings: {:#?}", report.findings);
        assert!(report.comparisons > 0);
        assert!(
            report.corpus_size > 0,
            "nothing was novel in 10 iterations?"
        );
    }

    #[test]
    fn sabotage_is_found_shrunk_and_replayable() {
        let opts = FuzzOptions {
            sabotage: Sabotage::DropLastEvent,
            max_findings: 1,
            ..quiet(0, 40)
        };
        let report = run_fuzz(&opts);
        assert!(!report.clean(), "sabotage must be detected");
        let f = &report.findings[0];
        // The artifact is self-contained: it embeds the generated program
        // and input shape, so replay needs no registry entry.
        assert!(f.artifact.program.is_some());
        assert!(f.artifact.input_kind.is_some());
        assert!(f.artifact.input.effective_len() <= f.original_input.effective_len());
        let outcome = f.artifact.replay().unwrap();
        assert!(
            matches!(outcome, ReplayOutcome::Reproduced { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn wall_clock_cap_truncates() {
        let opts = FuzzOptions {
            max_secs: Some(0),
            ..quiet(1, 1000)
        };
        let report = run_fuzz(&opts);
        assert_eq!(report.iterations, 0);
    }
}
