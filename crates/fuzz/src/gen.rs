//! Random well-typed [`Program`] generation.
//!
//! Programs are correct *by construction*: every statement and guard is
//! generated against the field table it references, so [`Program::typecheck`]
//! always passes (asserted in debug builds and re-checked by the proptest
//! suite). The distribution is deliberately skewed toward the shapes the
//! engine finds hard — narrow-width accumulators that overflow, forking
//! guards over symbolic state, resets that truncate summaries, and vector
//! pushes of still-symbolic integers.

use symple_core::ast::{
    CmpOp, Cond, FieldDecl, IntArg, IntOpKind, PredKind, Program, Stmt, MAX_STMTS,
};
use symple_core::rng::Rng64;

/// Size bounds for generated programs.
///
/// The defaults are intentionally small: SYMPLE's interesting behavior
/// (forks, merges, restarts, refusals) shows up within a handful of
/// statements, and small programs keep every sweep cell fast and every
/// shrunk artifact readable.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Fields per program (at least 1 is always generated).
    pub max_fields: usize,
    /// Top-level statements per program.
    pub max_stmts: usize,
    /// Branch-nesting depth.
    pub max_depth: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_fields: 4,
            max_stmts: 8,
            max_depth: 2,
        }
    }
}

/// Integer widths the generator draws from. Narrow widths are the
/// overflow-prone accumulators the issue calls for; the engine refuses
/// them conservatively under symbolic execution, which is itself a
/// behavior class worth covering.
const WIDTHS: [u8; 4] = [8, 16, 32, 64];

/// Generates one random well-typed program.
pub fn gen_program(rng: &mut Rng64, cfg: &GenConfig) -> Program {
    let nfields = rng.gen_range(1..=cfg.max_fields.max(1));
    let fields: Vec<FieldDecl> = (0..nfields).map(|_| gen_field(rng)).collect();

    let nstmts = rng.gen_range(1..=cfg.max_stmts.clamp(1, MAX_STMTS));
    let body: Vec<Stmt> = (0..nstmts)
        .map(|_| gen_stmt(rng, &fields, cfg.max_depth))
        .collect();

    let p = Program { fields, body };
    debug_assert!(p.typecheck().is_ok(), "generator broke typing: {p:?}");
    p
}

fn gen_field(rng: &mut Rng64) -> FieldDecl {
    // Ints dominate: checked arithmetic over narrow widths is the richest
    // bug surface (overflow, conservative refusal, salvage).
    match rng.gen_range(0u32..8) {
        0..=2 => FieldDecl::Int {
            width: WIDTHS[rng.gen_range(0usize..WIDTHS.len())],
            init: rng.gen_range(-4i64..=4),
        },
        3 => FieldDecl::Bool {
            init: rng.gen_bool(0.5),
        },
        4 => {
            let domain = rng.gen_range(2u32..=8);
            FieldDecl::Enum {
                domain,
                init: rng.gen_range(0u32..domain),
            }
        }
        5 => FieldDecl::MinMax {
            max: rng.gen_bool(0.5),
        },
        6 => FieldDecl::Pred {
            kind: match rng.gen_range(0u32..3) {
                0 => PredKind::Lt,
                1 => PredKind::Le,
                _ => PredKind::Gt,
            },
            window: rng.gen_range(2usize..=4),
        },
        _ => FieldDecl::Vec,
    }
}

/// A random operand: mostly the event (data-dependent updates are what
/// make summaries non-trivial), sometimes a reduced event or a constant.
pub(crate) fn gen_arg(rng: &mut Rng64) -> IntArg {
    match rng.gen_range(0u32..6) {
        0..=2 => IntArg::Event,
        3 => IntArg::EventMod(rng.gen_range(2i64..=9)),
        _ => IntArg::Const(rng.gen_range(-8i64..=8)),
    }
}

fn gen_cmp(rng: &mut Rng64, order_only: bool) -> CmpOp {
    let n = if order_only { 4 } else { 6 };
    match rng.gen_range(0u32..n) {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Eq,
        _ => CmpOp::Ne,
    }
}

/// A random guard that is well-typed against `fields`.
pub(crate) fn gen_cond(rng: &mut Rng64, fields: &[FieldDecl]) -> Cond {
    // Event guards never fork; state guards usually do. Bias toward state
    // guards — forks are the behavior under test.
    if rng.gen_bool(0.25) {
        return Cond::Event {
            op: gen_cmp(rng, false),
            k: rng.gen_range(-8i64..=8),
        };
    }
    let f = rng.gen_range(0usize..fields.len());
    match fields[f] {
        FieldDecl::Int { .. } => Cond::Int {
            f,
            op: gen_cmp(rng, false),
            k: rng.gen_range(-8i64..=8),
        },
        FieldDecl::MinMax { .. } => Cond::MinMax {
            f,
            op: gen_cmp(rng, true),
            k: rng.gen_range(-8i64..=8),
        },
        FieldDecl::Bool { .. } => Cond::Bool { f },
        FieldDecl::Enum { domain, .. } => Cond::Enum {
            f,
            eq: rng.gen_bool(0.5),
            c: rng.gen_range(0u32..domain),
        },
        FieldDecl::Pred { .. } => Cond::Pred {
            f,
            arg: gen_arg(rng),
        },
        // Vectors have no guard form; fall back to an event guard.
        FieldDecl::Vec => Cond::Event {
            op: gen_cmp(rng, false),
            k: rng.gen_range(-8i64..=8),
        },
    }
}

/// A random statement that is well-typed against `fields`. `depth` bounds
/// further `if` nesting.
pub(crate) fn gen_stmt(rng: &mut Rng64, fields: &[FieldDecl], depth: usize) -> Stmt {
    if depth > 0 && rng.gen_bool(0.25) {
        let then_n = rng.gen_range(1usize..=2);
        let els_n = rng.gen_range(0usize..=2);
        return Stmt::If {
            cond: gen_cond(rng, fields),
            then: (0..then_n)
                .map(|_| gen_stmt(rng, fields, depth - 1))
                .collect(),
            els: (0..els_n)
                .map(|_| gen_stmt(rng, fields, depth - 1))
                .collect(),
        };
    }

    let f = rng.gen_range(0usize..fields.len());
    match fields[f] {
        FieldDecl::Int { .. } => {
            // Arithmetic dominates; resets are the rarer (but summary-
            // truncating, so important) shape.
            if rng.gen_bool(0.8) {
                Stmt::IntOp {
                    f,
                    op: match rng.gen_range(0u32..8) {
                        0..=4 => IntOpKind::Add,
                        5 => IntOpKind::Sub,
                        6 => IntOpKind::Mul,
                        _ => IntOpKind::Rsub,
                    },
                    arg: gen_arg(rng),
                }
            } else {
                Stmt::IntSet {
                    f,
                    arg: gen_arg(rng),
                }
            }
        }
        FieldDecl::Bool { .. } => Stmt::BoolSet {
            f,
            v: rng.gen_bool(0.5),
        },
        FieldDecl::Enum { domain, .. } => Stmt::EnumSet {
            f,
            c: rng.gen_range(0u32..domain),
        },
        FieldDecl::MinMax { .. } => {
            if rng.gen_bool(0.85) {
                Stmt::MinMaxUpd {
                    f,
                    arg: gen_arg(rng),
                }
            } else {
                Stmt::MinMaxSet {
                    f,
                    arg: gen_arg(rng),
                }
            }
        }
        FieldDecl::Pred { .. } => Stmt::PredSet {
            f,
            arg: gen_arg(rng),
        },
        FieldDecl::Vec => {
            // Prefer pushing a (possibly symbolic) int field when one
            // exists: symbolic vector elements stress summary substitution.
            let ints: Vec<usize> = fields
                .iter()
                .enumerate()
                .filter(|(_, d)| matches!(d, FieldDecl::Int { .. }))
                .map(|(i, _)| i)
                .collect();
            if !ints.is_empty() && rng.gen_bool(0.6) {
                Stmt::VecPushInt {
                    f,
                    src: ints[rng.gen_range(0usize..ints.len())],
                }
            } else {
                Stmt::VecPush {
                    f,
                    arg: gen_arg(rng),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_typecheck_and_round_trip() {
        let cfg = GenConfig::default();
        let mut rng = Rng64::seed_from_u64(11);
        for _ in 0..200 {
            let p = gen_program(&mut rng, &cfg);
            p.typecheck().expect("generated program must typecheck");
            let reparsed = Program::parse_token(&p.to_token()).expect("token must parse");
            assert_eq!(p, reparsed);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let mut a = Rng64::seed_from_u64(5);
        let mut b = Rng64::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(gen_program(&mut a, &cfg), gen_program(&mut b, &cfg));
        }
    }

    #[test]
    fn generator_reaches_every_field_kind_and_branches() {
        let cfg = GenConfig {
            max_fields: 6,
            ..GenConfig::default()
        };
        let mut rng = Rng64::seed_from_u64(1);
        let mut kinds = std::collections::BTreeSet::new();
        let mut saw_if = false;
        for _ in 0..300 {
            let p = gen_program(&mut rng, &cfg);
            for f in &p.fields {
                kinds.insert(f.kind_str());
            }
            saw_if |= p.body.iter().any(|s| matches!(s, Stmt::If { .. }));
        }
        assert_eq!(
            kinds.into_iter().collect::<Vec<_>>(),
            vec!["bool", "enum", "int", "minmax", "pred", "vec"]
        );
        assert!(saw_if, "300 programs with no branch — distribution broken");
    }
}
