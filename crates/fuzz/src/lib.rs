//! Coverage-guided fuzzing for SYMPLE user-defined aggregations.
//!
//! The oracle registry (`crates/oracle`) sweeps a *fixed* set of
//! hand-written UDAs; this crate generates the UDAs too. A random
//! well-typed [`Program`] (bounded AST over the six symbolic state types)
//! is paired with an adversarial input shape
//! ([`InputKind`](symple_oracle::InputKind)), probed for its behavior
//! class (analyzer diagnostics × engine exploration metrics), and
//! differential-checked against the sequential reference through the
//! oracle's own sweep driver. Programs that reach novel behavior seed a
//! mutation corpus; divergences are ddmin-shrunk into self-contained
//! `SYMPLE-ORACLE-REPRO` artifacts whose embedded program token makes
//! them replayable forever — the committed ones under `tests/corpus/`
//! re-run as ordinary `cargo test`.
//!
//! Entry points: [`run_fuzz`] (library) and the `symple-fuzz` CLI.
//!
//! [`Program`]: symple_core::ast::Program

pub mod coverage;
pub mod fuzzer;
pub mod gen;
pub mod mutate;

pub use coverage::{bucket, CoverageKey, CoverageMap};
pub use fuzzer::{fuzz_matrix, run_fuzz, FuzzOptions, FuzzReport};
pub use gen::{gen_program, GenConfig};
pub use mutate::mutate;
