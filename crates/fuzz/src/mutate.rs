//! Validity-preserving program mutation.
//!
//! Coverage guidance only works if a program that moved an engine metric
//! can be *perturbed* rather than regenerated from scratch. Every mutation
//! here preserves well-typedness by construction (field references are
//! never retargeted across kinds; enum constants stay in domain), and the
//! result is re-checked with [`Program::typecheck`] — if a mutation ever
//! produces an ill-typed program (e.g. `wrap-if` exceeding the nesting
//! bound after repeated application), the original is returned unchanged
//! instead.

use symple_core::ast::{CmpOp, Cond, FieldDecl, IntArg, IntOpKind, Program, Stmt, MAX_STMTS};
use symple_core::rng::Rng64;

use crate::gen::{gen_cond, gen_stmt, GenConfig};

/// Deltas applied to integer constants: small nudges to cross guard
/// boundaries, plus width-scale jumps to provoke checked-arithmetic
/// failures.
const DELTAS: [i64; 7] = [-1, 1, -2, 2, 16, 127, -128];

/// Mutates `p` into a new well-typed program.
///
/// Picks one of seven mutation operators at random and retries (with
/// fresh randomness) when the chosen operator does not apply to this
/// program shape; falls back to a verbatim clone if nothing applies.
pub fn mutate(rng: &mut Rng64, p: &Program, cfg: &GenConfig) -> Program {
    for _ in 0..8 {
        let mut out = p.clone();
        let applied = match rng.gen_range(0u32..7) {
            0 => tweak_const(rng, &mut out),
            1 => flip_op(rng, &mut out),
            2 => add_stmt(rng, &mut out, cfg),
            3 => remove_stmt(rng, &mut out),
            4 => swap_stmts(rng, &mut out),
            5 => wrap_if(rng, &mut out),
            _ => change_width(rng, &mut out),
        };
        if applied {
            match out.typecheck() {
                Ok(()) => return out,
                // Only nesting/size overflows can land here (repeated
                // wrap-if / add-stmt on a corpus program); treat the
                // operator as inapplicable and retry. Anything else is a
                // mutator bug.
                Err(e) => debug_assert!(
                    e.contains("too deep") || e.contains("too many"),
                    "mutation broke typing: {e}"
                ),
            }
        }
    }
    p.clone()
}

fn walk(block: &mut [Stmt], f: &mut impl FnMut(&mut Stmt)) {
    for s in block.iter_mut() {
        f(s);
        if let Stmt::If { then, els, .. } = s {
            walk(then, f);
            walk(els, f);
        }
    }
}

/// Nudges one integer constant (an [`IntArg::Const`], an
/// [`IntArg::EventMod`] modulus, or a guard threshold). Enum-domain
/// constants are deliberately excluded: nudging them would need a domain
/// clamp and adds nothing the guard thresholds don't already cover.
fn tweak_const(rng: &mut Rng64, p: &mut Program) -> bool {
    // Pass 1: count tweakable slots.
    let mut slots = 0usize;
    let count_arg = |slots: &mut usize, a: &IntArg| {
        if matches!(a, IntArg::Const(_) | IntArg::EventMod(_)) {
            *slots += 1;
        }
    };
    walk(&mut p.body.clone(), &mut |s| match s {
        Stmt::IntOp { arg, .. }
        | Stmt::IntSet { arg, .. }
        | Stmt::MinMaxUpd { arg, .. }
        | Stmt::MinMaxSet { arg, .. }
        | Stmt::PredSet { arg, .. }
        | Stmt::VecPush { arg, .. } => count_arg(&mut slots, arg),
        Stmt::If { cond, .. } => match cond {
            Cond::Int { .. } | Cond::MinMax { .. } | Cond::Event { .. } => slots += 1,
            Cond::Pred { arg, .. } => count_arg(&mut slots, arg),
            Cond::Bool { .. } | Cond::Enum { .. } => {}
        },
        Stmt::BoolSet { .. } | Stmt::EnumSet { .. } | Stmt::VecPushInt { .. } => {}
    });
    if slots == 0 {
        return false;
    }

    // Pass 2: rewrite the chosen slot.
    let target = rng.gen_range(0usize..slots);
    let delta = DELTAS[rng.gen_range(0usize..DELTAS.len())];
    let mut idx = 0usize;
    let tweak_arg = |idx: &mut usize, a: &mut IntArg| match a {
        IntArg::Const(c) => {
            if *idx == target {
                *c = c.wrapping_add(delta);
            }
            *idx += 1;
        }
        IntArg::EventMod(k) => {
            if *idx == target {
                *k = k.wrapping_add(delta).clamp(1, 16);
            }
            *idx += 1;
        }
        IntArg::Event => {}
    };
    walk(&mut p.body, &mut |s| match s {
        Stmt::IntOp { arg, .. }
        | Stmt::IntSet { arg, .. }
        | Stmt::MinMaxUpd { arg, .. }
        | Stmt::MinMaxSet { arg, .. }
        | Stmt::PredSet { arg, .. }
        | Stmt::VecPush { arg, .. } => tweak_arg(&mut idx, arg),
        Stmt::If { cond, .. } => match cond {
            Cond::Int { k, .. } | Cond::MinMax { k, .. } | Cond::Event { k, .. } => {
                if idx == target {
                    *k = k.wrapping_add(delta);
                }
                idx += 1;
            }
            Cond::Pred { arg, .. } => tweak_arg(&mut idx, arg),
            Cond::Bool { .. } | Cond::Enum { .. } => {}
        },
        Stmt::BoolSet { .. } | Stmt::EnumSet { .. } | Stmt::VecPushInt { .. } => {}
    });
    true
}

fn next_cmp(op: CmpOp, order_only: bool) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Le,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Ge,
        CmpOp::Ge if order_only => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Eq,
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Lt,
    }
}

/// Rotates one operator: an arithmetic op, or a comparison in a guard.
/// MinMax guards rotate within the order operators only (`Eq`/`Ne` are
/// ill-typed there).
fn flip_op(rng: &mut Rng64, p: &mut Program) -> bool {
    let mut slots = 0usize;
    walk(&mut p.body.clone(), &mut |s| match s {
        Stmt::IntOp { .. } => slots += 1,
        Stmt::If { cond, .. } => {
            if matches!(
                cond,
                Cond::Int { .. } | Cond::MinMax { .. } | Cond::Event { .. } | Cond::Enum { .. }
            ) {
                slots += 1;
            }
        }
        _ => {}
    });
    if slots == 0 {
        return false;
    }
    let target = rng.gen_range(0usize..slots);
    let mut idx = 0usize;
    walk(&mut p.body, &mut |s| match s {
        Stmt::IntOp { op, .. } => {
            if idx == target {
                *op = match op {
                    IntOpKind::Add => IntOpKind::Sub,
                    IntOpKind::Sub => IntOpKind::Mul,
                    IntOpKind::Mul => IntOpKind::Rsub,
                    IntOpKind::Rsub => IntOpKind::Add,
                };
            }
            idx += 1;
        }
        Stmt::If { cond, .. } => match cond {
            Cond::Int { op, .. } | Cond::Event { op, .. } => {
                if idx == target {
                    *op = next_cmp(*op, false);
                }
                idx += 1;
            }
            Cond::MinMax { op, .. } => {
                if idx == target {
                    *op = next_cmp(*op, true);
                }
                idx += 1;
            }
            Cond::Enum { eq, .. } => {
                if idx == target {
                    *eq = !*eq;
                }
                idx += 1;
            }
            Cond::Bool { .. } | Cond::Pred { .. } => {}
        },
        _ => {}
    });
    true
}

/// Inserts a freshly generated statement at a random top-level position.
fn add_stmt(rng: &mut Rng64, p: &mut Program, cfg: &GenConfig) -> bool {
    if p.body.len() >= cfg.max_stmts.clamp(1, MAX_STMTS) {
        return false;
    }
    let s = gen_stmt(rng, &p.fields, cfg.max_depth.saturating_sub(1));
    let at = rng.gen_range(0usize..=p.body.len());
    p.body.insert(at, s);
    true
}

/// Drops a random top-level statement (never the last one — an empty body
/// is a degenerate program the generator never produces).
fn remove_stmt(rng: &mut Rng64, p: &mut Program) -> bool {
    if p.body.len() < 2 {
        return false;
    }
    let at = rng.gen_range(0usize..p.body.len());
    p.body.remove(at);
    true
}

/// Swaps two top-level statements — statement order is semantically
/// significant (resets vs accumulation), so this probes order bugs.
fn swap_stmts(rng: &mut Rng64, p: &mut Program) -> bool {
    if p.body.len() < 2 {
        return false;
    }
    let a = rng.gen_range(0usize..p.body.len());
    let b = rng.gen_range(0usize..p.body.len());
    if a == b {
        return false;
    }
    p.body.swap(a, b);
    true
}

/// Guards a random top-level statement with a fresh condition, turning an
/// unconditional update into a forking one.
fn wrap_if(rng: &mut Rng64, p: &mut Program) -> bool {
    if p.body.is_empty() {
        return false;
    }
    let at = rng.gen_range(0usize..p.body.len());
    let cond = gen_cond(rng, &p.fields);
    let old = p.body[at].clone();
    p.body[at] = Stmt::If {
        cond,
        then: vec![old],
        els: Vec::new(),
    };
    true
}

/// Re-declares one int field at a different width. Narrowing a width is
/// the cheapest way to turn a benign accumulator into an overflow-prone
/// one (and vice versa); declared inits are small, so any width fits.
fn change_width(rng: &mut Rng64, p: &mut Program) -> bool {
    let ints: Vec<usize> = p
        .fields
        .iter()
        .enumerate()
        .filter(|(_, d)| matches!(d, FieldDecl::Int { .. }))
        .map(|(i, _)| i)
        .collect();
    if ints.is_empty() {
        return false;
    }
    let f = ints[rng.gen_range(0usize..ints.len())];
    let FieldDecl::Int { width, init } = p.fields[f] else {
        unreachable!()
    };
    const WIDTHS: [u8; 4] = [8, 16, 32, 64];
    let new = WIDTHS[rng.gen_range(0usize..WIDTHS.len())];
    if new == width {
        return false;
    }
    // Clamp the init into the new width so the declaration stays valid
    // even for corpus programs with unusual inits.
    let bound = if new == 64 {
        i64::MAX
    } else {
        (1i64 << (new - 1)) - 1
    };
    p.fields[f] = FieldDecl::Int {
        width: new,
        init: init.clamp(-bound - 1, bound),
    };
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_program;

    #[test]
    fn mutation_preserves_well_typedness() {
        let cfg = GenConfig::default();
        let mut rng = Rng64::seed_from_u64(21);
        for _ in 0..100 {
            let p = gen_program(&mut rng, &cfg);
            let mut q = p.clone();
            // Chains of mutations stay well-typed, not just single steps.
            for _ in 0..10 {
                q = mutate(&mut rng, &q, &cfg);
                q.typecheck().expect("mutation must preserve typing");
            }
        }
    }

    #[test]
    fn mutation_is_deterministic_and_usually_changes_the_program() {
        let cfg = GenConfig::default();
        let mut gen_rng = Rng64::seed_from_u64(3);
        let p = gen_program(&mut gen_rng, &cfg);
        let mut a = Rng64::seed_from_u64(9);
        let mut b = Rng64::seed_from_u64(9);
        let mut changed = 0;
        for _ in 0..50 {
            let qa = mutate(&mut a, &p, &cfg);
            let qb = mutate(&mut b, &p, &cfg);
            assert_eq!(qa, qb);
            if qa != p {
                changed += 1;
            }
        }
        assert!(
            changed >= 40,
            "only {changed}/50 mutations changed anything"
        );
    }

    #[test]
    fn single_statement_single_field_program_still_mutates() {
        // The smallest generator output: every operator must either apply
        // or cleanly report inapplicable (no panic, no type break).
        let p = Program::parse_token("fields[i8=0] body[(iadd 0 ev)]").unwrap();
        let cfg = GenConfig::default();
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..50 {
            mutate(&mut rng, &p, &cfg).typecheck().unwrap();
        }
    }
}
