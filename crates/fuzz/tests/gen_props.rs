//! Property tests over the UDA generator and mutator: the fuzzer's whole
//! value rests on every generated program being well-typed, replayable
//! through its token, analyzable, and honestly compared against the
//! concrete reference — so each of those contracts gets a property here.

use proptest::prelude::*;

use symple_core::ast::{eval_concrete, AstUda, Program};
use symple_core::engine::{EngineConfig, MergePolicy, SymbolicExecutor};
use symple_core::rng::Rng64;
use symple_core::uda::{run_chunked_symbolic, run_sequential};
use symple_core::{analyze_uda, Error};
use symple_fuzz::{gen_program, mutate, GenConfig};
use symple_oracle::case::error_variant;
use symple_oracle::InputKind;

fn gen_from(seed: u64) -> Program {
    let mut rng = Rng64::seed_from_u64(seed);
    gen_program(&mut rng, &GenConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every generated program typechecks and survives a token
    /// round-trip byte-for-byte — the property the corpus artifacts and
    /// `--replay` depend on.
    #[test]
    fn generated_programs_typecheck_and_round_trip(seed in any::<u64>()) {
        let p = gen_from(seed);
        prop_assert!(p.typecheck().is_ok(), "{}", p.to_token());
        let token = p.to_token();
        let reparsed = Program::parse_token(&token);
        prop_assert!(reparsed.is_ok(), "unparseable token: {token}");
        prop_assert_eq!(&reparsed.unwrap(), &p);
    }

    /// The static analyzer is total over the generated space: it never
    /// panics, and both the refusal prediction and the live-path bound it
    /// reports are deterministic for a fixed program.
    #[test]
    fn analyzer_accepts_every_generated_program(seed in any::<u64>()) {
        let p = gen_from(seed);
        let uda = AstUda::new(p.clone());
        let variants = p.variants();
        prop_assert!(!variants.is_empty());
        let cfg = EngineConfig {
            max_paths_per_record: 1024,
            max_total_paths: 8,
            merge_policy: MergePolicy::HighWater,
            ..EngineConfig::default()
        };
        let a = analyze_uda(&uda, &variants);
        let b = analyze_uda(&uda, &variants);
        prop_assert_eq!(
            a.predicts_refusal(&cfg),
            b.predicts_refusal(&cfg),
            "refusal prediction must be deterministic"
        );
        prop_assert_eq!(a.predicted_max_live(&cfg), b.predicted_max_live(&cfg));
    }

    /// `predicted_max_live` is what `--analyze-first` trusts to skip
    /// doomed cells; on streams built from the analyzed variants it must
    /// really bound the executor's observed live-path peak.
    #[test]
    fn predicted_max_live_bounds_observed_peak(seed in any::<u64>()) {
        let p = gen_from(seed);
        let uda = AstUda::new(p.clone());
        let variants = p.variants();
        let cfg = EngineConfig {
            max_paths_per_record: 1024,
            max_total_paths: 8,
            merge_policy: MergePolicy::HighWater,
            ..EngineConfig::default()
        };
        let analysis = analyze_uda(&uda, &variants);
        if analysis.any_exploded() {
            return Ok(()); // bound is vacuous (u64::MAX)
        }
        let events: Vec<i64> = (0..24)
            .map(|i| variants[i % variants.len()].1)
            .collect();
        let mut ex = SymbolicExecutor::new(&uda, cfg);
        let _ = ex.feed_all(events.iter()); // refusals still report stats
        let peak = ex.stats().max_live_paths as u64;
        prop_assert!(
            peak <= analysis.predicted_max_live(&cfg),
            "observed {peak} live paths > predicted {} on {}",
            analysis.predicted_max_live(&cfg),
            p.to_token()
        );
    }

    /// Mutation preserves well-typedness through arbitrary chains, and
    /// the mutant's token still round-trips.
    #[test]
    fn mutation_preserves_well_typedness(seed in any::<u64>(), steps in 1usize..12) {
        let cfg = GenConfig::default();
        let mut rng = Rng64::seed_from_u64(seed);
        let mut p = gen_program(&mut rng, &cfg);
        for _ in 0..steps {
            p = mutate(&mut rng, &p, &cfg);
            prop_assert!(p.typecheck().is_ok(), "{}", p.to_token());
        }
        let reparsed = Program::parse_token(&p.to_token());
        prop_assert!(reparsed.is_ok());
        prop_assert_eq!(&reparsed.unwrap(), &p);
    }

    /// The concrete reference interpreter agrees with sequential UDA
    /// execution on every generated program and adversarial input shape —
    /// the ground truth the differential oracle measures against.
    #[test]
    fn interpreter_matches_sequential_execution(
        seed in any::<u64>(),
        shape in 0usize..6,
        len in 0usize..40,
    ) {
        let p = gen_from(seed);
        let events = InputKind::ALL[shape].generate(seed, len);
        let uda = AstUda::new(p.clone());
        let interp = eval_concrete(&p, &events);
        let seq = run_sequential(&uda, &events);
        let agree = match (&interp, &seq) {
            (Ok(x), Ok(y)) => x == y,
            (Err(x), Err(y)) => error_variant(x) == error_variant(y),
            _ => false,
        };
        prop_assert!(
            agree,
            "program {} on {:?}[{len}]: interp {interp:?} vs sequential {seq:?}",
            p.to_token(),
            InputKind::ALL[shape].as_str()
        );
    }
}

/// Outside `proptest!`: a width-64 transient overflow must never surface
/// as a wrong `Ok` from a chunked run (the second real bug the fuzzer
/// caught). Symbolic refusal (`IncompleteSummary`) or a trap are the only
/// acceptable shapes when the reference traps.
#[test]
fn reference_trap_is_never_a_wrong_ok() {
    let p = Program::parse_token("fields[i64=0] body[(iadd 0 ev) (iset 0 ev)]").unwrap();
    let huge = i64::MAX / 2 + 1;
    let events = vec![huge, huge];
    assert!(matches!(
        eval_concrete(&p, &events),
        Err(Error::ArithmeticOverflow { .. })
    ));
    let uda = AstUda::new(p);
    let chunked = run_chunked_symbolic(&uda, &events, 2, &EngineConfig::default());
    assert!(
        matches!(
            chunked,
            Err(Error::IncompleteSummary) | Err(Error::ArithmeticOverflow { .. })
        ),
        "wrong result for trapping input: {chunked:?}"
    );
}
