//! The hand-optimized Hadoop baseline (§6.3 of the paper).
//!
//! "The groupby executes in the mapper while the UDA executes in the
//! reducer. The groupby only emits fields of the input record that are
//! used in the UDA." Every per-key event list crosses the shuffle encoded
//! on the wire; the reducers decode, stitch the chunks in mapper order, and
//! run the UDA sequentially.

use symple_core::error::{Error, Result};
use symple_core::uda::{run_sequential, Uda};
use symple_core::wire::Wire;

use crate::groupby::{group_segment, GroupBy};
use crate::job::{JobConfig, JobOutput};
use crate::metrics::JobMetrics;
use crate::scheduler::run_scheduled;
use crate::segment::Segment;
use crate::shuffle::partition_to_reducers;

/// Per-mapper shuffle byte accounting, folded inside the map task.
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    bytes: u64,
    records: u64,
}

/// Runs a groupby-aggregate job the baseline way: UDA in the reducers.
pub fn run_baseline<G, U>(
    g: &G,
    uda: &U,
    segments: &[Segment<G::Record>],
    cfg: &JobConfig,
) -> Result<JobOutput<G::Key, U::Output>>
where
    G: GroupBy,
    U: Uda<Event = G::Event>,
    U::Output: Send,
{
    let mut metrics = JobMetrics {
        input_records: segments.iter().map(|s| s.len() as u64).sum(),
        input_bytes: segments.iter().map(|s| s.raw_bytes).sum(),
        ..JobMetrics::default()
    };

    // Map phase: groupby + field projection; events encoded for shuffle.
    // Shuffle accounting (keys + encoded event lists) is tallied inside
    // each map task at emit time, not re-walked on the main thread.
    let map_span = symple_obs::span("baseline.map_phase");
    type MapOut<K> = Vec<(K, Vec<u8>)>;
    let seg_refs: Vec<&Segment<G::Record>> = segments.iter().collect();
    let map_run = run_scheduled(
        &seg_refs,
        cfg.map_workers,
        &cfg.scheduler,
        None,
        |_, seg| {
            let groups = group_segment(g, &seg.records);
            let mut tally = Tally::default();
            let out: MapOut<G::Key> = groups
                .into_iter()
                .map(|(k, events)| {
                    let payload = events.to_wire();
                    tally.bytes += (k.wire_len() + payload.len()) as u64;
                    tally.records += 1;
                    (k, payload)
                })
                .collect();
            (out, tally)
        },
    )?;
    drop(map_span);
    metrics.map_cpu = map_run.timing.cpu;
    metrics.map_wall = map_run.timing.wall;
    metrics.map_max_task = map_run.timing.max_task;
    metrics.absorb_scheduler(&map_run.stats);

    let mut mapper_outputs: Vec<MapOut<G::Key>> = Vec::with_capacity(map_run.results.len());
    for (out, tally) in map_run.results {
        metrics.shuffle_bytes += tally.bytes;
        metrics.shuffle_records += tally.records;
        mapper_outputs.push(out);
    }
    symple_obs::counter_add("shuffle.bytes", metrics.shuffle_bytes);
    symple_obs::counter_add("shuffle.records", metrics.shuffle_records);

    // Reduce phase: decode, stitch in mapper order, run the UDA.
    let reduce_span = symple_obs::span("baseline.reduce_phase");
    let reducer_inputs = partition_to_reducers(mapper_outputs, cfg.num_reducers);
    let reduce_run = run_scheduled(
        &reducer_inputs,
        cfg.reduce_workers,
        &cfg.scheduler,
        None,
        |_, input| {
            let mut out: Vec<(G::Key, U::Output)> = Vec::new();
            for (key, chunks) in input {
                let mut events: Vec<G::Event> = Vec::new();
                for (_mapper, payload) in chunks {
                    let mut rd = &payload[..];
                    let decoded = Vec::<G::Event>::decode(&mut rd).map_err(Error::Wire)?;
                    events.extend(decoded);
                }
                let result = run_sequential(uda, events.iter())?;
                out.push((key.clone(), result));
            }
            Ok::<_, Error>(out)
        },
    )?;
    drop(reduce_span);
    metrics.reduce_cpu = reduce_run.timing.cpu;
    metrics.reduce_wall = reduce_run.timing.wall;
    metrics.reduce_max_task = reduce_run.timing.max_task;
    metrics.absorb_scheduler(&reduce_run.stats);

    let mut results = Vec::new();
    for r in reduce_run.results {
        results.extend(r?);
    }
    results.sort_by(|a, b| a.0.cmp(&b.0));
    metrics.groups = results.len() as u64;
    Ok(JobOutput { results, metrics })
}

/// Runs a groupby-aggregate job the way §6.2's **Local MapReduce**
/// simulation does: each mapper emits one shuffle record *per input
/// record* and sorts its output by key (the paper pipes mapper output
/// through Unix `sort`, then `sort -m` merges per-key lists).
///
/// This is deliberately less optimized than [`run_baseline`] (which
/// pre-groups events per key inside the mapper, as the hand-tuned EMR
/// baseline does); it reproduces the shuffle-heavy cost profile Figure 4
/// compares SYMPLE against.
pub fn run_baseline_sorted<G, U>(
    g: &G,
    uda: &U,
    segments: &[Segment<G::Record>],
    cfg: &JobConfig,
) -> Result<JobOutput<G::Key, U::Output>>
where
    G: GroupBy,
    U: Uda<Event = G::Event>,
    U::Output: Send,
{
    let mut metrics = JobMetrics {
        input_records: segments.iter().map(|s| s.len() as u64).sum(),
        input_bytes: segments.iter().map(|s| s.raw_bytes).sum(),
        ..JobMetrics::default()
    };

    // Map phase: one (key, encoded event) pair per record, sorted by key;
    // shuffle bytes tallied at emit time inside the task.
    type MapOut<K> = Vec<(K, Vec<u8>)>;
    let seg_refs: Vec<&Segment<G::Record>> = segments.iter().collect();
    let map_run = run_scheduled(
        &seg_refs,
        cfg.map_workers,
        &cfg.scheduler,
        None,
        |_, seg| {
            let mut pairs = Vec::new();
            let mut out: MapOut<G::Key> = Vec::with_capacity(seg.records.len());
            let mut tally = Tally::default();
            for r in &seg.records {
                pairs.clear();
                g.extract_all(r, &mut pairs);
                out.extend(pairs.drain(..).map(|(k, e)| {
                    let payload = e.to_wire();
                    tally.bytes += (k.wire_len() + payload.len()) as u64;
                    tally.records += 1;
                    (k, payload)
                }));
            }
            // Stable sort keeps the per-key record order intact.
            out.sort_by(|a, b| a.0.cmp(&b.0));
            (out, tally)
        },
    )?;
    metrics.map_cpu = map_run.timing.cpu;
    metrics.map_wall = map_run.timing.wall;
    metrics.map_max_task = map_run.timing.max_task;
    metrics.absorb_scheduler(&map_run.stats);

    let mut mapper_outputs: Vec<MapOut<G::Key>> = Vec::with_capacity(map_run.results.len());
    for (out, tally) in map_run.results {
        metrics.shuffle_bytes += tally.bytes;
        metrics.shuffle_records += tally.records;
        mapper_outputs.push(out);
    }

    // Reduce: merge per-key event streams in mapper order, run the UDA.
    let reducer_inputs = partition_to_reducers(mapper_outputs, cfg.num_reducers);
    let reduce_run = run_scheduled(
        &reducer_inputs,
        cfg.reduce_workers,
        &cfg.scheduler,
        None,
        |_, input| {
            let mut out: Vec<(G::Key, U::Output)> = Vec::new();
            for (key, chunks) in input {
                let mut events: Vec<G::Event> = Vec::with_capacity(chunks.len());
                for (_mapper, payload) in chunks {
                    let mut rd = &payload[..];
                    events.push(G::Event::decode(&mut rd).map_err(Error::Wire)?);
                }
                out.push((key.clone(), run_sequential(uda, events.iter())?));
            }
            Ok::<_, Error>(out)
        },
    )?;
    metrics.reduce_cpu = reduce_run.timing.cpu;
    metrics.reduce_wall = reduce_run.timing.wall;
    metrics.reduce_max_task = reduce_run.timing.max_task;
    metrics.absorb_scheduler(&reduce_run.stats);

    let mut results = Vec::new();
    for r in reduce_run.results {
        results.extend(r?);
    }
    results.sort_by(|a, b| a.0.cmp(&b.0));
    metrics.groups = results.len() as u64;
    Ok(JobOutput { results, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::split_into_segments;
    use symple_core::ctx::SymCtx;
    use symple_core::impl_sym_state;
    use symple_core::types::sym_int::SymInt;

    struct ByMod3;
    impl GroupBy for ByMod3 {
        type Record = i64;
        type Key = u8;
        type Event = i64;
        fn extract(&self, r: &i64) -> Option<(u8, i64)> {
            Some(((r % 3) as u8, *r))
        }
    }

    struct SumUda;
    #[derive(Clone, Debug)]
    struct SumState {
        sum: SymInt,
    }
    impl_sym_state!(SumState { sum });
    impl Uda for SumUda {
        type State = SumState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> SumState {
            SumState {
                sum: SymInt::new(0),
            }
        }
        fn update(&self, s: &mut SumState, ctx: &mut SymCtx, e: &i64) {
            s.sum.add(ctx, *e);
        }
        fn result(&self, s: &SumState, _ctx: &mut SymCtx) -> i64 {
            s.sum.concrete_value().expect("concrete")
        }
    }

    #[test]
    fn baseline_sums_per_group() {
        let records: Vec<i64> = (0..30).collect();
        let segments = split_into_segments(&records, 4, 64);
        let out = run_baseline(&ByMod3, &SumUda, &segments, &JobConfig::default()).unwrap();
        assert_eq!(out.results.len(), 3);
        for (k, sum) in &out.results {
            let expect: i64 = (0..30).filter(|r| (r % 3) as u8 == *k).sum();
            assert_eq!(*sum, expect);
        }
        assert_eq!(out.metrics.groups, 3);
        assert_eq!(out.metrics.input_records, 30);
        assert_eq!(out.metrics.input_bytes, 30 * 64);
        assert!(out.metrics.shuffle_bytes > 0);
        // Each of 4 mappers emits up to 3 keys.
        assert!(out.metrics.shuffle_records <= 12);
    }

    #[test]
    fn empty_job() {
        let out = run_baseline(&ByMod3, &SumUda, &[], &JobConfig::default()).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.metrics.shuffle_bytes, 0);
    }

    #[test]
    fn single_reducer_matches_many() {
        let records: Vec<i64> = (0..50).map(|i| i * 7 % 23).collect();
        let segments = split_into_segments(&records, 5, 100);
        let a = run_baseline(
            &ByMod3,
            &SumUda,
            &segments,
            &JobConfig::default().with_reducers(1),
        )
        .unwrap();
        let b = run_baseline(
            &ByMod3,
            &SumUda,
            &segments,
            &JobConfig::default().with_reducers(8),
        )
        .unwrap();
        assert_eq!(a.results, b.results);
    }
}
