//! Cross-job, content-addressed summary cache: incremental recomputation.
//!
//! Chunk summaries are pure functions of `(job config, chunk content)` —
//! the checkpoint store (see [`crate::checkpoint`]) already exploits that
//! within one job id. This module drops the job id entirely: frames are
//! keyed by `(config fingerprint, chunk content digest)`, so *any* job
//! whose configuration and chunk bytes match reuses the summary. Appending
//! data or editing a few chunks of a [`crate::dataset::Dataset`] therefore
//! recomputes only the dirty chunks, and the log-depth merge tree is
//! recomposed from cached summaries (cf. shire's hash-gated parallel
//! re-extraction: parallel compute, sequential commit, recompute only
//! changed hashes).
//!
//! The framing and corruption discipline is shared with checkpointing:
//! CRC32-framed records ([`symple_core::frame`]), atomic tmp + rename
//! writes, and quarantine-never-delete handling of anything invalid. The
//! frame's recorded metadata carries the content digest the summary was
//! computed *from*, so an entry filed under a colliding or forged key is
//! caught by the digest comparison on load and quarantined — the
//! `forged-cache-entry` oracle sabotage proves that check is load-bearing
//! by bypassing it.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use symple_core::frame::{
    decode_frame, decode_frame_unchecked, encode_frame, fnv1a, fnv1a_extend, FrameCheck, FrameMeta,
};

use crate::checkpoint::config_fingerprint;
use crate::job::{JobConfig, ReduceStrategy};
use crate::store_io::{IoCounts, RetryPolicy, StoreEngine, StoreIo};

/// Where cache frames live. Implementations store and retrieve *opaque
/// frame bytes* keyed by `(config fingerprint, chunk content digest)`; all
/// framing, checksumming, and digest-validation logic is shared above the
/// trait so every backend enforces identical rules.
///
/// Quarantine contract: a frame that fails validation is handed to
/// [`SummaryCache::quarantine`] and must stop being served by
/// [`SummaryCache::load`] — but its bytes must be *retained* for
/// inspection, never silently deleted.
pub trait SummaryCache: Send + Sync {
    /// Returns the stored frame for `(config_hash, digest)`. Quarantined
    /// frames are not returned. `Ok(None)` means *absent* (a miss);
    /// `Err` means the bytes may exist but could not be read — kept
    /// distinct so real I/O failures are counted and retried instead of
    /// silently reading as misses.
    fn load(&self, config_hash: u64, digest: u64) -> io::Result<Option<Vec<u8>>>;

    /// Durably stores a frame, replacing any previous one. Must be atomic:
    /// a reader (or a crash) sees either the old frame or the new one,
    /// never a torn write.
    fn save(&self, config_hash: u64, digest: u64, frame: &[u8]) -> io::Result<()>;

    /// Moves `(config_hash, digest)`'s frame out of the serving path,
    /// retaining the bytes and the reason it was distrusted.
    fn quarantine(&self, config_hash: u64, digest: u64, reason: &str);

    /// Lists quarantined entries with their reasons.
    fn quarantined(&self) -> Vec<(u64, u64, String)>;

    /// A snapshot of the cache's I/O-outcome ledger, if it keeps one
    /// (disk-backed caches do; in-memory caches have no I/O to count).
    /// The job driver diffs two snapshots to attribute retries, give-ups,
    /// and demotions to a run's [`crate::metrics::JobMetrics`].
    fn io_counts(&self) -> Option<IoCounts> {
        None
    }
}

/// How one chunk's cache lookup resolved — mirrors the
/// `cache_hits/misses/corrupt` metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CacheLookup {
    /// A valid frame: the payload may replace recomputation.
    Hit(Vec<u8>),
    /// No frame stored under this key.
    Miss,
    /// A frame existed but failed validation; it has been quarantined and
    /// the chunk must be recomputed.
    Corrupt,
}

/// Binds a job run to a summary cache.
pub struct SummaryCacheCtx<'a> {
    /// The backing cache.
    pub cache: &'a dyn SummaryCache,
    /// DANGER — sabotage/testing only: skip the digest comparison and
    /// trust whatever an intact frame claims it was computed from. The
    /// oracle's `forged-cache-entry` self-test sets this to prove the
    /// content-digest check is load-bearing; production paths must not.
    pub trust_frame_meta: bool,
}

impl<'a> SummaryCacheCtx<'a> {
    /// A cache context with full validation (the only safe mode).
    pub fn new(cache: &'a dyn SummaryCache) -> SummaryCacheCtx<'a> {
        SummaryCacheCtx {
            cache,
            trust_frame_meta: false,
        }
    }
}

/// Fingerprint of every [`JobConfig`] knob that shapes a cached summary.
///
/// Extends the checkpoint store's [`config_fingerprint`] — frame version,
/// all [`symple_core::engine::EngineConfig`] knobs (including
/// analyzer-derived auto-tuning, which flows through `cfg.engine`),
/// `first_segment_concrete`, and `salvage_refused_chunks` — with the
/// reduce strategy, folded under a cache-domain tag so checkpoint and
/// cache hashes never collide.
///
/// Deliberately **excluded**: `num_reducers`, `map_workers`,
/// `reduce_workers`, and the scheduler knobs. Those control parallelism
/// and fault handling, not the bytes a chunk summarizes to — including
/// them would invalidate the whole cache whenever a job moves to a
/// machine with a different core count, defeating the cross-job design.
/// The exclusion is pinned (in both directions) by
/// `fingerprint_covers_exactly_the_output_shaping_knobs`.
pub fn cache_config_fingerprint(cfg: &JobConfig) -> u64 {
    let mut h = fnv1a_extend(config_fingerprint(cfg), b"symple.cache.v1");
    h = fnv1a_extend(
        h,
        &[match cfg.reduce_strategy {
            ReduceStrategy::ApplyInOrder => 0,
            ReduceStrategy::TreeCompose => 1,
        }],
    );
    h
}

/// Content digest of one chunk for cache addressing.
///
/// Folds the grouped-input digest with whether the chunk runs *concretely*
/// (the globally first segment under `first_segment_concrete`): two chunks
/// with identical bytes summarize differently when one of them holds the
/// true initial state, so they must never share a cache entry.
pub(crate) fn chunk_cache_digest(input_digest: u64, runs_concrete: bool) -> u64 {
    let h = fnv1a(b"symple.cache.chunk");
    let h = fnv1a_extend(h, &input_digest.to_le_bytes());
    fnv1a_extend(h, &[u8::from(runs_concrete)])
}

/// The frame metadata recorded for (and expected of) a cache entry: the
/// addressing key restated inside the CRC-protected frame, so moving a
/// frame under a different key is detectable on load.
fn cache_meta(config_hash: u64, digest: u64) -> FrameMeta {
    FrameMeta {
        chunk_index: digest,
        config_hash,
        input_digest: digest,
    }
}

/// Resolves one chunk against the cache, quarantining anything invalid.
pub(crate) fn lookup_summary(
    ctx: &SummaryCacheCtx<'_>,
    config_hash: u64,
    digest: u64,
) -> CacheLookup {
    let bytes = match ctx.cache.load(config_hash, digest) {
        Ok(Some(bytes)) => bytes,
        Ok(None) => return CacheLookup::Miss,
        // A load error resolves to a miss (recompute) — but only after
        // the cache's retry policy ran and its ledger counted it; it is
        // never conflated with absence.
        Err(_) => {
            symple_obs::counter_add("cache.load_errors", 1);
            return CacheLookup::Miss;
        }
    };
    if ctx.trust_frame_meta {
        // Sabotage bypass: integrity still checked, meaning is not.
        return match decode_frame_unchecked(&bytes) {
            Ok((_, _, payload)) => CacheLookup::Hit(payload),
            Err(reason) => {
                ctx.cache.quarantine(config_hash, digest, &reason);
                CacheLookup::Corrupt
            }
        };
    }
    match decode_frame(&bytes, &cache_meta(config_hash, digest)) {
        FrameCheck::Valid(payload) => CacheLookup::Hit(payload),
        FrameCheck::Corrupt(reason) | FrameCheck::Stale(reason) => {
            ctx.cache.quarantine(config_hash, digest, &reason);
            CacheLookup::Corrupt
        }
    }
}

/// Frames and stores one chunk's payload. Write failures are *non-fatal*:
/// caching is an optimization, so a failed save merely degrades the next
/// warm run to a recompute (it is counted, not hidden).
pub(crate) fn save_summary(
    ctx: &SummaryCacheCtx<'_>,
    config_hash: u64,
    digest: u64,
    payload: &[u8],
) {
    let frame = encode_frame(&cache_meta(config_hash, digest), payload);
    if ctx.cache.save(config_hash, digest, &frame).is_err() {
        symple_obs::counter_add("cache.save_errors", 1);
    }
}

// ---------------------------------------------------------------------------
// In-memory cache
// ---------------------------------------------------------------------------

#[derive(Default)]
struct MemInner {
    frames: HashMap<(u64, u64), Vec<u8>>,
    quarantined: HashMap<(u64, u64), (Vec<u8>, String)>,
}

/// An in-memory [`SummaryCache`]: the warm-resweep oracle column's store,
/// and the tamper-friendly backend the corruption, eviction, and forgery
/// tests drive.
#[derive(Default)]
pub struct MemSummaryCache {
    inner: Mutex<MemInner>,
}

impl MemSummaryCache {
    /// An empty cache.
    pub fn new() -> MemSummaryCache {
        MemSummaryCache::default()
    }

    /// Number of live (non-quarantined) entries.
    pub fn entry_count(&self) -> usize {
        self.inner.lock().expect("cache poisoned").frames.len()
    }

    /// The live entry keys, sorted (test harnesses only).
    pub fn keys(&self) -> Vec<(u64, u64)> {
        let mut keys: Vec<(u64, u64)> = self
            .inner
            .lock()
            .expect("cache poisoned")
            .frames
            .keys()
            .copied()
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Removes an entry outright — cache *eviction*, which unlike
    /// quarantine is a legitimate, silent operation (caches are allowed to
    /// forget). Returns whether the entry existed.
    pub fn evict(&self, config_hash: u64, digest: u64) -> bool {
        self.inner
            .lock()
            .expect("cache poisoned")
            .frames
            .remove(&(config_hash, digest))
            .is_some()
    }

    /// Mutates a stored frame in place (corruption-matrix tests). Returns
    /// whether the frame existed.
    pub fn tamper(&self, config_hash: u64, digest: u64, f: impl FnOnce(&mut Vec<u8>)) -> bool {
        let mut inner = self.inner.lock().expect("cache poisoned");
        match inner.frames.get_mut(&(config_hash, digest)) {
            Some(bytes) => {
                f(bytes);
                true
            }
            None => false,
        }
    }

    /// Installs raw frame bytes directly (forgery/sabotage harnesses).
    pub fn insert_raw(&self, config_hash: u64, digest: u64, frame: Vec<u8>) {
        self.inner
            .lock()
            .expect("cache poisoned")
            .frames
            .insert((config_hash, digest), frame);
    }

    /// Returns a copy of the stored frame bytes, if present.
    pub fn raw_frame(&self, config_hash: u64, digest: u64) -> Option<Vec<u8>> {
        self.inner
            .lock()
            .expect("cache poisoned")
            .frames
            .get(&(config_hash, digest))
            .cloned()
    }
}

impl SummaryCache for MemSummaryCache {
    fn load(&self, config_hash: u64, digest: u64) -> io::Result<Option<Vec<u8>>> {
        Ok(self
            .inner
            .lock()
            .expect("cache poisoned")
            .frames
            .get(&(config_hash, digest))
            .cloned())
    }

    fn save(&self, config_hash: u64, digest: u64, frame: &[u8]) -> io::Result<()> {
        self.inner
            .lock()
            .expect("cache poisoned")
            .frames
            .insert((config_hash, digest), frame.to_vec());
        Ok(())
    }

    fn quarantine(&self, config_hash: u64, digest: u64, reason: &str) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        let key = (config_hash, digest);
        if let Some(bytes) = inner.frames.remove(&key) {
            inner.quarantined.insert(key, (bytes, reason.to_string()));
        }
    }

    fn quarantined(&self) -> Vec<(u64, u64, String)> {
        let inner = self.inner.lock().expect("cache poisoned");
        let mut out: Vec<(u64, u64, String)> = inner
            .quarantined
            .iter()
            .map(|((c, d), (_, reason))| (*c, *d, reason.clone()))
            .collect();
        out.sort();
        out
    }
}

// ---------------------------------------------------------------------------
// On-disk cache
// ---------------------------------------------------------------------------

/// An on-disk [`SummaryCache`].
///
/// Layout: `<root>/<config_hash:016x>/<digest:016x>.sum`, written as
/// `…​.sum.tmp` then renamed into place so a crash mid-write leaves either
/// the old frame or none — never a torn one. Quarantine renames the frame
/// to `<digest>.sum.quarantined` and records the reason alongside in
/// `<digest>.sum.quarantined.reason`; quarantined bytes are kept for
/// post-mortem. The directory-per-config-hash layout makes a config
/// change's dead entries trivially identifiable (and reclaimable) without
/// any risk of cross-config key collisions on disk.
///
/// Every byte moves through an injectable [`StoreIo`] under a
/// [`StoreEngine`]: transient errors are retried per [`RetryPolicy`], and
/// past the failure budget the cache demotes to a no-op backend — loads
/// answer `Ok(None)`, saves succeed without writing — so a dying disk
/// degrades the job to correct-but-uncached instead of failing it.
pub struct DiskSummaryCache {
    root: PathBuf,
    engine: StoreEngine,
}

impl DiskSummaryCache {
    /// Opens (creating if needed) a cache rooted at `root`, on the real
    /// filesystem with the default retry policy and failure budget.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<DiskSummaryCache> {
        DiskSummaryCache::with_engine(root, StoreEngine::real())
    }

    /// Opens a cache whose filesystem access runs through `io` under
    /// `policy`, demoting after `failure_budget` given-up operations —
    /// the constructor the fault-injection harnesses use.
    pub fn with_io(
        root: impl Into<PathBuf>,
        io: Arc<dyn StoreIo>,
        policy: RetryPolicy,
        failure_budget: u64,
    ) -> io::Result<DiskSummaryCache> {
        DiskSummaryCache::with_engine(root, StoreEngine::new(io, policy, failure_budget))
    }

    fn with_engine(root: impl Into<PathBuf>, engine: StoreEngine) -> io::Result<DiskSummaryCache> {
        let root = root.into();
        // Best-effort: a root that cannot be created yet is not fatal —
        // every save retries `create_dir_all`, loads degrade to misses,
        // and a disk that stays broken demotes the store through the
        // ledger like any other persistent fault. The failure is already
        // counted (and budgeted) by the engine.
        let _ = engine.run(|io| io.create_dir_all(&root));
        Ok(DiskSummaryCache { root, engine })
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether the cache has demoted itself to a no-op backend.
    pub fn demoted(&self) -> bool {
        self.engine.demoted()
    }

    /// Path of an entry's live frame.
    pub fn entry_path(&self, config_hash: u64, digest: u64) -> PathBuf {
        self.root
            .join(format!("{config_hash:016x}"))
            .join(format!("{digest:016x}.sum"))
    }
}

impl SummaryCache for DiskSummaryCache {
    fn load(&self, config_hash: u64, digest: u64) -> io::Result<Option<Vec<u8>>> {
        if self.engine.demoted() {
            return Ok(None);
        }
        let path = self.entry_path(config_hash, digest);
        match self.engine.run(|io| io.read(&path)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn save(&self, config_hash: u64, digest: u64, frame: &[u8]) -> io::Result<()> {
        if self.engine.demoted() {
            return Ok(());
        }
        let path = self.entry_path(config_hash, digest);
        let dir = path.parent().expect("entry path has a parent");
        self.engine.run(|io| io.create_dir_all(dir))?;
        let tmp = path.with_extension("sum.tmp");
        let commit = self
            .engine
            .run(|io| io.write(&tmp, frame))
            .and_then(|()| self.engine.run(|io| io.rename(&tmp, &path)));
        if let Err(e) = commit {
            // Never leave `.tmp` litter behind a failed save — torn
            // prefixes and intact orphans alike are swept; the live entry
            // is still either the old frame or absent. Best-effort.
            let _ = self.engine.run(|io| io.remove(&tmp));
            return Err(e);
        }
        // Durability point: a no-op on RealIo (the commit is the rename),
        // but injectable, so slow/failing barriers are simulatable.
        self.engine.run(|io| io.sync(&path))
    }

    fn quarantine(&self, config_hash: u64, digest: u64, reason: &str) {
        let path = self.entry_path(config_hash, digest);
        let mut target = path.with_extension("sum.quarantined");
        // Never overwrite earlier evidence: suffix repeat offenders.
        let mut n = 1;
        while target.exists() {
            target = path.with_extension(format!("sum.quarantined.{n}"));
            n += 1;
        }
        if self.engine.run(|io| io.rename(&path, &target)).is_err() {
            symple_obs::counter_add("cache.quarantine_errors", 1);
            return;
        }
        let reason_path = target.with_extension(
            target
                .extension()
                .and_then(|e| e.to_str())
                .map(|e| format!("{e}.reason"))
                .unwrap_or_else(|| "reason".to_string()),
        );
        if self
            .engine
            .run(|io| io.write(&reason_path, reason.as_bytes()))
            .is_err()
        {
            symple_obs::counter_add("cache.quarantine_errors", 1);
        }
    }

    fn io_counts(&self) -> Option<IoCounts> {
        Some(self.engine.ledger().snapshot())
    }

    // Quarantine listing is a post-mortem/test path, not part of the
    // durability contract, so its directory walk stays on plain `fs`.
    fn quarantined(&self) -> Vec<(u64, u64, String)> {
        let mut out = Vec::new();
        let Ok(config_dirs) = fs::read_dir(&self.root) else {
            return out;
        };
        for config_dir in config_dirs.flatten() {
            let Some(config_hash) = config_dir
                .file_name()
                .to_str()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
            else {
                continue;
            };
            let Ok(entries) = fs::read_dir(config_dir.path()) else {
                continue;
            };
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.ends_with(".reason") {
                    continue;
                }
                let Some(stem) = name
                    .split_once(".sum.quarantined")
                    .map(|(digest, _)| digest)
                else {
                    continue;
                };
                let Ok(digest) = u64::from_str_radix(stem, 16) else {
                    continue;
                };
                let reason = fs::read_to_string(
                    entry.path().with_extension(
                        entry
                            .path()
                            .extension()
                            .and_then(|e| e.to_str())
                            .map(|e| format!("{e}.reason"))
                            .unwrap_or_else(|| "reason".to_string()),
                    ),
                )
                .unwrap_or_else(|_| "(reason unrecorded)".to_string());
                out.push((config_hash, digest, reason));
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::frame::{encode_frame_with_version, FRAME_VERSION};

    const CFG: u64 = 0x1111_2222_3333_4444;
    const DIG: u64 = 0xaaaa_bbbb_cccc_dddd;

    fn ctx(cache: &dyn SummaryCache) -> SummaryCacheCtx<'_> {
        SummaryCacheCtx::new(cache)
    }

    #[test]
    fn mem_cache_round_trip_and_quarantine() {
        let cache = MemSummaryCache::new();
        let c = ctx(&cache);
        assert_eq!(lookup_summary(&c, CFG, DIG), CacheLookup::Miss);

        save_summary(&c, CFG, DIG, b"payload");
        assert_eq!(
            lookup_summary(&c, CFG, DIG),
            CacheLookup::Hit(b"payload".to_vec())
        );
        assert_eq!(cache.entry_count(), 1);

        // A different config hash or digest never sees the entry.
        assert_eq!(lookup_summary(&c, CFG + 1, DIG), CacheLookup::Miss);
        assert_eq!(lookup_summary(&c, CFG, DIG + 1), CacheLookup::Miss);

        // A forged key — frame recorded for DIG, served under DIG+1 — is
        // caught by the digest comparison and quarantined, bytes retained.
        let frame = cache.raw_frame(CFG, DIG).unwrap();
        cache.insert_raw(CFG, DIG + 1, frame);
        assert_eq!(lookup_summary(&c, CFG, DIG + 1), CacheLookup::Corrupt);
        assert_eq!(lookup_summary(&c, CFG, DIG + 1), CacheLookup::Miss);
        let q = cache.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!((q[0].0, q[0].1), (CFG, DIG + 1));

        // The genuine entry is untouched.
        assert_eq!(
            lookup_summary(&c, CFG, DIG),
            CacheLookup::Hit(b"payload".to_vec())
        );
    }

    #[test]
    fn mem_cache_trust_bypass_serves_forged_entries() {
        let cache = MemSummaryCache::new();
        let c = ctx(&cache);
        save_summary(&c, CFG, DIG, b"payload");
        let frame = cache.raw_frame(CFG, DIG).unwrap();
        cache.insert_raw(CFG, DIG + 1, frame);

        // With validation, the forged key is quarantined (above); with the
        // sabotage bypass, the wrong payload is served — proving the digest
        // check is what stands between a collision and a wrong answer.
        let trusting = SummaryCacheCtx {
            cache: &cache,
            trust_frame_meta: true,
        };
        assert_eq!(
            lookup_summary(&trusting, CFG, DIG + 1),
            CacheLookup::Hit(b"payload".to_vec())
        );
    }

    #[test]
    fn mem_cache_tamper_detected_and_eviction_is_silent() {
        let cache = MemSummaryCache::new();
        let c = ctx(&cache);
        save_summary(&c, CFG, DIG, b"payload");
        assert!(cache.tamper(CFG, DIG, |b| b[6] ^= 0x40));
        assert_eq!(lookup_summary(&c, CFG, DIG), CacheLookup::Corrupt);
        assert_eq!(cache.quarantined().len(), 1);

        save_summary(&c, CFG, DIG, b"payload");
        assert!(cache.evict(CFG, DIG));
        assert!(!cache.evict(CFG, DIG));
        assert_eq!(lookup_summary(&c, CFG, DIG), CacheLookup::Miss);
        assert_eq!(cache.quarantined().len(), 1, "eviction is not quarantine");
    }

    #[test]
    fn disk_cache_round_trip_and_quarantine() {
        let dir = std::env::temp_dir().join(format!("symple-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = DiskSummaryCache::new(&dir).unwrap();
        let c = ctx(&cache);

        save_summary(&c, CFG, DIG, b"disk payload");
        assert!(cache.entry_path(CFG, DIG).exists());
        assert_eq!(
            lookup_summary(&c, CFG, DIG),
            CacheLookup::Hit(b"disk payload".to_vec())
        );

        // Version-bumped frame (valid CRC): corrupt, quarantined by
        // rename, reason recorded, bytes still on disk.
        let bad = encode_frame_with_version(FRAME_VERSION + 1, &cache_meta(CFG, DIG), b"x");
        cache.save(CFG, DIG, &bad).unwrap();
        assert_eq!(lookup_summary(&c, CFG, DIG), CacheLookup::Corrupt);
        assert_eq!(lookup_summary(&c, CFG, DIG), CacheLookup::Miss);
        let q = cache.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!((q[0].0, q[0].1), (CFG, DIG));
        assert!(q[0].2.contains("version"), "{}", q[0].2);

        // A second quarantine of the same key keeps both evidence files.
        cache.save(CFG, DIG, &bad).unwrap();
        assert_eq!(lookup_summary(&c, CFG, DIG), CacheLookup::Corrupt);
        assert_eq!(cache.quarantined().len(), 2);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunk_digest_separates_concrete_from_symbolic() {
        assert_ne!(chunk_cache_digest(7, true), chunk_cache_digest(7, false));
        assert_ne!(chunk_cache_digest(7, true), chunk_cache_digest(8, true));
        assert_eq!(chunk_cache_digest(7, true), chunk_cache_digest(7, true));
    }

    #[test]
    fn fingerprint_covers_exactly_the_output_shaping_knobs() {
        let base = JobConfig::default();
        let fp = cache_config_fingerprint(&base);

        // Every knob that shapes summary bytes forces a different
        // fingerprint — flipping any of them must miss the cache.
        let mut m = base;
        m.engine.max_paths_per_record += 1;
        assert_ne!(cache_config_fingerprint(&m), fp, "max_paths_per_record");
        let mut m = base;
        m.engine.max_total_paths += 1;
        assert_ne!(cache_config_fingerprint(&m), fp, "max_total_paths");
        let mut m = base;
        m.engine.merge_policy = symple_core::engine::MergePolicy::Never;
        assert_ne!(cache_config_fingerprint(&m), fp, "merge_policy");
        let mut m = base;
        m.first_segment_concrete = !m.first_segment_concrete;
        assert_ne!(cache_config_fingerprint(&m), fp, "first_segment_concrete");
        let mut m = base;
        m.salvage_refused_chunks = !m.salvage_refused_chunks;
        assert_ne!(cache_config_fingerprint(&m), fp, "salvage_refused_chunks");
        let mut m = base;
        m.reduce_strategy = ReduceStrategy::TreeCompose;
        assert_ne!(cache_config_fingerprint(&m), fp, "reduce_strategy");

        // Pure-parallelism knobs deliberately do NOT invalidate entries:
        // the same dataset on a different machine must stay warm.
        let mut m = base;
        m.num_reducers += 1;
        m.map_workers += 1;
        m.reduce_workers += 1;
        assert_eq!(cache_config_fingerprint(&m), fp, "parallelism knobs");

        // Cache and checkpoint fingerprints never collide.
        assert_ne!(fp, config_fingerprint(&base));
    }
}
