//! Multi-stage query plans: feed one groupby-aggregate's results into a
//! second (§8's future work — "using symbolic parallelism to optimize
//! more sophisticated query plans").
//!
//! Stage 1's `(key, output)` rows become stage 2's input records. The
//! second stage's groupby may fan each row out into many events
//! ([`crate::GroupBy::extract_all`]), so list-valued aggregations — "per
//! user, session lengths" — can be re-grouped element-wise — "per session
//! length, how many sessions".

use symple_core::error::Result;
use symple_core::uda::Uda;

use crate::groupby::GroupBy;
use crate::job::{JobConfig, JobOutput};
use crate::metrics::JobMetrics;
use crate::segment::{split_into_segments, Segment};
use crate::symple_job::run_symple;

/// Runs two SYMPLE stages, feeding stage 1's result rows into stage 2.
///
/// Stage 2's record type must be stage 1's `(key, output)` row type. The
/// returned metrics are stage 2's, with stage 1's input and CPU accounting
/// folded in so end-to-end costs stay visible.
pub fn run_two_stage<G1, U1, G2, U2>(
    g1: &G1,
    u1: &U1,
    segments: &[Segment<G1::Record>],
    g2: &G2,
    u2: &U2,
    cfg: &JobConfig,
) -> Result<JobOutput<G2::Key, U2::Output>>
where
    G1: GroupBy,
    U1: Uda<Event = G1::Event>,
    U1::Output: Send + Sync + Clone,
    G2: GroupBy<Record = (G1::Key, U1::Output)>,
    U2: Uda<Event = G2::Event>,
    U2::Output: Send,
{
    let _span = symple_obs::span("chain.two_stage");
    let first = run_symple(g1, u1, segments, cfg)?;
    // Stage 1's rows are already globally ordered by key; re-segment them
    // for stage 2's mappers. Each row is charged its stage-1 key size as
    // raw bytes (intermediate data lives in memory / local disk).
    let rows = first.results;
    let stage2_segments = split_into_segments(&rows, cfg.map_workers.max(1), 64);
    let mut second = run_symple(g2, u2, &stage2_segments, cfg)?;
    second.metrics = fold_metrics(first.metrics, second.metrics);
    Ok(second)
}

/// Combines per-stage metrics into an end-to-end view.
///
/// Additivity contract (property-tested in `tests/mapreduce_props.rs`):
/// every volume/time field is the exact sum of the two stages' fields —
/// each stage folded in exactly once, never double counted — except
/// `input_records`/`input_bytes` (stage 1's raw input is the job's input;
/// stage 2 reads intermediate rows), `groups` (the final stage defines the
/// output groups), and the `max_task`/`max_live_paths` bounds (maxima).
pub fn fold_metrics(first: JobMetrics, second: JobMetrics) -> JobMetrics {
    JobMetrics {
        input_records: first.input_records,
        input_bytes: first.input_bytes,
        map_wall: first.map_wall + second.map_wall,
        map_cpu: first.map_cpu + second.map_cpu,
        map_max_task: first.map_max_task.max(second.map_max_task),
        reduce_max_task: first.reduce_max_task.max(second.reduce_max_task),
        shuffle_bytes: first.shuffle_bytes + second.shuffle_bytes,
        shuffle_records: first.shuffle_records + second.shuffle_records,
        summary_bytes: first.summary_bytes + second.summary_bytes,
        reduce_wall: first.reduce_wall + second.reduce_wall,
        reduce_cpu: first.reduce_cpu + second.reduce_cpu,
        groups: second.groups,
        attempts: first.attempts + second.attempts,
        speculative_launches: first.speculative_launches + second.speculative_launches,
        speculative_wins: first.speculative_wins + second.speculative_wins,
        retry_wasted_cpu: first.retry_wasted_cpu + second.retry_wasted_cpu,
        checkpoint_hits: first.checkpoint_hits + second.checkpoint_hits,
        checkpoint_misses: first.checkpoint_misses + second.checkpoint_misses,
        checkpoint_corrupt: first.checkpoint_corrupt + second.checkpoint_corrupt,
        cache_hits: first.cache_hits + second.cache_hits,
        cache_misses: first.cache_misses + second.cache_misses,
        cache_corrupt: first.cache_corrupt + second.cache_corrupt,
        cache_bytes_saved: first.cache_bytes_saved + second.cache_bytes_saved,
        chunks_salvaged_concrete: first.chunks_salvaged_concrete + second.chunks_salvaged_concrete,
        io_retries: first.io_retries + second.io_retries,
        io_gave_up: first.io_gave_up + second.io_gave_up,
        io_errors: first.io_errors + second.io_errors,
        store_demoted: first.store_demoted + second.store_demoted,
        explore: {
            let mut e = first.explore;
            e.records += second.explore.records;
            e.runs += second.explore.runs;
            e.forks += second.explore.forks;
            e.merges += second.explore.merges;
            e.restarts += second.explore.restarts;
            e.max_live_paths = e.max_live_paths.max(second.explore.max_live_paths);
            e
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::ctx::SymCtx;
    use symple_core::impl_sym_state;
    use symple_core::types::{sym_int::SymInt, sym_pred::SymPred, sym_vector::SymVector};

    // ---- Stage 1: sessions per user (a B3-shaped UDA) ------------------

    struct ByUser;
    impl GroupBy for ByUser {
        type Record = (u64, i64); // (user, timestamp)
        type Key = u64;
        type Event = i64;
        fn extract(&self, r: &(u64, i64)) -> Option<(u64, i64)> {
            Some(*r)
        }
    }

    struct Sessions;
    #[derive(Clone, Debug)]
    struct SessState {
        count: SymInt,
        prev: SymPred<i64>,
        counts: SymVector<i64>,
    }
    impl_sym_state!(SessState {
        count,
        prev,
        counts
    });
    impl Uda for Sessions {
        type State = SessState;
        type Event = i64;
        type Output = Vec<i64>;
        fn init(&self) -> SessState {
            SessState {
                count: SymInt::new(0),
                prev: SymPred::new(|p: &i64, c: &i64| c - p < 100),
                counts: SymVector::new(),
            }
        }
        fn update(&self, s: &mut SessState, ctx: &mut SymCtx, ts: &i64) {
            if s.prev.eval(ctx, ts) {
                s.count += 1;
            } else {
                if s.count.gt(ctx, 0) {
                    s.counts.push_int(&s.count);
                }
                s.count.assign(1);
            }
            s.prev.set(*ts);
        }
        fn result(&self, s: &SessState, _ctx: &mut SymCtx) -> Vec<i64> {
            s.counts.concrete_elems().expect("concrete")
        }
    }

    // ---- Stage 2: histogram of session lengths -------------------------

    struct ByLength;
    impl GroupBy for ByLength {
        type Record = (u64, Vec<i64>); // stage 1 rows
        type Key = i64; // session length
        type Event = ();
        fn extract(&self, _r: &Self::Record) -> Option<(i64, ())> {
            unreachable!("fan-out groupby uses extract_all")
        }
        fn extract_all(&self, r: &Self::Record, out: &mut Vec<(i64, ())>) {
            out.extend(r.1.iter().map(|len| (*len, ())));
        }
    }

    struct CountUda;
    #[derive(Clone, Debug)]
    struct CountState {
        n: SymInt,
    }
    impl_sym_state!(CountState { n });
    impl Uda for CountUda {
        type State = CountState;
        type Event = ();
        type Output = i64;
        fn init(&self) -> CountState {
            CountState { n: SymInt::new(0) }
        }
        fn update(&self, s: &mut CountState, _ctx: &mut SymCtx, _e: &()) {
            s.n += 1;
        }
        fn result(&self, s: &CountState, _ctx: &mut SymCtx) -> i64 {
            s.n.concrete_value().expect("concrete")
        }
    }

    fn workload() -> Vec<(u64, i64)> {
        // Interleaved user streams with deterministic session structure.
        let mut rows = Vec::new();
        let mut t = 0i64;
        for i in 0..3_000i64 {
            t += if i % 37 == 0 { 500 } else { 7 };
            rows.push(((i % 23) as u64, t));
        }
        rows
    }

    /// Plain-Rust reference: histogram of session lengths across users.
    fn reference(rows: &[(u64, i64)]) -> Vec<(i64, i64)> {
        use std::collections::HashMap;
        let mut per_user: HashMap<u64, Vec<i64>> = HashMap::new();
        for (u, t) in rows {
            per_user.entry(*u).or_default().push(*t);
        }
        let mut hist: HashMap<i64, i64> = HashMap::new();
        for ts in per_user.values() {
            let mut count = 0i64;
            let mut prev: Option<i64> = None;
            for t in ts {
                let same = prev.is_some_and(|p| t - p < 100);
                if same {
                    count += 1;
                } else {
                    if count > 0 {
                        *hist.entry(count).or_default() += 1;
                    }
                    count = 1;
                }
                prev = Some(*t);
            }
        }
        let mut v: Vec<_> = hist.into_iter().collect();
        v.sort();
        v
    }

    #[test]
    fn two_stage_histogram_matches_reference() {
        let rows = workload();
        let segments = split_into_segments(&rows, 6, 32);
        let cfg = JobConfig::default();
        let out = run_two_stage(&ByUser, &Sessions, &segments, &ByLength, &CountUda, &cfg).unwrap();
        assert_eq!(out.results, reference(&rows));
        // End-to-end metrics fold both stages.
        assert_eq!(out.metrics.input_records, rows.len() as u64);
        assert!(out.metrics.explore.records > 0);
        assert!(out.metrics.shuffle_records > 0);
    }

    #[test]
    fn two_stage_is_deterministic() {
        let rows = workload();
        let segments = split_into_segments(&rows, 4, 32);
        let cfg = JobConfig::default();
        let a = run_two_stage(&ByUser, &Sessions, &segments, &ByLength, &CountUda, &cfg).unwrap();
        let b = run_two_stage(&ByUser, &Sessions, &segments, &ByLength, &CountUda, &cfg).unwrap();
        assert_eq!(a.results, b.results);
        assert_eq!(a.metrics.shuffle_bytes, b.metrics.shuffle_bytes);
    }
}
