//! Durable chunk-summary checkpointing: crash-resume for SYMPLE jobs.
//!
//! The paper's summaries are compact, ordered, composable artifacts —
//! exactly the shape a checkpoint wants. Each completed map task's output
//! (its per-key encoded payloads plus exploration stats) is framed with
//! [`symple_core::frame`] — length-prefixed, CRC32-checksummed, versioned
//! — and written atomically under a job manifest keyed by
//! `(job id, chunk index, engine-config hash, input digest)`. A resumed
//! job loads valid frames instead of recomputing; truncated, bit-flipped,
//! or stale-config frames are *quarantined* (never trusted, never
//! silently deleted) and their chunks re-mapped.
//!
//! Two stores ship: [`MemCheckpointStore`] for in-process crash drills and
//! the oracle's crash-resume column, and [`DiskCheckpointStore`] for real
//! durability (tmp + rename writes, quarantine by rename).

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use symple_core::frame::{
    decode_frame, decode_frame_unchecked, encode_frame, fnv1a_extend, FrameCheck, FrameMeta,
    FRAME_VERSION,
};

use crate::job::JobConfig;
use crate::store_io::{IoCounts, RetryPolicy, StoreEngine, StoreIo};

/// Where checkpoint frames live. Implementations store and retrieve
/// *opaque frame bytes*; all framing, checksumming, and staleness logic is
/// shared above the trait so every store enforces identical rules.
///
/// Quarantine contract: a frame that fails validation is handed to
/// [`CheckpointStore::quarantine`] and must stop being served by
/// [`CheckpointStore::load`] — but its bytes must be *retained* for
/// inspection, never silently deleted.
pub trait CheckpointStore: Send + Sync {
    /// Returns the stored frame for `(job, chunk)`. Quarantined frames
    /// are not returned. `Ok(None)` means *absent* (a cache-style miss);
    /// `Err` means the bytes may exist but could not be read — the two
    /// are deliberately distinct so real I/O failures are counted and
    /// retried instead of silently reading as misses.
    fn load(&self, job: &str, chunk: u64) -> io::Result<Option<Vec<u8>>>;

    /// Durably stores a frame, replacing any previous one. Must be atomic:
    /// a reader (or a crash) sees either the old frame or the new one,
    /// never a torn write.
    fn save(&self, job: &str, chunk: u64, frame: &[u8]) -> io::Result<()>;

    /// Moves `(job, chunk)`'s frame out of the serving path, retaining the
    /// bytes and the reason it was distrusted.
    fn quarantine(&self, job: &str, chunk: u64, reason: &str);

    /// Lists quarantined chunks for a job with their reasons.
    fn quarantined(&self, job: &str) -> Vec<(u64, String)>;

    /// A snapshot of the store's I/O-outcome ledger, if it keeps one
    /// (disk-backed stores do; in-memory stores have no I/O to count).
    /// The job driver diffs two snapshots to attribute retries, give-ups,
    /// and demotions to a run's [`crate::metrics::JobMetrics`].
    fn io_counts(&self) -> Option<IoCounts> {
        None
    }
}

/// How one chunk's checkpoint lookup resolved — mirrors the
/// `checkpoint_hits/misses/corrupt` metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ChunkLookup {
    /// A valid frame: the payload may replace recomputation.
    Hit(Vec<u8>),
    /// No frame stored for this chunk.
    Miss,
    /// A frame existed but failed validation; it has been quarantined and
    /// the chunk must be recomputed.
    Corrupt,
}

/// Binds a job run to a checkpoint store.
pub struct CheckpointCtx<'a> {
    /// The backing store.
    pub store: &'a dyn CheckpointStore,
    /// Manifest key: frames from different job ids never mix.
    pub job_id: String,
    /// DANGER — sabotage/testing only: skip the config-hash and
    /// input-digest comparison and trust whatever an intact frame claims.
    /// The oracle's `stale-checkpoint` self-test sets this to prove the
    /// metadata checks are load-bearing; production paths must not.
    pub trust_frame_meta: bool,
}

impl<'a> CheckpointCtx<'a> {
    /// A checkpoint context with full validation (the only safe mode).
    pub fn new(store: &'a dyn CheckpointStore, job_id: impl Into<String>) -> CheckpointCtx<'a> {
        CheckpointCtx {
            store,
            job_id: job_id.into(),
            trust_frame_meta: false,
        }
    }
}

/// Fingerprint of every knob that shapes a map task's output bytes. A
/// checkpoint taken under a different fingerprint is stale: loading it
/// could silently change summaries mid-job, so the frame check refuses it.
pub fn config_fingerprint(cfg: &JobConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut word = |v: u64| h = fnv1a_extend(h, &v.to_le_bytes());
    word(u64::from(FRAME_VERSION));
    word(cfg.engine.max_paths_per_record as u64);
    word(cfg.engine.max_total_paths as u64);
    word(match cfg.engine.merge_policy {
        symple_core::engine::MergePolicy::Eager => 0,
        symple_core::engine::MergePolicy::HighWater => 1,
        symple_core::engine::MergePolicy::Never => 2,
    });
    word(u64::from(cfg.first_segment_concrete));
    word(u64::from(cfg.salvage_refused_chunks));
    // `cfg.engine.batch_window` is deliberately absent: the batched fast
    // path is byte-invariant (summaries and stats are identical for every
    // window size), so checkpoints stay valid across batching changes.
    h
}

/// Resolves one chunk against the store, quarantining anything invalid.
///
/// A load *error* (as opposed to an absent frame) resolves to a miss too
/// — checkpoints are an optimization, so an unreadable frame merely costs
/// a recompute — but only after the store's retry policy ran and its
/// ledger counted the failure; it is never conflated with absence.
pub(crate) fn lookup_chunk(ctx: &CheckpointCtx<'_>, expect: &FrameMeta) -> ChunkLookup {
    let bytes = match ctx.store.load(&ctx.job_id, expect.chunk_index) {
        Ok(Some(bytes)) => bytes,
        Ok(None) => return ChunkLookup::Miss,
        Err(_) => {
            symple_obs::counter_add("checkpoint.load_errors", 1);
            return ChunkLookup::Miss;
        }
    };
    if ctx.trust_frame_meta {
        // Sabotage bypass: integrity still checked, meaning is not.
        return match decode_frame_unchecked(&bytes) {
            Ok((_, _, payload)) => ChunkLookup::Hit(payload),
            Err(reason) => {
                ctx.store
                    .quarantine(&ctx.job_id, expect.chunk_index, &reason);
                ChunkLookup::Corrupt
            }
        };
    }
    match decode_frame(&bytes, expect) {
        FrameCheck::Valid(payload) => ChunkLookup::Hit(payload),
        FrameCheck::Corrupt(reason) | FrameCheck::Stale(reason) => {
            ctx.store
                .quarantine(&ctx.job_id, expect.chunk_index, &reason);
            ChunkLookup::Corrupt
        }
    }
}

/// Frames and stores one chunk's payload. Write failures are *non-fatal*:
/// checkpointing is an optimization, so a failed save merely degrades the
/// next resume to a recompute (it is counted, not hidden).
pub(crate) fn save_chunk(ctx: &CheckpointCtx<'_>, meta: &FrameMeta, payload: &[u8]) {
    let frame = encode_frame(meta, payload);
    if ctx
        .store
        .save(&ctx.job_id, meta.chunk_index, &frame)
        .is_err()
    {
        symple_obs::counter_add("checkpoint.save_errors", 1);
    }
}

// ---------------------------------------------------------------------------
// In-memory store
// ---------------------------------------------------------------------------

#[derive(Default)]
struct MemInner {
    frames: HashMap<(String, u64), Vec<u8>>,
    quarantined: HashMap<(String, u64), (Vec<u8>, String)>,
}

/// An in-memory [`CheckpointStore`]: survives a *simulated* process death
/// (the `kill_after_n_tasks` drill runs killer and resumer in one
/// process), and doubles as the tamper-friendly store the corruption and
/// sabotage tests drive.
#[derive(Default)]
pub struct MemCheckpointStore {
    inner: Mutex<MemInner>,
}

impl MemCheckpointStore {
    /// An empty store.
    pub fn new() -> MemCheckpointStore {
        MemCheckpointStore::default()
    }

    /// Number of live (non-quarantined) frames across all jobs.
    pub fn frame_count(&self) -> usize {
        self.inner.lock().expect("store poisoned").frames.len()
    }

    /// Mutates a stored frame in place (corruption-matrix tests). Returns
    /// whether the frame existed.
    pub fn tamper(&self, job: &str, chunk: u64, f: impl FnOnce(&mut Vec<u8>)) -> bool {
        let mut inner = self.inner.lock().expect("store poisoned");
        match inner.frames.get_mut(&(job.to_string(), chunk)) {
            Some(bytes) => {
                f(bytes);
                true
            }
            None => false,
        }
    }

    /// Installs raw frame bytes directly (sabotage harnesses).
    pub fn insert_raw(&self, job: &str, chunk: u64, frame: Vec<u8>) {
        self.inner
            .lock()
            .expect("store poisoned")
            .frames
            .insert((job.to_string(), chunk), frame);
    }

    /// Returns a copy of the stored frame bytes, if present.
    pub fn raw_frame(&self, job: &str, chunk: u64) -> Option<Vec<u8>> {
        self.inner
            .lock()
            .expect("store poisoned")
            .frames
            .get(&(job.to_string(), chunk))
            .cloned()
    }
}

impl CheckpointStore for MemCheckpointStore {
    fn load(&self, job: &str, chunk: u64) -> io::Result<Option<Vec<u8>>> {
        Ok(self
            .inner
            .lock()
            .expect("store poisoned")
            .frames
            .get(&(job.to_string(), chunk))
            .cloned())
    }

    fn save(&self, job: &str, chunk: u64, frame: &[u8]) -> io::Result<()> {
        self.inner
            .lock()
            .expect("store poisoned")
            .frames
            .insert((job.to_string(), chunk), frame.to_vec());
        Ok(())
    }

    fn quarantine(&self, job: &str, chunk: u64, reason: &str) {
        let mut inner = self.inner.lock().expect("store poisoned");
        let key = (job.to_string(), chunk);
        if let Some(bytes) = inner.frames.remove(&key) {
            inner.quarantined.insert(key, (bytes, reason.to_string()));
        }
    }

    fn quarantined(&self, job: &str) -> Vec<(u64, String)> {
        let inner = self.inner.lock().expect("store poisoned");
        let mut out: Vec<(u64, String)> = inner
            .quarantined
            .iter()
            .filter(|((j, _), _)| j == job)
            .map(|((_, c), (_, reason))| (*c, reason.clone()))
            .collect();
        out.sort();
        out
    }
}

// ---------------------------------------------------------------------------
// On-disk store
// ---------------------------------------------------------------------------

/// An on-disk [`CheckpointStore`].
///
/// Layout: `<root>/<job>/chunk-<n>.ckpt`, written as `…​.ckpt.tmp` then
/// renamed into place so a crash mid-write leaves either the old frame or
/// none — never a torn one. Quarantine renames the frame to
/// `chunk-<n>.ckpt.quarantined` and records the reason alongside in
/// `chunk-<n>.ckpt.reason`; quarantined bytes are kept for post-mortem.
///
/// Every byte moves through an injectable [`StoreIo`] under a
/// [`StoreEngine`]: transient errors are retried per [`RetryPolicy`], and
/// past the failure budget the store demotes to a no-op backend — loads
/// answer `Ok(None)`, saves succeed without writing — so a dying disk
/// degrades the job to correct-but-uncached instead of failing it.
pub struct DiskCheckpointStore {
    root: PathBuf,
    engine: StoreEngine,
}

/// Maps a job id onto a filesystem-safe directory name.
fn sanitize(job: &str) -> String {
    job.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl DiskCheckpointStore {
    /// Opens (creating if needed) a store rooted at `root`, on the real
    /// filesystem with the default retry policy and failure budget.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<DiskCheckpointStore> {
        DiskCheckpointStore::with_engine(root, StoreEngine::real())
    }

    /// Opens a store whose filesystem access runs through `io` under
    /// `policy`, demoting after `failure_budget` given-up operations —
    /// the constructor the fault-injection harnesses use.
    pub fn with_io(
        root: impl Into<PathBuf>,
        io: Arc<dyn StoreIo>,
        policy: RetryPolicy,
        failure_budget: u64,
    ) -> io::Result<DiskCheckpointStore> {
        DiskCheckpointStore::with_engine(root, StoreEngine::new(io, policy, failure_budget))
    }

    fn with_engine(
        root: impl Into<PathBuf>,
        engine: StoreEngine,
    ) -> io::Result<DiskCheckpointStore> {
        let root = root.into();
        // Best-effort: a root that cannot be created yet is not fatal —
        // every save retries `create_dir_all`, loads degrade to misses,
        // and a disk that stays broken demotes the store through the
        // ledger like any other persistent fault. The failure is already
        // counted (and budgeted) by the engine.
        let _ = engine.run(|io| io.create_dir_all(&root));
        Ok(DiskCheckpointStore { root, engine })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether the store has demoted itself to a no-op backend.
    pub fn demoted(&self) -> bool {
        self.engine.demoted()
    }

    /// Path of a chunk's live frame.
    pub fn chunk_path(&self, job: &str, chunk: u64) -> PathBuf {
        self.root
            .join(sanitize(job))
            .join(format!("chunk-{chunk}.ckpt"))
    }
}

impl CheckpointStore for DiskCheckpointStore {
    fn load(&self, job: &str, chunk: u64) -> io::Result<Option<Vec<u8>>> {
        if self.engine.demoted() {
            return Ok(None);
        }
        let path = self.chunk_path(job, chunk);
        match self.engine.run(|io| io.read(&path)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn save(&self, job: &str, chunk: u64, frame: &[u8]) -> io::Result<()> {
        if self.engine.demoted() {
            return Ok(());
        }
        let path = self.chunk_path(job, chunk);
        let dir = path.parent().expect("chunk path has a parent");
        self.engine.run(|io| io.create_dir_all(dir))?;
        let tmp = path.with_extension("ckpt.tmp");
        let commit = self
            .engine
            .run(|io| io.write(&tmp, frame))
            .and_then(|()| self.engine.run(|io| io.rename(&tmp, &path)));
        if let Err(e) = commit {
            // Whether the write died (possibly leaving a torn prefix) or
            // the rename did (leaving an intact orphan), the tmp file must
            // not survive: a later crash-recovery sweep or ENOSPC budget
            // should never find stray `.tmp` litter. Best-effort — the
            // frame at `path` is still either the old one or absent.
            let _ = self.engine.run(|io| io.remove(&tmp));
            return Err(e);
        }
        // Durability point: a no-op on RealIo (the commit is the rename),
        // but injectable, so slow/failing barriers are simulatable.
        self.engine.run(|io| io.sync(&path))
    }

    fn quarantine(&self, job: &str, chunk: u64, reason: &str) {
        let path = self.chunk_path(job, chunk);
        let mut target = path.with_extension("ckpt.quarantined");
        // Never overwrite earlier evidence: suffix repeat offenders.
        let mut n = 1;
        while target.exists() {
            target = path.with_extension(format!("ckpt.quarantined.{n}"));
            n += 1;
        }
        if self.engine.run(|io| io.rename(&path, &target)).is_err() {
            symple_obs::counter_add("checkpoint.quarantine_errors", 1);
            return;
        }
        let reason_path = target.with_extension(
            target
                .extension()
                .and_then(|e| e.to_str())
                .map(|e| format!("{e}.reason"))
                .unwrap_or_else(|| "reason".to_string()),
        );
        if self
            .engine
            .run(|io| io.write(&reason_path, reason.as_bytes()))
            .is_err()
        {
            symple_obs::counter_add("checkpoint.quarantine_errors", 1);
        }
    }

    fn io_counts(&self) -> Option<IoCounts> {
        Some(self.engine.ledger().snapshot())
    }

    // Quarantine listing is a post-mortem/test path, not part of the
    // durability contract, so its directory walk stays on plain `fs`.
    fn quarantined(&self, job: &str) -> Vec<(u64, String)> {
        let dir = self.root.join(sanitize(job));
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix("chunk-")
                .and_then(|s| s.split_once(".ckpt.quarantined"))
                .map(|(idx, _)| idx)
            else {
                continue;
            };
            if name.ends_with(".reason") {
                continue;
            }
            let Ok(chunk) = stem.parse::<u64>() else {
                continue;
            };
            let reason = fs::read_to_string(
                entry.path().with_extension(
                    entry
                        .path()
                        .extension()
                        .and_then(|e| e.to_str())
                        .map(|e| format!("{e}.reason"))
                        .unwrap_or_else(|| "reason".to_string()),
                ),
            )
            .unwrap_or_else(|_| "(reason unrecorded)".to_string());
            out.push((chunk, reason));
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::frame::encode_frame_with_version;

    const META: FrameMeta = FrameMeta {
        chunk_index: 3,
        config_hash: 42,
        input_digest: 99,
    };

    fn ctx<'a>(store: &'a dyn CheckpointStore) -> CheckpointCtx<'a> {
        CheckpointCtx::new(store, "job-a")
    }

    #[test]
    fn mem_store_round_trip_and_quarantine() {
        let store = MemCheckpointStore::new();
        let c = ctx(&store);
        assert_eq!(lookup_chunk(&c, &META), ChunkLookup::Miss);

        save_chunk(&c, &META, b"payload");
        assert_eq!(
            lookup_chunk(&c, &META),
            ChunkLookup::Hit(b"payload".to_vec())
        );
        assert_eq!(store.frame_count(), 1);

        // A different job id never sees the frame.
        let other = CheckpointCtx::new(&store, "job-b");
        assert_eq!(lookup_chunk(&other, &META), ChunkLookup::Miss);

        // Stale config: quarantined, not served, bytes retained.
        let stale = FrameMeta {
            config_hash: 43,
            ..META
        };
        assert_eq!(lookup_chunk(&c, &stale), ChunkLookup::Corrupt);
        assert_eq!(
            lookup_chunk(&c, &META),
            ChunkLookup::Miss,
            "quarantine removed it"
        );
        let q = store.quarantined("job-a");
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].0, META.chunk_index);
        assert!(q[0].1.contains("config"), "{}", q[0].1);
    }

    #[test]
    fn mem_store_tamper_detected() {
        let store = MemCheckpointStore::new();
        let c = ctx(&store);
        save_chunk(&c, &META, b"payload");
        assert!(store.tamper("job-a", META.chunk_index, |b| b[6] ^= 0x40));
        assert_eq!(lookup_chunk(&c, &META), ChunkLookup::Corrupt);
        assert_eq!(store.quarantined("job-a").len(), 1);
    }

    #[test]
    fn disk_store_round_trip() {
        let dir = std::env::temp_dir().join(format!("symple-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = DiskCheckpointStore::new(&dir).unwrap();
        let c = ctx(&store);

        save_chunk(&c, &META, b"disk payload");
        assert!(store.chunk_path("job-a", META.chunk_index).exists());
        assert_eq!(
            lookup_chunk(&c, &META),
            ChunkLookup::Hit(b"disk payload".to_vec())
        );

        // Version-bumped frame (valid CRC): corrupt, quarantined by rename,
        // reason recorded, bytes still on disk.
        let bad = encode_frame_with_version(FRAME_VERSION + 1, &META, b"disk payload");
        store.save("job-a", META.chunk_index, &bad).unwrap();
        assert_eq!(lookup_chunk(&c, &META), ChunkLookup::Corrupt);
        assert_eq!(lookup_chunk(&c, &META), ChunkLookup::Miss);
        let q = store.quarantined("job-a");
        assert_eq!(q.len(), 1);
        assert!(q[0].1.contains("version"), "{}", q[0].1);

        // A second quarantine of the same chunk keeps both evidence files.
        store.save("job-a", META.chunk_index, &bad).unwrap();
        assert_eq!(lookup_chunk(&c, &META), ChunkLookup::Corrupt);
        assert_eq!(store.quarantined("job-a").len(), 2);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_sanitizes_job_ids() {
        let dir = std::env::temp_dir().join(format!("symple-ckpt-sanitize-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = DiskCheckpointStore::new(&dir).unwrap();
        let c = CheckpointCtx::new(&store, "job/../evil id");
        save_chunk(&c, &META, b"x");
        assert_eq!(lookup_chunk(&c, &META), ChunkLookup::Hit(b"x".to_vec()));
        // The frame landed under the sanitized name, inside the root.
        assert!(store
            .chunk_path("job/../evil id", META.chunk_index)
            .starts_with(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_varies_with_engine_knobs() {
        let base = JobConfig::default();
        let mut other = base;
        other.engine.max_total_paths += 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other));
        let mut salvage = base;
        salvage.salvage_refused_chunks = !salvage.salvage_refused_chunks;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&salvage));
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base));
    }
}
