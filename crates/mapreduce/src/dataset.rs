//! Mutable datasets with content-defined chunk boundaries.
//!
//! The summary cache ([`crate::cache`]) is addressed by chunk *content*,
//! so its hit rate is decided entirely by how stable chunk boundaries are
//! under edits. Fixed-count splitting ([`crate::segment::split_into_segments`])
//! is the worst case: appending one record shifts every boundary and
//! dirties every chunk. A [`Dataset`] instead cuts chunks where the
//! *records themselves* say to cut — a record whose hash matches a mask
//! ends its chunk — so an append dirties only the trailing chunk and an
//! edit dirties only the chunk holding it (plus, rarely, a neighbor when
//! the edited record was itself a boundary).
//!
//! Deltas are deliberately minimal — [`Dataset::append`],
//! [`Dataset::edit`], [`Dataset::truncate`] — matching the append-mostly
//! log workloads of the paper's queries. None of them can displace the
//! globally first chunk (edits replace in place, truncation eats the
//! tail), which matters because chunk 0 is the one that runs concretely
//! and is cache-keyed as such.

use symple_core::wire::Wire;

use crate::segment::{EncodedSegment, Segment};

/// A record sequence plus the rules for cutting it into cache-friendly
/// chunks. The per-record hash must be a pure function of the record's
/// content (never of its position), or boundaries stop being
/// content-defined and the cache degrades to cold runs.
pub struct Dataset<R> {
    records: Vec<R>,
    raw_record_bytes: u64,
    target_chunk_records: usize,
    hash: fn(&R) -> u64,
}

impl<R: Clone> Dataset<R> {
    /// Builds a dataset. `target_chunk_records` is the *expected* chunk
    /// size; actual chunks vary between a quarter and four times the
    /// target (the usual content-defined-chunking min/max discipline).
    pub fn new(
        records: Vec<R>,
        raw_record_bytes: u64,
        target_chunk_records: usize,
        hash: fn(&R) -> u64,
    ) -> Dataset<R> {
        Dataset {
            records,
            raw_record_bytes,
            target_chunk_records: target_chunk_records.max(1),
            hash,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in order.
    pub fn records(&self) -> &[R] {
        &self.records
    }

    /// Appends records at the end (the 1%-append resweep workload).
    pub fn append(&mut self, more: impl IntoIterator<Item = R>) {
        self.records.extend(more);
    }

    /// Replaces the record at `index` in place. Returns whether the index
    /// was in range.
    pub fn edit(&mut self, index: usize, record: R) -> bool {
        match self.records.get_mut(index) {
            Some(slot) => {
                *slot = record;
                true
            }
            None => false,
        }
    }

    /// Drops every record past the first `len` (a log rollback).
    pub fn truncate(&mut self, len: usize) {
        self.records.truncate(len);
    }

    /// The chunk boundaries as end-exclusive offsets (the last one is
    /// always `len()`, unless the dataset is empty).
    pub fn boundaries(&self) -> Vec<usize> {
        // A record cuts when the low bits of its content hash hit the
        // all-ones mask — probability ≈ 1/target per record, so chunk
        // sizes are geometric around the target. The min bound stops
        // pathological runs of boundary records from producing confetti;
        // the max bound stops boundary-free data from producing one giant
        // chunk. Only the max bound costs locality (a forced cut's
        // position depends on the previous cut), and it resynchronizes at
        // the next natural boundary.
        let mask = self.target_chunk_records.next_power_of_two() as u64 - 1;
        let min = (self.target_chunk_records / 4).max(1);
        let max = self.target_chunk_records.saturating_mul(4).max(min + 1);
        let mut bounds = Vec::new();
        let mut current = 0usize;
        for r in &self.records {
            current += 1;
            let natural = (self.hash)(r) & mask == mask;
            if (natural && current >= min) || current >= max {
                bounds.push(bounds.last().copied().unwrap_or(0) + current);
                current = 0;
            }
        }
        if current > 0 {
            bounds.push(self.records.len());
        }
        bounds
    }

    /// Materializes the chunks as ordered [`Segment`]s, ready for
    /// [`crate::cache::SummaryCache`]-backed execution.
    pub fn segments(&self) -> Vec<Segment<R>> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for (id, end) in self.boundaries().into_iter().enumerate() {
            let records = self.records[start..end].to_vec();
            let raw = records.len() as u64 * self.raw_record_bytes;
            out.push(Segment::new(id, records, raw));
            start = end;
        }
        out
    }
}

impl<R: Clone + Wire> Dataset<R> {
    /// The chunks in wire form: each chunk's records encoded into one
    /// contiguous buffer, cut at the same content-defined boundaries as
    /// [`Dataset::segments`]. This is the entry point for the zero-copy
    /// decode tier — readers iterate with
    /// [`EncodedSegment::for_each_borrowed`] and never materialize owned
    /// records.
    pub fn encoded_segments(&self) -> Vec<EncodedSegment> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for (id, end) in self.boundaries().into_iter().enumerate() {
            let records = &self.records[start..end];
            let mut bytes = Vec::new();
            for r in records {
                r.encode(&mut bytes);
            }
            out.push(EncodedSegment {
                id,
                bytes,
                record_count: records.len(),
                raw_bytes: records.len() as u64 * self.raw_record_bytes,
            });
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::frame::fnv1a;

    fn hash_i64(r: &i64) -> u64 {
        fnv1a(&r.to_le_bytes())
    }

    fn dataset(records: Vec<i64>) -> Dataset<i64> {
        Dataset::new(records, 64, 16, hash_i64)
    }

    fn chunk_contents(d: &Dataset<i64>) -> Vec<Vec<i64>> {
        d.segments().into_iter().map(|s| s.records).collect()
    }

    #[test]
    fn segments_cover_input_in_order() {
        let records: Vec<i64> = (0..500).map(|i| (i * 37 + 5) % 211).collect();
        let d = dataset(records.clone());
        let segs = d.segments();
        assert!(segs.len() > 1, "expected multiple chunks");
        let rejoined: Vec<i64> = segs.iter().flat_map(|s| s.records.clone()).collect();
        assert_eq!(rejoined, records);
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.id, i);
            assert_eq!(s.raw_bytes, s.records.len() as u64 * 64);
        }
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        let records: Vec<i64> = (0..2000).map(|i| (i * 13 + 7) % 997).collect();
        let d = dataset(records);
        let segs = d.segments();
        for s in &segs[..segs.len() - 1] {
            assert!(s.len() >= 4, "min bound violated: {}", s.len());
            assert!(s.len() <= 64, "max bound violated: {}", s.len());
        }
        // The trailing chunk may be short (no natural cut at end-of-log)
        // but never oversized.
        assert!(segs.last().unwrap().len() <= 64);
    }

    #[test]
    fn append_only_dirties_the_tail() {
        let records: Vec<i64> = (0..800).map(|i| (i * 37 + 5) % 211).collect();
        let mut d = dataset(records);
        let before = chunk_contents(&d);
        d.append((0..8).map(|i| (i * 31 + 3) % 211));
        let after = chunk_contents(&d);
        // Every chunk except the last pre-append one is byte-identical.
        assert!(after.len() >= before.len());
        assert_eq!(
            &after[..before.len() - 1],
            &before[..before.len() - 1],
            "append must not move earlier boundaries"
        );
    }

    #[test]
    fn edit_dirties_a_bounded_neighborhood() {
        let records: Vec<i64> = (0..800).map(|i| (i * 37 + 5) % 211).collect();
        let mut d = dataset(records);
        let before = chunk_contents(&d);
        assert!(d.edit(400, 123_456));
        let after = chunk_contents(&d);
        let changed: usize = {
            // Count chunks of `after` that do not appear in `before` —
            // the chunks a warm run must recompute.
            let before_set: std::collections::HashSet<&Vec<i64>> = before.iter().collect();
            after.iter().filter(|c| !before_set.contains(c)).count()
        };
        assert!(
            changed <= 2,
            "an edit may dirty the containing chunk and at most one neighbor, dirtied {changed}"
        );
    }

    #[test]
    fn truncate_and_edit_out_of_range() {
        let mut d = dataset((0..100).collect());
        assert!(!d.edit(100, 0));
        d.truncate(40);
        assert_eq!(d.len(), 40);
        let rejoined: Vec<i64> = chunk_contents(&d).concat();
        assert_eq!(rejoined, (0..40).collect::<Vec<i64>>());
        d.truncate(0);
        assert!(d.is_empty());
        assert!(d.segments().is_empty());
        assert!(d.boundaries().is_empty());
    }

    #[test]
    fn encoded_segments_mirror_typed_segments() {
        let records: Vec<i64> = (0..700).map(|i| (i * 37 + 5) % 211).collect();
        let d = dataset(records);
        let typed = d.segments();
        let encoded = d.encoded_segments();
        assert_eq!(typed.len(), encoded.len());
        for (t, e) in typed.iter().zip(&encoded) {
            assert_eq!(t.id, e.id);
            assert_eq!(t.raw_bytes, e.raw_bytes);
            assert_eq!(t.records.len(), e.record_count);
            let back: Segment<i64> = e.decode_records().unwrap();
            assert_eq!(back.records, t.records);
            let mut borrowed = Vec::new();
            e.for_each_borrowed(|r: i64| borrowed.push(r)).unwrap();
            assert_eq!(borrowed, t.records);
        }
    }

    #[test]
    fn boundaries_are_deterministic_and_content_defined() {
        let records: Vec<i64> = (0..600).map(|i| (i * 41 + 11) % 509).collect();
        let a = dataset(records.clone());
        let b = dataset(records);
        assert_eq!(a.boundaries(), b.boundaries());
    }
}
