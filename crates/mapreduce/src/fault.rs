//! Fault injection: crashed map attempts and their re-execution.
//!
//! MapReduce's fault-tolerance story (the paper inherits Hadoop's, §5.4)
//! rests on tasks being deterministic: a failed attempt is simply run
//! again, and the shuffle sees exactly the bytes the first attempt would
//! have produced. SYMPLE adds a subtlety — map tasks perform symbolic
//! exploration — so this module lets tests and demos *prove* that
//! re-executed SYMPLE map tasks are byte-identical: inject failures,
//! re-run, compare.
//!
//! This plan/injector/ledger idiom — a declarative [`FaultPlan`], a
//! counting [`FaultInjector`], tests that balance the two — extends to
//! the storage layer in [`crate::store_io`]: there
//! [`crate::store_io::StorageFaultPlan`] schedules disk faults (errno on
//! the Nth op, torn writes, failed renames, latency) and
//! [`crate::store_io::FaultIo`] injects them beneath the durable stores.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use symple_core::error::Result;
use symple_core::uda::Uda;

use crate::groupby::GroupBy;
use crate::job::{JobConfig, JobOutput};
use crate::scheduler::TaskFaults;
use crate::segment::Segment;
use crate::symple_job::run_symple_inner;

/// Declares which map attempts fail.
///
/// Attempt numbers are 1-based; a task fails while `(segment, attempt)`
/// matches the plan, and succeeds on the next attempt — except
/// `fail_always` segments, which fail *every* attempt and exercise the
/// scheduler's retry cap ([`Error::RetriesExhausted`]).
///
/// [`Error::RetriesExhausted`]: symple_core::error::Error::RetriesExhausted
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Segment ids whose first attempt crashes (after doing the work).
    pub fail_first_attempt: HashSet<usize>,
    /// Segment ids whose first *two* attempts crash.
    pub fail_twice: HashSet<usize>,
    /// Segment ids whose *every* attempt crashes — the job must surface a
    /// typed error once the retry cap is exhausted, not spin forever.
    pub fail_always: HashSet<usize>,
    /// Segment ids whose first attempt panics mid-flight (isolated by the
    /// scheduler's `catch_unwind`, then retried).
    pub panic_first_attempt: HashSet<usize>,
    /// Segment ids whose first attempt is delayed by [`straggle_delay`] —
    /// raw material for speculation tests.
    ///
    /// [`straggle_delay`]: FaultPlan::straggle_delay
    pub straggle_first_attempt: HashSet<usize>,
    /// Extra latency injected into straggling first attempts.
    pub straggle_delay: Duration,
    /// Simulated process death: once this many map tasks have *committed*
    /// (and, when checkpointing is enabled, persisted their summaries),
    /// every subsequent map task dies with
    /// [`Error::JobKilled`] instead of running. Drives the
    /// crash → restart → resume cycle in-process: run once with the kill,
    /// then rerun the same job id against the same store and assert the
    /// output is byte-identical to an uninterrupted run.
    ///
    /// [`Error::JobKilled`]: symple_core::error::Error::JobKilled
    pub kill_after_n_tasks: Option<u64>,
}

impl FaultPlan {
    /// A plan failing the first attempt of the given segments.
    pub fn fail_once(segments: impl IntoIterator<Item = usize>) -> FaultPlan {
        FaultPlan {
            fail_first_attempt: segments.into_iter().collect(),
            ..FaultPlan::default()
        }
    }
}

/// Injects the failures of a [`FaultPlan`] and counts re-executions.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    retries: AtomicU64,
    panics: AtomicU64,
    completed: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector for the plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            retries: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        }
    }

    /// If the plan kills the job and its task budget is already spent,
    /// returns how many map tasks had committed — the job must die with
    /// `Error::JobKilled { after_tasks }` instead of running the task.
    pub fn kill_check(&self) -> Option<u64> {
        let n = self.plan.kill_after_n_tasks?;
        let done = self.completed.load(Ordering::SeqCst);
        (done >= n).then_some(done)
    }

    /// Records one committed map task (call *after* its checkpoint save).
    pub fn note_task_completed(&self) {
        self.completed.fetch_add(1, Ordering::SeqCst);
    }

    /// Map tasks that committed before any kill.
    pub fn completed_tasks(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }

    /// Whether this `(segment, attempt)` crashes. Counts the retry.
    pub fn attempt_fails(&self, segment: usize, attempt: u32) -> bool {
        let fails = self.plan.fail_always.contains(&segment)
            || match attempt {
                1 => {
                    self.plan.fail_first_attempt.contains(&segment)
                        || self.plan.fail_twice.contains(&segment)
                }
                2 => self.plan.fail_twice.contains(&segment),
                _ => false,
            };
        if fails {
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
        fails
    }

    /// Whether this `(segment, attempt)` panics mid-flight. Counts it.
    pub fn attempt_panics(&self, segment: usize, attempt: u32) -> bool {
        let panics = attempt == 1 && self.plan.panic_first_attempt.contains(&segment);
        if panics {
            self.panics.fetch_add(1, Ordering::Relaxed);
        }
        panics
    }

    /// Extra latency for this `(segment, attempt)`.
    pub fn attempt_delay(&self, segment: usize, attempt: u32) -> Duration {
        if attempt == 1 && self.plan.straggle_first_attempt.contains(&segment) {
            self.plan.straggle_delay
        } else {
            Duration::ZERO
        }
    }

    /// Re-executions triggered so far (injected crashes, not panics).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Panics injected so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }
}

/// Adapts a segment-id-keyed [`FaultInjector`] onto the scheduler's
/// task-index-keyed [`TaskFaults`] hook: `ids[task]` is the segment id of
/// the task at that position in the scheduled slice.
#[derive(Debug)]
pub struct SegmentFaults<'a> {
    injector: &'a FaultInjector,
    ids: Vec<usize>,
}

impl<'a> SegmentFaults<'a> {
    /// Builds the adapter from the scheduled segments' ids, in task order.
    pub fn new(injector: &'a FaultInjector, ids: Vec<usize>) -> SegmentFaults<'a> {
        SegmentFaults { injector, ids }
    }
}

impl TaskFaults for SegmentFaults<'_> {
    fn attempt_fails(&self, task: usize, attempt: u32) -> bool {
        self.injector.attempt_fails(self.ids[task], attempt)
    }

    fn attempt_panics(&self, task: usize, attempt: u32) -> bool {
        self.injector.attempt_panics(self.ids[task], attempt)
    }

    fn attempt_delay(&self, task: usize, attempt: u32) -> Duration {
        self.injector.attempt_delay(self.ids[task], attempt)
    }
}

/// Runs the SYMPLE job with injected map-task failures.
///
/// Output is guaranteed identical to the failure-free [`crate::run_symple`]
/// — the property the tests pin down.
pub fn run_symple_with_faults<G, U>(
    g: &G,
    uda: &U,
    segments: &[Segment<G::Record>],
    cfg: &JobConfig,
    injector: &FaultInjector,
) -> Result<JobOutput<G::Key, U::Output>>
where
    G: GroupBy,
    U: Uda<Event = G::Event>,
    U::Output: Send,
{
    run_symple_inner(g, uda, segments, cfg, Some(injector), None, None)
}

/// Runs the SYMPLE job with fault injection *and* a checkpoint store —
/// the full crash-drill entrypoint. The canonical drill: run with
/// [`FaultPlan::kill_after_n_tasks`] until [`Error::JobKilled`] surfaces,
/// then rerun the same job id against the same store with no faults and
/// assert byte-identity to an uninterrupted run with `checkpoint_hits`
/// covering the committed chunks.
///
/// [`Error::JobKilled`]: symple_core::error::Error::JobKilled
pub fn run_symple_checkpointed_with_faults<G, U>(
    g: &G,
    uda: &U,
    segments: &[Segment<G::Record>],
    cfg: &JobConfig,
    injector: &FaultInjector,
    ckpt: &crate::checkpoint::CheckpointCtx<'_>,
) -> Result<JobOutput<G::Key, U::Output>>
where
    G: GroupBy,
    U: Uda<Event = G::Event>,
    U::Output: Send,
{
    run_symple_inner(g, uda, segments, cfg, Some(injector), Some(ckpt), None)
}

/// Side-by-side outcome of a clean run and a fault-injected re-run of the
/// same SYMPLE job: the raw material for determinism checks.
///
/// Hadoop-style fault tolerance is only sound when a re-executed map
/// attempt reproduces its predecessor exactly — same results *and* same
/// shuffle bytes. This probe runs the job twice (without and with the
/// [`FaultPlan`]) and exposes both outputs plus the retry count, so
/// harnesses like `symple-oracle` can assert byte-level determinism
/// instead of trusting it.
#[derive(Debug)]
pub struct FaultProbe<K, O> {
    /// Output of the failure-free run.
    pub clean: JobOutput<K, O>,
    /// Output of the run with injected crashes.
    pub faulty: JobOutput<K, O>,
    /// Re-executions the plan actually triggered.
    pub retries: u64,
}

impl<K: PartialEq, O: PartialEq> FaultProbe<K, O> {
    /// Whether both runs produced identical per-key results.
    pub fn results_match(&self) -> bool {
        self.clean.results == self.faulty.results
    }

    /// Whether re-executed attempts pushed byte-identical data through the
    /// shuffle (counts and byte totals both match).
    pub fn shuffle_deterministic(&self) -> bool {
        self.clean.metrics.shuffle_bytes == self.faulty.metrics.shuffle_bytes
            && self.clean.metrics.shuffle_records == self.faulty.metrics.shuffle_records
    }

    /// The full determinism claim the fault-tolerance story rests on.
    pub fn is_deterministic(&self) -> bool {
        self.results_match() && self.shuffle_deterministic()
    }
}

/// Runs the job twice — clean, then with `plan`'s crashes injected — and
/// returns both outputs for comparison.
pub fn probe_fault_determinism<G, U>(
    g: &G,
    uda: &U,
    segments: &[Segment<G::Record>],
    cfg: &JobConfig,
    plan: FaultPlan,
) -> Result<FaultProbe<G::Key, U::Output>>
where
    G: GroupBy,
    U: Uda<Event = G::Event>,
    U::Output: Send,
{
    let clean = run_symple_inner(g, uda, segments, cfg, None, None, None)?;
    let injector = FaultInjector::new(plan);
    let faulty = run_symple_with_faults(g, uda, segments, cfg, &injector)?;
    Ok(FaultProbe {
        clean,
        faulty,
        retries: injector.retries(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::split_into_segments;
    use crate::symple_job::run_symple;
    use symple_core::ctx::SymCtx;
    use symple_core::impl_sym_state;
    use symple_core::types::{sym_int::SymInt, sym_vector::SymVector};

    struct ByMod;
    impl GroupBy for ByMod {
        type Record = i64;
        type Key = u8;
        type Event = i64;
        fn extract(&self, r: &i64) -> Option<(u8, i64)> {
            Some(((r % 5) as u8, *r))
        }
    }

    struct SumsUda;
    #[derive(Clone, Debug)]
    struct SumState {
        sum: SymInt,
        peaks: SymVector<i64>,
    }
    impl_sym_state!(SumState { sum, peaks });
    impl Uda for SumsUda {
        type State = SumState;
        type Event = i64;
        type Output = (i64, Vec<i64>);
        fn init(&self) -> SumState {
            SumState {
                sum: SymInt::new(0),
                peaks: SymVector::new(),
            }
        }
        fn update(&self, s: &mut SumState, ctx: &mut SymCtx, e: &i64) {
            s.sum.add(ctx, *e);
            if s.sum.gt(ctx, 500) {
                s.peaks.push_int(&s.sum);
                s.sum.assign(0);
            }
        }
        fn result(&self, s: &SumState, _ctx: &mut SymCtx) -> (i64, Vec<i64>) {
            (
                s.sum.concrete_value().unwrap(),
                s.peaks.concrete_elems().unwrap(),
            )
        }
    }

    #[test]
    fn failed_attempts_do_not_change_results() {
        let records: Vec<i64> = (0..2_000).map(|i| (i * 17 + 3) % 101).collect();
        let segments = split_into_segments(&records, 6, 64);
        let cfg = JobConfig::default();
        let clean = run_symple(&ByMod, &SumsUda, &segments, &cfg).unwrap();

        let injector = FaultInjector::new(FaultPlan::fail_once([0, 2, 5]));
        let faulty = run_symple_with_faults(&ByMod, &SumsUda, &segments, &cfg, &injector).unwrap();
        assert_eq!(injector.retries(), 3);
        assert_eq!(clean.results, faulty.results);
        assert_eq!(clean.metrics.shuffle_bytes, faulty.metrics.shuffle_bytes);
        assert_eq!(
            clean.metrics.shuffle_records,
            faulty.metrics.shuffle_records
        );
    }

    #[test]
    fn double_failures_recover_too() {
        let records: Vec<i64> = (0..900).map(|i| (i * 7) % 53).collect();
        let segments = split_into_segments(&records, 4, 64);
        let cfg = JobConfig::default();
        let clean = run_symple(&ByMod, &SumsUda, &segments, &cfg).unwrap();
        let plan = FaultPlan {
            fail_twice: [1].into_iter().collect(),
            ..Default::default()
        };
        let injector = FaultInjector::new(plan);
        let faulty = run_symple_with_faults(&ByMod, &SumsUda, &segments, &cfg, &injector).unwrap();
        assert_eq!(injector.retries(), 2);
        assert_eq!(clean.results, faulty.results);
    }

    #[test]
    fn probe_reports_determinism() {
        let records: Vec<i64> = (0..1_200).map(|i| (i * 29 + 11) % 83).collect();
        let segments = split_into_segments(&records, 5, 64);
        let probe = probe_fault_determinism(
            &ByMod,
            &SumsUda,
            &segments,
            &JobConfig::default(),
            FaultPlan::fail_once([1, 3]),
        )
        .unwrap();
        assert_eq!(probe.retries, 2);
        assert!(probe.results_match());
        assert!(probe.shuffle_deterministic());
        assert!(probe.is_deterministic());
    }

    #[test]
    fn empty_plan_is_free() {
        let injector = FaultInjector::new(FaultPlan::default());
        assert!(!injector.attempt_fails(0, 1));
        assert_eq!(injector.retries(), 0);
    }
}
