//! The groupby side of a groupby-aggregate query (§2.1 of the paper).
//!
//! `GroupBy: List<R> → Set<(K, List<E>)>` parses each record, extracts a
//! key, and emits a (possibly projected) event per record, grouping events
//! into per-key lists that retain the input order. Executed by mappers in
//! both the baseline and SYMPLE jobs.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use symple_core::wire::Wire;

/// Grouping keys: hashable (for partitioning), ordered (for deterministic
/// output), and wire-encodable (for shuffle accounting).
pub trait Key: Hash + Eq + Ord + Clone + Debug + Send + Sync + Wire + 'static {}
impl<T: Hash + Eq + Ord + Clone + Debug + Send + Sync + Wire + 'static> Key for T {}

/// A user-provided groupby function.
///
/// `extract` parses one input record into a key and a projected event —
/// only the fields the UDA actually reads, the optimization the paper's
/// baseline also applies ("each mapper is optimized to only send input
/// record fields that are used by the UDAs", §6.2). Returning `None`
/// filters the record out.
pub trait GroupBy: Send + Sync {
    /// Raw input record type.
    type Record: Send + Sync;
    /// Grouping key type.
    type Key: Key;
    /// Projected event type fed to the UDA.
    type Event: Clone + Debug + Send + Sync + Wire + 'static;

    /// Parses a record into `(key, event)`, or `None` to drop it.
    fn extract(&self, r: &Self::Record) -> Option<(Self::Key, Self::Event)>;

    /// Parses a record into *any number* of `(key, event)` pairs.
    ///
    /// Defaults to the single-pair [`GroupBy::extract`]; override for
    /// records that fan out (e.g. the per-element re-grouping of a
    /// previous stage's list-valued results in a multi-stage plan).
    fn extract_all(&self, r: &Self::Record, out: &mut Vec<(Self::Key, Self::Event)>) {
        out.extend(self.extract(r));
    }
}

/// Groups one segment's records into per-key ordered event lists.
///
/// Order within each key's list follows the segment's record order, as the
/// aggregation semantics require.
pub fn group_segment<G: GroupBy>(g: &G, records: &[G::Record]) -> HashMap<G::Key, Vec<G::Event>> {
    let mut groups: HashMap<G::Key, Vec<G::Event>> = HashMap::new();
    let mut pairs = Vec::with_capacity(4);
    for r in records {
        pairs.clear();
        g.extract_all(r, &mut pairs);
        for (k, e) in pairs.drain(..) {
            groups.entry(k).or_default().push(e);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ByParity;
    impl GroupBy for ByParity {
        type Record = i64;
        type Key = u8;
        type Event = i64;
        fn extract(&self, r: &i64) -> Option<(u8, i64)> {
            if *r < 0 {
                None // filtered
            } else {
                Some(((r % 2) as u8, *r))
            }
        }
    }

    #[test]
    fn groups_retain_order() {
        let recs = vec![1, 2, -5, 3, 4, 6, 5];
        let groups = group_segment(&ByParity, &recs);
        assert_eq!(groups[&1], vec![1, 3, 5]);
        assert_eq!(groups[&0], vec![2, 4, 6]);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn empty_segment() {
        let groups = group_segment(&ByParity, &[]);
        assert!(groups.is_empty());
    }

    #[test]
    fn all_filtered() {
        let groups = group_segment(&ByParity, &[-1, -2]);
        assert!(groups.is_empty());
    }
}
