//! Job configuration and output.

use symple_core::engine::EngineConfig;

use crate::metrics::JobMetrics;
use crate::scheduler::SchedulerConfig;

/// How a SYMPLE reducer combines a key's summary chains (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceStrategy {
    /// Apply each mapper's chain to the running concrete state, in order —
    /// linear work in the number of chains, no cross products.
    #[default]
    ApplyInOrder,
    /// Collapse all chains into one summary by balanced symbolic
    /// composition first (the associativity of §3.6; tree-parallel in a
    /// real deployment), then apply once.
    TreeCompose,
}

/// Configuration for one groupby-aggregate job.
#[derive(Debug, Clone, Copy)]
pub struct JobConfig {
    /// Number of reduce partitions (the paper sets this to the number of
    /// machines on EMR and 50 on the 380-node cluster).
    pub num_reducers: usize,
    /// Worker threads executing map tasks.
    pub map_workers: usize,
    /// Worker threads executing reduce tasks.
    pub reduce_workers: usize,
    /// Symbolic-engine tuning (SYMPLE jobs only).
    pub engine: EngineConfig,
    /// How reducers combine summary chains.
    pub reduce_strategy: ReduceStrategy,
    /// Whether the globally first segment's mapper runs the UDA
    /// *concretely* from the true initial state (Figure 2's "partial
    /// aggregation"). Disable to force symbolic execution in every mapper,
    /// as the single-machine overhead experiment of §6.2 does.
    pub first_segment_concrete: bool,
    /// Degraded completion: when a mapper's engine *refuses* a chunk
    /// (path explosion, predicate window, symbolic overflow — even past
    /// the §5.2 restart fallback), ship the chunk's raw events tagged
    /// `NeedsConcrete` instead of failing the job; the in-order reducer
    /// re-executes them concretely once the prefix state is resolved and
    /// keeps composing symbolically. Each salvage is counted in
    /// [`JobMetrics::chunks_salvaged_concrete`] as a measured sequential
    /// barrier. Disable to restore hard-failure semantics.
    pub salvage_refused_chunks: bool,
    /// Fault-tolerance knobs for the task scheduler: retry cap, simulated
    /// backoff, straggler speculation.
    pub scheduler: SchedulerConfig,
}

impl Default for JobConfig {
    fn default() -> JobConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        JobConfig {
            num_reducers: 4,
            map_workers: cores,
            reduce_workers: cores,
            engine: EngineConfig::default(),
            reduce_strategy: ReduceStrategy::default(),
            first_segment_concrete: true,
            salvage_refused_chunks: true,
            scheduler: SchedulerConfig::default(),
        }
    }
}

impl JobConfig {
    /// A config with `n` map workers (the paper's "N mappers" axis in
    /// Figure 4).
    pub fn with_map_workers(mut self, n: usize) -> JobConfig {
        self.map_workers = n;
        self
    }

    /// A config with `n` reduce partitions.
    pub fn with_reducers(mut self, n: usize) -> JobConfig {
        self.num_reducers = n;
        self
    }
}

/// The results and metrics of one executed job.
#[derive(Debug, Clone)]
pub struct JobOutput<K, O> {
    /// Per-key aggregation outputs, sorted by key.
    pub results: Vec<(K, O)>,
    /// Phase metrics.
    pub metrics: JobMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let cfg = JobConfig::default().with_map_workers(2).with_reducers(7);
        assert_eq!(cfg.map_workers, 2);
        assert_eq!(cfg.num_reducers, 7);
        assert!(cfg.reduce_workers >= 1);
    }
}
