#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # symple-mapreduce
//!
//! A from-scratch, multi-threaded MapReduce substrate — the Hadoop
//! stand-in on which SYMPLE-rs runs (§5.4 of the paper).
//!
//! The substrate executes *groupby-aggregate* jobs over ordered input
//! segments:
//!
//! * [`baseline`] — the paper's hand-optimized Hadoop baseline: the
//!   groupby runs in the mappers (emitting only the projected fields the
//!   UDA reads), the UDA runs sequentially in the reducers;
//! * [`symple_job`] — the SYMPLE job: groupby **and** symbolic UDA
//!   execution both run in the mappers, and reducers merely compose the
//!   symbolic summaries in `(mapper_id, record_id)` order;
//! * [`sequential`] — the single-thread reference used by the multi-core
//!   evaluation (§6.2).
//!
//! All three report byte-accurate shuffle sizes and per-phase CPU/wall
//! times in [`metrics::JobMetrics`], the quantities behind Figures 4–8.
//!
//! # Examples
//!
//! A complete job — group integers by parity, sum each group — on both
//! backends:
//!
//! ```
//! use symple_core::prelude::*;
//! use symple_mapreduce::segment::split_into_segments;
//! use symple_mapreduce::{run_baseline, run_symple, GroupBy, JobConfig};
//!
//! struct ByParity;
//! impl GroupBy for ByParity {
//!     type Record = i64;
//!     type Key = u8;
//!     type Event = i64;
//!     fn extract(&self, r: &i64) -> Option<(u8, i64)> {
//!         Some(((r % 2) as u8, *r))
//!     }
//! }
//!
//! struct SumUda;
//! #[derive(Clone, Debug)]
//! struct SumState { sum: SymInt }
//! symple_core::impl_sym_state!(SumState { sum });
//! impl Uda for SumUda {
//!     type State = SumState;
//!     type Event = i64;
//!     type Output = i64;
//!     fn init(&self) -> SumState { SumState { sum: SymInt::new(0) } }
//!     fn update(&self, s: &mut SumState, ctx: &mut SymCtx, e: &i64) {
//!         s.sum.add(ctx, *e);
//!     }
//!     fn result(&self, s: &SumState, _ctx: &mut SymCtx) -> i64 {
//!         s.sum.concrete_value().unwrap()
//!     }
//! }
//!
//! let records: Vec<i64> = (0..1_000).collect();
//! let segments = split_into_segments(&records, 4, 64);
//! let cfg = JobConfig::default();
//! let base = run_baseline(&ByParity, &SumUda, &segments, &cfg).unwrap();
//! let sym = run_symple(&ByParity, &SumUda, &segments, &cfg).unwrap();
//! assert_eq!(base.results, sym.results);
//! assert!(sym.metrics.shuffle_bytes < base.metrics.shuffle_bytes);
//! ```

pub mod baseline;
pub mod cache;
pub mod chain;
pub mod checkpoint;
pub mod dataset;
pub mod fault;
pub mod groupby;
pub mod job;
pub mod metrics;
pub mod pool;
pub mod scheduler;
pub mod segment;
pub mod sequential;
pub mod shuffle;
pub mod store_io;
pub mod streaming;
pub mod symple_job;

pub use baseline::{run_baseline, run_baseline_sorted};
pub use cache::{
    cache_config_fingerprint, DiskSummaryCache, MemSummaryCache, SummaryCache, SummaryCacheCtx,
};
pub use chain::{fold_metrics, run_two_stage};
pub use checkpoint::{
    config_fingerprint, CheckpointCtx, CheckpointStore, DiskCheckpointStore, MemCheckpointStore,
};
pub use dataset::Dataset;
pub use fault::{
    probe_fault_determinism, run_symple_checkpointed_with_faults, run_symple_with_faults,
    FaultInjector, FaultPlan, FaultProbe, SegmentFaults,
};
pub use groupby::{GroupBy, Key};
pub use job::{JobConfig, JobOutput, ReduceStrategy};
pub use metrics::JobMetrics;
pub use scheduler::{
    run_scheduled, AttemptOutcome, AttemptRecord, ScheduledRun, SchedulerConfig, SchedulerStats,
    TaskFaults,
};
pub use segment::Segment;
pub use sequential::run_sequential_job;
pub use store_io::{
    FaultIo, IoCounts, IoLedger, RealIo, RetryPolicy, StorageFaultKind, StorageFaultPlan,
    StoreEngine, StoreIo, DEFAULT_FAILURE_BUDGET,
};
pub use streaming::run_symple_streaming;
pub use symple_job::{run_symple, run_symple_cached, run_symple_checkpointed};
