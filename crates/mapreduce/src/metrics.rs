//! Per-phase job metrics: the raw quantities behind the paper's figures.
//!
//! * shuffle bytes / records → Figures 6 and 8;
//! * per-phase CPU seconds → Figure 7;
//! * wall-clock phase times + input bytes → the throughput and latency
//!   models of Figures 4 and 5.

use std::time::Duration;

use symple_core::engine::ExploreStats;

/// Metrics for one executed job.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobMetrics {
    /// Records read from input segments.
    pub input_records: u64,
    /// Raw storage bytes those records represent.
    pub input_bytes: u64,
    /// Wall-clock duration of the map phase (parallel).
    pub map_wall: Duration,
    /// Summed busy time of all map tasks ("CPU seconds").
    pub map_cpu: Duration,
    /// Longest single map task.
    pub map_max_task: Duration,
    /// Longest single reduce task (bounds reduce parallelism under skew).
    pub reduce_max_task: Duration,
    /// Bytes crossing the map→reduce shuffle (keys + payloads, encoded).
    pub shuffle_bytes: u64,
    /// Shuffle records (one per (key, mapper) pair that emitted data).
    pub shuffle_records: u64,
    /// Encoded summary-chain payload bytes crossing the shuffle — the
    /// paper's "compactness" axis. Zero for the baseline backends, whose
    /// payloads are event lists rather than symbolic summaries.
    pub summary_bytes: u64,
    /// Wall-clock duration of the reduce phase (parallel).
    pub reduce_wall: Duration,
    /// Summed busy time of all reduce tasks.
    pub reduce_cpu: Duration,
    /// Number of distinct groups.
    pub groups: u64,
    /// Task attempts executed across phases (clean runs: one per task).
    pub attempts: u64,
    /// Speculative clones launched against straggler tasks.
    pub speculative_launches: u64,
    /// Speculative clones whose result won the race.
    pub speculative_wins: u64,
    /// Busy time of attempts whose work was discarded — injected failures,
    /// isolated panics, and speculation race losers.
    pub retry_wasted_cpu: Duration,
    /// Map chunks whose summaries were loaded from a valid checkpoint
    /// frame instead of recomputed (checkpointed runs only).
    pub checkpoint_hits: u64,
    /// Map chunks with no stored checkpoint frame (every chunk of a fresh
    /// checkpointed run is a miss).
    pub checkpoint_misses: u64,
    /// Map chunks whose stored frame failed validation — truncated,
    /// bit-flipped, wrong version, or stale metadata. The frame was
    /// quarantined and the chunk recomputed. When a store is attached,
    /// `hits + misses + corrupt` equals the chunk count.
    pub checkpoint_corrupt: u64,
    /// Map chunks served from a valid content-addressed summary-cache
    /// entry instead of recomputed (cached runs only).
    pub cache_hits: u64,
    /// Map chunks with no summary-cache entry under their content key —
    /// computed and committed (every chunk of a cold run is a miss).
    pub cache_misses: u64,
    /// Map chunks whose summary-cache entry failed validation — truncated,
    /// bit-flipped, wrong version, or filed under a colliding/forged key.
    /// The entry was quarantined and the chunk recomputed. When a cache is
    /// attached, `cache_hits + cache_misses + cache_corrupt` equals the
    /// chunk count.
    pub cache_corrupt: u64,
    /// Raw input bytes whose recomputation a cache hit skipped — the
    /// incremental-recomputation savings axis.
    pub cache_bytes_saved: u64,
    /// `(key, chunk)` cells whose engine refusal was salvaged by shipping
    /// raw events for in-order concrete re-execution at the reducer — the
    /// degraded-completion path, each one a measured sequential barrier.
    pub chunks_salvaged_concrete: u64,
    /// Storage operations re-attempted after a transient I/O error, across
    /// every store attached to the run (checkpoint and summary cache).
    pub io_retries: u64,
    /// Storage operations that ultimately failed — retries exhausted, the
    /// backoff deadline spent, or a permanent error (`ENOSPC`, `EROFS`).
    pub io_gave_up: u64,
    /// I/O errors the attached stores observed. Excludes `NotFound`, which
    /// is a miss, not a fault; `io_errors == io_retries + io_gave_up`.
    pub io_errors: u64,
    /// Store-demotion events during this run: a store crossed its failure
    /// budget and fell back to a no-op backend, so the job completed
    /// correct-but-uncached.
    pub store_demoted: u64,
    /// Aggregated symbolic-exploration statistics (SYMPLE jobs only).
    pub explore: ExploreStats,
}

impl JobMetrics {
    /// Total CPU seconds across phases.
    pub fn total_cpu(&self) -> Duration {
        self.map_cpu + self.reduce_cpu
    }

    /// Total wall-clock across phases (map and reduce barriers).
    pub fn total_wall(&self) -> Duration {
        self.map_wall + self.reduce_wall
    }

    /// End-to-end throughput over the raw input, in MB/s.
    pub fn throughput_mb_s(&self) -> f64 {
        let secs = self.total_wall().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.input_bytes as f64 / 1.0e6) / secs
    }

    /// Wall time a perfectly scheduled run would take with the given
    /// parallelism, derived from measured per-task CPU.
    ///
    /// Each phase is bounded below by its longest single task (a reducer
    /// holding one huge group cannot be split). Used to *model* multi-core
    /// scaling when the measuring host has fewer cores than the
    /// configuration under study — the substitution DESIGN.md documents.
    pub fn modeled_wall(&self, map_workers: usize, reduce_workers: usize) -> Duration {
        let map = self
            .map_cpu
            .div_f64(map_workers.max(1) as f64)
            .max(self.map_max_task);
        let reduce = self
            .reduce_cpu
            .div_f64(reduce_workers.max(1) as f64)
            .max(self.reduce_max_task);
        map + reduce
    }

    /// [`JobMetrics::throughput_mb_s`] under [`JobMetrics::modeled_wall`].
    pub fn modeled_throughput_mb_s(&self, map_workers: usize, reduce_workers: usize) -> f64 {
        let secs = self.modeled_wall(map_workers, reduce_workers).as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.input_bytes as f64 / 1.0e6) / secs
    }

    /// Accumulates scheduler attempt accounting from one phase.
    pub fn absorb_scheduler(&mut self, s: &crate::scheduler::SchedulerStats) {
        self.attempts += s.attempts;
        self.speculative_launches += s.speculative_launches;
        self.speculative_wins += s.speculative_wins;
        self.retry_wasted_cpu += s.retry_wasted_cpu;
    }

    /// Accumulates a store's I/O-ledger movement (a snapshot delta from
    /// [`crate::store_io::IoCounts::since`]) into the run's totals.
    pub fn absorb_io(&mut self, c: &crate::store_io::IoCounts) {
        self.io_retries += c.io_retries;
        self.io_gave_up += c.io_gave_up;
        self.io_errors += c.io_errors;
        self.store_demoted += c.store_demoted;
    }

    /// Accumulates exploration stats from one map task.
    pub fn absorb_explore(&mut self, s: ExploreStats) {
        self.explore.records += s.records;
        self.explore.runs += s.runs;
        self.explore.forks += s.forks;
        self.explore.merges += s.merges;
        self.explore.restarts += s.restarts;
        self.explore.max_live_paths = self.explore.max_live_paths.max(s.max_live_paths);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let m = JobMetrics {
            map_cpu: Duration::from_secs(2),
            reduce_cpu: Duration::from_secs(1),
            map_wall: Duration::from_secs(1),
            reduce_wall: Duration::from_millis(500),
            input_bytes: 3_000_000,
            ..JobMetrics::default()
        };
        assert_eq!(m.total_cpu(), Duration::from_secs(3));
        assert_eq!(m.total_wall(), Duration::from_millis(1500));
        assert!((m.throughput_mb_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_zero_wall() {
        let m = JobMetrics::default();
        assert_eq!(m.throughput_mb_s(), 0.0);
    }

    #[test]
    fn absorb_explore_accumulates() {
        let mut m = JobMetrics::default();
        m.absorb_explore(ExploreStats {
            records: 5,
            runs: 9,
            max_live_paths: 3,
            ..Default::default()
        });
        m.absorb_explore(ExploreStats {
            records: 2,
            runs: 2,
            max_live_paths: 2,
            ..Default::default()
        });
        assert_eq!(m.explore.records, 7);
        assert_eq!(m.explore.runs, 11);
        assert_eq!(m.explore.max_live_paths, 3);
    }
}
