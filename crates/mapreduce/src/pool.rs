//! A minimal scoped worker pool for running map/reduce tasks in parallel.
//!
//! Since the fault-tolerant scheduler landed ([`crate::scheduler`]), this
//! module is a thin façade over [`crate::scheduler::run_scheduled`] with
//! the default configuration and no fault hooks: tasks are dealt onto
//! per-worker stealing deques so long-running tasks do not serialize
//! behind short ones,
//! results are written back by index so output order is deterministic
//! regardless of scheduling, and a panicking task surfaces as a typed
//! error instead of unwinding the whole scope. All timing counters are
//! 64-bit (`AtomicU64` inside the scheduler) — the earlier `AtomicUsize`
//! nanosecond counters overflowed after ~4 s of busy time on 32-bit
//! targets.

use std::time::Duration;

use symple_core::error::Result;

use crate::scheduler::{run_scheduled, SchedulerConfig};

/// The outcome of one pool phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTiming {
    /// Summed busy time of all tasks (the phase's "CPU seconds").
    pub cpu: Duration,
    /// Actual wall time of the phase on this host.
    pub wall: Duration,
    /// The longest single task — the lower bound on any parallel schedule.
    pub max_task: Duration,
}

/// Runs `f(index, &item)` over all items using up to `workers` threads,
/// returning the results in input order plus the phase timing.
///
/// The thread count is additionally clamped to the host's available
/// parallelism: oversubscribing cores would time-share tasks and inflate
/// their measured busy time, corrupting the CPU accounting that the
/// cluster models extrapolate from.
///
/// # Errors
///
/// A task that panics (or fails) on its final allowed attempt surfaces as
/// the scheduler's typed error ([`symple_core::Error::TaskPanicked`] or
/// [`symple_core::Error::RetriesExhausted`]) instead of aborting the whole
/// job, so callers can degrade along the salvage path.
pub fn run_tasks<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Result<(Vec<R>, PhaseTiming)>
where
    T: Send + Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let _span = symple_obs::span("pool.run_tasks");
    let run = run_scheduled(&items, workers, &SchedulerConfig::default(), None, f)?;
    Ok((run.results, run.timing))
}

#[cfg(test)]
mod tests {
    use super::*;

    use symple_core::Error;

    #[test]
    fn results_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let (out, t) = run_tasks(items, 4, |i, x| {
            assert_eq!(i, *x);
            x * 2
        })
        .unwrap();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert!(t.cpu >= t.max_task);
        assert!(t.wall >= Duration::ZERO);
    }

    #[test]
    fn single_worker_and_empty() {
        let (out, _) = run_tasks(vec![1, 2, 3], 1, |_, x| x + 1).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
        let (out, _) = run_tasks(Vec::<i32>::new(), 4, |_, x| *x).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks() {
        let (out, t) = run_tasks(vec![5], 16, |_, x| *x).unwrap();
        assert_eq!(out, vec![5]);
        assert!(t.max_task <= t.cpu);
    }

    #[test]
    fn cpu_time_accumulates_busy_work() {
        let items: Vec<u64> = vec![200_000; 8];
        let (_, t) = run_tasks(items, 4, |_, n| {
            let mut acc = 0u64;
            for i in 0..*n {
                acc = acc.wrapping_add(i * i);
            }
            acc
        })
        .unwrap();
        assert!(t.cpu > Duration::ZERO);
        assert!(t.max_task > Duration::ZERO);
    }

    #[test]
    fn pool_panic_is_reported_not_unwound() {
        let err = run_tasks(vec![0u8; 3], 2, |i, _| {
            if i == 1 {
                panic!("boom");
            }
            i
        })
        .unwrap_err();
        assert!(
            matches!(err, Error::TaskPanicked { task: 1, .. }),
            "{err:?}"
        );
    }
}
