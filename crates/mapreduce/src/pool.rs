//! A minimal scoped worker pool for running map/reduce tasks in parallel.
//!
//! Tasks are pulled from a shared atomic cursor so long-running tasks do
//! not serialize behind short ones; results are written back by index so
//! output order is deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The outcome of one pool phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTiming {
    /// Summed busy time of all tasks (the phase's "CPU seconds").
    pub cpu: Duration,
    /// Actual wall time of the phase on this host.
    pub wall: Duration,
    /// The longest single task — the lower bound on any parallel schedule.
    pub max_task: Duration,
}

/// Runs `f(index, item)` over all items using up to `workers` threads,
/// returning the results in input order plus the phase timing.
///
/// The thread count is additionally clamped to the host's available
/// parallelism: oversubscribing cores would time-share tasks and inflate
/// their measured busy time, corrupting the CPU accounting that the
/// cluster models extrapolate from.
pub fn run_tasks<T, R, F>(items: Vec<T>, workers: usize, f: F) -> (Vec<R>, PhaseTiming)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let _span = symple_obs::span("pool.run_tasks");
    let n = items.len();
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let workers = workers.clamp(1, n.max(1)).min(host);
    symple_obs::counter_add("pool.tasks", n as u64);
    symple_obs::gauge_set("pool.workers", workers as i64);
    let wall_start = Instant::now();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let cpu_nanos = AtomicUsize::new(0);
    let max_task_nanos = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut busy = Duration::ZERO;
                let mut longest = Duration::ZERO;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().unwrap().take().expect("task taken once");
                    let start = Instant::now();
                    let r = f(i, item);
                    let took = start.elapsed();
                    busy += took;
                    longest = longest.max(took);
                    *results[i].lock().unwrap() = Some(r);
                }
                cpu_nanos.fetch_add(busy.as_nanos() as usize, Ordering::Relaxed);
                max_task_nanos.fetch_max(longest.as_nanos() as usize, Ordering::Relaxed);
            });
        }
    });

    let timing = PhaseTiming {
        cpu: Duration::from_nanos(cpu_nanos.load(Ordering::Relaxed) as u64),
        wall: wall_start.elapsed(),
        max_task: Duration::from_nanos(max_task_nanos.load(Ordering::Relaxed) as u64),
    };
    let out = results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("task completed"))
        .collect();
    (out, timing)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let (out, t) = run_tasks(items, 4, |i, x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert!(t.cpu >= t.max_task);
        assert!(t.wall >= Duration::ZERO);
    }

    #[test]
    fn single_worker_and_empty() {
        let (out, _) = run_tasks(vec![1, 2, 3], 1, |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let (out, _) = run_tasks(Vec::<i32>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks() {
        let (out, t) = run_tasks(vec![5], 16, |_, x| x);
        assert_eq!(out, vec![5]);
        assert!(t.max_task <= t.cpu);
    }

    #[test]
    fn cpu_time_accumulates_busy_work() {
        let items: Vec<u64> = vec![200_000; 8];
        let (_, t) = run_tasks(items, 4, |_, n| {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(t.cpu > Duration::ZERO);
        assert!(t.max_task > Duration::ZERO);
    }
}
