//! A fault-tolerant task scheduler for map/reduce phases.
//!
//! The paper inherits Hadoop's fault-tolerance story (§5.4): a crashed map
//! attempt is simply re-executed, which is sound *because* SYMPLE tasks
//! are deterministic — the property [`crate::fault::FaultProbe`] pins
//! down. This module is the runtime half of that story. It replaces the
//! bare worker pool's "run each task exactly once and pray" model with
//! per-task **attempt records** and three production behaviors:
//!
//! * **Bounded retries** — a failed attempt (an injected crash from a
//!   [`TaskFaults`] hook, or a panic) is re-queued with a deterministic
//!   *simulated* exponential backoff until [`SchedulerConfig::max_attempts`]
//!   is reached, after which the job surfaces a typed
//!   [`Error::RetriesExhausted`] instead of spinning forever.
//! * **Panic isolation** — every attempt runs under
//!   [`std::panic::catch_unwind`], so one poisoned task yields a typed
//!   [`Error::TaskPanicked`] instead of unwinding the whole thread scope
//!   and taking the job (and its siblings) down with it.
//! * **Straggler speculation** — when a worker goes idle while a task has
//!   been running longer than `speculation_factor ×` the median completed
//!   attempt time (and past the [`SchedulerConfig::speculation_min`] noise
//!   floor), a speculative clone of the task is launched and raced against
//!   the original; the first completed result wins. This is safe precisely
//!   because tasks are deterministic: both attempts produce byte-identical
//!   output, so it does not matter which one lands.
//!
//! Backoff is *simulated*: the scheduler runs in one process, so sleeping
//! between attempts would only slow the host without protecting any remote
//! resource. The per-attempt backoff a real deployment would wait is
//! computed deterministically (`backoff_base × 2^(attempt−2)`), recorded in
//! the [`AttemptRecord`] and summed into
//! [`SchedulerStats::simulated_backoff`], where cluster models can charge
//! it.
//!
//! Fault hooks are consulted only for *regular* attempts. A speculative
//! clone models re-execution on a different machine, outside the injected
//! crash plan's attempt slots — and skipping the hook keeps the injected
//! retry count deterministic regardless of host timing.
//!
//! # Work distribution: stealing deques
//!
//! Tasks are dealt round-robin onto **per-worker deques** rather than one
//! shared queue. A worker pops from the front of its own deque; when that
//! runs dry it scans its siblings round-robin and *steals* from the back
//! of the first non-empty one ([`SchedulerStats::steals`] counts these).
//! Skewed phases — one worker stuck with the forkiest chunks — therefore
//! rebalance automatically instead of serializing behind the busy worker,
//! and in the balanced case each worker owns an uncontended queue instead
//! of all workers hammering one mutex. Retries are requeued on the deque
//! of the worker that observed the failure; speculative clones go to the
//! idle worker that spotted the straggler (it is about to go looking for
//! work anyway). Result writeback stays by-index, so the output order is
//! deterministic no matter which worker ran what.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use symple_core::error::{Error, Result};

use crate::pool::PhaseTiming;

/// Tuning knobs for the fault-tolerant scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Maximum attempts per task (first run included). At least 1; a task
    /// whose last allowed attempt fails surfaces [`Error::RetriesExhausted`]
    /// (or [`Error::TaskPanicked`] if the final failure was a panic).
    pub max_attempts: u32,
    /// Base of the simulated exponential backoff between attempts: retry
    /// `k` (the `k+1`-th attempt) is charged `backoff_base × 2^(k−1)`.
    pub backoff_base: Duration,
    /// Whether idle workers launch speculative clones of stragglers.
    pub speculation: bool,
    /// A task becomes a straggler when its running attempt exceeds this
    /// multiple of the median completed attempt time.
    pub speculation_factor: u32,
    /// Noise floor: never speculate on tasks younger than this, however
    /// small the median is. Keeps µs-scale jobs (tests, smoke runs) from
    /// launching clones over scheduling jitter.
    pub speculation_min: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            max_attempts: 4,
            backoff_base: Duration::from_millis(2),
            speculation: true,
            speculation_factor: 4,
            speculation_min: Duration::from_millis(25),
        }
    }
}

impl SchedulerConfig {
    /// A bookkeeping-minimal configuration: one attempt per task, no
    /// speculation. The `symple-bench --smoke` overhead gate compares the
    /// default configuration against this one.
    pub fn minimal() -> SchedulerConfig {
        SchedulerConfig {
            max_attempts: 1,
            backoff_base: Duration::ZERO,
            speculation: false,
            ..SchedulerConfig::default()
        }
    }
}

/// Injected failures for scheduler attempts, keyed by *task index* (the
/// position in the item slice). [`crate::fault::FaultInjector`] adapts its
/// segment-id-keyed plan onto this via [`crate::fault::SegmentFaults`].
///
/// Hooks are only consulted for regular attempts, never speculative ones
/// (see the module docs for why).
pub trait TaskFaults: Sync {
    /// Whether this `(task, attempt)` crashes *after* doing its work (the
    /// work is lost with the attempt, as when a mapper node dies).
    fn attempt_fails(&self, task: usize, attempt: u32) -> bool {
        let _ = (task, attempt);
        false
    }

    /// Whether this `(task, attempt)` panics mid-flight.
    fn attempt_panics(&self, task: usize, attempt: u32) -> bool {
        let _ = (task, attempt);
        false
    }

    /// Extra latency injected into this `(task, attempt)` — a straggler.
    fn attempt_delay(&self, task: usize, attempt: u32) -> Duration {
        let _ = (task, attempt);
        Duration::ZERO
    }
}

/// How one attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Completed and its result was kept.
    Succeeded,
    /// Completed correctly, but another attempt had already won the race.
    Superseded,
    /// The fault hook crashed the attempt after its work was done.
    InjectedFailure,
    /// The attempt panicked and was caught.
    Panicked,
}

/// The ledger entry for one executed attempt.
#[derive(Debug, Clone, Copy)]
pub struct AttemptRecord {
    /// Task index (position in the input slice).
    pub task: usize,
    /// 1-based attempt number within the task.
    pub attempt: u32,
    /// Whether this was a speculative clone.
    pub speculative: bool,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// Busy time of the attempt.
    pub busy: Duration,
    /// Simulated backoff charged before this attempt started.
    pub backoff: Duration,
}

/// Aggregate scheduler accounting for one phase.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Attempts executed (clean runs: exactly one per task).
    pub attempts: u64,
    /// Attempts crashed by the fault hook.
    pub injected_failures: u64,
    /// Attempts that panicked (isolated by `catch_unwind`).
    pub panics: u64,
    /// Speculative clones launched against stragglers.
    pub speculative_launches: u64,
    /// Speculative clones whose result won the race.
    pub speculative_wins: u64,
    /// Work items a worker took from a sibling's deque (load-balancing
    /// traffic; zero on perfectly balanced phases).
    pub steals: u64,
    /// Busy time of attempts whose work was discarded (injected failures,
    /// panics, and race losers) — the price of fault tolerance.
    pub retry_wasted_cpu: Duration,
    /// Total simulated backoff a real deployment would have waited.
    pub simulated_backoff: Duration,
    /// Per-attempt ledger, in completion order.
    pub records: Vec<AttemptRecord>,
}

/// What a scheduled phase returns: ordered results plus timing and the
/// attempt ledger.
#[derive(Debug)]
pub struct ScheduledRun<R> {
    /// Task results, in input order.
    pub results: Vec<R>,
    /// Phase timing (CPU sums every attempt, including wasted ones).
    pub timing: PhaseTiming,
    /// Attempt accounting.
    pub stats: SchedulerStats,
}

/// One unit of queued work.
#[derive(Debug, Clone, Copy)]
struct Work {
    task: usize,
    attempt: u32,
    speculative: bool,
    backoff: Duration,
}

/// Per-task scheduling state.
#[derive(Debug, Default)]
struct TaskState {
    /// Attempts handed out so far (running, queued, or finished).
    attempts_started: u32,
    /// Attempts currently executing.
    in_flight: u32,
    /// Start instant of the oldest currently-running attempt.
    running_since: Option<Instant>,
    /// A winning result has been stored.
    done: bool,
    /// The task failed terminally (cap exhausted).
    failed: bool,
    /// A speculative clone has already been launched.
    speculated: bool,
}

/// Phase-level coordination (completion and failure), deliberately tiny:
/// the work itself lives in the per-worker deques.
#[derive(Debug)]
struct Coord {
    /// Tasks not yet resolved (done or failed terminally).
    remaining: usize,
    /// First terminal error; once set, no new attempts start.
    fatal: Option<Error>,
}

struct Shared<R> {
    /// One work deque per worker: the owner pops the front, thieves take
    /// the back.
    deques: Vec<Mutex<VecDeque<Work>>>,
    coord: Mutex<Coord>,
    /// Approximate count of queued work across all deques. Kept outside
    /// the coord mutex; a stale zero only costs an idle worker one
    /// `IDLE_NAP` timeout, which the wait loop already tolerates.
    queued: AtomicUsize,
    cv: Condvar,
    tasks: Vec<Mutex<TaskState>>,
    results: Vec<Mutex<Option<R>>>,
    /// Busy nanos of every attempt (the phase's CPU seconds).
    cpu_nanos: AtomicU64,
    /// Longest single *winning* attempt.
    max_won_nanos: AtomicU64,
    /// Busy nanos of discarded attempts.
    wasted_nanos: AtomicU64,
    /// Busy nanos of completed successful attempts, for the speculation
    /// median.
    completed: Mutex<Vec<u64>>,
    records: Mutex<Vec<AttemptRecord>>,
    attempts: AtomicU64,
    injected_failures: AtomicU64,
    panics: AtomicU64,
    speculative_launches: AtomicU64,
    speculative_wins: AtomicU64,
    steals: AtomicU64,
    backoff_nanos: AtomicU64,
}

impl<R> Shared<R> {
    /// Queues `w` on `target`'s deque and wakes idle workers, unless the
    /// phase has already gone fatal.
    fn push_work(&self, target: usize, w: Work) {
        if self.coord.lock().unwrap().fatal.is_some() {
            return;
        }
        self.deques[target].lock().unwrap().push_back(w);
        self.queued.fetch_add(1, Ordering::Release);
        self.cv.notify_all();
    }

    /// Pops work for worker `wid`: own deque first (front), then a
    /// round-robin scan stealing from siblings' backs.
    fn pop_work(&self, wid: usize) -> Option<Work> {
        if let Some(w) = self.deques[wid].lock().unwrap().pop_front() {
            self.note_dequeued();
            return Some(w);
        }
        let k = self.deques.len();
        for off in 1..k {
            let victim = (wid + off) % k;
            let stolen = self.deques[victim].lock().unwrap().pop_back();
            if let Some(w) = stolen {
                self.note_dequeued();
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(w);
            }
        }
        None
    }

    /// Decrements the queued estimate, saturating at zero (a concurrent
    /// fatal drain may have already reset it).
    fn note_dequeued(&self) {
        let _ = self
            .queued
            .fetch_update(Ordering::Release, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Drains every deque (after a fatal error: no point starting more
    /// attempts).
    fn drain_deques(&self) {
        for d in &self.deques {
            d.lock().unwrap().clear();
        }
        self.queued.store(0, Ordering::Release);
    }
}

/// Simulated backoff charged before `attempt` (1-based; the first attempt
/// waits nothing).
fn backoff_for(cfg: &SchedulerConfig, attempt: u32) -> Duration {
    if attempt <= 1 || cfg.backoff_base.is_zero() {
        return Duration::ZERO;
    }
    // attempt 2 → base, attempt 3 → 2×base, … saturating well below
    // overflow for any sane cap.
    cfg.backoff_base
        .saturating_mul(1u32 << (attempt - 2).min(16))
}

/// Runs `f(index, &item)` over all items with up to `workers` threads under
/// the fault-tolerant scheduler, returning results in input order plus
/// timing and attempt accounting.
///
/// `f` must be deterministic per task — the contract the whole
/// re-execution layer (and the paper's §5.4) rests on, and the one the
/// differential oracle's fault probe verifies. On a clean run (no faults,
/// no panics, no stragglers) every task executes exactly once and the
/// behavior matches the plain worker pool.
///
/// The worker count is clamped to the host's available parallelism, as the
/// cluster models extrapolate from measured busy time and oversubscribed
/// cores would corrupt it.
pub fn run_scheduled<T, R, F>(
    items: &[T],
    workers: usize,
    cfg: &SchedulerConfig,
    faults: Option<&dyn TaskFaults>,
    f: F,
) -> Result<ScheduledRun<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let _span = symple_obs::span("scheduler.run");
    let n = items.len();
    let max_attempts = cfg.max_attempts.max(1);
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let workers = workers.clamp(1, n.max(1)).min(host);
    symple_obs::counter_add("sched.tasks", n as u64);
    symple_obs::gauge_set("sched.workers", workers as i64);
    let wall_start = Instant::now();

    // Deal initial tasks round-robin onto the per-worker deques.
    let mut initial: Vec<VecDeque<Work>> = (0..workers).map(|_| VecDeque::new()).collect();
    for task in 0..n {
        initial[task % workers].push_back(Work {
            task,
            attempt: 1,
            speculative: false,
            backoff: Duration::ZERO,
        });
    }
    let shared = Shared {
        deques: initial.into_iter().map(Mutex::new).collect(),
        coord: Mutex::new(Coord {
            remaining: n,
            fatal: None,
        }),
        queued: AtomicUsize::new(n),
        cv: Condvar::new(),
        tasks: (0..n)
            .map(|_| {
                Mutex::new(TaskState {
                    attempts_started: 1,
                    ..TaskState::default()
                })
            })
            .collect(),
        results: (0..n).map(|_| Mutex::new(None)).collect(),
        cpu_nanos: AtomicU64::new(0),
        max_won_nanos: AtomicU64::new(0),
        wasted_nanos: AtomicU64::new(0),
        completed: Mutex::new(Vec::new()),
        records: Mutex::new(Vec::new()),
        attempts: AtomicU64::new(0),
        injected_failures: AtomicU64::new(0),
        panics: AtomicU64::new(0),
        speculative_launches: AtomicU64::new(0),
        speculative_wins: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        backoff_nanos: AtomicU64::new(0),
    };

    if n > 0 {
        std::thread::scope(|scope| {
            for wid in 0..workers {
                let shared = &shared;
                let f = &f;
                scope.spawn(move || worker_loop(shared, wid, cfg, max_attempts, faults, f, items));
            }
        });
    }

    let timing = PhaseTiming {
        cpu: Duration::from_nanos(shared.cpu_nanos.load(Ordering::Relaxed)),
        wall: wall_start.elapsed(),
        max_task: Duration::from_nanos(shared.max_won_nanos.load(Ordering::Relaxed)),
    };
    let stats = SchedulerStats {
        attempts: shared.attempts.load(Ordering::Relaxed),
        injected_failures: shared.injected_failures.load(Ordering::Relaxed),
        panics: shared.panics.load(Ordering::Relaxed),
        speculative_launches: shared.speculative_launches.load(Ordering::Relaxed),
        speculative_wins: shared.speculative_wins.load(Ordering::Relaxed),
        steals: shared.steals.load(Ordering::Relaxed),
        retry_wasted_cpu: Duration::from_nanos(shared.wasted_nanos.load(Ordering::Relaxed)),
        simulated_backoff: Duration::from_nanos(shared.backoff_nanos.load(Ordering::Relaxed)),
        records: shared.records.into_inner().unwrap(),
    };
    symple_obs::counter_add("sched.attempts", stats.attempts);
    symple_obs::counter_add("sched.injected_failures", stats.injected_failures);
    symple_obs::counter_add("sched.panics", stats.panics);
    symple_obs::counter_add("sched.speculative_launches", stats.speculative_launches);
    symple_obs::counter_add("sched.speculative_wins", stats.speculative_wins);
    symple_obs::counter_add("sched.steals", stats.steals);

    let fatal = shared.coord.into_inner().unwrap().fatal;
    if let Some(e) = fatal {
        return Err(e);
    }
    let results = shared
        .results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("task resolved"))
        .collect();
    Ok(ScheduledRun {
        results,
        timing,
        stats,
    })
}

/// How long an idle worker naps between straggler checks.
const IDLE_NAP: Duration = Duration::from_micros(500);

#[allow(clippy::too_many_arguments)]
fn worker_loop<T, R, F>(
    shared: &Shared<R>,
    wid: usize,
    cfg: &SchedulerConfig,
    max_attempts: u32,
    faults: Option<&dyn TaskFaults>,
    f: &F,
    items: &[T],
) where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    while let Some(work) = next_work(shared, cfg, wid) {
        run_attempt(shared, cfg, max_attempts, faults, f, items, wid, work);
    }
}

/// Pops (or steals) the next unit of work for worker `wid`, speculating on
/// stragglers while idle. Returns `None` when the phase is over (all tasks
/// resolved, or a fatal error drained the deques).
///
/// The termination check runs *before* the pop: after a fatal error a
/// racing `push_work` may leave an item behind in some deque, and it must
/// be abandoned, not executed.
fn next_work<R>(shared: &Shared<R>, cfg: &SchedulerConfig, wid: usize) -> Option<Work> {
    loop {
        {
            let c = shared.coord.lock().unwrap();
            if c.remaining == 0 || c.fatal.is_some() {
                return None;
            }
        }
        if let Some(w) = shared.pop_work(wid) {
            return Some(w);
        }
        // Idle while tasks are still in flight: look for stragglers, then
        // nap until either new work arrives or the phase completes.
        maybe_speculate(shared, cfg, wid);
        let c = shared.coord.lock().unwrap();
        if c.remaining > 0 && c.fatal.is_none() && shared.queued.load(Ordering::Acquire) == 0 {
            let _ = shared.cv.wait_timeout(c, IDLE_NAP).unwrap();
        }
    }
}

/// Launches speculative clones for running tasks that exceed the straggler
/// threshold. Called only by otherwise-idle workers; the clones land on the
/// spotter's own deque (it is about to go looking for work anyway).
fn maybe_speculate<R>(shared: &Shared<R>, cfg: &SchedulerConfig, wid: usize) {
    if !cfg.speculation {
        return;
    }
    let median = {
        let completed = shared.completed.lock().unwrap();
        if completed.is_empty() {
            return; // No baseline to call anything a straggler against.
        }
        let mut sorted = completed.clone();
        sorted.sort_unstable();
        Duration::from_nanos(sorted[sorted.len() / 2])
    };
    let threshold = median
        .saturating_mul(cfg.speculation_factor.max(1))
        .max(cfg.speculation_min);
    let now = Instant::now();
    let mut launches: Vec<Work> = Vec::new();
    for (task, slot) in shared.tasks.iter().enumerate() {
        let mut t = slot.lock().unwrap();
        if t.done || t.failed || t.speculated || t.in_flight == 0 {
            continue;
        }
        if t.attempts_started >= cfg.max_attempts.max(1) {
            continue;
        }
        let elapsed = match t.running_since {
            Some(s) => now.saturating_duration_since(s),
            None => continue,
        };
        if elapsed > threshold {
            t.speculated = true;
            t.attempts_started += 1;
            launches.push(Work {
                task,
                attempt: t.attempts_started,
                speculative: true,
                backoff: Duration::ZERO,
            });
        }
    }
    if launches.is_empty() {
        return;
    }
    shared
        .speculative_launches
        .fetch_add(launches.len() as u64, Ordering::Relaxed);
    for w in launches {
        shared.push_work(wid, w);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_attempt<T, R, F>(
    shared: &Shared<R>,
    cfg: &SchedulerConfig,
    max_attempts: u32,
    faults: Option<&dyn TaskFaults>,
    f: &F,
    items: &[T],
    wid: usize,
    w: Work,
) where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    {
        let mut t = shared.tasks[w.task].lock().unwrap();
        if t.done || t.failed {
            return; // A queued retry lost the race to a finished twin.
        }
        t.in_flight += 1;
        if t.running_since.is_none() {
            t.running_since = Some(Instant::now());
        }
    }
    shared.attempts.fetch_add(1, Ordering::Relaxed);
    shared
        .backoff_nanos
        .fetch_add(w.backoff.as_nanos() as u64, Ordering::Relaxed);

    let started = Instant::now();
    let payload = catch_unwind(AssertUnwindSafe(|| {
        if !w.speculative {
            if let Some(fa) = faults {
                let delay = fa.attempt_delay(w.task, w.attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                if fa.attempt_panics(w.task, w.attempt) {
                    panic!("injected panic: task {} attempt {}", w.task, w.attempt);
                }
            }
        }
        f(w.task, &items[w.task])
    }));
    let busy = started.elapsed();
    shared
        .cpu_nanos
        .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);

    match payload {
        Ok(result) => {
            // The hook models a node that crashes *after* the work: the
            // result is lost with the attempt.
            let injected =
                !w.speculative && faults.is_some_and(|fa| fa.attempt_fails(w.task, w.attempt));
            if injected {
                shared.injected_failures.fetch_add(1, Ordering::Relaxed);
                finish_failure(
                    shared,
                    cfg,
                    max_attempts,
                    wid,
                    w,
                    busy,
                    AttemptOutcome::InjectedFailure,
                );
            } else {
                finish_success(shared, w, busy, result);
            }
        }
        Err(_panic) => {
            shared.panics.fetch_add(1, Ordering::Relaxed);
            finish_failure(
                shared,
                cfg,
                max_attempts,
                wid,
                w,
                busy,
                AttemptOutcome::Panicked,
            );
        }
    }
}

fn record<R>(shared: &Shared<R>, w: Work, busy: Duration, outcome: AttemptOutcome) {
    shared.records.lock().unwrap().push(AttemptRecord {
        task: w.task,
        attempt: w.attempt,
        speculative: w.speculative,
        outcome,
        busy,
        backoff: w.backoff,
    });
}

fn finish_success<R>(shared: &Shared<R>, w: Work, busy: Duration, result: R) {
    shared
        .completed
        .lock()
        .unwrap()
        .push(busy.as_nanos() as u64);
    let won = {
        let mut t = shared.tasks[w.task].lock().unwrap();
        t.in_flight -= 1;
        if t.in_flight == 0 {
            t.running_since = None;
        }
        if t.done {
            false
        } else {
            t.done = true;
            true
        }
    };
    if won {
        *shared.results[w.task].lock().unwrap() = Some(result);
        shared
            .max_won_nanos
            .fetch_max(busy.as_nanos() as u64, Ordering::Relaxed);
        if w.speculative {
            shared.speculative_wins.fetch_add(1, Ordering::Relaxed);
        }
        record(shared, w, busy, AttemptOutcome::Succeeded);
        shared.coord.lock().unwrap().remaining -= 1;
        shared.cv.notify_all();
    } else {
        // The twin already won; this work is the cost of speculation.
        shared
            .wasted_nanos
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        record(shared, w, busy, AttemptOutcome::Superseded);
    }
}

fn finish_failure<R>(
    shared: &Shared<R>,
    cfg: &SchedulerConfig,
    max_attempts: u32,
    wid: usize,
    w: Work,
    busy: Duration,
    outcome: AttemptOutcome,
) {
    shared
        .wasted_nanos
        .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    record(shared, w, busy, outcome);

    let mut t = shared.tasks[w.task].lock().unwrap();
    t.in_flight -= 1;
    if t.in_flight == 0 {
        t.running_since = None;
    }
    if t.done || t.failed {
        return; // A twin already resolved the task either way.
    }
    if t.attempts_started < max_attempts {
        // Retry with simulated backoff, requeued on the deque of the
        // worker that observed the failure.
        t.attempts_started += 1;
        let retry = Work {
            task: w.task,
            attempt: t.attempts_started,
            speculative: false,
            backoff: backoff_for(cfg, t.attempts_started),
        };
        drop(t);
        shared.push_work(wid, retry);
        return;
    }
    if t.in_flight > 0 {
        return; // A twin is still running; let it decide the task's fate.
    }
    // Cap exhausted with nothing left in flight: the task fails terminally
    // and the failure kind of the *last* attempt names the error.
    t.failed = true;
    drop(t);
    let err = match outcome {
        AttemptOutcome::Panicked => Error::TaskPanicked {
            task: w.task,
            attempt: w.attempt,
        },
        _ => Error::RetriesExhausted {
            task: w.task,
            attempts: max_attempts,
        },
    };
    let went_fatal = {
        let mut c = shared.coord.lock().unwrap();
        c.remaining -= 1;
        if c.fatal.is_none() {
            c.fatal = Some(err);
            true
        } else {
            false
        }
    };
    if went_fatal {
        shared.drain_deques(); // No point starting more attempts.
    }
    shared.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// A hook built from explicit (task, attempt) sets.
    #[derive(Default)]
    struct SetFaults {
        fails: HashSet<(usize, u32)>,
        panics: HashSet<(usize, u32)>,
        delays: Vec<(usize, u32, Duration)>,
    }

    impl TaskFaults for SetFaults {
        fn attempt_fails(&self, task: usize, attempt: u32) -> bool {
            self.fails.contains(&(task, attempt))
        }
        fn attempt_panics(&self, task: usize, attempt: u32) -> bool {
            self.panics.contains(&(task, attempt))
        }
        fn attempt_delay(&self, task: usize, attempt: u32) -> Duration {
            self.delays
                .iter()
                .find(|(t, a, _)| *t == task && *a == attempt)
                .map(|(_, _, d)| *d)
                .unwrap_or(Duration::ZERO)
        }
    }

    /// Fails (or panics) every attempt of the given tasks.
    struct AlwaysFaults {
        fail: HashSet<usize>,
        panic: HashSet<usize>,
    }

    impl TaskFaults for AlwaysFaults {
        fn attempt_fails(&self, task: usize, _attempt: u32) -> bool {
            self.fail.contains(&task)
        }
        fn attempt_panics(&self, task: usize, _attempt: u32) -> bool {
            self.panic.contains(&task)
        }
    }

    fn doubled(items: &[i64]) -> Vec<i64> {
        items.iter().map(|x| x * 2).collect()
    }

    #[test]
    fn clean_run_matches_input_order() {
        let items: Vec<i64> = (0..100).collect();
        let run = run_scheduled(&items, 4, &SchedulerConfig::default(), None, |i, x| {
            assert_eq!(i as i64, *x);
            x * 2
        })
        .unwrap();
        assert_eq!(run.results, doubled(&items));
        assert_eq!(run.stats.attempts, 100);
        assert_eq!(run.stats.injected_failures, 0);
        assert_eq!(run.stats.panics, 0);
        assert_eq!(run.stats.retry_wasted_cpu, Duration::ZERO);
        assert_eq!(run.stats.records.len(), 100);
        assert!(run
            .stats
            .records
            .iter()
            .all(|r| r.outcome == AttemptOutcome::Succeeded && !r.speculative));
        assert!(run.timing.cpu >= run.timing.max_task);
    }

    #[test]
    fn empty_items() {
        let run = run_scheduled(
            &Vec::<i64>::new(),
            4,
            &SchedulerConfig::default(),
            None,
            |_, x| *x,
        )
        .unwrap();
        assert!(run.results.is_empty());
        assert_eq!(run.stats.attempts, 0);
    }

    #[test]
    fn injected_failures_retry_and_recover() {
        let items: Vec<i64> = (0..8).collect();
        let hook = SetFaults {
            fails: [(0, 1), (3, 1), (3, 2)].into_iter().collect(),
            ..SetFaults::default()
        };
        let run = run_scheduled(
            &items,
            4,
            &SchedulerConfig::default(),
            Some(&hook),
            |_, x| x * 2,
        )
        .unwrap();
        assert_eq!(run.results, doubled(&items));
        // 8 first attempts + 1 retry for task 0 + 2 retries for task 3.
        assert_eq!(run.stats.attempts, 11);
        assert_eq!(run.stats.injected_failures, 3);
        assert!(run.stats.retry_wasted_cpu > Duration::ZERO || run.stats.attempts == 11);
        let t3: Vec<_> = run
            .stats
            .records
            .iter()
            .filter(|r| r.task == 3)
            .map(|r| (r.attempt, r.outcome))
            .collect();
        assert!(t3.contains(&(1, AttemptOutcome::InjectedFailure)));
        assert!(t3.contains(&(2, AttemptOutcome::InjectedFailure)));
        assert!(t3.contains(&(3, AttemptOutcome::Succeeded)));
    }

    #[test]
    fn retries_exhausted_is_typed() {
        let items: Vec<i64> = (0..4).collect();
        let hook = AlwaysFaults {
            fail: [2].into_iter().collect(),
            panic: HashSet::new(),
        };
        let cfg = SchedulerConfig {
            max_attempts: 3,
            ..SchedulerConfig::default()
        };
        let err = run_scheduled(&items, 2, &cfg, Some(&hook), |_, x| x * 2).unwrap_err();
        assert_eq!(
            err,
            Error::RetriesExhausted {
                task: 2,
                attempts: 3
            }
        );
    }

    #[test]
    fn panics_are_isolated_and_typed() {
        let items: Vec<i64> = (0..4).collect();
        let hook = AlwaysFaults {
            fail: HashSet::new(),
            panic: [1].into_iter().collect(),
        };
        let cfg = SchedulerConfig {
            max_attempts: 2,
            ..SchedulerConfig::default()
        };
        let err = run_scheduled(&items, 2, &cfg, Some(&hook), |_, x| x * 2).unwrap_err();
        assert_eq!(
            err,
            Error::TaskPanicked {
                task: 1,
                attempt: 2
            }
        );
    }

    #[test]
    fn panic_once_recovers() {
        let items: Vec<i64> = (0..6).collect();
        let hook = SetFaults {
            panics: [(4, 1)].into_iter().collect(),
            ..SetFaults::default()
        };
        let run = run_scheduled(
            &items,
            3,
            &SchedulerConfig::default(),
            Some(&hook),
            |_, x| x * 2,
        )
        .unwrap();
        assert_eq!(run.results, doubled(&items));
        assert_eq!(run.stats.panics, 1);
        assert_eq!(run.stats.attempts, 7);
    }

    #[test]
    fn user_panic_without_hook_is_typed_not_unwound() {
        let items: Vec<i64> = (0..3).collect();
        let cfg = SchedulerConfig {
            max_attempts: 2,
            ..SchedulerConfig::default()
        };
        let err = run_scheduled(&items, 2, &cfg, None, |_, x| {
            if *x == 1 {
                panic!("poisoned task");
            }
            *x
        })
        .unwrap_err();
        assert!(
            matches!(err, Error::TaskPanicked { task: 1, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn straggler_speculation_races_and_wins() {
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            < 2
        {
            return; // Speculation needs an idle worker.
        }
        let items: Vec<i64> = (0..6).collect();
        // Task 0's first attempt sleeps far past the straggler threshold;
        // the speculative clone (attempt 2) skips the hook and runs fast.
        let hook = SetFaults {
            delays: vec![(0, 1, Duration::from_millis(300))],
            ..SetFaults::default()
        };
        let cfg = SchedulerConfig {
            speculation_min: Duration::from_millis(5),
            speculation_factor: 2,
            ..SchedulerConfig::default()
        };
        let run = run_scheduled(&items, 2, &cfg, Some(&hook), |_, x| x * 2).unwrap();
        assert_eq!(run.results, doubled(&items));
        assert!(run.stats.speculative_launches >= 1, "{:?}", run.stats);
        assert!(run.stats.speculative_wins >= 1, "{:?}", run.stats);
        // The straggler's own result arrived after the clone's: wasted CPU.
        assert!(run.stats.retry_wasted_cpu >= Duration::from_millis(250));
    }

    #[test]
    fn skewed_phase_rebalances_via_steals() {
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            < 2
        {
            return; // Stealing needs a second worker.
        }
        // Round-robin dealing puts every slow (even) task on worker 0's
        // deque and every fast (odd) task on worker 1's. Worker 1 drains
        // its own deque in microseconds and must then steal from worker 0
        // to finish the phase in parallel.
        let items: Vec<i64> = (0..8).collect();
        let cfg = SchedulerConfig {
            speculation: false,
            ..SchedulerConfig::default()
        };
        let run = run_scheduled(&items, 2, &cfg, None, |i, x| {
            if i % 2 == 0 {
                std::thread::sleep(Duration::from_millis(15));
            }
            x * 2
        })
        .unwrap();
        assert_eq!(run.results, doubled(&items));
        assert!(run.stats.steals >= 1, "{:?}", run.stats);
        assert_eq!(run.stats.attempts, 8);
    }

    #[test]
    fn no_speculation_below_noise_floor() {
        let items: Vec<i64> = (0..50).collect();
        let run = run_scheduled(&items, 4, &SchedulerConfig::default(), None, |_, x| {
            let mut acc = 0i64;
            for i in 0..1_000 {
                acc = acc.wrapping_add(i * *x);
            }
            acc
        })
        .unwrap();
        assert_eq!(run.stats.speculative_launches, 0);
        assert_eq!(run.stats.attempts, 50);
    }

    #[test]
    fn backoff_schedule_is_deterministic() {
        let cfg = SchedulerConfig {
            backoff_base: Duration::from_millis(2),
            ..SchedulerConfig::default()
        };
        assert_eq!(backoff_for(&cfg, 1), Duration::ZERO);
        assert_eq!(backoff_for(&cfg, 2), Duration::from_millis(2));
        assert_eq!(backoff_for(&cfg, 3), Duration::from_millis(4));
        assert_eq!(backoff_for(&cfg, 4), Duration::from_millis(8));
        let none = SchedulerConfig {
            backoff_base: Duration::ZERO,
            ..SchedulerConfig::default()
        };
        assert_eq!(backoff_for(&none, 5), Duration::ZERO);
    }

    #[test]
    fn simulated_backoff_is_recorded_not_slept() {
        let items: Vec<i64> = (0..2).collect();
        let hook = SetFaults {
            fails: [(0, 1), (0, 2)].into_iter().collect(),
            ..SetFaults::default()
        };
        let started = Instant::now();
        let run = run_scheduled(
            &items,
            2,
            &SchedulerConfig {
                backoff_base: Duration::from_secs(10),
                ..SchedulerConfig::default()
            },
            Some(&hook),
            |_, x| *x,
        )
        .unwrap();
        // 10s + 20s of simulated backoff must not actually elapse.
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(run.stats.simulated_backoff, Duration::from_secs(30));
    }
}
