//! Input segments: the distributed file chunks mappers read (§2.1).
//!
//! The paper assumes "input data is distributed across several machines …
//! each distributed chunk has an identifier that allows the system to
//! reconstitute the input data in the correct order". A [`Segment`] is one
//! such chunk: an ordered slice of records plus its position in the global
//! order and the number of raw on-disk bytes it represents (paper records
//! are ≈1 KB with many fields most queries discard, so raw size and
//! in-memory size differ deliberately).
//!
//! An [`EncodedSegment`] is the same chunk still in wire form — one
//! contiguous buffer of concatenated record encodings, as it would arrive
//! from storage. Readers pick a tier: [`EncodedSegment::decode_records`]
//! materializes owned records, while [`EncodedSegment::for_each_borrowed`]
//! walks the buffer with [`WireBorrow`], so string- and byte-valued fields
//! are validated in place and never copied out of the chunk.

use symple_core::wire::{Wire, WireBorrow, WireError};

/// One ordered chunk of the input, processed by one mapper.
#[derive(Debug, Clone)]
pub struct Segment<R> {
    /// Position of this segment in the global input order (= mapper id).
    pub id: usize,
    /// The records, in input order.
    pub records: Vec<R>,
    /// Raw bytes this segment occupies in storage (full records with all
    /// fields), used for I/O accounting.
    pub raw_bytes: u64,
}

impl<R> Segment<R> {
    /// Creates a segment.
    pub fn new(id: usize, records: Vec<R>, raw_bytes: u64) -> Segment<R> {
        Segment {
            id,
            records,
            raw_bytes,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// One ordered chunk of the input still in wire form: the concatenated
/// encodings of its records in a single contiguous buffer.
///
/// This is the shape a mapper actually receives from a store — bytes, not
/// structs — and the entry point of the zero-copy decode tier: borrowed
/// readers slice strings and byte fields straight out of `bytes` instead
/// of allocating per record.
#[derive(Debug, Clone)]
pub struct EncodedSegment {
    /// Position of this segment in the global input order (= mapper id).
    pub id: usize,
    /// Concatenated record encodings, in input order.
    pub bytes: Vec<u8>,
    /// Number of records encoded in `bytes`.
    pub record_count: usize,
    /// Raw bytes this segment occupies in storage (full records with all
    /// fields), used for I/O accounting.
    pub raw_bytes: u64,
}

impl EncodedSegment {
    /// Encodes a typed segment into wire form.
    pub fn from_segment<R: Wire>(seg: &Segment<R>) -> EncodedSegment {
        let mut bytes = Vec::new();
        for r in &seg.records {
            r.encode(&mut bytes);
        }
        EncodedSegment {
            id: seg.id,
            bytes,
            record_count: seg.records.len(),
            raw_bytes: seg.raw_bytes,
        }
    }

    /// Owned tier: materializes the records back into a [`Segment`].
    pub fn decode_records<R: Wire>(&self) -> Result<Segment<R>, WireError> {
        let mut rd = &self.bytes[..];
        let mut records = Vec::with_capacity(self.record_count);
        for _ in 0..self.record_count {
            records.push(R::decode(&mut rd)?);
        }
        if !rd.is_empty() {
            return Err(WireError::TrailingBytes);
        }
        Ok(Segment::new(self.id, records, self.raw_bytes))
    }

    /// Borrowed tier: walks the records in place, handing each to `f`
    /// without copying variable-length fields out of the buffer. `B` is
    /// the borrowed view of the record type (e.g. `(&str, i64)` for a
    /// `(String, i64)` record).
    pub fn for_each_borrowed<'a, B, F>(&'a self, mut f: F) -> Result<(), WireError>
    where
        B: WireBorrow<'a>,
        F: FnMut(B),
    {
        let mut rd = &self.bytes[..];
        for _ in 0..self.record_count {
            f(B::decode_borrowed(&mut rd)?);
        }
        if !rd.is_empty() {
            return Err(WireError::TrailingBytes);
        }
        Ok(())
    }
}

/// Splits a flat record list into `n` contiguous segments, charging each
/// record `raw_record_bytes` of storage.
pub fn split_into_segments<R: Clone>(
    records: &[R],
    n: usize,
    raw_record_bytes: u64,
) -> Vec<Segment<R>> {
    let n = n.max(1);
    let chunk = records.len().div_ceil(n).max(1);
    records
        .chunks(chunk)
        .enumerate()
        .map(|(id, rs)| Segment::new(id, rs.to_vec(), rs.len() as u64 * raw_record_bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_order_and_ids() {
        let records: Vec<i64> = (0..10).collect();
        let segs = split_into_segments(&records, 3, 100);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].records, vec![0, 1, 2, 3]);
        assert_eq!(segs[1].records, vec![4, 5, 6, 7]);
        assert_eq!(segs[2].records, vec![8, 9]);
        assert_eq!(segs[0].id, 0);
        assert_eq!(segs[2].id, 2);
        assert_eq!(segs[0].raw_bytes, 400);
        assert_eq!(segs[2].raw_bytes, 200);
        assert_eq!(segs[2].len(), 2);
        assert!(!segs[2].is_empty());
    }

    #[test]
    fn more_segments_than_records() {
        let records: Vec<i64> = vec![1, 2];
        let segs = split_into_segments(&records, 8, 10);
        assert_eq!(segs.len(), 2);
        let total: usize = segs.iter().map(Segment::len).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn empty_input_yields_no_segments() {
        let segs = split_into_segments::<i64>(&[], 4, 10);
        assert!(segs.is_empty());
    }

    #[test]
    fn encoded_segment_roundtrips_owned() {
        let records: Vec<(String, i64)> = (0..20).map(|i| (format!("user-{i}"), i * 3)).collect();
        let seg = Segment::new(7, records.clone(), 20 * 128);
        let enc = EncodedSegment::from_segment(&seg);
        assert_eq!(enc.id, 7);
        assert_eq!(enc.record_count, 20);
        assert_eq!(enc.raw_bytes, 20 * 128);
        let back: Segment<(String, i64)> = enc.decode_records().unwrap();
        assert_eq!(back.records, records);
        assert_eq!(back.id, 7);
        assert_eq!(back.raw_bytes, 20 * 128);
    }

    #[test]
    fn borrowed_tier_reads_strings_in_place() {
        let records: Vec<(String, i64)> = (0..10).map(|i| (format!("key-{i}"), i)).collect();
        let seg = Segment::new(0, records.clone(), 0);
        let enc = EncodedSegment::from_segment(&seg);
        let buf_range = enc.bytes.as_ptr() as usize..enc.bytes.as_ptr() as usize + enc.bytes.len();
        let mut seen = Vec::new();
        enc.for_each_borrowed(|(name, v): (&str, i64)| {
            // Zero-copy: every borrowed string aliases the segment buffer.
            assert!(
                buf_range.contains(&(name.as_ptr() as usize)),
                "borrowed field must point into the segment buffer"
            );
            seen.push((name.to_owned(), v));
        })
        .unwrap();
        assert_eq!(seen, records);
    }

    #[test]
    fn borrowed_tier_rejects_trailing_and_truncated_buffers() {
        let seg = Segment::new(0, vec![(String::from("a"), 1i64)], 0);
        let mut enc = EncodedSegment::from_segment(&seg);
        enc.bytes.push(0xff);
        let trailing = enc.for_each_borrowed(|(_, _): (&str, i64)| {});
        assert_eq!(trailing, Err(WireError::TrailingBytes));
        enc.bytes.truncate(2);
        let truncated = enc.for_each_borrowed(|(_, _): (&str, i64)| {});
        assert_eq!(truncated, Err(WireError::UnexpectedEof));
        let owned = enc.decode_records::<(String, i64)>();
        assert_eq!(owned.unwrap_err(), WireError::UnexpectedEof);
    }
}
