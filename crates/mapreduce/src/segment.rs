//! Input segments: the distributed file chunks mappers read (§2.1).
//!
//! The paper assumes "input data is distributed across several machines …
//! each distributed chunk has an identifier that allows the system to
//! reconstitute the input data in the correct order". A [`Segment`] is one
//! such chunk: an ordered slice of records plus its position in the global
//! order and the number of raw on-disk bytes it represents (paper records
//! are ≈1 KB with many fields most queries discard, so raw size and
//! in-memory size differ deliberately).

/// One ordered chunk of the input, processed by one mapper.
#[derive(Debug, Clone)]
pub struct Segment<R> {
    /// Position of this segment in the global input order (= mapper id).
    pub id: usize,
    /// The records, in input order.
    pub records: Vec<R>,
    /// Raw bytes this segment occupies in storage (full records with all
    /// fields), used for I/O accounting.
    pub raw_bytes: u64,
}

impl<R> Segment<R> {
    /// Creates a segment.
    pub fn new(id: usize, records: Vec<R>, raw_bytes: u64) -> Segment<R> {
        Segment {
            id,
            records,
            raw_bytes,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Splits a flat record list into `n` contiguous segments, charging each
/// record `raw_record_bytes` of storage.
pub fn split_into_segments<R: Clone>(
    records: &[R],
    n: usize,
    raw_record_bytes: u64,
) -> Vec<Segment<R>> {
    let n = n.max(1);
    let chunk = records.len().div_ceil(n).max(1);
    records
        .chunks(chunk)
        .enumerate()
        .map(|(id, rs)| Segment::new(id, rs.to_vec(), rs.len() as u64 * raw_record_bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_order_and_ids() {
        let records: Vec<i64> = (0..10).collect();
        let segs = split_into_segments(&records, 3, 100);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].records, vec![0, 1, 2, 3]);
        assert_eq!(segs[1].records, vec![4, 5, 6, 7]);
        assert_eq!(segs[2].records, vec![8, 9]);
        assert_eq!(segs[0].id, 0);
        assert_eq!(segs[2].id, 2);
        assert_eq!(segs[0].raw_bytes, 400);
        assert_eq!(segs[2].raw_bytes, 200);
        assert_eq!(segs[2].len(), 2);
        assert!(!segs[2].is_empty());
    }

    #[test]
    fn more_segments_than_records() {
        let records: Vec<i64> = vec![1, 2];
        let segs = split_into_segments(&records, 8, 10);
        assert_eq!(segs.len(), 2);
        let total: usize = segs.iter().map(Segment::len).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn empty_input_yields_no_segments() {
        let segs = split_into_segments::<i64>(&[], 4, 10);
        assert!(segs.is_empty());
    }
}
