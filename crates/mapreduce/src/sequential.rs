//! The single-thread sequential baseline of the multi-core evaluation
//! (§6.2): "reads data sequentially and executes the UDA concretely."

use std::collections::HashMap;
use std::time::Instant;

use symple_core::error::Result;
use symple_core::uda::{run_sequential, Uda};

use crate::groupby::GroupBy;
use crate::job::JobOutput;
use crate::metrics::JobMetrics;
use crate::segment::Segment;

/// Runs the whole job on one thread with no shuffle: group every segment's
/// records per key (in global order), then run the UDA per key.
pub fn run_sequential_job<G, U>(
    g: &G,
    uda: &U,
    segments: &[Segment<G::Record>],
) -> Result<JobOutput<G::Key, U::Output>>
where
    G: GroupBy,
    U: Uda<Event = G::Event>,
{
    let start = Instant::now();
    let mut metrics = JobMetrics {
        input_records: segments.iter().map(|s| s.len() as u64).sum(),
        input_bytes: segments.iter().map(|s| s.raw_bytes).sum(),
        ..JobMetrics::default()
    };

    let mut groups: HashMap<G::Key, Vec<G::Event>> = HashMap::new();
    let mut pairs = Vec::new();
    for seg in segments {
        for r in &seg.records {
            pairs.clear();
            g.extract_all(r, &mut pairs);
            for (k, e) in pairs.drain(..) {
                groups.entry(k).or_default().push(e);
            }
        }
    }

    let mut results = Vec::with_capacity(groups.len());
    for (key, events) in groups {
        results.push((key, run_sequential(uda, events.iter())?));
    }
    results.sort_by(|a, b| a.0.cmp(&b.0));
    metrics.groups = results.len() as u64;
    let elapsed = start.elapsed();
    metrics.map_wall = elapsed;
    metrics.map_cpu = elapsed;
    Ok(JobOutput { results, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::run_baseline;
    use crate::job::JobConfig;
    use crate::segment::split_into_segments;
    use symple_core::ctx::SymCtx;
    use symple_core::impl_sym_state;
    use symple_core::types::sym_int::SymInt;

    struct ByBit;
    impl GroupBy for ByBit {
        type Record = i64;
        type Key = u8;
        type Event = i64;
        fn extract(&self, r: &i64) -> Option<(u8, i64)> {
            Some(((r & 1) as u8, *r))
        }
    }

    struct MaxUda;
    #[derive(Clone, Debug)]
    struct MaxState {
        max: SymInt,
    }
    impl_sym_state!(MaxState { max });
    impl Uda for MaxUda {
        type State = MaxState;
        type Event = i64;
        type Output = i64;
        fn init(&self) -> MaxState {
            MaxState {
                max: SymInt::new(i64::MIN),
            }
        }
        fn update(&self, s: &mut MaxState, ctx: &mut SymCtx, e: &i64) {
            if s.max.lt(ctx, *e) {
                s.max.assign(*e);
            }
        }
        fn result(&self, s: &MaxState, _ctx: &mut SymCtx) -> i64 {
            s.max.concrete_value().expect("concrete")
        }
    }

    #[test]
    fn sequential_matches_baseline() {
        let records: Vec<i64> = (0..77).map(|i| (i * 37) % 101).collect();
        let segments = split_into_segments(&records, 5, 256);
        let seq = run_sequential_job(&ByBit, &MaxUda, &segments).unwrap();
        let base = run_baseline(&ByBit, &MaxUda, &segments, &JobConfig::default()).unwrap();
        assert_eq!(seq.results, base.results);
        assert_eq!(seq.metrics.shuffle_bytes, 0);
        assert_eq!(seq.metrics.groups, 2);
    }
}
