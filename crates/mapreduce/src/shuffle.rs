//! The shuffle: deterministic key partitioning and order-preserving
//! regrouping (§5.4 of the paper).
//!
//! SYMPLE tags every shuffled record with `(mapper_id, record_id)` so that
//! the reduce phase can re-order per-key payloads "according to their order
//! in the input data". Here mappers are processed as whole segments, so the
//! mapper id alone fixes the order (a mapper's internal order is preserved
//! inside its payload).

use std::collections::BTreeMap;

use crate::groupby::Key;

/// Stable 64-bit FNV-1a hash over a key's wire encoding.
///
/// The standard library hasher is randomized per process; shuffles must be
/// deterministic so that re-executed (failed) map tasks land payloads on
/// the same reducers.
pub fn stable_hash<K: Key>(key: &K) -> u64 {
    let bytes = key.to_wire();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The reducer a key is routed to.
pub fn partition<K: Key>(key: &K, num_reducers: usize) -> usize {
    (stable_hash(key) % num_reducers.max(1) as u64) as usize
}

/// One reducer's input: per key, the payloads of every mapper that emitted
/// for that key, ordered by mapper id.
pub type ReducerInput<K, P> = BTreeMap<K, Vec<(usize, P)>>;

/// Routes mapper outputs to reducers.
///
/// `mapper_outputs[m]` is mapper `m`'s emitted `(key, payload)` list.
/// Within each key the payloads keep ascending mapper order — the shuffle
/// sort the paper implements with lexicographic `(mapper_id, record_id)`
/// keys.
pub fn partition_to_reducers<K: Key, P>(
    mapper_outputs: Vec<Vec<(K, P)>>,
    num_reducers: usize,
) -> Vec<ReducerInput<K, P>> {
    let mut reducers: Vec<ReducerInput<K, P>> =
        (0..num_reducers.max(1)).map(|_| BTreeMap::new()).collect();
    for (mapper_id, out) in mapper_outputs.into_iter().enumerate() {
        for (key, payload) in out {
            let r = partition(&key, num_reducers);
            reducers[r]
                .entry(key)
                .or_default()
                .push((mapper_id, payload));
        }
    }
    reducers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_across_calls() {
        let a = stable_hash(&42u64);
        let b = stable_hash(&42u64);
        assert_eq!(a, b);
        assert_ne!(stable_hash(&1u64), stable_hash(&2u64));
    }

    #[test]
    fn partition_in_range() {
        for k in 0..1000u64 {
            assert!(partition(&k, 7) < 7);
        }
        assert_eq!(partition(&5u64, 0), 0, "zero reducers clamps to one");
    }

    #[test]
    fn partition_spreads_keys() {
        let mut counts = [0usize; 8];
        for k in 0..10_000u64 {
            counts[partition(&k, 8)] += 1;
        }
        for c in counts {
            assert!(c > 500, "badly skewed partitioning: {counts:?}");
        }
    }

    #[test]
    fn regroup_orders_by_mapper() {
        let outputs = vec![
            vec![("k".to_string(), 100)],
            vec![("k".to_string(), 200), ("j".to_string(), 1)],
            vec![("k".to_string(), 300)],
        ];
        let reducers = partition_to_reducers(outputs, 3);
        let all: Vec<_> = reducers.iter().flat_map(|r| r.iter()).collect();
        assert_eq!(all.len(), 2);
        let k_entry = reducers
            .iter()
            .find_map(|r| r.get("k"))
            .expect("key k present");
        assert_eq!(k_entry, &vec![(0, 100), (1, 200), (2, 300)]);
    }

    #[test]
    fn same_key_lands_on_one_reducer() {
        let outputs = vec![vec![(7u64, 1)], vec![(7u64, 2)]];
        let reducers = partition_to_reducers(outputs, 4);
        let populated: Vec<_> = reducers.iter().filter(|r| !r.is_empty()).collect();
        assert_eq!(populated.len(), 1);
    }
}
