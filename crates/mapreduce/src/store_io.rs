//! Injectable storage I/O: every byte the durable stores move crosses
//! [`StoreIo`].
//!
//! The checkpoint store ([`crate::checkpoint`]) and summary cache
//! ([`crate::cache`]) defend against *content* corruption — CRC32 frames,
//! digest checks, quarantine — but a hostile disk fails below that layer:
//! transient `EIO`, a full (`ENOSPC`) or read-only (`EROFS`) filesystem,
//! writes torn mid-buffer, renames that die after the tmp file landed.
//! This module makes that layer injectable, extending the deterministic
//! [`crate::fault::FaultPlan`] idiom from task execution to storage:
//!
//! * [`StoreIo`] — the six primitive operations a store needs (read,
//!   write, rename, create_dir, remove, plus a `sync` point);
//! * [`RealIo`] — `std::fs`, byte-for-byte the pre-trait behavior;
//! * [`FaultIo`] — a seed-driven injector that fails the Nth operation
//!   with a chosen errno, tears a write at an arbitrary byte offset,
//!   fails a rename after the tmp file landed, and injects latency for
//!   slow-disk simulation — while keeping ledger counters the chaos
//!   tests balance against the store's own accounting;
//! * [`RetryPolicy`] — attempt cap, deterministic exponential backoff
//!   with seeded jitter, and a per-op backoff deadline, so transient
//!   faults are retried and permanent ones escalate;
//! * [`StoreEngine`] — the retry/ledger/demotion harness both disk
//!   stores share: when an engine exceeds its failure budget it
//!   *demotes* the store to a no-op backend (loads miss, saves vanish),
//!   so the job completes correct-but-uncached instead of failing —
//!   the same salvage philosophy the refused-chunk path follows.
//!
//! Ledger invariant (asserted by `tests/storage_chaos.rs`): every I/O
//! error observed is either retried or given up on, so
//! `io_errors == io_retries + io_gave_up` — and under a fault injector
//! with a quiescent real disk, `io_errors` equals the injector's
//! [`FaultIo::injected_errors`].

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use symple_core::rng::Rng64;

// ---------------------------------------------------------------------------
// The trait and the real backend
// ---------------------------------------------------------------------------

/// The primitive filesystem operations a durable store performs. All
/// framing, checksumming, retry, and demotion logic lives *above* this
/// trait; implementations only move bytes (or pretend to fail to).
pub trait StoreIo: Send + Sync {
    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes `bytes` to `path`, creating or truncating it.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to` (the stores' commit point).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Creates `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Durability point after a commit. [`RealIo`] keeps this a no-op —
    /// the stores' crash contract (old frame or new frame, never torn)
    /// comes from tmp + rename, and the pre-trait code issued no fsync —
    /// but the hook exists so injectors can fault or delay the barrier.
    fn sync(&self, path: &Path) -> io::Result<()>;
}

/// The production backend: `std::fs`, unchanged semantics.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// The errno an injected storage fault surfaces as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// Generic I/O error (`EIO`) — treated as transient and retried.
    Eio,
    /// Disk full (`ENOSPC`) — permanent, escalates immediately.
    Enospc,
    /// Read-only filesystem (`EROFS`) — permanent, escalates immediately.
    Erofs,
    /// Operation timed out — transient and retried.
    TimedOut,
}

impl StorageFaultKind {
    /// Every kind, for schedule enumeration.
    pub const ALL: [StorageFaultKind; 4] = [
        StorageFaultKind::Eio,
        StorageFaultKind::Enospc,
        StorageFaultKind::Erofs,
        StorageFaultKind::TimedOut,
    ];

    /// Materializes the fault as an [`io::Error`] with the matching kind.
    pub fn to_error(self) -> io::Error {
        match self {
            StorageFaultKind::Eio => io::Error::other("injected EIO"),
            StorageFaultKind::Enospc => {
                io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC")
            }
            StorageFaultKind::Erofs => {
                io::Error::new(io::ErrorKind::ReadOnlyFilesystem, "injected EROFS")
            }
            StorageFaultKind::TimedOut => {
                io::Error::new(io::ErrorKind::TimedOut, "injected timeout")
            }
        }
    }
}

/// A deterministic storage-fault schedule — the [`crate::fault::FaultPlan`]
/// idiom applied to the I/O layer. Operation indices are 1-based and count
/// *per category*: `fail_op` by the injector's global operation sequence,
/// `tear_write` by its write sequence, `fail_rename` by its rename
/// sequence. Retries re-enter the injector, so a retried op consumes fresh
/// indices — schedules enumerate *attempts*, not logical operations.
#[derive(Debug, Clone, Default)]
pub struct StorageFaultPlan {
    /// `(global op index, errno)`: the Nth operation fails outright.
    pub fail_op: Vec<(u64, StorageFaultKind)>,
    /// `(write index, byte offset)`: the Nth write persists only the
    /// first `offset` bytes, then reports `EIO` — a torn write.
    pub tear_write: Vec<(u64, usize)>,
    /// Rename indices that fail *after* the tmp file landed: the write
    /// succeeded, the commit did not.
    pub fail_rename: Vec<u64>,
    /// Every Nth operation stalls this long first (slow-disk simulation).
    pub latency_every: Option<(u64, Duration)>,
    /// SABOTAGE ONLY: tear the write but report success — a deliberately
    /// buggy injector. The chaos harness's negated self-test proves the
    /// ledger-balance check catches this (the injector claims an error
    /// the store never observed).
    pub silent_tear: bool,
}

impl StorageFaultPlan {
    /// A pseudo-random schedule derived from `seed`: `faults` op failures
    /// and one torn write, spread over the first `horizon` operations.
    /// Identical seeds yield identical schedules.
    pub fn seeded(seed: u64, horizon: u64, faults: u64) -> StorageFaultPlan {
        let mut rng = Rng64::seed_from_u64(seed ^ 0x510f_a017);
        let horizon = horizon.max(1);
        let mut plan = StorageFaultPlan::default();
        for _ in 0..faults {
            let op = rng.gen_range(1..=horizon);
            let kind = StorageFaultKind::ALL[rng.gen_range(0..4usize)];
            plan.fail_op.push((op, kind));
        }
        plan.tear_write
            .push((rng.gen_range(1..=horizon.min(8)), rng.gen_range(0..64usize)));
        if rng.gen_bool(0.5) {
            plan.fail_rename.push(rng.gen_range(1..=horizon.min(8)));
        }
        plan
    }
}

/// A [`StoreIo`] that injects the faults a [`StorageFaultPlan`] schedules,
/// delegating everything else to an inner backend. Counters record what
/// was actually injected so tests can balance them against the store's
/// [`IoLedger`].
pub struct FaultIo<I: StoreIo = RealIo> {
    inner: I,
    plan: StorageFaultPlan,
    ops: AtomicU64,
    writes: AtomicU64,
    renames: AtomicU64,
    injected_errors: AtomicU64,
    torn_writes: AtomicU64,
    latency_injections: AtomicU64,
}

impl FaultIo<RealIo> {
    /// An injector over the real filesystem.
    pub fn new(plan: StorageFaultPlan) -> FaultIo<RealIo> {
        FaultIo::wrapping(RealIo, plan)
    }
}

impl<I: StoreIo> FaultIo<I> {
    /// An injector over an arbitrary inner backend.
    pub fn wrapping(inner: I, plan: StorageFaultPlan) -> FaultIo<I> {
        FaultIo {
            inner,
            plan,
            ops: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            renames: AtomicU64::new(0),
            injected_errors: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            latency_injections: AtomicU64::new(0),
        }
    }

    /// Operations that reached the injector (including failed ones).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Errors this injector *intended* to surface — including a
    /// `silent_tear`'s suppressed one, which is what makes the ledger
    /// balance check catch that sabotage.
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors.load(Ordering::SeqCst)
    }

    /// Writes that were torn (silently or not).
    pub fn torn_writes(&self) -> u64 {
        self.torn_writes.load(Ordering::SeqCst)
    }

    /// Operations that were stalled by injected latency.
    pub fn latency_injections(&self) -> u64 {
        self.latency_injections.load(Ordering::SeqCst)
    }

    /// Advances the global op sequence; injects latency and scheduled
    /// op-level faults.
    fn gate(&self) -> io::Result<()> {
        let n = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some((every, delay)) = self.plan.latency_every {
            if every > 0 && n.is_multiple_of(every) {
                self.latency_injections.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(delay);
            }
        }
        if let Some(&(_, kind)) = self.plan.fail_op.iter().find(|(op, _)| *op == n) {
            self.injected_errors.fetch_add(1, Ordering::SeqCst);
            return Err(kind.to_error());
        }
        Ok(())
    }
}

impl<I: StoreIo> StoreIo for FaultIo<I> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gate()?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.gate()?;
        let w = self.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(&(_, offset)) = self.plan.tear_write.iter().find(|(idx, _)| *idx == w) {
            // The torn prefix really lands: that is what a power cut or
            // full disk leaves behind for the frame layer to catch.
            let torn = &bytes[..offset.min(bytes.len())];
            self.inner.write(path, torn)?;
            self.torn_writes.fetch_add(1, Ordering::SeqCst);
            self.injected_errors.fetch_add(1, Ordering::SeqCst);
            if self.plan.silent_tear {
                // The injected bug: claim success over a torn file.
                return Ok(());
            }
            return Err(io::Error::other("injected torn write"));
        }
        self.inner.write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate()?;
        let r = self.renames.fetch_add(1, Ordering::SeqCst) + 1;
        if self.plan.fail_rename.contains(&r) {
            // The tmp file already landed (the write succeeded); only the
            // commit rename dies, leaving the orphan for cleanup.
            self.injected_errors.fetch_add(1, Ordering::SeqCst);
            return Err(io::Error::other("injected rename failure"));
        }
        self.inner.rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.gate()?;
        self.inner.create_dir_all(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.gate()?;
        self.inner.remove(path)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        self.gate()?;
        self.inner.sync(path)
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// When to retry a failed storage operation and how long to wait.
///
/// Backoff for attempt `k` (1-based) is `backoff_base * 2^(k-1)` plus a
/// deterministic jitter of up to half that, derived from
/// `(jitter_seed, op sequence, attempt)` — reproducible run to run, yet
/// decorrelated across concurrent ops. An op stops retrying when the
/// attempt cap is reached or the *summed* backoff it has scheduled would
/// exceed `op_deadline`; the deadline is accounted in scheduled (virtual)
/// time so fault schedules stay deterministic regardless of host speed.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = never retry).
    pub max_attempts: u32,
    /// First retry's base backoff; doubles each further attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Budget on the summed backoff scheduled for one operation.
    pub op_deadline: Duration,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_micros(500),
            backoff_cap: Duration::from_millis(10),
            op_deadline: Duration::from_millis(50),
            jitter_seed: 0x10_5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (tests and comparisons).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            op_deadline: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// The default policy with all sleeps zeroed — full retry semantics
    /// at test speed.
    pub fn instant() -> RetryPolicy {
        RetryPolicy {
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// The backoff scheduled before retrying `attempt` (1-based) of the
    /// engine's `op`-th operation. Pure function of the policy and its
    /// arguments.
    pub fn backoff(&self, op: u64, attempt: u32) -> Duration {
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let exp = exp.min(self.backoff_cap);
        let half = exp.as_nanos() as u64 / 2;
        if half == 0 {
            return exp;
        }
        let mut rng = Rng64::seed_from_u64(
            self.jitter_seed ^ op.rotate_left(17) ^ u64::from(attempt).rotate_left(41),
        );
        (exp + Duration::from_nanos(rng.gen_range(0..=half))).min(self.backoff_cap)
    }
}

/// Whether an I/O error is worth retrying. Transient kinds — interruption,
/// timeout, would-block, and uncategorized errors like a raw `EIO` — are;
/// semantic (`NotFound`) and resource-state kinds (`StorageFull`,
/// `ReadOnlyFilesystem`, `PermissionDenied`, …) escalate immediately: no
/// number of retries un-fills a disk.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Other
    )
}

// ---------------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------------

/// Thread-safe counters for a store's I/O outcomes. Invariant:
/// `io_errors == io_retries + io_gave_up` — every observed error is
/// followed by exactly one decision.
#[derive(Debug, Default)]
pub struct IoLedger {
    io_retries: AtomicU64,
    io_gave_up: AtomicU64,
    io_errors: AtomicU64,
    store_demoted: AtomicU64,
}

impl IoLedger {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoCounts {
        IoCounts {
            io_retries: self.io_retries.load(Ordering::SeqCst),
            io_gave_up: self.io_gave_up.load(Ordering::SeqCst),
            io_errors: self.io_errors.load(Ordering::SeqCst),
            store_demoted: self.store_demoted.load(Ordering::SeqCst),
        }
    }
}

/// A snapshot of an [`IoLedger`] — also the unit of per-job attribution:
/// stores outlive jobs, so the driver records `end.since(&start)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoCounts {
    /// Transient-error attempts that were retried.
    pub io_retries: u64,
    /// Operations that ultimately failed (retries exhausted, deadline
    /// spent, or a permanent error).
    pub io_gave_up: u64,
    /// I/O errors observed (excluding `NotFound`, which is a miss).
    pub io_errors: u64,
    /// Demotion events: the store crossed its failure budget and fell
    /// back to a no-op backend.
    pub store_demoted: u64,
}

impl IoCounts {
    /// Counter movement since an earlier snapshot of the same ledger.
    pub fn since(&self, earlier: &IoCounts) -> IoCounts {
        IoCounts {
            io_retries: self.io_retries - earlier.io_retries,
            io_gave_up: self.io_gave_up - earlier.io_gave_up,
            io_errors: self.io_errors - earlier.io_errors,
            store_demoted: self.store_demoted - earlier.store_demoted,
        }
    }
}

// ---------------------------------------------------------------------------
// The retry/demotion engine
// ---------------------------------------------------------------------------

/// Default failure budget: give-up operations tolerated before a store
/// demotes itself to a no-op backend.
pub const DEFAULT_FAILURE_BUDGET: u64 = 4;

/// The harness both disk stores drive their [`StoreIo`] through: a retry
/// loop under a [`RetryPolicy`], an [`IoLedger`], and the demotion latch.
/// Once `io_gave_up` reaches the failure budget the engine trips
/// [`StoreEngine::demoted`]; the owning store then answers loads with a
/// miss and drops saves, completing the job correct-but-uncached.
pub struct StoreEngine {
    io: Arc<dyn StoreIo>,
    policy: RetryPolicy,
    ledger: IoLedger,
    failure_budget: u64,
    demoted: AtomicBool,
    op_seq: AtomicU64,
}

impl StoreEngine {
    /// An engine over an injectable backend.
    pub fn new(io: Arc<dyn StoreIo>, policy: RetryPolicy, failure_budget: u64) -> StoreEngine {
        StoreEngine {
            io,
            policy,
            ledger: IoLedger::default(),
            failure_budget: failure_budget.max(1),
            demoted: AtomicBool::new(false),
            op_seq: AtomicU64::new(0),
        }
    }

    /// The production engine: [`RealIo`], default policy and budget.
    pub fn real() -> StoreEngine {
        StoreEngine::new(
            Arc::new(RealIo),
            RetryPolicy::default(),
            DEFAULT_FAILURE_BUDGET,
        )
    }

    /// Whether the failure budget has tripped.
    pub fn demoted(&self) -> bool {
        self.demoted.load(Ordering::SeqCst)
    }

    /// The engine's I/O outcome counters.
    pub fn ledger(&self) -> &IoLedger {
        &self.ledger
    }

    /// Runs `f` against the backend under the retry policy. `NotFound`
    /// passes through uncounted (semantic absence, not an I/O fault);
    /// every other error is tallied and either retried or escalated.
    pub fn run<T>(&self, f: impl Fn(&dyn StoreIo) -> io::Result<T>) -> io::Result<T> {
        let op = self.op_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let mut scheduled = Duration::ZERO;
        let mut attempt = 1u32;
        loop {
            match f(self.io.as_ref()) {
                Ok(v) => return Ok(v),
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(e),
                Err(e) => {
                    self.ledger.io_errors.fetch_add(1, Ordering::SeqCst);
                    symple_obs::counter_add("store_io.errors", 1);
                    let backoff = self.policy.backoff(op, attempt);
                    let out_of_road = attempt >= self.policy.max_attempts
                        || scheduled + backoff > self.policy.op_deadline;
                    if !is_transient(&e) || out_of_road {
                        self.note_gave_up();
                        return Err(e);
                    }
                    self.ledger.io_retries.fetch_add(1, Ordering::SeqCst);
                    symple_obs::counter_add("store_io.retries", 1);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    scheduled += backoff;
                    attempt += 1;
                }
            }
        }
    }

    /// Records a terminal failure; trips demotion at the budget.
    fn note_gave_up(&self) {
        let gave_up = self.ledger.io_gave_up.fetch_add(1, Ordering::SeqCst) + 1;
        symple_obs::counter_add("store_io.gave_up", 1);
        if gave_up >= self.failure_budget && !self.demoted.swap(true, Ordering::SeqCst) {
            self.ledger.store_demoted.fetch_add(1, Ordering::SeqCst);
            symple_obs::counter_add("store_io.demotions", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A backend that fails a scripted number of times, then succeeds.
    struct Flaky {
        failures: Mutex<Vec<io::ErrorKind>>,
        calls: AtomicU64,
    }

    impl Flaky {
        fn new(failures: Vec<io::ErrorKind>) -> Flaky {
            Flaky {
                failures: Mutex::new(failures),
                calls: AtomicU64::new(0),
            }
        }
    }

    impl StoreIo for Flaky {
        fn read(&self, _path: &Path) -> io::Result<Vec<u8>> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            match self.failures.lock().unwrap().pop() {
                Some(kind) => Err(io::Error::new(kind, "scripted")),
                None => Ok(b"ok".to_vec()),
            }
        }
        fn write(&self, _path: &Path, _bytes: &[u8]) -> io::Result<()> {
            Ok(())
        }
        fn rename(&self, _from: &Path, _to: &Path) -> io::Result<()> {
            Ok(())
        }
        fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
            Ok(())
        }
        fn remove(&self, _path: &Path) -> io::Result<()> {
            Ok(())
        }
        fn sync(&self, _path: &Path) -> io::Result<()> {
            Ok(())
        }
    }

    fn engine_over(failures: Vec<io::ErrorKind>) -> StoreEngine {
        StoreEngine::new(Arc::new(Flaky::new(failures)), RetryPolicy::instant(), 2)
    }

    #[test]
    fn transient_errors_retry_to_success() {
        let engine = engine_over(vec![io::ErrorKind::TimedOut, io::ErrorKind::Interrupted]);
        let out = engine.run(|io| io.read(Path::new("x"))).unwrap();
        assert_eq!(out, b"ok");
        let c = engine.ledger().snapshot();
        assert_eq!(
            (c.io_errors, c.io_retries, c.io_gave_up, c.store_demoted),
            (2, 2, 0, 0)
        );
    }

    #[test]
    fn permanent_errors_escalate_immediately() {
        let engine = engine_over(vec![io::ErrorKind::StorageFull]);
        let err = engine.run(|io| io.read(Path::new("x"))).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let c = engine.ledger().snapshot();
        assert_eq!((c.io_errors, c.io_retries, c.io_gave_up), (1, 0, 1));
    }

    #[test]
    fn not_found_is_uncounted_passthrough() {
        let engine = engine_over(vec![io::ErrorKind::NotFound]);
        let err = engine.run(|io| io.read(Path::new("x"))).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert_eq!(engine.ledger().snapshot(), IoCounts::default());
    }

    #[test]
    fn exhausted_retries_give_up_and_budget_demotes() {
        let always: Vec<io::ErrorKind> = vec![io::ErrorKind::TimedOut; 16];
        let engine = engine_over(always.clone());
        assert!(engine.run(|io| io.read(Path::new("x"))).is_err());
        let c = engine.ledger().snapshot();
        // 3 attempts: 3 errors, 2 retries, 1 give-up; budget 2 not yet hit.
        assert_eq!((c.io_errors, c.io_retries, c.io_gave_up), (3, 2, 1));
        assert!(!engine.demoted());

        assert!(engine.run(|io| io.read(Path::new("x"))).is_err());
        assert!(engine.demoted(), "second give-up reaches the budget");
        assert_eq!(engine.ledger().snapshot().store_demoted, 1);

        // A third give-up does not double-count the demotion event.
        assert!(engine.run(|io| io.read(Path::new("x"))).is_err());
        assert_eq!(engine.ledger().snapshot().store_demoted, 1);
    }

    #[test]
    fn ledger_always_balances() {
        for failures in [
            vec![],
            vec![io::ErrorKind::TimedOut],
            vec![io::ErrorKind::StorageFull],
            vec![io::ErrorKind::TimedOut; 5],
            vec![io::ErrorKind::TimedOut, io::ErrorKind::StorageFull],
        ] {
            let engine = engine_over(failures);
            let _ = engine.run(|io| io.read(Path::new("x")));
            let c = engine.ledger().snapshot();
            assert_eq!(c.io_errors, c.io_retries + c.io_gave_up, "{c:?}");
        }
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy::default();
        for op in [1u64, 7, 99] {
            for attempt in 1..=6 {
                let a = p.backoff(op, attempt);
                let b = p.backoff(op, attempt);
                assert_eq!(a, b, "same (op, attempt) must schedule identically");
                assert!(a <= p.backoff_cap);
            }
        }
        // Exponential growth until the cap kicks in.
        assert!(p.backoff(1, 2) > p.backoff(1, 1));
        // Different ops jitter differently (decorrelated waiters).
        assert_ne!(p.backoff(1, 1), p.backoff(2, 1));
    }

    #[test]
    fn fault_io_injects_on_schedule_and_counts() {
        let dir = std::env::temp_dir().join(format!("symple-faultio-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let plan = StorageFaultPlan {
            fail_op: vec![(2, StorageFaultKind::Enospc)],
            tear_write: vec![(2, 3)],
            ..StorageFaultPlan::default()
        };
        let io = FaultIo::new(plan);
        let a = dir.join("a");

        // Op 1 (write 1): clean.
        io.write(&a, b"hello world").unwrap();
        // Op 2: scheduled ENOSPC.
        let err = io.read(&a).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // Op 3 (write 2): torn at byte 3 — prefix lands, error reported.
        let err = io.write(&a, b"hello world").unwrap_err();
        assert!(is_transient(&err));
        assert_eq!(std::fs::read(&a).unwrap(), b"hel");

        assert_eq!(io.ops(), 3);
        assert_eq!(io.injected_errors(), 2);
        assert_eq!(io.torn_writes(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn silent_tear_reports_success_but_counts_the_intent() {
        let dir = std::env::temp_dir().join(format!("symple-silenttear-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let plan = StorageFaultPlan {
            tear_write: vec![(1, 4)],
            silent_tear: true,
            ..StorageFaultPlan::default()
        };
        let io = FaultIo::new(plan);
        let a = dir.join("a");
        io.write(&a, b"hello world")
            .expect("the bug hides the tear");
        assert_eq!(std::fs::read(&a).unwrap(), b"hell");
        assert_eq!(io.injected_errors(), 1, "intent is still counted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = StorageFaultPlan::seeded(42, 16, 3);
        let b = StorageFaultPlan::seeded(42, 16, 3);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = StorageFaultPlan::seeded(43, 16, 3);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }
}
