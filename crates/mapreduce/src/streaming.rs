//! Streaming SYMPLE execution: mappers push summary chains to reducers
//! through channels as soon as each key's chunk is summarized, overlapping
//! the map and reduce phases the way a real Hadoop shuffle streams map
//! output while later map tasks still run.
//!
//! Ordering is preserved exactly as §5.4 requires: each emission carries
//! its mapper id, and a reducer buffers per-key chains in a mapper-ordered
//! map, applying them in order once every mapper has finished. Because
//! summary-chain concatenation is associative, a reducer could also
//! compose adjacent chains incrementally; the final application is
//! equivalent and simpler.

//! Fault tolerance here is *panic isolation only*: a streaming task
//! cannot be retried, because its partial emissions are already in the
//! reducers' buffers, so a panicking mapper segment or reducer surfaces a
//! typed [`Error::TaskPanicked`] (attempt 1) instead of unwinding the
//! whole scope. Retryable execution is the batch path's job
//! ([`crate::scheduler`]).

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Instant;

use symple_core::engine::{ExploreStats, SymbolicExecutor};
use symple_core::error::{Error, Result};
use symple_core::summary::{Summary, SummaryChain};
use symple_core::uda::{extract_result, run_concrete_state, Uda};
use symple_core::wire::Wire;

use crate::groupby::{group_segment, GroupBy};
use crate::job::{JobConfig, JobOutput, ReduceStrategy};
use crate::metrics::JobMetrics;
use crate::segment::Segment;
use crate::shuffle::partition;
use crate::symple_job::{
    compose_payloads, encode_chain_payload, encode_events_payload, is_engine_refusal,
};

/// What one reducer thread returns: its results plus byte/record counts.
type ReducerOut<K, O> = (Vec<(K, O)>, u64, u64);

/// One emission flowing through the shuffle channel.
struct Emission<K> {
    mapper_id: usize,
    key: K,
    payload: Vec<u8>,
}

/// Runs the SYMPLE job with a streaming shuffle: mappers and reducers
/// execute concurrently, connected by bounded channels.
pub fn run_symple_streaming<G, U>(
    g: &G,
    uda: &U,
    segments: &[Segment<G::Record>],
    cfg: &JobConfig,
) -> Result<JobOutput<G::Key, U::Output>>
where
    G: GroupBy,
    U: Uda<Event = G::Event>,
    U::Output: Send,
{
    let start = Instant::now();
    let mut metrics = JobMetrics {
        input_records: segments.iter().map(|s| s.len() as u64).sum(),
        input_bytes: segments.iter().map(|s| s.raw_bytes).sum(),
        ..JobMetrics::default()
    };

    let num_reducers = cfg.num_reducers.max(1);
    let mut senders = Vec::with_capacity(num_reducers);
    let mut receivers = Vec::with_capacity(num_reducers);
    for _ in 0..num_reducers {
        // Bounded channels provide the back-pressure a real shuffle has.
        let (tx, rx) = mpsc::sync_channel::<Emission<G::Key>>(1024);
        senders.push(tx);
        receivers.push(rx);
    }

    let template = uda.init();
    let results = std::thread::scope(|scope| -> Result<Vec<(G::Key, U::Output)>> {
        // Reducers: consume until all senders hang up.
        let reducer_handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(ridx, rx)| {
                let template = &template;
                scope.spawn(move || -> Result<ReducerOut<G::Key, U::Output>> {
                    // Isolate reducer panics: the task index is the
                    // reducer's partition number.
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut buffered: BTreeMap<G::Key, BTreeMap<usize, Vec<u8>>> =
                            BTreeMap::new();
                        let mut bytes = 0u64;
                        let mut records = 0u64;
                        for emission in rx {
                            bytes += (emission.key.wire_len() + emission.payload.len()) as u64;
                            records += 1;
                            buffered
                                .entry(emission.key)
                                .or_default()
                                .insert(emission.mapper_id, emission.payload);
                        }
                        // All mappers done: compose payloads in mapper
                        // order, salvaging `NeedsConcrete` chunks in place.
                        let mut out = Vec::with_capacity(buffered.len());
                        for (key, chunks) in buffered {
                            let payloads: Vec<&[u8]> =
                                chunks.values().map(|p| p.as_slice()).collect();
                            let state = compose_payloads(
                                uda,
                                template,
                                &payloads,
                                ReduceStrategy::ApplyInOrder,
                            )?;
                            out.push((key, extract_result(uda, &state)?));
                        }
                        Ok((out, bytes, records))
                    }))
                    .unwrap_or_else(|_| {
                        Err(Error::TaskPanicked {
                            task: ridx,
                            attempt: 1,
                        })
                    })
                })
            })
            .collect();

        // Mappers: a simple static partition of segments over workers.
        let workers = cfg.map_workers.clamp(1, segments.len().max(1));
        let mapper_handles: Vec<_> = (0..workers)
            .map(|w| {
                let senders = senders.clone();
                scope.spawn(move || -> Result<(ExploreStats, u64)> {
                    let mut stats = ExploreStats::default();
                    let mut salvaged = 0u64;
                    for seg in segments.iter().skip(w).step_by(workers) {
                        // Isolate per-segment panics; emissions already
                        // streamed cannot be retracted, so no retry.
                        catch_unwind(AssertUnwindSafe(|| {
                            map_stream(g, uda, seg, cfg, &senders, &mut stats, &mut salvaged)
                        }))
                        .unwrap_or(Err(Error::TaskPanicked {
                            task: seg.id,
                            attempt: 1,
                        }))?;
                    }
                    Ok((stats, salvaged))
                })
            })
            .collect();
        // Drop our copies so reducers see hang-up once mappers finish.
        drop(senders);

        let mut explore = ExploreStats::default();
        let mut map_err = None;
        for h in mapper_handles {
            match h.join().expect("mapper thread panicked") {
                Ok((s, salvaged)) => {
                    explore.records += s.records;
                    explore.runs += s.runs;
                    explore.forks += s.forks;
                    explore.merges += s.merges;
                    explore.restarts += s.restarts;
                    explore.max_live_paths = explore.max_live_paths.max(s.max_live_paths);
                    metrics.chunks_salvaged_concrete += salvaged;
                }
                Err(e) => map_err = Some(e),
            }
        }
        metrics.absorb_explore(explore);

        let mut results = Vec::new();
        for h in reducer_handles {
            let (out, bytes, records) = h.join().expect("reducer thread panicked")?;
            results.extend(out);
            metrics.shuffle_bytes += bytes;
            metrics.shuffle_records += records;
        }
        if let Some(e) = map_err {
            return Err(e);
        }
        Ok(results)
    });
    let mut results = results?;
    results.sort_by(|a, b| a.0.cmp(&b.0));
    metrics.groups = results.len() as u64;
    let wall = start.elapsed();
    // Phases overlap; attribute the whole wall to the map slot and leave
    // reduce at zero so total_wall stays meaningful.
    metrics.map_wall = wall;
    metrics.map_cpu = wall;
    Ok(JobOutput { results, metrics })
}

/// Maps one segment, streaming each key's chain as soon as it completes.
fn map_stream<G, U>(
    g: &G,
    uda: &U,
    seg: &Segment<G::Record>,
    cfg: &JobConfig,
    senders: &[mpsc::SyncSender<Emission<G::Key>>],
    stats: &mut ExploreStats,
    salvaged: &mut u64,
) -> Result<()>
where
    G: GroupBy,
    U: Uda<Event = G::Event>,
{
    let groups = group_segment(g, &seg.records);
    for (key, events) in groups {
        let payload: Vec<u8> = if seg.id == 0 && cfg.first_segment_concrete {
            encode_chain_payload(&SummaryChain::<U::State>::single(Summary::singleton(
                run_concrete_state(uda, events.iter())?,
            )))
        } else {
            let mut exec = SymbolicExecutor::new(uda, cfg.engine);
            match exec.feed_all(events.iter()) {
                Ok(()) => {
                    let (chain, s) = exec.finish();
                    stats.records += s.records;
                    stats.runs += s.runs;
                    stats.forks += s.forks;
                    stats.merges += s.merges;
                    stats.restarts += s.restarts;
                    stats.max_live_paths = stats.max_live_paths.max(s.max_live_paths);
                    encode_chain_payload(&chain)
                }
                Err(e) if cfg.salvage_refused_chunks && is_engine_refusal(&e) => {
                    // Degraded completion, same rule as the batch path:
                    // ship raw events for in-order concrete re-execution.
                    *salvaged += 1;
                    encode_events_payload(&events)
                }
                Err(e) => return Err(e),
            }
        };
        let r = partition(&key, senders.len());
        senders[r]
            .send(Emission {
                mapper_id: seg.id,
                key,
                payload,
            })
            .map_err(|_| Error::Uda("reducer hung up".into()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::split_into_segments;
    use crate::symple_job::run_symple;
    use symple_core::ctx::SymCtx;
    use symple_core::impl_sym_state;
    use symple_core::types::{sym_int::SymInt, sym_pred::SymPred, sym_vector::SymVector};

    struct ByMod;
    impl GroupBy for ByMod {
        type Record = i64;
        type Key = u8;
        type Event = i64;
        fn extract(&self, r: &i64) -> Option<(u8, i64)> {
            Some(((r % 7) as u8, *r))
        }
    }

    struct RunsUda;
    #[derive(Clone, Debug)]
    struct RunsState {
        len: SymInt,
        prev: SymPred<i64>,
        out: SymVector<i64>,
    }
    impl_sym_state!(RunsState { len, prev, out });
    impl Uda for RunsUda {
        type State = RunsState;
        type Event = i64;
        type Output = Vec<i64>;
        fn init(&self) -> RunsState {
            RunsState {
                len: SymInt::new(0),
                prev: SymPred::new(|p: &i64, c: &i64| c > p),
                out: SymVector::new(),
            }
        }
        fn update(&self, s: &mut RunsState, ctx: &mut SymCtx, e: &i64) {
            if s.prev.eval(ctx, e) {
                s.len += 1;
            } else {
                if s.len.ge(ctx, 2) {
                    s.out.push_int(&s.len);
                }
                s.len.assign(1);
            }
            s.prev.set(*e);
        }
        fn result(&self, s: &RunsState, _ctx: &mut SymCtx) -> Vec<i64> {
            s.out.concrete_elems().expect("concrete")
        }
    }

    #[test]
    fn streaming_matches_batch() {
        let records: Vec<i64> = (0..2_000).map(|i| (i * 31 + 5) % 211).collect();
        let segments = split_into_segments(&records, 7, 128);
        let cfg = JobConfig::default();
        let batch = run_symple(&ByMod, &RunsUda, &segments, &cfg).unwrap();
        let streaming = run_symple_streaming(&ByMod, &RunsUda, &segments, &cfg).unwrap();
        assert_eq!(batch.results, streaming.results);
        assert_eq!(batch.metrics.shuffle_bytes, streaming.metrics.shuffle_bytes);
        assert_eq!(
            batch.metrics.shuffle_records,
            streaming.metrics.shuffle_records
        );
    }

    #[test]
    fn streaming_single_reducer_and_many() {
        let records: Vec<i64> = (0..800).map(|i| (i * 13) % 97).collect();
        let segments = split_into_segments(&records, 4, 64);
        let one = run_symple_streaming(
            &ByMod,
            &RunsUda,
            &segments,
            &JobConfig::default().with_reducers(1),
        )
        .unwrap();
        let many = run_symple_streaming(
            &ByMod,
            &RunsUda,
            &segments,
            &JobConfig::default().with_reducers(11),
        )
        .unwrap();
        assert_eq!(one.results, many.results);
    }

    #[test]
    fn streaming_empty_input() {
        let out = run_symple_streaming(&ByMod, &RunsUda, &[], &JobConfig::default()).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.metrics.shuffle_records, 0);
    }
}
